//! The §4.3 limitation, end to end on the data plane: a more-specific-prefix
//! hijack wins longest-match forwarding without ever triggering a MOAS
//! conflict — and the same attacker announcing the exact prefix is caught.
//!
//! Run with: `cargo run --release --example subprefix_hijack`

use moas::bgp::{ForwardingPlane, Network};
use moas::detection::{MoasMonitor, RegistryVerifier, SubPrefixHijack};
use moas::topology::paper::PaperTopology;
use moas::types::MoasList;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = PaperTopology::As46.graph();
    let stubs = graph.stub_asns();
    let victim = stubs[0];
    let attacker = stubs[stubs.len() - 1];
    let prefix: moas::types::Ipv4Prefix = "208.8.0.0/16".parse()?;
    let valid = MoasList::implicit(victim);

    println!("victim {victim} announces {prefix}; attacker {attacker}; full MOAS deployment");

    let mut registry = RegistryVerifier::new();
    registry.register(prefix, valid.clone());
    let mut net = Network::with_monitor(graph, MoasMonitor::full(registry));
    net.originate(victim, prefix, Some(valid));
    net.run()?;

    let sub = SubPrefixHijack::new().launch(&mut net, attacker, prefix);
    net.run()?;
    println!("attacker announced the more-specific {sub}");

    println!(
        "alarms raised: {} (the MOAS check never sees a conflict — different prefix)",
        net.monitor().alarms().len()
    );

    // Control plane: the covering route is intact everywhere.
    let intact = graph
        .asns()
        .filter(|&a| net.best_origin(a, prefix) == Some(victim))
        .count();
    println!(
        "covering-route census: {intact}/{} ASes still route {prefix} to the victim",
        graph.len()
    );

    // Data plane: traffic to the hijacked half flows to the attacker.
    let plane = ForwardingPlane::snapshot(&net);
    let mut captured = 0;
    let mut safe = 0;
    for asn in graph.asns().filter(|&a| a != attacker && a != victim) {
        if plane.trace(asn, sub.network()).delivered_to(attacker) {
            captured += 1;
        }
        let other_half = prefix.split().expect("splittable").1;
        if plane.trace(asn, other_half.network()).delivered_to(victim) {
            safe += 1;
        }
    }
    println!("data-plane census for an address inside {sub}: {captured} ASes' traffic reaches the ATTACKER");
    println!("data-plane census for the other half:      {safe} ASes' traffic reaches the victim");

    // Show one trace in full.
    let observer = graph.transit_asns()[0];
    println!(
        "\nexample trace from {observer}: {}",
        plane.trace(observer, sub.network())
    );
    println!("\nConclusion (§4.3): the MOAS list does not defend against more-specific hijacks;");
    println!("pair it with coverage checks or prefix-ownership validation for that threat.");
    Ok(())
}
