//! The §3 measurement study: generate the calibrated 1279-day synthetic
//! Route Views period and print the Figure 4 and Figure 5 analyses.
//!
//! Run with: `cargo run --release --example route_views_analysis`

use moas::measurement::{
    daily_moas_counts, duration_histogram, generate_timeline, median, MeasurementSummary,
    TimelineConfig,
};

fn main() {
    println!("Generating 1279 daily table dumps (11/1997 - 7/2001, synthetic)...");
    let config = TimelineConfig::paper();
    let timeline = generate_timeline(&config);
    let counts = daily_moas_counts(&timeline.dumps);
    let summary = MeasurementSummary::compute(&timeline.dumps);

    println!("\n== Figure 4: daily MOAS conflict counts ==");
    println!("  window              median   (paper medians: 683 in 1998, 1294 in 2001)");
    for (label, range) in [
        ("1997-11 .. 1998-11", 0..365usize),
        ("1998-11 .. 1999-11", 365..730),
        ("1999-11 .. 2000-11", 730..1096),
        ("2000-11 .. 2001-07", 1096..counts.len()),
    ] {
        println!("  {label}   {:>6.0}", median(&counts[range]));
    }
    println!(
        "  spikes: day 150 (1998-04-07, AS 8584) = {} cases; day 1245 (2001-04-06, AS 15412) = {} cases",
        counts[150], counts[1245]
    );

    println!("\n== Figure 5: duration of MOAS cases ==");
    let histogram = duration_histogram(&timeline.dumps);
    let mut lo = 1u32;
    while lo <= config.days {
        let hi = (lo * 4).min(config.days + 1);
        let n: usize = histogram
            .iter()
            .filter(|(&d, _)| d >= lo && d < hi)
            .map(|(_, &c)| c)
            .sum();
        let bar = "#".repeat(((n as f64).sqrt() as usize).min(60));
        println!("  {:>5} - {:<5} days {n:>7} {bar}", lo, hi - 1);
        lo = hi;
    }

    println!("\n== Summary (paper's §3.1 statistics) ==");
    println!("{summary}");
    println!(
        "  2-origin cases: {:.2}% (paper: 96.14%); 3-origin: {:.2}% (paper: 2.7%)",
        100.0
            * summary
                .origin_size_fractions
                .get(&2)
                .copied()
                .unwrap_or(0.0),
        100.0
            * summary
                .origin_size_fractions
                .get(&3)
                .copied()
                .unwrap_or(0.0),
    );

    // Ground-truth cause breakdown (available only in simulation).
    let faults = timeline
        .cases
        .iter()
        .filter(|c| !c.cause.is_valid())
        .count();
    println!(
        "  ground truth: {} cases total, {} caused by faults, {} by legitimate operation",
        timeline.cases.len(),
        faults,
        timeline.cases.len() - faults
    );
}
