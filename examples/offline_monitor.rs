//! The §4.2 incremental-deployment path: an off-line monitoring process that
//! periodically collects routes from several vantage ASes and checks MOAS
//! list consistency — no router modification required.
//!
//! Run with: `cargo run --release --example offline_monitor`

use moas::bgp::Network;
use moas::detection::{FalseOriginAttack, ListForgery, OfflineMonitor};
use moas::topology::InternetModel;
use moas::types::{Asn, MoasList};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 60-AS synthetic Internet running *unmodified* BGP.
    let graph = InternetModel::new()
        .transit_count(10)
        .stub_count(50)
        .build(2024);
    let stubs = graph.stub_asns();
    let victim = stubs[0];
    let attacker = stubs[25];
    let prefix = moas::topology::prefix_for_asn(victim);
    let valid = MoasList::implicit(victim);

    println!("victim {victim} originates {prefix}; attacker {attacker} misoriginates it");
    let mut net = Network::new(&graph);
    net.originate(victim, prefix, Some(valid.clone()));
    FalseOriginAttack::new(ListForgery::IncludeSelf).launch(&mut net, attacker, prefix, &valid);
    net.run()?;

    let fooled = graph
        .asns()
        .filter(|&a| a != attacker && net.best_origin(a, prefix) == Some(attacker))
        .count();
    println!(
        "plain BGP: {fooled} of {} ASes adopted the false route",
        graph.len() - 1
    );

    // The offline monitor peers with a handful of transit ASes, like the
    // Route Views collector, and periodically checks what they see.
    let vantages: Vec<Asn> = graph.transit_asns().into_iter().take(5).collect();
    println!("offline monitor collecting from vantages: {vantages:?}");
    let findings = OfflineMonitor::new().scan_network(&net, &vantages, prefix);

    match findings.as_slice() {
        [] => println!("no conflict visible from these vantages (try more peers)"),
        findings => {
            for finding in findings {
                println!("FINDING: {finding}");
                println!(
                    "  origins {:?} — operator follow-up (e.g. a MOASRR lookup) identifies {} as bogus",
                    finding.origins, attacker
                );
            }
        }
    }
    Ok(())
}
