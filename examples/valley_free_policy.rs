//! MOAS detection under Gao-Rexford policy routing: the realism ablation.
//!
//! The paper's simulator lets every AS exchange every route; real BGP export
//! follows business relationships (valley-free). This example infers
//! relationships from synthesized tables with Gao's degree heuristic, scores
//! the inference against ground truth, and compares the MOAS mechanism's
//! effectiveness with and without the export policy.
//!
//! Run with: `cargo run --release --example valley_free_policy`

use moas::experiments::valley_free_ablation;
use moas::topology::{infer_graph, infer_relationships, InternetModel, RouteTable};

fn main() {
    // 1. Relationship inference accuracy.
    let (truth_graph, truth_rels) = InternetModel::new()
        .transit_count(20)
        .stub_count(120)
        .build_with_relationships(42);
    let table = RouteTable::synthesize(&truth_graph, &[0, 5, 10, 15], 42);
    let observed = infer_graph(table.entries());
    let inferred = infer_relationships(&observed, table.entries(), 1.5);

    let mut correct = 0usize;
    let mut total = 0usize;
    for (a, b, kind) in inferred.iter() {
        total += 1;
        if truth_rels.kind(a, b) == Some(kind) {
            correct += 1;
        }
    }
    println!(
        "Gao-heuristic relationship inference: {}/{} links correct ({:.1}%)",
        correct,
        total,
        100.0 * correct as f64 / total as f64
    );

    // 2. Does the MOAS mechanism survive policy routing?
    println!(
        "\nMOAS detection with and without valley-free export (75-AS ground truth, 3 attackers):"
    );
    println!("  routing        Normal BGP   Full MOAS   suppressed advertisements");
    for p in valley_free_ablation(10, 7) {
        println!(
            "  {:<13} {:>9.2}% {:>10.2}% {:>14.0}",
            p.routing, p.normal_adoption_pct, p.moas_adoption_pct, p.mean_suppressed
        );
    }
    println!("\nValley-free export narrows where routes travel — both the false ones and the");
    println!("valid ones the detection depends on — yet the mechanism's advantage persists.");
}
