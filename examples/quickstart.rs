//! Quickstart: reproduce the paper's Figures 1-3 story end to end.
//!
//! Builds the example topology, shows (1) normal route origination, (2) a
//! valid MOAS from multi-homing, and (3) the Figure 3 traffic hijack — first
//! succeeding under plain BGP, then being detected and stopped by the MOAS
//! list.
//!
//! Run with: `cargo run --example quickstart`

use moas::bgp::Network;
use moas::detection::{MoasMonitor, RegistryVerifier};
use moas::topology::{AsGraph, AsRole};
use moas::types::{Asn, Ipv4Prefix, MoasList};

fn build_topology() -> AsGraph {
    // Figure 1/3: AS 4 originates 208.8.0.0/16; AS Y (=2) and AS Z (=3)
    // provide transit toward AS X (=1); AS 52 is the future attacker,
    // peering directly with AS X.
    let mut g = AsGraph::new();
    g.add_as(Asn(4), AsRole::Stub);
    g.add_as(Asn(226), AsRole::Stub);
    g.add_as(Asn(52), AsRole::Stub);
    for t in [1, 2, 3] {
        g.add_as(Asn(t), AsRole::Transit);
    }
    for (a, b) in [(4, 2), (4, 3), (2, 1), (3, 1), (226, 3), (52, 1)] {
        g.add_link(Asn(a), Asn(b));
    }
    g
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = build_topology();
    let prefix: Ipv4Prefix = "208.8.0.0/16".parse()?;

    // --- Figure 1: normal origination -----------------------------------
    println!("== Figure 1: AS 4 originates {prefix} ==");
    let mut net = Network::new(&graph);
    net.originate(Asn(4), prefix, None);
    net.run()?;
    for asn in [1, 2, 3] {
        let route = net.best_route(Asn(asn), prefix).expect("route must exist");
        println!("  AS {asn} best path: [{}]", route.as_path());
    }

    // --- Figure 2: a valid MOAS (multi-homing) --------------------------
    println!("\n== Figure 2: prefix multi-homed to AS 4 and AS 226 ==");
    let valid_list: MoasList = [Asn(4), Asn(226)].into_iter().collect();
    let mut net = Network::new(&graph);
    net.originate(Asn(4), prefix, Some(valid_list.clone()));
    net.originate(Asn(226), prefix, Some(valid_list.clone()));
    net.run()?;
    for asn in [1, 2, 3] {
        let origin = net.best_origin(Asn(asn), prefix).expect("route must exist");
        println!("  AS {asn} reaches the prefix via origin {origin} (both are valid)");
    }

    // --- Figure 3 without protection: the hijack succeeds ----------------
    println!("\n== Figure 3 under plain BGP: AS 52 falsely originates the prefix ==");
    let mut net = Network::new(&graph);
    net.originate(Asn(4), prefix, None);
    net.originate(Asn(52), prefix, None);
    net.run()?;
    let fooled = net.best_origin(Asn(1), prefix).expect("route must exist");
    println!("  AS 1's best origin is now {fooled} — its packets flow to the attacker");
    assert_eq!(fooled, Asn(52));

    // --- Figure 3 with the MOAS list: detected and stopped ---------------
    println!("\n== Figure 3 with MOAS detection ==");
    let valid = MoasList::implicit(Asn(4));
    let mut registry = RegistryVerifier::new();
    registry.register(prefix, valid.clone());
    let mut net = Network::with_monitor(&graph, MoasMonitor::full(registry));
    net.originate(Asn(4), prefix, Some(valid));
    net.originate(Asn(52), prefix, None);
    net.run()?;
    let origin = net.best_origin(Asn(1), prefix).expect("route must exist");
    println!("  AS 1's best origin: {origin} (the bogus route was rejected)");
    assert_eq!(origin, Asn(4));
    for alarm in net.monitor().alarms().iter().take(3) {
        println!("  alarm: {alarm}");
    }
    println!(
        "  total alarms {} (confirmed {})",
        net.monitor().alarms().len(),
        net.monitor().alarms().confirmed_count()
    );
    Ok(())
}
