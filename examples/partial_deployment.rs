//! Experiment 3 in miniature: partial vs complete deployment of MOAS
//! checking (Figure 11), on the 46-AS and 63-AS topologies.
//!
//! Run with: `cargo run --release --example partial_deployment`
//! Pass `--full` for the paper's complete protocol.

use moas::experiments::{experiment3, SweepConfig};
use moas::topology::paper::PaperTopology;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let config = if full {
        SweepConfig::paper()
    } else {
        SweepConfig::quick()
    };
    for topology in [PaperTopology::As46, PaperTopology::As63] {
        let figure = experiment3(topology, &config);
        println!("{figure}");

        // §5.4's observation: even 50% deployment protects the other nodes,
        // because capable nodes stop false routes from propagating through
        // them.
        let rows = figure.series[0].points.len();
        if rows > 0 {
            let last = rows - 1;
            let normal = figure.series[0].points[last].mean_adoption_pct;
            let half = figure.series[1].points[last].mean_adoption_pct;
            let full_pct = figure.series[2].points[last].mean_adoption_pct;
            println!(
                "{topology} at the highest attacker fraction: none {normal:.1}% / half {half:.1}% / full {full_pct:.1}%",
            );
            if normal > 0.0 {
                println!(
                    "  half deployment removes {:.0}% of the damage\n",
                    100.0 * (normal - half) / normal
                );
            }
        }
    }
}
