//! The wire boundary end to end: a simulated network exports its routing
//! tables as real MRT bytes (RFC 6396 `TABLE_DUMP_V2`), and the measurement
//! pipeline imports those bytes back — exactly how the paper's study reads
//! Route Views archives. The MOAS list survives the trip inside RFC 1997
//! communities.
//!
//! Run with: `cargo run --release --example mrt_roundtrip`

use moas::bgp::Network;
use moas::detection::OfflineMonitor;
use moas::topology::paper::PaperTopology;
use moas::types::MoasList;
use moas::wire::mrt::MrtWriter;
use moas::wire::{export_rib_snapshot, import_table_dumps};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's 46-AS topology; two stubs legitimately multihome one
    // prefix (a benign MOAS), and a third falsely originates another.
    let topo = PaperTopology::As46.graph();
    let stubs = topo.stub_asns();
    let (origin_a, origin_b, victim, attacker) = (stubs[0], stubs[1], stubs[2], stubs[3]);

    let shared = "10.1.0.0/16".parse()?;
    let shared_list: MoasList = [origin_a, origin_b].into_iter().collect();
    let disputed = "10.2.0.0/16".parse()?;

    let mut net = Network::new(topo);
    net.originate(origin_a, shared, Some(shared_list.clone()));
    net.originate(origin_b, shared, Some(shared_list));
    net.originate(victim, disputed, Some(MoasList::implicit(victim)));
    net.originate(attacker, disputed, Some(MoasList::implicit(attacker)));
    net.run()?;

    // Export: every transit AS peers with the collector, and the collector
    // writes one TABLE_DUMP_V2 snapshot. This is plain `io::Write` — a file
    // works the same way; the example keeps the archive in memory.
    let vantages = topo.transit_asns();
    let mut writer = MrtWriter::new(Vec::new());
    let summary = export_rib_snapshot(&mut writer, &net, &vantages, 0)?;
    let archive = writer.finish()?;
    println!(
        "exported {} prefixes / {} RIB entries from {} vantages: {} MRT bytes",
        summary.prefixes,
        summary.entries,
        summary.peers,
        archive.len()
    );

    // Import: the measurement side reads the same bytes back.
    let imported = import_table_dumps(archive.as_slice())?;
    let dump = &imported.dumps[0];
    println!(
        "imported day {}: {} prefixes, {} MOAS cases",
        dump.day(),
        dump.prefix_count(),
        dump.moas_count()
    );

    // The off-line monitor (§4.2) scans the imported routes: the benign
    // multihomed prefix carries a consistent two-member list everywhere,
    // while the disputed prefix shows conflicting implicit lists.
    let findings =
        OfflineMonitor::new().scan(imported.routes.iter().map(|(_, route)| route.clone()));
    for finding in &findings {
        println!("FINDING: {finding}");
    }
    let flagged: Vec<_> = findings.iter().map(|f| f.prefix).collect();
    assert!(
        flagged.contains(&disputed),
        "the false origin must be flagged"
    );
    assert!(
        !flagged.contains(&shared),
        "legitimate multihoming must not be"
    );
    println!(
        "monitor flagged {disputed} and cleared {shared} (origins {} and {})",
        origin_a, origin_b
    );
    Ok(())
}
