//! Experiment 1 in miniature: sweep attacker fractions on the 46-AS topology
//! and print the Figure 9 table (Normal BGP vs Full MOAS Detection).
//!
//! Run with: `cargo run --release --example hijack_detection`
//! Pass `--full` for the paper's complete 15-runs-per-point protocol.

use moas::experiments::{experiment1, SweepConfig};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let config = if full {
        SweepConfig::paper()
    } else {
        SweepConfig::quick()
    };
    println!(
        "Reproducing Figure 9 ({} protocol: {} runs per point)...\n",
        if full { "paper" } else { "quick" },
        config.runs_per_point()
    );
    for origins in [1, 2] {
        let figure = experiment1(origins, &config);
        println!("{figure}");
        // Headline check from §5.2: detection cuts adoption by orders of
        // magnitude at low attacker fractions.
        let normal_low = figure.series[0].points.first().map(|p| p.mean_adoption_pct);
        let moas_low = figure.series[1].points.first().map(|p| p.mean_adoption_pct);
        if let (Some(n), Some(m)) = (normal_low, moas_low) {
            println!(
                "At the lowest attacker fraction: Normal BGP {n:.2}% vs Full MOAS {m:.2}% adopted false routes\n"
            );
        }
    }
}
