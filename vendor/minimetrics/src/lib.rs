//! Minimal, std-only metrics facade for the moas workspace.
//!
//! The container this workspace builds in has no crates.io access, so —
//! exactly like [`minipool`] — this crate is vendored: a deliberately tiny,
//! dependency-free stand-in for the subset of a metrics library the
//! simulator actually needs. It provides three instrument kinds behind one
//! [`MetricsSink`] trait:
//!
//! * **monotonic counters** — [`MetricsSink::counter_add`];
//! * **gauges** (last/representative value) — [`MetricsSink::gauge_set`];
//! * **fixed-bucket log2 histograms** — [`MetricsSink::record`], backed by
//!   [`Log2Histogram`].
//!
//! Two sinks ship with the crate:
//!
//! * [`NoopSink`] — every method is an empty `#[inline]` body and its
//!   [`MetricsSink::ENABLED`] constant is `false`, so instrumented code that
//!   is generic over the sink compiles down to nothing on the fast path
//!   (callers gate any key-formatting work on `S::ENABLED`);
//! * [`RecordingSink`] — accumulates observations in interned FNV-hashed
//!   key tables (no per-observation string compares or tree rebalancing)
//!   and converts to a [`MetricsSnapshot`] of `BTreeMap`s — which iterates
//!   in deterministic key order — only when a snapshot is taken.
//!
//! Snapshots [`merge`](MetricsSnapshot::merge) associatively (counters add,
//! gauges keep the maximum, histograms merge bucket-wise), so per-trial
//! snapshots collected from a worker pool can be folded **in plan order**
//! to produce output that is bit-identical for any worker count.
//!
//! Hot loops that observe one key many times can pre-resolve it to a
//! [`Token`] ([`MetricsSink::record_token`] and friends) and observe through
//! [`MetricsSink::record_by`], skipping the per-observation FNV hash; the
//! [`Scoped`] adapter additionally caches the last composed key per
//! instrument kind, so steady-state scoped observations skip both the
//! compose and the hash.
//!
//! Serialization is deliberately out of scope: the workspace's hand-rolled
//! JSON codec lives in `experiments::json`, and that crate implements the
//! conversion traits for [`MetricsSnapshot`] — keeping this crate free of
//! dependencies in both directions.
//!
//! # Example
//!
//! ```
//! use minimetrics::{MetricsSink, RecordingSink};
//!
//! fn simulate<S: MetricsSink>(sink: &mut S) {
//!     for step in 1..=10u64 {
//!         sink.counter_add("sim.events.fired", 1);
//!         sink.record("sim.step_ticks", step * 3);
//!     }
//!     sink.gauge_set("sim.queue.depth_high_water", 7);
//! }
//!
//! let mut sink = RecordingSink::new();
//! simulate(&mut sink);
//! let snapshot = sink.into_snapshot();
//! assert_eq!(snapshot.counters["sim.events.fired"], 10);
//! assert_eq!(snapshot.gauges["sim.queue.depth_high_water"], 7);
//! assert_eq!(snapshot.histograms["sim.step_ticks"].count(), 10);
//! ```
//!
//! [`minipool`]: ../minipool/index.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

/// Number of buckets in a [`Log2Histogram`]: bucket 0 for the value zero,
/// then one bucket per power of two up to `2^63..=u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Destination for metric observations.
///
/// Instrumented code takes `&mut S` where `S: MetricsSink` and emits
/// counters, gauges and histogram observations through it. Keys are
/// dot-separated lowercase paths (`"net.messages.announcements"`); dynamic
/// key components (per-session, per-link) are formatted by the caller, which
/// should skip that work when [`MetricsSink::ENABLED`] is `false`:
///
/// ```
/// use minimetrics::MetricsSink;
///
/// fn export<S: MetricsSink>(sink: &mut S, sessions: &[(u32, u64)]) {
///     if !S::ENABLED {
///         return; // don't even format the keys
///     }
///     for &(peer, sent) in sessions {
///         sink.counter_add(&format!("session.{peer}.sent"), sent);
///     }
/// }
///
/// let mut sink = minimetrics::NoopSink;
/// export(&mut sink, &[(7, 42)]); // compiles away
/// ```
pub trait MetricsSink {
    /// `false` for sinks that discard everything. Callers use this to skip
    /// key formatting and other observation-only work on the no-op path.
    const ENABLED: bool;

    /// Adds `delta` to the monotonic counter named `key`.
    fn counter_add(&mut self, key: &str, delta: u64);

    /// Sets the gauge named `key` to `value`, replacing any previous value.
    fn gauge_set(&mut self, key: &str, value: u64);

    /// Records one observation of `value` into the histogram named `key`.
    fn record(&mut self, key: &str, value: u64);

    /// Resolves `key` to a reusable counter handle: hash and intern once,
    /// then observe through [`counter_add_by`](Self::counter_add_by) with no
    /// per-observation key work. Tokens are only meaningful on the sink (and
    /// instrument kind) that issued them.
    fn counter_token(&mut self, key: &str) -> Token;

    /// [`counter_add`](Self::counter_add) through a pre-resolved token.
    fn counter_add_by(&mut self, token: Token, delta: u64);

    /// Resolves `key` to a reusable gauge handle (see
    /// [`counter_token`](Self::counter_token)).
    fn gauge_token(&mut self, key: &str) -> Token;

    /// [`gauge_set`](Self::gauge_set) through a pre-resolved token.
    fn gauge_set_by(&mut self, token: Token, value: u64);

    /// Resolves `key` to a reusable histogram handle (see
    /// [`counter_token`](Self::counter_token)).
    fn record_token(&mut self, key: &str) -> Token;

    /// [`record`](Self::record) through a pre-resolved token.
    fn record_by(&mut self, token: Token, value: u64);
}

/// A pre-resolved handle to one metric slot of a specific sink.
///
/// Issued by [`MetricsSink::counter_token`] / [`MetricsSink::gauge_token`] /
/// [`MetricsSink::record_token`]; the key is hashed and interned once at
/// resolution, so hot loops that observe the same key many times (one
/// histogram observation per router, say) pay no per-observation hashing.
///
/// A token is only valid for the sink instance and instrument kind that
/// issued it; using it elsewhere may panic or silently address a different
/// metric.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Token(u32);

/// A sink that discards every observation.
///
/// All methods are empty and `#[inline]`; combined with
/// [`MetricsSink::ENABLED`] `== false` this makes instrumentation free when
/// metrics are not requested.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NoopSink;

impl MetricsSink for NoopSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn counter_add(&mut self, _key: &str, _delta: u64) {}

    #[inline(always)]
    fn gauge_set(&mut self, _key: &str, _value: u64) {}

    #[inline(always)]
    fn record(&mut self, _key: &str, _value: u64) {}

    #[inline(always)]
    fn counter_token(&mut self, _key: &str) -> Token {
        Token(0)
    }

    #[inline(always)]
    fn counter_add_by(&mut self, _token: Token, _delta: u64) {}

    #[inline(always)]
    fn gauge_token(&mut self, _key: &str) -> Token {
        Token(0)
    }

    #[inline(always)]
    fn gauge_set_by(&mut self, _token: Token, _value: u64) {}

    #[inline(always)]
    fn record_token(&mut self, _key: &str) -> Token {
        Token(0)
    }

    #[inline(always)]
    fn record_by(&mut self, _token: Token, _value: u64) {}
}

/// A sink that accumulates every observation for later conversion into a
/// [`MetricsSnapshot`].
///
/// Each instrument kind lives in an interned key table: keys are FNV-1a
/// hashed into an open-addressed index, so a steady-state observation costs
/// one hash plus (usually) one slot probe — no `String` allocation, no
/// ordered-map rebalancing, and no full key comparison except on the rare
/// hash collision. The `BTreeMap`-backed snapshot is built only when
/// [`snapshot`](Self::snapshot) or [`into_snapshot`](Self::into_snapshot)
/// is called.
///
/// Counters saturate instead of wrapping; gauges keep the last value set;
/// histogram observations land in the [`Log2Histogram`] for their key.
#[derive(Debug, Default, Clone)]
pub struct RecordingSink {
    counters: KeyTable<u64>,
    gauges: KeyTable<u64>,
    histograms: KeyTable<Log2Histogram>,
}

impl RecordingSink {
    /// Creates an empty recording sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a snapshot of everything accumulated so far; the sink keeps
    /// recording. Prefer [`into_snapshot`](Self::into_snapshot) when the
    /// sink is done, which moves instead of cloning.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .pairs()
                .map(|(k, &v)| (k.to_string(), v))
                .collect(),
            gauges: self
                .gauges
                .pairs()
                .map(|(k, &v)| (k.to_string(), v))
                .collect(),
            histograms: self
                .histograms
                .pairs()
                .map(|(k, h)| (k.to_string(), h.clone()))
                .collect(),
        }
    }

    /// Consumes the sink, returning the accumulated snapshot.
    #[must_use]
    pub fn into_snapshot(self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .into_pairs()
                .map(|(k, v)| (String::from(k), v))
                .collect(),
            gauges: self
                .gauges
                .into_pairs()
                .map(|(k, v)| (String::from(k), v))
                .collect(),
            histograms: self
                .histograms
                .into_pairs()
                .map(|(k, h)| (String::from(k), h))
                .collect(),
        }
    }
}

impl PartialEq for RecordingSink {
    fn eq(&self, other: &Self) -> bool {
        self.snapshot() == other.snapshot()
    }
}

impl Eq for RecordingSink {}

impl MetricsSink for RecordingSink {
    const ENABLED: bool = true;

    fn counter_add(&mut self, key: &str, delta: u64) {
        let slot = self.counters.get_or_insert_with(key, || 0);
        *slot = slot.saturating_add(delta);
    }

    fn gauge_set(&mut self, key: &str, value: u64) {
        *self.gauges.get_or_insert_with(key, || 0) = value;
    }

    fn record(&mut self, key: &str, value: u64) {
        self.histograms
            .get_or_insert_with(key, Log2Histogram::new)
            .observe(value);
    }

    fn counter_token(&mut self, key: &str) -> Token {
        let index = self.counters.index_of(key, || 0);
        Token(u32::try_from(index).expect("more than u32::MAX metric keys"))
    }

    fn counter_add_by(&mut self, token: Token, delta: u64) {
        let slot = self.counters.at(token.0 as usize);
        *slot = slot.saturating_add(delta);
    }

    fn gauge_token(&mut self, key: &str) -> Token {
        let index = self.gauges.index_of(key, || 0);
        Token(u32::try_from(index).expect("more than u32::MAX metric keys"))
    }

    fn gauge_set_by(&mut self, token: Token, value: u64) {
        *self.gauges.at(token.0 as usize) = value;
    }

    fn record_token(&mut self, key: &str) -> Token {
        let index = self.histograms.index_of(key, Log2Histogram::new);
        Token(u32::try_from(index).expect("more than u32::MAX metric keys"))
    }

    fn record_by(&mut self, token: Token, value: u64) {
        self.histograms.at(token.0 as usize).observe(value);
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(key: &str) -> u64 {
    let mut hash = FNV_OFFSET;
    for &byte in key.as_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// An insertion-ordered string-keyed table behind an open-addressed FNV-1a
/// index.
///
/// `slots` stores `entry index + 1` (0 = empty slot), is always a power of
/// two, and is kept below 75% load with linear probing; `entries` owns the
/// interned keys (with their cached hash) and values in first-seen order.
#[derive(Debug, Clone)]
struct KeyTable<V> {
    slots: Vec<u32>,
    entries: Vec<(u64, Box<str>, V)>,
}

impl<V> Default for KeyTable<V> {
    fn default() -> Self {
        Self {
            slots: Vec::new(),
            entries: Vec::new(),
        }
    }
}

impl<V> KeyTable<V> {
    /// Returns the value for `key`, interning the key (with `make()` as the
    /// initial value) on first use.
    fn get_or_insert_with(&mut self, key: &str, make: impl FnOnce() -> V) -> &mut V {
        let index = self.index_of(key, make);
        &mut self.entries[index].2
    }

    /// The entry index for `key`, interning it (with `make()` as the initial
    /// value) on first use. Entry indices are stable for the table's
    /// lifetime — they back the [`Token`] fast path.
    fn index_of(&mut self, key: &str, make: impl FnOnce() -> V) -> usize {
        if self.slots.is_empty() {
            self.slots.resize(16, 0);
        }
        let hash = fnv1a(key);
        let (slot, found) = self.probe(hash, key);
        match found {
            Some(index) => index,
            None => {
                self.entries.push((hash, key.into(), make()));
                let index = self.entries.len() - 1;
                self.slots[slot] =
                    u32::try_from(index + 1).expect("more than u32::MAX metric keys");
                if self.entries.len() * 4 >= self.slots.len() * 3 {
                    self.grow();
                }
                index
            }
        }
    }

    /// The value at a stable entry index issued by
    /// [`index_of`](Self::index_of).
    ///
    /// # Panics
    ///
    /// Panics if `index` was not issued by this table.
    fn at(&mut self, index: usize) -> &mut V {
        &mut self.entries[index].2
    }

    /// Linear-probes for `key`, returning the slot it ended at and the entry
    /// index if the key is already interned. The load factor cap guarantees
    /// an empty slot is always reachable.
    fn probe(&self, hash: u64, key: &str) -> (usize, Option<usize>) {
        let mask = self.slots.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            match self.slots[slot] as usize {
                0 => return (slot, None),
                stored => {
                    let entry = &self.entries[stored - 1];
                    if entry.0 == hash && &*entry.1 == key {
                        return (slot, Some(stored - 1));
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        let Self { slots, entries } = self;
        slots.clear();
        slots.resize(new_len, 0);
        let mask = new_len - 1;
        for (index, &(hash, _, _)) in entries.iter().enumerate() {
            let mut slot = (hash as usize) & mask;
            while slots[slot] != 0 {
                slot = (slot + 1) & mask;
            }
            slots[slot] = u32::try_from(index + 1).expect("more than u32::MAX metric keys");
        }
    }

    fn pairs(&self) -> impl Iterator<Item = (&str, &V)> {
        self.entries.iter().map(|(_, k, v)| (&**k, v))
    }

    fn into_pairs(self) -> impl Iterator<Item = (Box<str>, V)> {
        self.entries.into_iter().map(|(_, k, v)| (k, v))
    }
}

/// Looks up `key`, inserting a default entry on first use, without
/// allocating a `String` for keys already present.
fn entry_or_default<'a, V: Default>(map: &'a mut BTreeMap<String, V>, key: &str) -> &'a mut V {
    if !map.contains_key(key) {
        map.insert(key.to_string(), V::default());
    }
    map.get_mut(key).expect("just inserted")
}

/// A sink adapter that prefixes every key with `"{prefix}."` before
/// forwarding to the wrapped sink.
///
/// Useful for emitting the same instrumented subsystem under several labels
/// (e.g. the churn-phase vs attack-phase network of one chaos trial). The
/// prefix formatting is skipped entirely when the underlying sink is
/// disabled.
///
/// ```
/// use minimetrics::{MetricsSink, RecordingSink, Scoped};
///
/// let mut sink = RecordingSink::new();
/// Scoped::new(&mut sink, "churn").counter_add("net.messages", 3);
/// assert_eq!(sink.snapshot().counters["churn.net.messages"], 3);
/// ```
#[derive(Debug)]
pub struct Scoped<'a, S> {
    sink: &'a mut S,
    /// Reusable key buffer, pre-filled with `"{prefix}."`. Each observation
    /// truncates back to the prefix and appends the key, so composing the
    /// scoped key costs no allocation once the buffer has grown to the
    /// longest key's length (it is allocated once per `Scoped`, not per
    /// observation).
    buf: String,
    /// Length of the `"{prefix}."` stem within `buf`.
    base: usize,
    /// Last-key caches, one per instrument kind: steady-state observations
    /// of the same key skip both the compose and the wrapped sink's FNV
    /// hash, going straight through the cached [`Token`].
    counter_cache: KeyCache,
    gauge_cache: KeyCache,
    record_cache: KeyCache,
}

/// One-entry composed-key cache for [`Scoped`].
///
/// The hit test compares the caller's key *contents* against an owned copy —
/// never the pointer — because hot exporters compose dynamic keys in one
/// reusable `String` buffer whose address stays fixed while its contents
/// change between observations.
#[derive(Debug, Default)]
struct KeyCache {
    key: String,
    token: Token,
    valid: bool,
}

impl KeyCache {
    #[inline]
    fn lookup(&self, key: &str) -> Option<Token> {
        (self.valid && self.key == key).then_some(self.token)
    }

    #[inline]
    fn store(&mut self, key: &str, token: Token) {
        self.key.clear();
        self.key.push_str(key);
        self.token = token;
        self.valid = true;
    }
}

impl<'a, S: MetricsSink> Scoped<'a, S> {
    /// Wraps `sink` so every key is emitted as `"{prefix}.{key}"`.
    pub fn new(sink: &'a mut S, prefix: &str) -> Self {
        // With a disabled sink the keys are never composed; skip even the
        // one-time buffer allocation so `Scoped` stays zero-cost over
        // `NoopSink`.
        let buf = if S::ENABLED {
            let mut buf = String::with_capacity(prefix.len() + 1 + 32);
            buf.push_str(prefix);
            buf.push('.');
            buf
        } else {
            String::new()
        };
        let base = buf.len();
        Self {
            sink,
            buf,
            base,
            counter_cache: KeyCache::default(),
            gauge_cache: KeyCache::default(),
            record_cache: KeyCache::default(),
        }
    }

    /// Composes `"{prefix}.{key}"` into the reusable buffer and returns it.
    #[inline]
    fn compose(&mut self, key: &str) -> &str {
        self.buf.truncate(self.base);
        self.buf.push_str(key);
        &self.buf
    }
}

impl<S: MetricsSink> MetricsSink for Scoped<'_, S> {
    const ENABLED: bool = S::ENABLED;

    #[inline]
    fn counter_add(&mut self, key: &str, delta: u64) {
        if S::ENABLED {
            let token = match self.counter_cache.lookup(key) {
                Some(token) => token,
                None => {
                    self.compose(key);
                    let token = self.sink.counter_token(&self.buf);
                    self.counter_cache.store(key, token);
                    token
                }
            };
            self.sink.counter_add_by(token, delta);
        }
    }

    #[inline]
    fn gauge_set(&mut self, key: &str, value: u64) {
        if S::ENABLED {
            let token = match self.gauge_cache.lookup(key) {
                Some(token) => token,
                None => {
                    self.compose(key);
                    let token = self.sink.gauge_token(&self.buf);
                    self.gauge_cache.store(key, token);
                    token
                }
            };
            self.sink.gauge_set_by(token, value);
        }
    }

    #[inline]
    fn record(&mut self, key: &str, value: u64) {
        if S::ENABLED {
            let token = match self.record_cache.lookup(key) {
                Some(token) => token,
                None => {
                    self.compose(key);
                    let token = self.sink.record_token(&self.buf);
                    self.record_cache.store(key, token);
                    token
                }
            };
            self.sink.record_by(token, value);
        }
    }

    #[inline]
    fn counter_token(&mut self, key: &str) -> Token {
        self.compose(key);
        self.sink.counter_token(&self.buf)
    }

    #[inline]
    fn counter_add_by(&mut self, token: Token, delta: u64) {
        self.sink.counter_add_by(token, delta);
    }

    #[inline]
    fn gauge_token(&mut self, key: &str) -> Token {
        self.compose(key);
        self.sink.gauge_token(&self.buf)
    }

    #[inline]
    fn gauge_set_by(&mut self, token: Token, value: u64) {
        self.sink.gauge_set_by(token, value);
    }

    #[inline]
    fn record_token(&mut self, key: &str) -> Token {
        self.compose(key);
        self.sink.record_token(&self.buf)
    }

    #[inline]
    fn record_by(&mut self, token: Token, value: u64) {
        self.sink.record_by(token, value);
    }
}

/// Everything a [`RecordingSink`] observed, keyed by metric name.
///
/// `BTreeMap`s keep iteration (and therefore any serialization) in
/// deterministic key order regardless of observation order.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Monotonic counters: key → accumulated total.
    pub counters: BTreeMap<String, u64>,
    /// Gauges: key → last value set (after [`merge`](Self::merge), the
    /// maximum across the merged snapshots).
    pub gauges: BTreeMap<String, u64>,
    /// Histograms: key → bucketed distribution of observed values.
    pub histograms: BTreeMap<String, Log2Histogram>,
}

impl MetricsSnapshot {
    /// Creates an empty snapshot.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` if no metric of any kind has been observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds `other` into `self`: counters add (saturating), gauges keep the
    /// **maximum** of the two values, histograms merge bucket-wise.
    ///
    /// The gauge rule makes the merge commutative and associative, so
    /// folding per-trial snapshots in a fixed plan order yields the same
    /// result no matter how the trials were scheduled across workers —
    /// high-water marks stay meaningful, and determinism tests can compare
    /// merged snapshots byte-for-byte.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (key, &delta) in &other.counters {
            let slot = entry_or_default(&mut self.counters, key);
            *slot = slot.saturating_add(delta);
        }
        for (key, &value) in &other.gauges {
            let slot = entry_or_default(&mut self.gauges, key);
            *slot = (*slot).max(value);
        }
        for (key, hist) in &other.histograms {
            entry_or_default::<Log2Histogram>(&mut self.histograms, key).merge(hist);
        }
    }
}

/// A fixed-size base-2 logarithmic histogram of `u64` observations.
///
/// Bucket 0 counts the value `0` exactly; bucket `k` (for `1 ..= 64`)
/// counts values in `2^(k-1) ..= 2^k - 1`, so `1` lands in bucket 1 and
/// [`u64::MAX`] in bucket 64. Alongside the buckets the histogram tracks
/// the observation count, a saturating sum, and the exact minimum and
/// maximum, which survive [`merge`](Self::merge).
///
/// ```
/// use minimetrics::Log2Histogram;
///
/// let mut h = Log2Histogram::new();
/// for v in [0, 1, 5, 5, 1024] {
///     h.observe(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!((h.min(), h.max()), (Some(0), Some(1024)));
/// assert_eq!(Log2Histogram::bucket_index(5), 3); // 4..=7
/// assert_eq!(h.nonzero_buckets().count(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index `value` falls into: 0 for `0`, otherwise
    /// `floor(log2(value)) + 1`.
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// The inclusive `(low, high)` value range covered by bucket `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= HISTOGRAM_BUCKETS`.
    #[must_use]
    pub fn bucket_range(index: usize) -> (u64, u64) {
        assert!(index < HISTOGRAM_BUCKETS, "bucket index out of range");
        match index {
            0 => (0, 0),
            64 => (1 << 63, u64::MAX),
            k => (1 << (k - 1), (1 << k) - 1),
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all observed values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observed value, or `None` if the histogram is empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observed value, or `None` if the histogram is empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean of the observations (0.0 when empty). Computed from
    /// the saturating sum, so it underestimates once the sum has saturated.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Per-bucket observation counts, indexed by bucket number.
    #[must_use]
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// `(bucket index, count)` pairs for every non-empty bucket, in
    /// ascending bucket order — the sparse form snapshots serialize.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Adds `count` prior observations whose values fell into bucket
    /// `index`, with `sum`/`min`/`max` supplied separately — the inverse of
    /// the sparse serialized form. No-op when `count` is zero.
    ///
    /// # Panics
    ///
    /// Panics if `index >= HISTOGRAM_BUCKETS`.
    pub fn add_bucket(&mut self, index: usize, count: u64) {
        assert!(index < HISTOGRAM_BUCKETS, "bucket index out of range");
        if count == 0 {
            return;
        }
        self.buckets[index] += count;
        self.count += count;
    }

    /// Restores the summary stats (`sum`, `min`, `max`) that
    /// [`add_bucket`](Self::add_bucket) cannot reconstruct from buckets
    /// alone. Intended for deserialization; ignored when the histogram has
    /// no observations.
    pub fn set_summary(&mut self, sum: u64, min: u64, max: u64) {
        if self.count > 0 {
            self.sum = sum;
            self.min = min;
            self.max = max;
        }
    }

    /// Folds `other` into `self` bucket-wise, combining counts, saturating
    /// sums, and exact min/max.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (slot, &c) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *slot += c;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_lands_in_bucket_zero() {
        assert_eq!(Log2Histogram::bucket_index(0), 0);
        let mut h = Log2Histogram::new();
        h.observe(0);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!((h.min(), h.max()), (Some(0), Some(0)));
    }

    #[test]
    fn max_value_lands_in_top_bucket() {
        assert_eq!(Log2Histogram::bucket_index(u64::MAX), 64);
        let mut h = Log2Histogram::new();
        h.observe(u64::MAX);
        assert_eq!(h.buckets()[64], 1);
        assert_eq!(h.max(), Some(u64::MAX));
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // Bucket k covers 2^(k-1) ..= 2^k - 1: each boundary value starts a
        // new bucket, and the value just below it closes the previous one.
        for k in 1..=63usize {
            let low = 1u64 << (k - 1);
            let high = (1u64 << k) - 1;
            assert_eq!(Log2Histogram::bucket_index(low), k, "low edge of {k}");
            assert_eq!(Log2Histogram::bucket_index(high), k, "high edge of {k}");
        }
        assert_eq!(Log2Histogram::bucket_index(1), 1);
        assert_eq!(Log2Histogram::bucket_index(2), 2);
        assert_eq!(Log2Histogram::bucket_index(1u64 << 63), 64);
    }

    #[test]
    fn bucket_range_inverts_bucket_index() {
        for index in 0..HISTOGRAM_BUCKETS {
            let (low, high) = Log2Histogram::bucket_range(index);
            assert_eq!(Log2Histogram::bucket_index(low), index);
            assert_eq!(Log2Histogram::bucket_index(high), index);
        }
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let mut h = Log2Histogram::new();
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn empty_histogram_reports_no_extrema() {
        let h = Log2Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_combines_counts_and_extrema() {
        let mut a = Log2Histogram::new();
        a.observe(3);
        a.observe(100);
        let mut b = Log2Histogram::new();
        b.observe(1);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.sum(), 104);
        assert_eq!((merged.min(), merged.max()), (Some(1), Some(100)));
        // Merging an empty histogram changes nothing.
        merged.merge(&Log2Histogram::new());
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.min(), Some(1));
    }

    #[test]
    fn sparse_rebuild_round_trips() {
        let mut h = Log2Histogram::new();
        for v in [0, 1, 7, 7, 4096, u64::MAX] {
            h.observe(v);
        }
        let mut rebuilt = Log2Histogram::new();
        for (i, c) in h.nonzero_buckets() {
            rebuilt.add_bucket(i, c);
        }
        rebuilt.set_summary(h.sum(), h.min().unwrap(), h.max().unwrap());
        assert_eq!(rebuilt, h);
    }

    #[test]
    fn recording_sink_accumulates() {
        let mut sink = RecordingSink::new();
        sink.counter_add("c", 2);
        sink.counter_add("c", 3);
        sink.gauge_set("g", 10);
        sink.gauge_set("g", 4); // last write wins within one sink
        sink.record("h", 9);
        let snap = sink.into_snapshot();
        assert_eq!(snap.counters["c"], 5);
        assert_eq!(snap.gauges["g"], 4);
        assert_eq!(snap.histograms["h"].count(), 1);
        assert!(!snap.is_empty());
    }

    #[test]
    fn counter_saturates() {
        let mut sink = RecordingSink::new();
        sink.counter_add("c", u64::MAX);
        sink.counter_add("c", 1);
        assert_eq!(sink.snapshot().counters["c"], u64::MAX);
    }

    #[test]
    fn interning_survives_many_distinct_keys() {
        // Push the key tables through several grow/rehash cycles and check
        // that nothing is lost, aliased, or double-counted.
        let mut sink = RecordingSink::new();
        for round in 0..3u64 {
            for i in 0..500u64 {
                sink.counter_add(&format!("counter.{i}"), round + i);
                sink.gauge_set(&format!("gauge.{i}"), round * 1000 + i);
                sink.record(&format!("hist.{i}"), i);
            }
        }
        let snap = sink.into_snapshot();
        assert_eq!(snap.counters.len(), 500);
        assert_eq!(snap.gauges.len(), 500);
        assert_eq!(snap.histograms.len(), 500);
        for i in 0..500u64 {
            assert_eq!(snap.counters[&format!("counter.{i}")], 3 * i + 3);
            assert_eq!(snap.gauges[&format!("gauge.{i}")], 2000 + i);
            assert_eq!(snap.histograms[&format!("hist.{i}")].count(), 3);
        }
    }

    #[test]
    fn snapshot_is_insertion_order_independent() {
        // The interned tables keep first-seen order internally, but the
        // exported snapshot must not depend on it.
        let keys = ["zeta", "alpha", "mid.key", "alpha.sub"];
        let mut forward = RecordingSink::new();
        for k in keys {
            forward.counter_add(k, 1);
        }
        let mut backward = RecordingSink::new();
        for k in keys.iter().rev() {
            backward.counter_add(k, 1);
        }
        assert_eq!(forward, backward);
        assert_eq!(forward.snapshot(), backward.into_snapshot());
    }

    #[test]
    fn snapshot_leaves_the_sink_recording() {
        let mut sink = RecordingSink::new();
        sink.counter_add("c", 1);
        let early = sink.snapshot();
        assert_eq!(early.counters["c"], 1);
        sink.counter_add("c", 1);
        assert_eq!(sink.into_snapshot().counters["c"], 2);
    }

    #[test]
    fn noop_sink_is_disabled() {
        const { assert!(!NoopSink::ENABLED) };
        const { assert!(RecordingSink::ENABLED) };
        let mut sink = NoopSink;
        sink.counter_add("c", 1);
        sink.gauge_set("g", 1);
        sink.record("h", 1);
    }

    #[test]
    fn scoped_prefixes_every_kind() {
        let mut sink = RecordingSink::new();
        {
            let mut scoped = Scoped::new(&mut sink, "phase1");
            scoped.counter_add("c", 1);
            scoped.gauge_set("g", 2);
            scoped.record("h", 3);
        }
        let snap = sink.into_snapshot();
        assert_eq!(snap.counters["phase1.c"], 1);
        assert_eq!(snap.gauges["phase1.g"], 2);
        assert_eq!(snap.histograms["phase1.h"].count(), 1);
    }

    #[test]
    fn scoped_key_buffer_reuse_survives_shrinking_keys() {
        // The reusable buffer is truncated back to the prefix stem per
        // observation: a long key followed by a short one must not leave
        // residue from the long one behind.
        let mut sink = RecordingSink::new();
        {
            let mut scoped = Scoped::new(&mut sink, "p");
            scoped.counter_add("a.rather.long.key", 1);
            scoped.counter_add("x", 2);
            scoped.counter_add("a.rather.long.key", 4);
        }
        let snap = sink.into_snapshot();
        assert_eq!(snap.counters["p.a.rather.long.key"], 5);
        assert_eq!(snap.counters["p.x"], 2);
        assert_eq!(snap.counters.len(), 2, "no mangled keys: {snap:?}");
    }

    #[test]
    fn tokens_address_the_same_slots_as_keys() {
        let mut sink = RecordingSink::new();
        let c = sink.counter_token("c");
        sink.counter_add_by(c, 2);
        sink.counter_add("c", 3);
        let g = sink.gauge_token("g");
        sink.gauge_set("g", 1);
        sink.gauge_set_by(g, 7);
        let h = sink.record_token("h");
        sink.record_by(h, 9);
        sink.record("h", 1);
        let snap = sink.into_snapshot();
        assert_eq!(snap.counters["c"], 5);
        assert_eq!(snap.gauges["g"], 7);
        assert_eq!(snap.histograms["h"].count(), 2);
    }

    #[test]
    fn tokens_stay_valid_across_table_growth() {
        let mut sink = RecordingSink::new();
        let early = sink.counter_token("early");
        for i in 0..500u64 {
            sink.counter_add(&format!("filler.{i}"), 1);
        }
        sink.counter_add_by(early, 42);
        assert_eq!(sink.snapshot().counters["early"], 42);
    }

    #[test]
    fn scoped_tokens_compose_the_prefix_once() {
        let mut sink = RecordingSink::new();
        {
            let mut scoped = Scoped::new(&mut sink, "s");
            let t = scoped.record_token("h");
            scoped.record_by(t, 3);
            scoped.record_by(t, 4);
            let c = scoped.counter_token("c");
            scoped.counter_add_by(c, 5);
        }
        let snap = sink.into_snapshot();
        assert_eq!(snap.histograms["s.h"].count(), 2);
        assert_eq!(snap.counters["s.c"], 5);
    }

    #[test]
    fn scoped_cache_keys_on_contents_not_pointer() {
        // Exporters compose dynamic keys in one reusable String whose
        // address never changes between observations; the composed-key cache
        // must verify contents, not identity.
        let mut sink = RecordingSink::new();
        {
            let mut scoped = Scoped::new(&mut sink, "p");
            let mut buf = String::with_capacity(32);
            buf.push_str("first");
            scoped.counter_add(&buf, 1);
            scoped.counter_add(&buf, 1); // steady state: cache hit
            buf.clear();
            buf.push_str("second"); // same buffer, new contents
            scoped.counter_add(&buf, 5);
            buf.clear();
            buf.push_str("first"); // back again after eviction
            scoped.counter_add(&buf, 2);
        }
        let snap = sink.into_snapshot();
        assert_eq!(snap.counters["p.first"], 4);
        assert_eq!(snap.counters["p.second"], 5);
        assert_eq!(snap.counters.len(), 2, "no mangled keys: {snap:?}");
    }

    #[test]
    fn scoped_caches_are_per_instrument_kind() {
        // The same key used as a counter, gauge and histogram through one
        // Scoped handle must not cross-talk through a shared cache.
        let mut sink = RecordingSink::new();
        {
            let mut scoped = Scoped::new(&mut sink, "k");
            scoped.counter_add("x", 1);
            scoped.gauge_set("x", 9);
            scoped.record("x", 3);
            scoped.counter_add("x", 1);
        }
        let snap = sink.into_snapshot();
        assert_eq!(snap.counters["k.x"], 2);
        assert_eq!(snap.gauges["k.x"], 9);
        assert_eq!(snap.histograms["k.x"].count(), 1);
    }

    #[test]
    fn merge_adds_counters_maxes_gauges_merges_histograms() {
        let mut a = RecordingSink::new();
        a.counter_add("c", 1);
        a.gauge_set("g", 9);
        a.record("h", 2);
        let mut b = RecordingSink::new();
        b.counter_add("c", 2);
        b.counter_add("only_b", 7);
        b.gauge_set("g", 5);
        b.record("h", 1024);

        let mut merged = a.into_snapshot();
        merged.merge(&b.into_snapshot());
        assert_eq!(merged.counters["c"], 3);
        assert_eq!(merged.counters["only_b"], 7);
        assert_eq!(merged.gauges["g"], 9, "merge keeps the max gauge");
        let h = &merged.histograms["h"];
        assert_eq!(h.count(), 2);
        assert_eq!((h.min(), h.max()), (Some(2), Some(1024)));
    }

    #[test]
    fn merge_is_order_insensitive() {
        let mut a = RecordingSink::new();
        a.counter_add("c", 1);
        a.gauge_set("g", 3);
        a.record("h", 10);
        let mut b = RecordingSink::new();
        b.counter_add("c", 5);
        b.gauge_set("g", 8);
        b.record("h", 0);
        let (a, b) = (a.into_snapshot(), b.into_snapshot());

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }
}
