//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this vendored crate provides the (small) API subset the workspace actually
//! uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`), and
//! [`seq::SliceRandom::shuffle`]/[`seq::SliceRandom::choose`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same family
//! the real `SmallRng` uses on 64-bit targets — so statistical quality is
//! comparable, though the exact streams differ from upstream `rand 0.8`.
//! Every consumer in this workspace treats the RNG as an opaque seeded
//! source, so only determinism and distribution quality matter, not the
//! specific byte stream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce from uniform bits.
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1), the standard construction.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, matching `rand 0.8` behaviour.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Primitive types `Rng::gen_range` can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples from `[start, end)`. The caller guarantees `start < end`.
    fn sample_half_open<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
    /// Samples from `[start, end]`. The caller guarantees `start <= end`.
    fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
}

// One blanket impl per range shape (not one per primitive type): `rand 0.8`
// is structured the same way, and the single candidate is what lets the
// compiler unify `gen_range(0..n)`'s integer literals with the use site.
impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_inclusive(start, end, rng)
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                // Cast before subtracting: sign-extension makes the mod-2^64
                // difference exact for signed types too.
                let span = (end as u64).wrapping_sub(start as u64);
                start.wrapping_add(uniform_u64(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform value in `[0, bound)` by rejection sampling (no modulo bias).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of an inferred primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a (half-open or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace never relies on `StdRng`'s cryptographic
    /// properties, only on determinism.
    pub type StdRng = SmallRng;
}

pub mod seq {
    //! Sequence-related sampling: shuffling and choosing.

    use super::{uniform_u64, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Picks one element uniformly, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1u64..=5);
            assert!((1..=5).contains(&w));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = SmallRng::seed_from_u64(5);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([42u32].choose(&mut rng), Some(&42));
    }
}
