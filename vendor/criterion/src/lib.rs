//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the API subset the workspace's benches use. Instead of
//! statistical sampling it executes each benchmark body **once** and prints
//! the wall-clock time — enough to smoke-test every figure pipeline under
//! `cargo test` / `cargo bench` without multi-minute runs.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Prevents the optimizer from discarding a value (best-effort without
/// intrinsics: identity through a volatile-ish read).
#[inline]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Drives benchmark iterations.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Runs `routine` once and records its wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Registers and immediately runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    let millis = bencher.elapsed_ns as f64 / 1_000_000.0;
    println!("bench {name:<48} {millis:>10.3} ms (single pass)");
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the single-pass runner ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the single-pass runner ignores it.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Registers and immediately runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name.as_ref()), &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags (`--bench`, filters); single-pass
            // execution ignores them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut ran = 0;
        Criterion::default().bench_function("smoke", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 1);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        let mut ran = 0;
        group
            .sample_size(10)
            .bench_function("a", |b| b.iter(|| ran += 1));
        group.bench_function(String::from("b"), |b| b.iter(|| ran += 1));
        group.finish();
        assert_eq!(ran, 2);
    }
}
