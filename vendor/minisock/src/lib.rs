//! Minimal, std-only non-blocking TCP reactor for the moas workspace.
//!
//! The build environment has no crates.io access, so — like [`minipool`] and
//! [`minimetrics`] — this crate is vendored: a deliberately small stand-in
//! for the subset of an async runtime the `moas-daemon` serving layer needs.
//! No `epoll`/`kqueue` bindings are available without `libc`, so the design
//! is a **poll loop over non-blocking sockets with one worker thread per
//! listener**:
//!
//! * each [`Server`] owns one `TcpListener` plus every connection accepted
//!   from it, all switched to non-blocking mode;
//! * a single worker thread loops: accept new connections (up to a
//!   [`Config::max_connections`] cap), drain readable sockets into
//!   per-connection buffers, hand complete input to the [`Service`], flush
//!   pending output, enforce read/write timeouts, and sleep for
//!   [`Config::poll_interval`] when nothing happened;
//! * the [`Service`] is a plain (single-threaded, per-listener) state
//!   machine: it consumes bytes, appends response bytes, and may push
//!   unsolicited data to any connection from its periodic
//!   [`Service::on_tick`] hook — which is how a feed server broadcasts
//!   notifies.
//!
//! Latency is bounded below by the poll interval (default 1 ms), which is
//! plenty for a loopback control-plane daemon and keeps the implementation
//! free of platform-specific readiness APIs. Throughput is unaffected: a
//! busy loop iteration never sleeps.
//!
//! # Example
//!
//! ```
//! use minisock::{Action, Config, Server, Service};
//! use std::io::{Read, Write};
//!
//! struct Echo;
//! impl Service for Echo {
//!     fn on_data(&mut self, _conn: u64, inbuf: &mut Vec<u8>, out: &mut Vec<u8>) -> Action {
//!         out.append(inbuf);
//!         Action::Continue
//!     }
//! }
//!
//! let server = Server::bind("127.0.0.1:0", Echo, Config::default()).unwrap();
//! let mut client = std::net::TcpStream::connect(server.local_addr()).unwrap();
//! client.write_all(b"ping").unwrap();
//! let mut buf = [0u8; 4];
//! client.read_exact(&mut buf).unwrap();
//! assert_eq!(&buf, b"ping");
//! server.shutdown();
//! ```
//!
//! [`minipool`]: ../minipool/index.html
//! [`minimetrics`]: ../minimetrics/index.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Identifies one accepted connection for the lifetime of the server.
/// Monotonically increasing; never reused.
pub type ConnId = u64;

/// What the service wants done with a connection after handling its input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Keep the connection open.
    Continue,
    /// Flush any pending output, then close the connection.
    CloseAfterFlush,
}

/// A single-threaded connection-oriented protocol handler.
///
/// One service instance lives on its listener's worker thread; every method
/// is called from that thread only, so implementations need no internal
/// locking for per-connection state (shared daemon state is typically an
/// `Arc<Mutex<..>>` the service holds).
pub trait Service: Send + 'static {
    /// Called once when a connection is accepted. Bytes appended to `out`
    /// are sent immediately (e.g. a protocol banner).
    fn on_open(&mut self, conn: ConnId, out: &mut Vec<u8>) {
        let _ = (conn, out);
    }

    /// Called whenever new bytes have been read into `inbuf`. The service
    /// drains as many complete protocol units from the **front** of `inbuf`
    /// as it can (leaving partial input in place for the next call) and
    /// appends any response bytes to `out`.
    fn on_data(&mut self, conn: ConnId, inbuf: &mut Vec<u8>, out: &mut Vec<u8>) -> Action;

    /// Called roughly every [`Config::tick_interval`]; `push` queues
    /// unsolicited bytes onto any open connection (unknown ids are ignored).
    fn on_tick(&mut self, push: &mut dyn FnMut(ConnId, &[u8])) {
        let _ = push;
    }

    /// Called at tick cadence once per open connection, with that
    /// connection's output buffer. Unlike [`Service::on_tick`] this hook
    /// can also *close* the connection by returning
    /// [`Action::CloseAfterFlush`] — which is how services enforce
    /// per-connection deadlines (request timeouts, protocol hold timers)
    /// that must fire even when the peer sends nothing. The default keeps
    /// the connection open.
    fn on_sweep(&mut self, conn: ConnId, out: &mut Vec<u8>) -> Action {
        let _ = (conn, out);
        Action::Continue
    }

    /// Called when a connection closes for any reason (peer EOF, timeout,
    /// service-requested close, shutdown).
    fn on_close(&mut self, conn: ConnId) {
        let _ = conn;
    }
}

/// Reactor tuning knobs.
#[derive(Debug, Clone)]
pub struct Config {
    /// Maximum simultaneously open connections; excess accepts are closed
    /// immediately and counted in [`ServerStats::refused`].
    pub max_connections: usize,
    /// A connection with no readable progress for this long (and nothing
    /// left to write) is closed as idle.
    pub read_timeout: Duration,
    /// A connection whose pending output makes no write progress for this
    /// long is closed as stalled.
    pub write_timeout: Duration,
    /// Sleep length when a poll iteration made no progress.
    pub poll_interval: Duration,
    /// Interval between [`Service::on_tick`] calls.
    pub tick_interval: Duration,
    /// How long shutdown waits for pending output to flush before closing
    /// connections anyway.
    pub drain_grace: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_connections: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            poll_interval: Duration::from_millis(1),
            tick_interval: Duration::from_millis(1),
            drain_grace: Duration::from_secs(2),
        }
    }
}

/// Monotonic counters describing a server's lifetime, readable from any
/// thread via [`Server::stats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted and registered.
    pub accepted: u64,
    /// Connections refused because the cap was reached.
    pub refused: u64,
    /// Connections closed for idle-read or stalled-write timeouts.
    pub timed_out: u64,
    /// Connections closed in total (all causes).
    pub closed: u64,
    /// Bytes read across all connections.
    pub bytes_in: u64,
    /// Bytes written across all connections.
    pub bytes_out: u64,
}

#[derive(Debug, Default)]
struct AtomicStats {
    accepted: AtomicU64,
    refused: AtomicU64,
    timed_out: AtomicU64,
    closed: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            closed: self.closed.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
        }
    }
}

/// One accepted connection's reactor-side state.
struct Conn {
    id: ConnId,
    stream: TcpStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    /// Last time bytes arrived (or the connection opened).
    last_read: Instant,
    /// Last time pending output made progress (or became pending).
    last_write_progress: Instant,
    /// Close once `outbuf` drains.
    closing: bool,
}

/// A listening TCP server driving one [`Service`] on a dedicated worker
/// thread. Dropping the server shuts it down and joins the worker.
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<AtomicStats>,
    worker: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port), spawns the worker
    /// thread, and starts serving `service`.
    ///
    /// # Errors
    ///
    /// Returns any error from binding the listener or switching it to
    /// non-blocking mode.
    pub fn bind<A: ToSocketAddrs, S: Service>(
        addr: A,
        service: S,
        config: Config,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(AtomicStats::default());
        let worker = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name(format!("minisock-{}", local_addr.port()))
                .spawn(move || run_loop(listener, service, config, &stop, &stats))?
        };
        Ok(Server {
            local_addr,
            stop,
            stats,
            worker: Some(worker),
        })
    }

    /// The address the server actually bound (resolves ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A point-in-time copy of the lifetime counters.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        self.stats.snapshot()
    }

    /// Stops accepting, lets pending output drain (bounded by
    /// [`Config::drain_grace`]), closes every connection, and joins the
    /// worker thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("stats", &self.stats.snapshot())
            .finish_non_exhaustive()
    }
}

/// Read chunk size; protocol units in this workspace are far smaller.
const READ_CHUNK: usize = 64 * 1024;

fn run_loop<S: Service>(
    listener: TcpListener,
    mut service: S,
    config: Config,
    stop: &AtomicBool,
    stats: &AtomicStats,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut next_id: ConnId = 1;
    let mut last_tick = Instant::now();
    let mut draining_since: Option<Instant> = None;
    let mut scratch = [0u8; READ_CHUNK];

    loop {
        let mut progressed = false;
        let now = Instant::now();

        // Accept (unless shutting down or at the cap).
        if draining_since.is_none() {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        progressed = true;
                        if conns.len() >= config.max_connections {
                            stats.refused.fetch_add(1, Ordering::Relaxed);
                            drop(stream); // refuse by immediate close
                            continue;
                        }
                        if stream.set_nonblocking(true).is_err()
                            || stream.set_nodelay(true).is_err()
                        {
                            continue;
                        }
                        stats.accepted.fetch_add(1, Ordering::Relaxed);
                        let id = next_id;
                        next_id += 1;
                        let mut conn = Conn {
                            id,
                            stream,
                            inbuf: Vec::new(),
                            outbuf: Vec::new(),
                            last_read: now,
                            last_write_progress: now,
                            closing: false,
                        };
                        service.on_open(id, &mut conn.outbuf);
                        conns.push(conn);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => break, // transient accept error: retry next iteration
                }
            }
        }

        // Read, dispatch, write, per connection.
        let mut idx = 0;
        while idx < conns.len() {
            let conn = &mut conns[idx];
            let mut dead = false;
            let mut timed_out = false;

            // Drain the socket into the input buffer.
            if !conn.closing {
                loop {
                    match conn.stream.read(&mut scratch) {
                        Ok(0) => {
                            // Peer EOF: no more input; flush what we owe and
                            // close.
                            conn.closing = true;
                            break;
                        }
                        Ok(n) => {
                            progressed = true;
                            conn.last_read = now;
                            stats.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
                            conn.inbuf.extend_from_slice(&scratch[..n]);
                            let had_output = !conn.outbuf.is_empty();
                            if service.on_data(conn.id, &mut conn.inbuf, &mut conn.outbuf)
                                == Action::CloseAfterFlush
                            {
                                conn.closing = true;
                            }
                            if !had_output && !conn.outbuf.is_empty() {
                                conn.last_write_progress = now;
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            dead = true;
                            break;
                        }
                    }
                    if conn.closing {
                        break;
                    }
                }
            }

            // Flush pending output.
            while !dead && !conn.outbuf.is_empty() {
                match conn.stream.write(&conn.outbuf) {
                    Ok(0) => {
                        dead = true;
                    }
                    Ok(n) => {
                        progressed = true;
                        conn.outbuf.drain(..n);
                        conn.last_write_progress = now;
                        stats.bytes_out.fetch_add(n as u64, Ordering::Relaxed);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => dead = true,
                }
            }

            // Timeouts (only while running normally; the drain phase has its
            // own grace deadline).
            if !dead && draining_since.is_none() {
                let idle = conn.outbuf.is_empty()
                    && !conn.closing
                    && now.duration_since(conn.last_read) > config.read_timeout;
                let stalled = !conn.outbuf.is_empty()
                    && now.duration_since(conn.last_write_progress) > config.write_timeout;
                if idle || stalled {
                    timed_out = true;
                    dead = true;
                }
            }

            if dead || (conn.closing && conn.outbuf.is_empty()) {
                let conn = conns.swap_remove(idx);
                let _ = conn.stream.shutdown(std::net::Shutdown::Both);
                service.on_close(conn.id);
                stats.closed.fetch_add(1, Ordering::Relaxed);
                if timed_out {
                    stats.timed_out.fetch_add(1, Ordering::Relaxed);
                }
                progressed = true;
            } else {
                idx += 1;
            }
        }

        // Periodic service tick (push path), then the per-connection sweep
        // (deadline path: a sweep may close its connection).
        if draining_since.is_none() && now.duration_since(last_tick) >= config.tick_interval {
            last_tick = now;
            let mut pushes: Vec<(ConnId, Vec<u8>)> = Vec::new();
            service.on_tick(&mut |conn, bytes| pushes.push((conn, bytes.to_vec())));
            for (id, bytes) in pushes {
                if let Some(conn) = conns.iter_mut().find(|c| c.id == id) {
                    if conn.outbuf.is_empty() {
                        conn.last_write_progress = now;
                    }
                    conn.outbuf.extend_from_slice(&bytes);
                    progressed = true;
                }
            }
            for conn in &mut conns {
                if conn.closing {
                    continue;
                }
                let had_output = !conn.outbuf.is_empty();
                if service.on_sweep(conn.id, &mut conn.outbuf) == Action::CloseAfterFlush {
                    conn.closing = true;
                    progressed = true;
                }
                if !had_output && !conn.outbuf.is_empty() {
                    conn.last_write_progress = now;
                    progressed = true;
                }
            }
        }

        // Shutdown sequencing: stop accepting, give pending output one grace
        // period to drain, then close everything.
        if stop.load(Ordering::SeqCst) && draining_since.is_none() {
            draining_since = Some(now);
        }
        if let Some(since) = draining_since {
            let drained = conns.iter().all(|c| c.outbuf.is_empty());
            if drained || now.duration_since(since) > config.drain_grace {
                for conn in conns.drain(..) {
                    let _ = conn.stream.shutdown(std::net::Shutdown::Both);
                    service.on_close(conn.id);
                    stats.closed.fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
        }

        if !progressed {
            std::thread::sleep(config.poll_interval);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    /// Echoes every byte back; closes when it sees the byte `b'q'`.
    struct Echo;

    impl Service for Echo {
        fn on_data(&mut self, _conn: ConnId, inbuf: &mut Vec<u8>, out: &mut Vec<u8>) -> Action {
            let quit = inbuf.contains(&b'q');
            out.append(inbuf);
            if quit {
                Action::CloseAfterFlush
            } else {
                Action::Continue
            }
        }
    }

    fn quick_config() -> Config {
        Config {
            read_timeout: Duration::from_millis(200),
            write_timeout: Duration::from_millis(200),
            ..Config::default()
        }
    }

    /// Swallows input; closes any connection older than 50 ms from the
    /// sweep hook, sending a farewell first.
    struct Sweeper {
        opened: std::collections::HashMap<ConnId, Instant>,
    }

    impl Service for Sweeper {
        fn on_open(&mut self, conn: ConnId, _out: &mut Vec<u8>) {
            self.opened.insert(conn, Instant::now());
        }

        fn on_data(&mut self, _conn: ConnId, inbuf: &mut Vec<u8>, _out: &mut Vec<u8>) -> Action {
            inbuf.clear();
            Action::Continue
        }

        fn on_sweep(&mut self, conn: ConnId, out: &mut Vec<u8>) -> Action {
            if self.opened[&conn].elapsed() > Duration::from_millis(50) {
                out.extend_from_slice(b"bye");
                Action::CloseAfterFlush
            } else {
                Action::Continue
            }
        }

        fn on_close(&mut self, conn: ConnId) {
            self.opened.remove(&conn);
        }
    }

    #[test]
    fn sweep_closes_connections_the_peer_never_touches() {
        let service = Sweeper {
            opened: std::collections::HashMap::new(),
        };
        // read_timeout far above the sweep deadline: the close below can
        // only come from the sweep hook, not the idle timeout.
        let config = Config {
            read_timeout: Duration::from_secs(30),
            ..Config::default()
        };
        let server = Server::bind("127.0.0.1:0", service, config).unwrap();
        let mut client = TcpStream::connect(server.local_addr()).unwrap();
        let start = Instant::now();
        let mut rest = Vec::new();
        client.read_to_end(&mut rest).unwrap();
        assert_eq!(rest, b"bye");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "sweep close took {:?}",
            start.elapsed()
        );
        server.shutdown();
    }

    #[test]
    fn echo_round_trip_and_service_close() {
        let server = Server::bind("127.0.0.1:0", Echo, quick_config()).unwrap();
        let mut client = TcpStream::connect(server.local_addr()).unwrap();
        client.write_all(b"hello").unwrap();
        let mut buf = [0u8; 5];
        client.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");

        // The quit byte is echoed, then the server closes.
        client.write_all(b"q").unwrap();
        let mut rest = Vec::new();
        client.read_to_end(&mut rest).unwrap();
        assert_eq!(rest, b"q");

        let stats = server.stats();
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.bytes_in, 6);
        assert_eq!(stats.bytes_out, 6);
        server.shutdown();
    }

    #[test]
    fn multiple_sequential_and_concurrent_connections() {
        let server = Server::bind("127.0.0.1:0", Echo, quick_config()).unwrap();
        let addr = server.local_addr();
        let mut clients: Vec<TcpStream> =
            (0..4).map(|_| TcpStream::connect(addr).unwrap()).collect();
        for (i, client) in clients.iter_mut().enumerate() {
            let msg = format!("msg-{i}");
            client.write_all(msg.as_bytes()).unwrap();
            let mut buf = vec![0u8; msg.len()];
            client.read_exact(&mut buf).unwrap();
            assert_eq!(buf, msg.as_bytes());
        }
        drop(clients);
        server.shutdown();
    }

    #[test]
    fn connection_cap_refuses_excess() {
        let config = Config {
            max_connections: 2,
            ..quick_config()
        };
        let server = Server::bind("127.0.0.1:0", Echo, config).unwrap();
        let addr = server.local_addr();
        let mut keep: Vec<TcpStream> = Vec::new();
        for _ in 0..2 {
            let mut c = TcpStream::connect(addr).unwrap();
            // Prove the slot is live before opening the next one.
            c.write_all(b"x").unwrap();
            let mut b = [0u8; 1];
            c.read_exact(&mut b).unwrap();
            keep.push(c);
        }
        // The third connection is accepted by the OS and immediately closed
        // by the reactor: a read must return EOF without any echo.
        let mut refused = TcpStream::connect(addr).unwrap();
        refused.write_all(b"y").ok();
        let mut buf = Vec::new();
        refused
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(refused.read_to_end(&mut buf).unwrap_or(0), 0);
        // Refused counts may lag the close by one loop iteration.
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.stats().refused == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(server.stats().refused, 1);
        server.shutdown();
    }

    #[test]
    fn idle_connections_time_out() {
        let config = Config {
            read_timeout: Duration::from_millis(30),
            ..Config::default()
        };
        let server = Server::bind("127.0.0.1:0", Echo, config).unwrap();
        let mut client = TcpStream::connect(server.local_addr()).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // Never send anything: the reactor must close us as idle.
        let mut buf = Vec::new();
        assert_eq!(client.read_to_end(&mut buf).unwrap_or(0), 0);
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.stats().timed_out == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let stats = server.stats();
        assert_eq!(stats.timed_out, 1);
        assert_eq!(stats.closed, 1);
        server.shutdown();
    }

    #[test]
    fn tick_pushes_unsolicited_bytes() {
        /// Pushes one beep to every open connection on each tick.
        struct Beeper {
            open: Vec<ConnId>,
            beeped: bool,
        }
        impl Service for Beeper {
            fn on_open(&mut self, conn: ConnId, _out: &mut Vec<u8>) {
                self.open.push(conn);
            }
            fn on_data(&mut self, _c: ConnId, inbuf: &mut Vec<u8>, _out: &mut Vec<u8>) -> Action {
                inbuf.clear();
                Action::Continue
            }
            fn on_tick(&mut self, push: &mut dyn FnMut(ConnId, &[u8])) {
                if !self.beeped && !self.open.is_empty() {
                    self.beeped = true;
                    for &conn in &self.open {
                        push(conn, b"beep");
                    }
                }
            }
            fn on_close(&mut self, conn: ConnId) {
                self.open.retain(|&c| c != conn);
            }
        }

        let server = Server::bind(
            "127.0.0.1:0",
            Beeper {
                open: Vec::new(),
                beeped: false,
            },
            quick_config(),
        )
        .unwrap();
        let mut client = TcpStream::connect(server.local_addr()).unwrap();
        let mut buf = [0u8; 4];
        client.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"beep");
        server.shutdown();
    }

    #[test]
    fn shutdown_flushes_pending_output_and_joins() {
        let server = Server::bind("127.0.0.1:0", Echo, quick_config()).unwrap();
        let addr = server.local_addr();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(b"last words").unwrap();
        let mut buf = [0u8; 10];
        client.read_exact(&mut buf).unwrap();
        server.shutdown();
        // After shutdown the listener is gone: new connections must fail or
        // be closed immediately.
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(mut s) => {
                s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
                let mut rest = Vec::new();
                assert_eq!(s.read_to_end(&mut rest).unwrap_or(0), 0);
            }
        }
    }

    #[test]
    fn drop_joins_the_worker() {
        let server = Server::bind("127.0.0.1:0", Echo, quick_config()).unwrap();
        let addr = server.local_addr();
        drop(server);
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(mut s) => {
                s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
                let mut rest = Vec::new();
                assert_eq!(s.read_to_end(&mut rest).unwrap_or(0), 0);
            }
        }
    }
}
