//! Minimal scoped fork-join pool for trial-level parallelism.
//!
//! The build environment has no crates.io access (no `rayon`), so this
//! vendored crate provides the one primitive the experiment harness needs:
//! run `count` independent jobs on `jobs` worker threads and collect the
//! results **into index-addressed slots**, so the output order — and
//! therefore every downstream aggregate — is identical to running the jobs
//! sequentially.
//!
//! Workers pull job indices from a shared atomic counter (work stealing at
//! the granularity of one job), which keeps long and short jobs balanced
//! without any channel machinery. Scheduling order never leaks into the
//! result: slot `i` always holds `f(i)`.
//!
//! # Example
//!
//! ```
//! let squares = minipool::map_indexed(4, 8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of workers to use by default: the hardware's available
/// parallelism, or 1 if it cannot be determined.
#[must_use]
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f(0) .. f(count - 1)` on up to `jobs` worker threads and returns
/// the results in index order.
///
/// `jobs <= 1` (or `count <= 1`) runs everything inline on the calling
/// thread with no pool at all — the sequential reference path. The result is
/// bit-identical either way: slot `i` holds `f(i)` regardless of which
/// worker computed it or when it finished.
///
/// # Panics
///
/// Panics if `f` panics on any index (the panic is propagated once all
/// workers have stopped).
pub fn map_indexed<T, F>(jobs: usize, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs <= 1 || count <= 1 {
        return (0..count).map(f).collect();
    }
    let workers = jobs.min(count);
    let next = AtomicUsize::new(0);
    let mut empty: Vec<Option<T>> = Vec::with_capacity(count);
    empty.resize_with(count, || None);
    let slots = Mutex::new(empty);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    // Run the job *outside* the lock; the lock only guards
                    // the O(1) slot write, so contention is negligible next
                    // to any real job body.
                    let out = f(i);
                    slots.lock().expect("no poisoned slots")[i] = Some(out);
                })
            })
            .collect();
        // Join explicitly so a job panic surfaces with its original payload
        // (the scope's implicit join would replace it with a generic one).
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });

    slots
        .into_inner()
        .expect("no poisoned slots")
        .into_iter()
        .map(|slot| slot.expect("every index was claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_in_index_order() {
        let out = map_indexed(4, 100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn inline_path_matches_pooled_path() {
        let inline = map_indexed(1, 37, |i| i as u64 * 0x9E37);
        let pooled = map_indexed(8, 37, |i| i as u64 * 0x9E37);
        assert_eq!(inline, pooled);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = map_indexed(3, 50, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 50);
        assert_eq!(calls.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn zero_jobs_and_zero_count_are_fine() {
        assert_eq!(map_indexed(0, 4, |i| i), vec![0, 1, 2, 3]);
        assert!(map_indexed(4, 0, |i| i).is_empty());
    }

    #[test]
    fn uneven_job_durations_do_not_reorder_results() {
        // Long jobs at low indices finish last; slots still line up.
        let out = map_indexed(4, 16, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn available_jobs_is_positive() {
        assert!(available_jobs() >= 1);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let _ = map_indexed(4, 8, |i| {
            assert!(i != 5, "boom");
            i
        });
    }
}
