//! Minimal scoped fork-join pool for trial-level parallelism.
//!
//! The build environment has no crates.io access (no `rayon`), so this
//! vendored crate provides the one primitive the experiment harness needs:
//! run `count` independent jobs on `jobs` worker threads and collect the
//! results **into index-addressed slots**, so the output order — and
//! therefore every downstream aggregate — is identical to running the jobs
//! sequentially.
//!
//! Workers pull job indices from a shared atomic counter (work stealing at
//! the granularity of one job), which keeps long and short jobs balanced
//! without any channel machinery. Scheduling order never leaks into the
//! result: slot `i` always holds `f(i)`.
//!
//! # Example
//!
//! ```
//! let squares = minipool::map_indexed(4, 8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of workers to use by default: the hardware's available
/// parallelism, or 1 if it cannot be determined.
#[must_use]
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f(0) .. f(count - 1)` on up to `jobs` worker threads and returns
/// the results in index order.
///
/// `jobs <= 1` (or `count <= 1`) runs everything inline on the calling
/// thread with no pool at all — the sequential reference path. The result is
/// bit-identical either way: slot `i` holds `f(i)` regardless of which
/// worker computed it or when it finished.
///
/// # Panics
///
/// Panics if `f` panics on any index (the panic is propagated once all
/// workers have stopped).
pub fn map_indexed<T, F>(jobs: usize, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs <= 1 || count <= 1 {
        return (0..count).map(f).collect();
    }
    let workers = jobs.min(count);
    let next = AtomicUsize::new(0);
    let mut empty: Vec<Option<T>> = Vec::with_capacity(count);
    empty.resize_with(count, || None);
    let slots = Mutex::new(empty);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    // Run the job *outside* the lock; the lock only guards
                    // the O(1) slot write, so contention is negligible next
                    // to any real job body.
                    let out = f(i);
                    slots.lock().expect("no poisoned slots")[i] = Some(out);
                })
            })
            .collect();
        // Join explicitly so a job panic surfaces with its original payload
        // (the scope's implicit join would replace it with a generic one).
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });

    slots
        .into_inner()
        .expect("no poisoned slots")
        .into_iter()
        .map(|slot| slot.expect("every index was claimed exactly once"))
        .collect()
}

/// A crew of long-lived workers, each owning one piece of state, driven in
/// lockstep rounds.
///
/// [`map_indexed`] forks and joins per call, which is the right shape for
/// independent trials but wrong for a sharded simulation: shard state (RIBs,
/// queues, RNGs) must stay pinned to one worker across thousands of barrier
/// rounds. A `Crew` spawns one thread per state up front; every
/// [`Crew::round`] sends each worker one argument, runs the shared round
/// function against that worker's `&mut` state, and collects the results
/// **in worker index order** — a full barrier, so round `k + 1` never starts
/// before every worker finished round `k`.
///
/// [`Crew::join`] tears the crew down and hands the states back, so the
/// caller can run sequential phases (setup, census, metrics export) between
/// parallel ones on the very same values.
///
/// # Example
///
/// ```
/// let mut crew = minipool::Crew::spawn(vec![0u64, 100], |state, add: u64| {
///     *state += add;
///     *state
/// });
/// assert_eq!(crew.round(vec![1, 2]), vec![1, 102]);
/// assert_eq!(crew.round(vec![10, 20]), vec![11, 122]);
/// assert_eq!(crew.join(), vec![11, 122]);
/// ```
#[derive(Debug)]
pub struct Crew<W, A, R> {
    workers: Vec<CrewWorker<W, A, R>>,
}

#[derive(Debug)]
struct CrewWorker<W, A, R> {
    tx: std::sync::mpsc::Sender<A>,
    rx: std::sync::mpsc::Receiver<R>,
    handle: Option<std::thread::JoinHandle<W>>,
}

impl<W, A, R> Crew<W, A, R>
where
    W: Send + 'static,
    A: Send + 'static,
    R: Send + 'static,
{
    /// Spawns one worker thread per entry of `states`; each worker owns its
    /// state for the crew's lifetime and runs `round` on it once per
    /// [`Crew::round`] call.
    #[must_use]
    pub fn spawn<F>(states: Vec<W>, round: F) -> Self
    where
        F: Fn(&mut W, A) -> R + Send + Sync + 'static,
    {
        let round = std::sync::Arc::new(round);
        let workers = states
            .into_iter()
            .map(|mut state| {
                let (arg_tx, arg_rx) = std::sync::mpsc::channel::<A>();
                let (res_tx, res_rx) = std::sync::mpsc::channel::<R>();
                let round = std::sync::Arc::clone(&round);
                let handle = std::thread::spawn(move || {
                    while let Ok(arg) = arg_rx.recv() {
                        let out = round(&mut state, arg);
                        if res_tx.send(out).is_err() {
                            break;
                        }
                    }
                    state
                });
                CrewWorker {
                    tx: arg_tx,
                    rx: res_rx,
                    handle: Some(handle),
                }
            })
            .collect();
        Crew { workers }
    }

    /// Number of workers in the crew.
    #[must_use]
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// `true` for a crew with no workers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Runs one barrier round: worker `i` receives `args[i]`, and the
    /// returned vector holds worker `i`'s result at index `i`. All arguments
    /// are sent before any result is awaited, so workers run concurrently;
    /// the call returns only when every worker has finished.
    ///
    /// # Panics
    ///
    /// Panics if `args.len()` differs from the crew size, or if a worker's
    /// round function panicked (the original payload is propagated).
    pub fn round(&mut self, args: Vec<A>) -> Vec<R> {
        assert_eq!(args.len(), self.workers.len(), "one argument per worker");
        for (worker, arg) in self.workers.iter().zip(args) {
            if worker.tx.send(arg).is_err() {
                // The worker is gone: fall through to the recv below, which
                // joins it and propagates the original panic payload.
            }
        }
        let mut out = Vec::with_capacity(self.workers.len());
        for worker in &mut self.workers {
            match worker.rx.recv() {
                Ok(result) => out.push(result),
                Err(_) => {
                    // The worker died mid-round; join it to recover the
                    // panic payload rather than inventing a generic one.
                    if let Some(handle) = worker.handle.take() {
                        if let Err(payload) = handle.join() {
                            std::panic::resume_unwind(payload);
                        }
                    }
                    panic!("crew worker exited without a result");
                }
            }
        }
        out
    }

    /// Shuts the crew down and returns the worker states in index order.
    ///
    /// # Panics
    ///
    /// Propagates a worker's panic payload if one died.
    #[must_use]
    pub fn join(mut self) -> Vec<W> {
        // Dropping the senders ends each worker's receive loop.
        let handles: Vec<_> = self.workers.iter_mut().map(|w| w.handle.take()).collect();
        drop(self);
        handles
            .into_iter()
            .flatten()
            .map(|handle| match handle.join() {
                Ok(state) => state,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_in_index_order() {
        let out = map_indexed(4, 100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn inline_path_matches_pooled_path() {
        let inline = map_indexed(1, 37, |i| i as u64 * 0x9E37);
        let pooled = map_indexed(8, 37, |i| i as u64 * 0x9E37);
        assert_eq!(inline, pooled);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = map_indexed(3, 50, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 50);
        assert_eq!(calls.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn zero_jobs_and_zero_count_are_fine() {
        assert_eq!(map_indexed(0, 4, |i| i), vec![0, 1, 2, 3]);
        assert!(map_indexed(4, 0, |i| i).is_empty());
    }

    #[test]
    fn uneven_job_durations_do_not_reorder_results() {
        // Long jobs at low indices finish last; slots still line up.
        let out = map_indexed(4, 16, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn available_jobs_is_positive() {
        assert!(available_jobs() >= 1);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let _ = map_indexed(4, 8, |i| {
            assert!(i != 5, "boom");
            i
        });
    }

    #[test]
    fn crew_states_stay_pinned_across_rounds() {
        let mut crew = Crew::spawn(vec![Vec::new(), Vec::new(), Vec::new()], |log, x: u32| {
            log.push(x);
            log.len()
        });
        assert_eq!(crew.len(), 3);
        assert_eq!(crew.round(vec![10, 20, 30]), vec![1, 1, 1]);
        assert_eq!(crew.round(vec![11, 21, 31]), vec![2, 2, 2]);
        let states = crew.join();
        assert_eq!(states, vec![vec![10, 11], vec![20, 21], vec![30, 31]]);
    }

    #[test]
    fn crew_results_are_in_worker_order_despite_uneven_durations() {
        let mut crew = Crew::spawn(vec![0usize, 1, 2, 3], |id, _: ()| {
            if *id == 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            *id
        });
        assert_eq!(crew.round(vec![(), (), (), ()]), vec![0, 1, 2, 3]);
        let _ = crew.join();
    }

    #[test]
    fn empty_crew_is_fine() {
        let mut crew: Crew<u8, u8, u8> = Crew::spawn(Vec::new(), |_, a| a);
        assert!(crew.is_empty());
        assert!(crew.round(Vec::new()).is_empty());
        assert!(crew.join().is_empty());
    }

    #[test]
    #[should_panic(expected = "crew boom")]
    fn crew_round_panic_propagates() {
        let mut crew = Crew::spawn(vec![0u8, 1], |id, _: ()| {
            assert!(*id != 1, "crew boom");
            *id
        });
        let _ = crew.round(vec![(), ()]);
    }
}
