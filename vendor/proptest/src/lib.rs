//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of proptest the workspace uses: the [`proptest!`]
//! macro, `prop_assert*`, strategies for integer ranges and `any::<T>()`,
//! tuple composition, `prop_map`, `prop_oneof!`, and the
//! `prop::collection::{vec, btree_set}` generators.
//!
//! Differences from upstream: failing cases are **not shrunk** — the panic
//! message reports the case number and the test re-runs deterministically
//! from a seed derived from the test name, which is enough to reproduce.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test-runner configuration.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; keep CI latency modest.
            Config { cases: 64 }
        }
    }

    /// Deterministic RNG handed to strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed.
        #[must_use]
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sampling bound");
            if bound.is_power_of_two() {
                return self.next_u64() & (bound - 1);
            }
            let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % bound;
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    /// The `prop_map` combinator.
    #[derive(Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies (built by `prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union; panics if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = end.wrapping_sub(start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_uint {
        ($($t:ty => $shift:expr),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    (rng.next_u64() >> $shift) as $t
                }
            }
        )*};
    }

    arb_uint!(u8 => 56, u16 => 48, u32 => 32, u64 => 0, usize => 0);

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod prop {
    //! The `prop::` namespace re-exported by the prelude.

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::collections::BTreeSet;
        use std::ops::Range;

        /// Strategy for `Vec<T>` with a length drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = self.size.end.saturating_sub(self.size.start).max(1);
                let len = self.size.start + rng.below(span as u64) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Generates vectors whose length falls in `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        /// Strategy for `BTreeSet<T>` targeting a size drawn from `size`.
        ///
        /// Duplicate draws may make the set smaller than the drawn size, as
        /// in upstream proptest.
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
                let span = self.size.end.saturating_sub(self.size.start).max(1);
                let len = self.size.start + rng.below(span as u64) as usize;
                let mut set = BTreeSet::new();
                // Bounded attempts so narrow domains cannot loop forever.
                let mut attempts = 0;
                while set.len() < len && attempts < len * 10 + 16 {
                    set.insert(self.element.generate(rng));
                    attempts += 1;
                }
                set
            }
        }

        /// Generates sets whose target size falls in `size`.
        pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S> {
            BTreeSetStrategy { element, size }
        }
    }
}

pub mod prelude {
    //! Everything a property test needs, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Derives a stable 64-bit seed from a test name.
#[must_use]
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a, stable across runs and platforms.
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0100_0000_01B3);
    }
    hash
}

/// Asserts a condition inside a property (alias of `assert!` here).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (alias of `assert_eq!` here).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (alias of `assert_ne!` here).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(pattern in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng =
                $crate::test_runner::TestRng::from_seed($crate::seed_for(stringify!($name)));
            for case in 0..config.cases {
                let run = || {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                };
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed (no shrinking in offline stand-in)",
                        case + 1,
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_hold(x in 3u32..10, y in 0u8..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn map_and_tuple(pair in (0u32..5, 10u32..12).prop_map(|(a, b)| a + b)) {
            prop_assert!((10..17).contains(&pair));
        }

        #[test]
        fn oneof_picks_both_arms(v in prop_oneof![Just(1u32), Just(2u32)]) {
            prop_assert!(v == 1 || v == 2);
        }

        #[test]
        fn collections_sized(v in prop::collection::vec(any::<u16>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]
        #[test]
        fn config_is_respected(_x in 0u32..10) {
            // Runs exactly 3 times; nothing to assert beyond not panicking.
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
    }
}
