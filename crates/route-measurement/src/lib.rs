//! MOAS measurement: the §3 study behind Figures 4 and 5.
//!
//! The paper analyzes 1279 days of Oregon Route Views table dumps
//! (11/8/1997 – 7/18/2001), counting daily MOAS conflicts (Figure 4) and the
//! duration of each case (Figure 5). The archives cannot be shipped, so this
//! crate pairs:
//!
//! * **the analysis code** ([`daily_moas_counts`], [`duration_histogram`],
//!   [`MeasurementSummary`]) — written against daily table dumps and equally
//!   applicable to real data, and
//! * **a calibrated synthetic collector** ([`TimelineConfig::paper`],
//!   [`generate_timeline`]) — an announcement timeline with long-lived
//!   multihoming MOAS, short operational churn, and the two famous fault
//!   spikes (AS 8584 on 1998-04-07; the (AS 3561, AS 15412) event on
//!   2001-04-06), tuned to the statistics the paper reports: ~35.9% of cases
//!   lasting one day, ~82.7% of those attributable to the 1998 fault, 96.14%
//!   of cases involving two origins, and daily medians rising from ~683
//!   (1998) to ~1294 (2001).
//!
//! # Example
//!
//! ```
//! use route_measurement::{daily_moas_counts, generate_timeline, TimelineConfig};
//!
//! let timeline = generate_timeline(&TimelineConfig::paper().with_days(120));
//! let counts = daily_moas_counts(&timeline.dumps);
//! assert_eq!(counts.len(), 120);
//! assert!(counts.iter().all(|&c| c > 0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classifier;
mod communities;
mod detector;
mod dump;
mod flap;
mod stats;
mod stream;
mod timeline;

pub use classifier::{classify, score, ClassifiedCase, ClassifierConfig, ClassifierScore, Verdict};
pub use communities::{CommunitiesAnomalyDetector, CommunitiesConfig};
pub use detector::{
    AlarmKind, Detector, DetectorAlarm, MoasListDetector, ObservationKind, RouteObservation,
};
pub use dump::DailyDump;
pub use flap::{FlapDampingConfig, FlapDampingDetector};
pub use stats::{daily_moas_counts, duration_histogram, median, MeasurementSummary};
pub use stream::{
    daily_moas_onsets, origin_events, OriginEvent, OriginEventKind, OriginEventTracker,
};
pub use timeline::{
    generate_timeline, CaseRecord, Cause, FaultEvent, GeneratedTimeline, ModernMoasConfig,
    TimelineConfig,
};
