//! The detector abstraction for the ensemble comparison.
//!
//! The 2002 paper evaluates exactly one detector — the MOAS-list consistency
//! check of §4.2. CommunityWatch (Giotsas et al.) argues that cheap,
//! complementary detectors should run side by side so their disagreements
//! become signal. This module defines the neutral event stream every detector
//! consumes ([`RouteObservation`]), the alarm record they emit
//! ([`DetectorAlarm`]), and the [`Detector`] trait itself, plus the passive
//! [`MoasListDetector`] — the paper's check re-expressed over observation
//! streams so it can be replayed offline against the same input as its rivals.
//!
//! Times are plain `u64` so both tick-level simulator taps and day-level
//! Route Views timelines feed the same detectors unchanged.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use bgp_types::{Asn, Community, Ipv4Prefix};

/// One route event as seen by an observation point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteObservation {
    /// When the event happened (simulator ticks or measurement days).
    pub time: u64,
    /// The AS at which the event was observed.
    pub observer: Asn,
    /// The peer the route came from; `None` when the stream has no per-peer
    /// resolution (day-level table dumps).
    pub from_peer: Option<Asn>,
    /// The affected prefix.
    pub prefix: Ipv4Prefix,
    /// What happened.
    pub kind: ObservationKind,
}

/// The event payload of a [`RouteObservation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObservationKind {
    /// A route for the prefix was announced (or re-announced).
    Announce {
        /// The origin AS of the announcement.
        origin: Asn,
        /// The explicit MOAS list attached, if any (§4.2).
        moas_list: Option<Vec<Asn>>,
        /// Every community on the route, MOAS markers included.
        communities: Vec<Community>,
    },
    /// The previously announced route was withdrawn.
    Withdraw,
}

/// Which detector family raised an alarm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlarmKind {
    /// MOAS-list inconsistency (§4.2 of the paper).
    MoasConflict,
    /// RFC 2439 flap-damping suppression threshold crossed.
    FlapSuppression,
    /// Origin change with a community set diverging from the learned
    /// baseline.
    CommunityAnomaly,
}

impl fmt::Display for AlarmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AlarmKind::MoasConflict => "moas-conflict",
            AlarmKind::FlapSuppression => "flap-suppression",
            AlarmKind::CommunityAnomaly => "community-anomaly",
        })
    }
}

/// One alarm raised by a [`Detector`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectorAlarm {
    /// When the alarm fired (same unit as the observations).
    pub time: u64,
    /// The AS whose observation point raised it.
    pub observer: Asn,
    /// The prefix concerned.
    pub prefix: Ipv4Prefix,
    /// The origin AS the alarm implicates, when the detector can name one.
    pub origin: Option<Asn>,
    /// The detector family.
    pub kind: AlarmKind,
}

/// A detector consuming a route-observation stream and raising alarms.
///
/// Detectors are deliberately passive: they never influence routing, so the
/// same recorded stream can be replayed through each of them and the alarm
/// sets compared one-to-one.
pub trait Detector {
    /// Stable short name used in reports and metrics keys.
    fn name(&self) -> &'static str;

    /// Feeds one observation; any alarms raised are appended to `alarms`.
    fn observe(&mut self, obs: &RouteObservation, alarms: &mut Vec<DetectorAlarm>);
}

/// One peer's currently held announcement at one observation point.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Held {
    origin: Asn,
    moas_list: Option<Vec<Asn>>,
}

impl Held {
    /// §4.2's effective list: the explicit list, or implicitly `{origin}`.
    fn effective(&self) -> Vec<Asn> {
        self.moas_list.clone().unwrap_or_else(|| vec![self.origin])
    }
}

/// The paper's MOAS-list consistency check as a passive [`Detector`] — the
/// §4.2 "monitoring process" mode, with no verifier and no route filtering.
///
/// Per `(observer, prefix)` it remembers the latest announcement from each
/// peer; a new announcement conflicts when its origin differs from a held
/// origin and the two effective MOAS lists fail the mutual-containment check
/// (each origin must appear in the other's list, and two explicit lists must
/// agree). Streams without per-peer resolution use a single slot per prior
/// origin.
#[derive(Debug, Clone, Default)]
pub struct MoasListDetector {
    rib: BTreeMap<(Asn, Ipv4Prefix), BTreeMap<Option<Asn>, Held>>,
    /// `(observer, prefix, origin)` triples already alarmed on, so a flapping
    /// conflict does not dominate alarm counts.
    alarmed: BTreeSet<(Asn, Ipv4Prefix, Asn)>,
}

impl MoasListDetector {
    /// A detector with empty state.
    #[must_use]
    pub fn new() -> Self {
        MoasListDetector::default()
    }
}

impl Detector for MoasListDetector {
    fn name(&self) -> &'static str {
        "moas-list"
    }

    fn observe(&mut self, obs: &RouteObservation, alarms: &mut Vec<DetectorAlarm>) {
        let slot = (obs.observer, obs.prefix);
        match &obs.kind {
            ObservationKind::Withdraw => {
                if let Some(held) = self.rib.get_mut(&slot) {
                    held.remove(&obs.from_peer);
                    if held.is_empty() {
                        self.rib.remove(&slot);
                    }
                }
            }
            ObservationKind::Announce {
                origin, moas_list, ..
            } => {
                let incoming = Held {
                    origin: *origin,
                    moas_list: moas_list.clone(),
                };
                let held = self.rib.entry(slot).or_default();
                let conflict = held.iter().any(|(peer, existing)| {
                    *peer != obs.from_peer && conflicts(&incoming, existing)
                });
                if conflict && self.alarmed.insert((obs.observer, obs.prefix, *origin)) {
                    alarms.push(DetectorAlarm {
                        time: obs.time,
                        observer: obs.observer,
                        prefix: obs.prefix,
                        origin: Some(*origin),
                        kind: AlarmKind::MoasConflict,
                    });
                }
                held.insert(obs.from_peer, incoming);
            }
        }
    }
}

/// The §4.2 pairwise check between an arriving and a held announcement.
fn conflicts(incoming: &Held, existing: &Held) -> bool {
    if incoming.origin == existing.origin {
        // Same origin can still disagree about the list (InconsistentLists).
        return match (&incoming.moas_list, &existing.moas_list) {
            (Some(a), Some(b)) => a != b,
            _ => false,
        };
    }
    let incoming_eff = incoming.effective();
    let existing_eff = existing.effective();
    // Mutual containment: each origin must be sanctioned by the other's list.
    if !incoming_eff.contains(&existing.origin) || !existing_eff.contains(&incoming.origin) {
        return true;
    }
    // Two explicit lists must be identical (§4.2's consistency requirement).
    matches!(
        (&incoming.moas_list, &existing.moas_list),
        (Some(a), Some(b)) if a != b
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Ipv4Prefix {
        "208.8.0.0/16".parse().unwrap()
    }

    fn announce(time: u64, peer: u32, origin: u32, list: Option<&[u32]>) -> RouteObservation {
        RouteObservation {
            time,
            observer: Asn(1),
            from_peer: Some(Asn(peer)),
            prefix: p(),
            kind: ObservationKind::Announce {
                origin: Asn(origin),
                moas_list: list.map(|l| l.iter().map(|&a| Asn(a)).collect()),
                communities: Vec::new(),
            },
        }
    }

    fn withdraw(time: u64, peer: u32) -> RouteObservation {
        RouteObservation {
            time,
            observer: Asn(1),
            from_peer: Some(Asn(peer)),
            prefix: p(),
            kind: ObservationKind::Withdraw,
        }
    }

    fn run(events: &[RouteObservation]) -> Vec<DetectorAlarm> {
        let mut d = MoasListDetector::new();
        let mut alarms = Vec::new();
        for e in events {
            d.observe(e, &mut alarms);
        }
        alarms
    }

    #[test]
    fn consistent_lists_raise_nothing() {
        let alarms = run(&[
            announce(1, 10, 4, Some(&[4, 226])),
            announce(2, 11, 226, Some(&[4, 226])),
        ]);
        assert!(alarms.is_empty());
    }

    #[test]
    fn origin_not_in_list_is_flagged_once() {
        let alarms = run(&[
            announce(1, 10, 4, Some(&[4])),
            announce(2, 11, 52, None),
            announce(3, 11, 52, None), // repeat: no second alarm
        ]);
        assert_eq!(alarms.len(), 1);
        assert_eq!(alarms[0].origin, Some(Asn(52)));
        assert_eq!(alarms[0].kind, AlarmKind::MoasConflict);
        assert_eq!(alarms[0].time, 2);
    }

    #[test]
    fn forged_list_with_self_still_conflicts_with_valid_list() {
        // Attacker 66 claims {4, 66}; the held valid list is {4}.
        let alarms = run(&[
            announce(1, 10, 4, Some(&[4])),
            announce(2, 11, 66, Some(&[4, 66])),
        ]);
        assert_eq!(alarms.len(), 1, "explicit lists disagree");
    }

    #[test]
    fn implicit_multihoming_failover_is_quiet_after_withdraw() {
        // Origin 4 withdrawn before origin 226 shows up: never simultaneous,
        // never conflicting.
        let alarms = run(&[
            announce(1, 10, 4, Some(&[4, 226])),
            withdraw(2, 10),
            announce(3, 11, 226, Some(&[4, 226])),
        ]);
        assert!(alarms.is_empty());
    }

    #[test]
    fn same_peer_replacement_does_not_self_conflict() {
        let alarms = run(&[announce(1, 10, 4, None), announce(2, 10, 5, None)]);
        assert!(
            alarms.is_empty(),
            "a peer replacing its own route is not a MOAS case"
        );
    }

    #[test]
    fn stripped_list_on_one_side_is_a_false_alarm_by_design() {
        // §4.3: both origins are valid, one announcement lost its list. The
        // passive detector cannot adjudicate; it must alarm.
        let alarms = run(&[
            announce(1, 10, 4, Some(&[4, 226])),
            announce(2, 11, 226, None),
        ]);
        assert_eq!(alarms.len(), 1);
    }

    #[test]
    fn alarm_kind_displays() {
        assert_eq!(AlarmKind::MoasConflict.to_string(), "moas-conflict");
        assert_eq!(AlarmKind::FlapSuppression.to_string(), "flap-suppression");
        assert_eq!(AlarmKind::CommunityAnomaly.to_string(), "community-anomaly");
    }
}
