//! Analysis of daily dumps: Figures 4 and 5 and the §3.1 statistics.

use std::collections::BTreeMap;
use std::fmt;

use bgp_types::Ipv4Prefix;

use crate::dump::DailyDump;

/// The Figure 4 series: number of MOAS conflicts per daily dump.
#[must_use]
pub fn daily_moas_counts(dumps: &[DailyDump]) -> Vec<usize> {
    dumps.iter().map(DailyDump::moas_count).collect()
}

/// The Figure 5 data: for every prefix ever observed in MOAS state, its
/// duration — "the total number of days when the routes to an address prefix
/// were announced by more than one origin, regardless of whether the days
/// were continuous and regardless of whether the same set of origins was
/// involved" — histogrammed as `duration → number of cases`.
#[must_use]
pub fn duration_histogram(dumps: &[DailyDump]) -> BTreeMap<u32, usize> {
    let mut days_per_prefix: BTreeMap<Ipv4Prefix, u32> = BTreeMap::new();
    for dump in dumps {
        for (prefix, _) in dump.moas_cases() {
            *days_per_prefix.entry(prefix).or_insert(0) += 1;
        }
    }
    let mut histogram: BTreeMap<u32, usize> = BTreeMap::new();
    for days in days_per_prefix.values() {
        *histogram.entry(*days).or_insert(0) += 1;
    }
    histogram
}

/// The median of a sample (mean of the middle pair for even lengths);
/// 0 for an empty sample.
#[must_use]
pub fn median(values: &[usize]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid] as f64
    } else {
        (sorted[mid - 1] + sorted[mid]) as f64 / 2.0
    }
}

/// Aggregate statistics over a collection period, mirroring every §3.1
/// number the paper reports.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasurementSummary {
    /// Distinct prefixes that were ever in MOAS state.
    pub total_cases: usize,
    /// Cases whose total MOAS duration was exactly one day.
    pub one_day_cases: usize,
    /// `one_day_cases / total_cases` (0 when there are no cases).
    pub one_day_fraction: f64,
    /// Of the one-day cases, how many had their single active day equal to
    /// the biggest spike day — the paper's "82.7% of these short-lived MOAS
    /// cases can be attributed to a configuration fault that occurred on
    /// April 7th, 1998".
    pub one_day_on_peak_spike: usize,
    /// Day index with the highest MOAS count.
    pub peak_day: u32,
    /// MOAS count on the peak day.
    pub peak_count: usize,
    /// Median daily count over the first 365 days (the paper's 1998 median
    /// was 683).
    pub median_first_year: f64,
    /// Median daily count over the last 365 days (the paper's 2001 median
    /// was 1294).
    pub median_last_year: f64,
    /// Distribution of the maximum origin-set size seen per case:
    /// `size → fraction of cases` (96.14% of the paper's cases were
    /// two-origin).
    pub origin_size_fractions: BTreeMap<usize, f64>,
    /// Largest number of simultaneous MOAS cases outside the peak day; the
    /// paper notes "less than 3,000 routes originate from multiple ASes".
    pub max_simultaneous: usize,
}

impl MeasurementSummary {
    /// Computes the summary from daily dumps.
    #[must_use]
    pub fn compute(dumps: &[DailyDump]) -> Self {
        let counts = daily_moas_counts(dumps);
        let (peak_day, peak_count) = counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .map(|(i, &c)| (i as u32, c))
            .unwrap_or((0, 0));

        // Per-prefix activity: total days, single active day (if any), and
        // the largest origin set ever observed.
        let mut days_per_prefix: BTreeMap<Ipv4Prefix, Vec<u32>> = BTreeMap::new();
        let mut max_origins: BTreeMap<Ipv4Prefix, usize> = BTreeMap::new();
        for dump in dumps {
            for (prefix, origins) in dump.moas_cases() {
                days_per_prefix.entry(prefix).or_default().push(dump.day());
                let entry = max_origins.entry(prefix).or_insert(0);
                *entry = (*entry).max(origins.len());
            }
        }

        let total_cases = days_per_prefix.len();
        let one_day: Vec<u32> = days_per_prefix
            .values()
            .filter(|days| days.len() == 1)
            .map(|days| days[0])
            .collect();
        let one_day_cases = one_day.len();
        let spike_day = peak_spike(dumps);
        let one_day_on_peak_spike = one_day.iter().filter(|&&d| d == spike_day).count();

        let mut size_counts: BTreeMap<usize, usize> = BTreeMap::new();
        for &size in max_origins.values() {
            *size_counts.entry(size).or_insert(0) += 1;
        }
        let origin_size_fractions = size_counts
            .into_iter()
            .map(|(size, n)| (size, n as f64 / total_cases.max(1) as f64))
            .collect();

        let year = 365.min(counts.len());
        MeasurementSummary {
            total_cases,
            one_day_cases,
            one_day_fraction: one_day_cases as f64 / total_cases.max(1) as f64,
            one_day_on_peak_spike,
            peak_day,
            peak_count,
            median_first_year: median(&counts[..year]),
            median_last_year: median(&counts[counts.len() - year..]),
            origin_size_fractions,
            max_simultaneous: counts.iter().copied().max().unwrap_or(0),
        }
    }

    /// Fraction of one-day cases attributable to the biggest spike day.
    #[must_use]
    pub fn one_day_spike_fraction(&self) -> f64 {
        self.one_day_on_peak_spike as f64 / self.one_day_cases.max(1) as f64
    }
}

impl fmt::Display for MeasurementSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} MOAS cases; {} ({:.1}%) lasted one day ({:.1}% of those on the day-{} spike)",
            self.total_cases,
            self.one_day_cases,
            100.0 * self.one_day_fraction,
            100.0 * self.one_day_spike_fraction(),
            self.peak_day,
        )?;
        write!(
            f,
            "daily median {:.0} (first year) -> {:.0} (last year); peak {} on day {}",
            self.median_first_year, self.median_last_year, self.peak_count, self.peak_day
        )
    }
}

/// The day with the largest *excess* of one-day activity: the spike day used
/// for attribution. For the calibrated timeline this is the 1998-04-07 fault
/// day. Falls back to the global peak day.
fn peak_spike(dumps: &[DailyDump]) -> u32 {
    let counts = daily_moas_counts(dumps);
    let mut best_day = 0u32;
    let mut best_excess = 0isize;
    for i in 0..counts.len() {
        let prev = if i == 0 { counts[i] } else { counts[i - 1] };
        let next = if i + 1 == counts.len() {
            counts[i]
        } else {
            counts[i + 1]
        };
        let baseline = prev.min(next);
        let excess = counts[i] as isize - baseline as isize;
        if excess > best_excess {
            best_excess = excess;
            best_day = i as u32;
        }
    }
    best_day
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::Asn;

    fn p(i: u32) -> Ipv4Prefix {
        Ipv4Prefix::new(i << 16, 16)
    }

    /// Three days; prefix 1 MOAS on all days, prefix 2 only on day 1.
    fn sample() -> Vec<DailyDump> {
        let mut dumps = Vec::new();
        for day in 0..3u32 {
            let mut d = DailyDump::new(day);
            d.observe(p(1), Asn(10));
            d.observe(p(1), Asn(11));
            if day == 1 {
                d.observe(p(2), Asn(20));
                d.observe(p(2), Asn(21));
                d.observe(p(2), Asn(22));
            }
            d.observe(p(3), Asn(30)); // never MOAS
            dumps.push(d);
        }
        dumps
    }

    #[test]
    fn daily_counts() {
        assert_eq!(daily_moas_counts(&sample()), vec![1, 2, 1]);
    }

    #[test]
    fn durations() {
        let hist = duration_histogram(&sample());
        assert_eq!(hist.get(&1), Some(&1)); // prefix 2
        assert_eq!(hist.get(&3), Some(&1)); // prefix 1
        assert_eq!(hist.len(), 2);
    }

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[3, 1, 2]), 2.0);
        assert_eq!(median(&[1, 2, 3, 4]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn summary_counts_cases_and_durations() {
        let s = MeasurementSummary::compute(&sample());
        assert_eq!(s.total_cases, 2);
        assert_eq!(s.one_day_cases, 1);
        assert!((s.one_day_fraction - 0.5).abs() < 1e-9);
        assert_eq!(s.peak_day, 1);
        assert_eq!(s.peak_count, 2);
        assert_eq!(s.max_simultaneous, 2);
        // Prefix 2's single day *is* the spike day.
        assert_eq!(s.one_day_on_peak_spike, 1);
        assert!((s.one_day_spike_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn origin_size_fractions_use_max_over_period() {
        let s = MeasurementSummary::compute(&sample());
        assert!((s.origin_size_fractions[&2] - 0.5).abs() < 1e-9);
        assert!((s.origin_size_fractions[&3] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_dumps_give_empty_summary() {
        let s = MeasurementSummary::compute(&[]);
        assert_eq!(s.total_cases, 0);
        assert_eq!(s.one_day_fraction, 0.0);
        assert_eq!(s.peak_count, 0);
    }

    #[test]
    fn display_is_informative() {
        let s = MeasurementSummary::compute(&sample()).to_string();
        assert!(s.contains("2 MOAS cases"));
        assert!(s.contains("one day"));
    }
}
