//! Daily routing-table dumps, reduced to origin observations.

use std::collections::{BTreeMap, BTreeSet};

use bgp_types::{Asn, Ipv4Prefix};

/// What one daily Route Views table dump contributes to the MOAS study: for
/// each prefix, the set of origin ASes observed announcing it that day.
///
/// The paper's footnote on methodology applies here too: the collector takes
/// *daily* snapshots, so any conflict shorter than the dump interval is
/// indistinguishable from a one-day case.
///
/// # Example
///
/// ```
/// use bgp_types::Asn;
/// use route_measurement::DailyDump;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut dump = DailyDump::new(0);
/// dump.observe("208.8.0.0/16".parse()?, Asn(4));
/// dump.observe("208.8.0.0/16".parse()?, Asn(226));
/// dump.observe("10.0.0.0/8".parse()?, Asn(701));
/// assert_eq!(dump.moas_count(), 1);
/// assert_eq!(dump.prefix_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DailyDump {
    day: u32,
    origins: BTreeMap<Ipv4Prefix, BTreeSet<Asn>>,
}

impl DailyDump {
    /// Creates an empty dump for day `day` (days count from the start of the
    /// collection period).
    #[must_use]
    pub fn new(day: u32) -> Self {
        DailyDump {
            day,
            origins: BTreeMap::new(),
        }
    }

    /// The day index of this dump.
    #[must_use]
    pub fn day(&self) -> u32 {
        self.day
    }

    /// Records that `origin` announced `prefix` in this dump.
    pub fn observe(&mut self, prefix: Ipv4Prefix, origin: Asn) {
        self.origins.entry(prefix).or_default().insert(origin);
    }

    /// Records every origin in `origins` for `prefix` with a single map
    /// lookup. An empty iterator records nothing — in particular it does
    /// not create an empty entry for `prefix`, so `prefix_count` matches a
    /// loop of [`DailyDump::observe`] calls exactly.
    pub fn observe_all(&mut self, prefix: Ipv4Prefix, origins: impl IntoIterator<Item = Asn>) {
        let mut origins = origins.into_iter();
        let Some(first) = origins.next() else { return };
        let set = self.origins.entry(prefix).or_default();
        set.insert(first);
        set.extend(origins);
    }

    /// Folds another dump's observations into this one (set union per
    /// prefix). Used by streaming importers that encounter one day's records
    /// in several runs; the day index of `other` is ignored.
    pub fn merge(&mut self, other: &DailyDump) {
        for (prefix, origins) in other.iter() {
            self.origins.entry(prefix).or_default().extend(origins);
        }
    }

    /// The origin set observed for a prefix (empty if unseen).
    #[must_use]
    pub fn origins_of(&self, prefix: Ipv4Prefix) -> BTreeSet<Asn> {
        self.origins.get(&prefix).cloned().unwrap_or_default()
    }

    /// Number of prefixes observed.
    #[must_use]
    pub fn prefix_count(&self) -> usize {
        self.origins.len()
    }

    /// Number of prefixes in MOAS state (more than one origin) — one point
    /// of Figure 4.
    #[must_use]
    pub fn moas_count(&self) -> usize {
        self.origins.values().filter(|set| set.len() > 1).count()
    }

    /// The prefixes in MOAS state, with their origin sets.
    pub fn moas_cases(&self) -> impl Iterator<Item = (Ipv4Prefix, &BTreeSet<Asn>)> {
        self.origins
            .iter()
            .filter(|(_, set)| set.len() > 1)
            .map(|(&prefix, set)| (prefix, set))
    }

    /// All observed prefixes with their origin sets.
    pub fn iter(&self) -> impl Iterator<Item = (Ipv4Prefix, &BTreeSet<Asn>)> {
        self.origins.iter().map(|(&prefix, set)| (prefix, set))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn observe_accumulates_origin_sets() {
        let mut d = DailyDump::new(3);
        d.observe(p("10.0.0.0/8"), Asn(1));
        d.observe(p("10.0.0.0/8"), Asn(1));
        d.observe(p("10.0.0.0/8"), Asn(2));
        assert_eq!(d.day(), 3);
        assert_eq!(d.origins_of(p("10.0.0.0/8")).len(), 2);
    }

    #[test]
    fn moas_count_ignores_single_origin_prefixes() {
        let mut d = DailyDump::new(0);
        d.observe(p("10.0.0.0/8"), Asn(1));
        d.observe(p("11.0.0.0/8"), Asn(1));
        d.observe(p("11.0.0.0/8"), Asn(2));
        assert_eq!(d.moas_count(), 1);
        let cases: Vec<_> = d.moas_cases().collect();
        assert_eq!(cases.len(), 1);
        assert_eq!(cases[0].0, p("11.0.0.0/8"));
    }

    #[test]
    fn unseen_prefix_has_empty_origins() {
        let d = DailyDump::new(0);
        assert!(d.origins_of(p("10.0.0.0/8")).is_empty());
        assert_eq!(d.prefix_count(), 0);
        assert_eq!(d.moas_count(), 0);
    }

    #[test]
    fn observe_all_matches_observe_loop() {
        let mut batched = DailyDump::new(0);
        batched.observe_all(p("10.0.0.0/8"), [Asn(1), Asn(2), Asn(1)]);
        batched.observe_all(p("11.0.0.0/8"), [Asn(3)]);
        batched.observe_all(p("12.0.0.0/8"), []);
        let mut looped = DailyDump::new(0);
        for (prefix, origin) in [
            (p("10.0.0.0/8"), Asn(1)),
            (p("10.0.0.0/8"), Asn(2)),
            (p("10.0.0.0/8"), Asn(1)),
            (p("11.0.0.0/8"), Asn(3)),
        ] {
            looped.observe(prefix, origin);
        }
        assert_eq!(batched, looped);
        assert_eq!(batched.prefix_count(), 2, "empty batch adds no prefix");
    }

    #[test]
    fn iter_covers_everything() {
        let mut d = DailyDump::new(0);
        d.observe(p("10.0.0.0/8"), Asn(1));
        d.observe(p("11.0.0.0/8"), Asn(2));
        assert_eq!(d.iter().count(), 2);
    }
}
