//! Communities-anomaly detection: origin changes judged by community weather.
//!
//! CommunityWatch's core observation is that BGP communities, although
//! opaque, are *consistent* per prefix: the set of communities accompanying a
//! prefix's announcements is stable over time, so an origin change whose
//! community set diverges from the learned baseline is suspicious even when
//! no MOAS list is present. This detector learns a per `(observer, prefix)`
//! baseline — the origins seen and the union of communities observed — during
//! a configurable learning window, then alarms on announcements from a *new*
//! origin whose communities are not a subset of the baseline.
//!
//! Honest failure modes, measured by the ensemble driver: a forged MOAS list
//! necessarily carries the attacker's own membership marker (never in the
//! baseline) and is caught; an attacker announcing with *no* communities at
//! all evades it; and rewrite-class transit policies shred the baseline and
//! cause false alarms.

use std::collections::{BTreeMap, BTreeSet};

use bgp_types::{Asn, Community, Ipv4Prefix};

use crate::detector::{AlarmKind, Detector, DetectorAlarm, ObservationKind, RouteObservation};

/// Tuning of the [`CommunitiesAnomalyDetector`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommunitiesConfig {
    /// Observations with `time` strictly below this feed the baseline;
    /// everything at or after it is judged against the baseline. Uses the
    /// stream's own time unit (ticks or days).
    pub learning_window: u64,
}

impl Default for CommunitiesConfig {
    fn default() -> Self {
        CommunitiesConfig {
            learning_window: 100,
        }
    }
}

/// Learned per `(observer, prefix)` baseline.
#[derive(Debug, Clone, Default)]
struct Baseline {
    origins: BTreeSet<Asn>,
    communities: BTreeSet<Community>,
}

/// The communities-anomaly [`Detector`].
#[derive(Debug, Clone, Default)]
pub struct CommunitiesAnomalyDetector {
    config: CommunitiesConfig,
    baselines: BTreeMap<(Asn, Ipv4Prefix), Baseline>,
    /// Deduplication: one alarm per `(observer, prefix, origin)`.
    alarmed: BTreeSet<(Asn, Ipv4Prefix, Asn)>,
}

impl CommunitiesAnomalyDetector {
    /// A detector with the given tuning.
    #[must_use]
    pub fn new(config: CommunitiesConfig) -> Self {
        CommunitiesAnomalyDetector {
            config,
            ..CommunitiesAnomalyDetector::default()
        }
    }

    /// The tuning in force.
    #[must_use]
    pub fn config(&self) -> &CommunitiesConfig {
        &self.config
    }
}

impl Detector for CommunitiesAnomalyDetector {
    fn name(&self) -> &'static str {
        "communities-anomaly"
    }

    fn observe(&mut self, obs: &RouteObservation, alarms: &mut Vec<DetectorAlarm>) {
        let ObservationKind::Announce {
            origin,
            communities,
            ..
        } = &obs.kind
        else {
            return; // withdrawals carry no communities to judge
        };
        let baseline = self
            .baselines
            .entry((obs.observer, obs.prefix))
            .or_default();
        if obs.time < self.config.learning_window {
            baseline.origins.insert(*origin);
            baseline.communities.extend(communities.iter().copied());
            return;
        }
        if baseline.origins.contains(origin) {
            return; // a known origin is never anomalous here
        }
        let divergent = communities
            .iter()
            .any(|c| !baseline.communities.contains(c));
        if divergent && self.alarmed.insert((obs.observer, obs.prefix, *origin)) {
            alarms.push(DetectorAlarm {
                time: obs.time,
                observer: obs.observer,
                prefix: obs.prefix,
                origin: Some(*origin),
                kind: AlarmKind::CommunityAnomaly,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Ipv4Prefix {
        "208.8.0.0/16".parse().unwrap()
    }

    fn announce(time: u64, origin: u32, communities: &[Community]) -> RouteObservation {
        RouteObservation {
            time,
            observer: Asn(1),
            from_peer: Some(Asn(10)),
            prefix: p(),
            kind: ObservationKind::Announce {
                origin: Asn(origin),
                moas_list: None,
                communities: communities.to_vec(),
            },
        }
    }

    fn run(events: &[RouteObservation]) -> Vec<DetectorAlarm> {
        let mut d = CommunitiesAnomalyDetector::default();
        let mut alarms = Vec::new();
        for e in events {
            d.observe(e, &mut alarms);
        }
        alarms
    }

    #[test]
    fn known_origin_with_new_communities_is_quiet() {
        let alarms = run(&[
            announce(0, 4, &[Community::moas_member(Asn(4))]),
            announce(150, 4, &[Community::new(Asn(701), 120)]),
        ]);
        assert!(alarms.is_empty());
    }

    #[test]
    fn forged_moas_list_marker_is_caught() {
        // The attacker's forged list must include its own membership marker,
        // which the baseline has never seen.
        let alarms = run(&[
            announce(0, 4, &[Community::moas_member(Asn(4))]),
            announce(
                150,
                66,
                &[
                    Community::moas_member(Asn(4)),
                    Community::moas_member(Asn(66)),
                ],
            ),
        ]);
        assert_eq!(alarms.len(), 1);
        assert_eq!(alarms[0].origin, Some(Asn(66)));
        assert_eq!(alarms[0].kind, AlarmKind::CommunityAnomaly);
    }

    #[test]
    fn bare_announcement_from_new_origin_evades() {
        // Honest miss: no communities at all means nothing diverges.
        let alarms = run(&[
            announce(0, 4, &[Community::moas_member(Asn(4))]),
            announce(150, 66, &[]),
        ]);
        assert!(alarms.is_empty());
    }

    #[test]
    fn new_origin_with_baseline_subset_is_quiet() {
        // A sibling AS announcing with the same community set as the
        // baseline: exactly the long-lived legitimate MOAS shape.
        let set = [
            Community::moas_member(Asn(4)),
            Community::moas_member(Asn(5)),
        ];
        let alarms = run(&[announce(0, 4, &set), announce(150, 5, &set)]);
        assert!(alarms.is_empty());
    }

    #[test]
    fn alarm_fires_once_per_origin() {
        let marker = [Community::moas_member(Asn(66))];
        let alarms = run(&[
            announce(0, 4, &[Community::moas_member(Asn(4))]),
            announce(150, 66, &marker),
            announce(160, 66, &marker),
        ]);
        assert_eq!(alarms.len(), 1);
    }

    #[test]
    fn learning_during_window_absorbs_everything() {
        // Both origins appear inside the window: no alarms ever, even with
        // disjoint community sets.
        let alarms = run(&[
            announce(0, 4, &[Community::new(Asn(701), 1)]),
            announce(50, 5, &[Community::new(Asn(702), 2)]),
            announce(150, 5, &[Community::new(Asn(703), 3)]),
        ]);
        assert!(alarms.is_empty());
    }

    #[test]
    fn config_is_exposed() {
        let d = CommunitiesAnomalyDetector::new(CommunitiesConfig { learning_window: 7 });
        assert_eq!(d.config().learning_window, 7);
    }
}
