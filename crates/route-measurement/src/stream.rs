//! The BGP update stream behind the daily dumps.
//!
//! Daily table snapshots (what Route Views archived in 1997-2001, and what
//! [`DailyDump`](crate::DailyDump) models) lose everything shorter than the
//! dump interval — the paper's own footnote 2 calls this out. This module
//! derives the *update-level* view: one [`OriginEvent`] per (prefix, origin)
//! appearance or disappearance, which is what an on-line monitoring process
//! (§4.2) would consume.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use bgp_types::{Asn, Ipv4Prefix};

use crate::dump::DailyDump;

/// What happened to a (prefix, origin) pair between two consecutive dumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OriginEventKind {
    /// The origin started announcing the prefix.
    Announced,
    /// The origin stopped announcing the prefix.
    Withdrawn,
}

/// One origin-level event in the reconstructed update stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OriginEvent {
    /// Day the change was first visible.
    pub day: u32,
    /// The affected prefix.
    pub prefix: Ipv4Prefix,
    /// The origin that appeared or disappeared.
    pub origin: Asn,
    /// Appearance or disappearance.
    pub kind: OriginEventKind,
    /// Number of distinct origins announcing the prefix *after* this event.
    pub origins_after: usize,
}

impl OriginEvent {
    /// Returns `true` if this event put the prefix into MOAS state
    /// (2 or more origins).
    #[must_use]
    pub fn enters_moas(&self) -> bool {
        self.kind == OriginEventKind::Announced && self.origins_after == 2
    }

    /// Returns `true` if this event took the prefix out of MOAS state.
    #[must_use]
    pub fn leaves_moas(&self) -> bool {
        self.kind == OriginEventKind::Withdrawn && self.origins_after == 1
    }
}

impl fmt::Display for OriginEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let verb = match self.kind {
            OriginEventKind::Announced => "announced by",
            OriginEventKind::Withdrawn => "withdrawn by",
        };
        write!(
            f,
            "day {}: {} {verb} {} ({} origins now)",
            self.day, self.prefix, self.origin, self.origins_after
        )
    }
}

/// Reconstructs the origin-level update stream from consecutive daily dumps:
/// a diff per day, in (day, prefix, origin) order.
///
/// # Example
///
/// ```
/// use bgp_types::Asn;
/// use route_measurement::{origin_events, DailyDump};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let prefix = "208.8.0.0/16".parse()?;
/// let mut day0 = DailyDump::new(0);
/// day0.observe(prefix, Asn(4));
/// let mut day1 = DailyDump::new(1);
/// day1.observe(prefix, Asn(4));
/// day1.observe(prefix, Asn(8584)); // the fault appears
///
/// let events = origin_events(&[day0, day1]);
/// assert_eq!(events.len(), 2); // day-0 appearance of AS4, day-1 of AS8584
/// assert!(events[1].enters_moas());
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn origin_events(dumps: &[DailyDump]) -> Vec<OriginEvent> {
    let mut tracker = OriginEventTracker::new();
    let mut events = Vec::new();
    for dump in dumps {
        tracker.advance(dump, &mut events);
    }
    events
}

/// Incremental form of [`origin_events`]: feed dumps one day at a time and
/// collect each day's events as they emerge.
///
/// Streaming consumers (an MRT importer walking an archive far larger than
/// memory) cannot hand the whole dump series to [`origin_events`]; this
/// tracker holds only the previous day's origin table — the working set is
/// one day regardless of archive length.
///
/// # Example
///
/// ```
/// use bgp_types::Asn;
/// use route_measurement::{DailyDump, OriginEventTracker};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let prefix = "208.8.0.0/16".parse()?;
/// let mut day0 = DailyDump::new(0);
/// day0.observe(prefix, Asn(4));
/// let mut day1 = DailyDump::new(1);
/// day1.observe(prefix, Asn(4));
/// day1.observe(prefix, Asn(8584));
///
/// let mut tracker = OriginEventTracker::new();
/// let mut events = Vec::new();
/// tracker.advance(&day0, &mut events);
/// tracker.advance(&day1, &mut events);
/// assert_eq!(events.len(), 2);
/// assert!(events[1].enters_moas());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct OriginEventTracker {
    previous: BTreeMap<Ipv4Prefix, BTreeSet<Asn>>,
}

impl OriginEventTracker {
    /// A tracker that has seen no dumps yet.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Diffs `dump` against the previously fed day, appending one event per
    /// (prefix, origin) appearance or disappearance to `events`.
    pub fn advance(&mut self, dump: &DailyDump, events: &mut Vec<OriginEvent>) {
        let mut current: BTreeMap<Ipv4Prefix, BTreeSet<Asn>> = BTreeMap::new();
        for (prefix, origins) in dump.iter() {
            current.insert(prefix, origins.clone());
        }

        let prefixes: BTreeSet<Ipv4Prefix> = self
            .previous
            .keys()
            .chain(current.keys())
            .copied()
            .collect();
        for prefix in prefixes {
            let empty = BTreeSet::new();
            let before = self.previous.get(&prefix).unwrap_or(&empty);
            let after = current.get(&prefix).unwrap_or(&empty);
            for &origin in after.difference(before) {
                events.push(OriginEvent {
                    day: dump.day(),
                    prefix,
                    origin,
                    kind: OriginEventKind::Announced,
                    origins_after: after.len(),
                });
            }
            for &origin in before.difference(after) {
                events.push(OriginEvent {
                    day: dump.day(),
                    prefix,
                    origin,
                    kind: OriginEventKind::Withdrawn,
                    origins_after: after.len(),
                });
            }
        }
        self.previous = current;
    }
}

/// Per-day count of prefixes *entering* MOAS state: the on-line alarm rate an
/// operator would see, as opposed to Figure 4's standing daily count.
#[must_use]
pub fn daily_moas_onsets(dumps: &[DailyDump]) -> BTreeMap<u32, usize> {
    let mut out = BTreeMap::new();
    for event in origin_events(dumps) {
        if event.enters_moas() {
            *out.entry(event.day).or_insert(0) += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::{generate_timeline, FaultEvent, TimelineConfig};

    fn p(i: u32) -> Ipv4Prefix {
        Ipv4Prefix::new(i << 16, 16)
    }

    #[test]
    fn empty_stream() {
        assert!(origin_events(&[]).is_empty());
    }

    #[test]
    fn appearance_and_disappearance_round_trip() {
        let mut d0 = DailyDump::new(0);
        d0.observe(p(1), Asn(10));
        d0.observe(p(1), Asn(11));
        let d1 = DailyDump::new(1); // everything withdrawn
        let events = origin_events(&[d0, d1]);
        assert_eq!(events.len(), 4);
        let announced = events
            .iter()
            .filter(|e| e.kind == OriginEventKind::Announced)
            .count();
        let withdrawn = events
            .iter()
            .filter(|e| e.kind == OriginEventKind::Withdrawn)
            .count();
        assert_eq!(announced, 2);
        assert_eq!(withdrawn, 2);
        assert!(events
            .iter()
            .any(|e| e.leaves_moas() || e.origins_after == 0));
    }

    #[test]
    fn moas_transitions_are_flagged() {
        let mut d0 = DailyDump::new(0);
        d0.observe(p(1), Asn(10));
        let mut d1 = DailyDump::new(1);
        d1.observe(p(1), Asn(10));
        d1.observe(p(1), Asn(11));
        let mut d2 = DailyDump::new(2);
        d2.observe(p(1), Asn(10));
        let events = origin_events(&[d0, d1, d2]);
        let onsets: Vec<&OriginEvent> = events.iter().filter(|e| e.enters_moas()).collect();
        assert_eq!(onsets.len(), 1);
        assert_eq!(onsets[0].day, 1);
        let offs: Vec<&OriginEvent> = events.iter().filter(|e| e.leaves_moas()).collect();
        assert_eq!(offs.len(), 1);
        assert_eq!(offs[0].day, 2);
    }

    #[test]
    fn fault_day_has_a_burst_of_onsets() {
        let config = TimelineConfig {
            days: 40,
            active_start: 30,
            active_end: 35,
            presence_prob: 1.0,
            churn_prob: 0.1,
            background_prefixes: 5,
            events: vec![FaultEvent {
                day: 20,
                faulty_as: Asn(8584),
                prefix_count: 25,
                duration_days: 1,
            }],
            modern: crate::timeline::ModernMoasConfig::default(),
            seed: 3,
        };
        let timeline = generate_timeline(&config);
        let onsets = daily_moas_onsets(&timeline.dumps);
        let spike = onsets.get(&20).copied().unwrap_or(0);
        assert!(spike >= 25, "onset spike {spike}");
        let quiet = onsets.get(&10).copied().unwrap_or(0);
        assert!(quiet < 5, "quiet day onsets {quiet}");
    }

    #[test]
    fn display_is_readable() {
        let e = OriginEvent {
            day: 150,
            prefix: p(1),
            origin: Asn(8584),
            kind: OriginEventKind::Announced,
            origins_after: 2,
        };
        let s = e.to_string();
        assert!(s.contains("day 150"));
        assert!(s.contains("AS8584"));
        assert!(s.contains("2 origins"));
    }
}
