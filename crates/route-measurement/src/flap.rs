//! RFC 2439 route-flap damping as an ensemble [`Detector`].
//!
//! The BGP flap-damping algorithm keeps a per-route instability penalty:
//! withdrawals and attribute changes add a fixed figure of merit, the total
//! decays exponentially with a configured half-life, and a route whose
//! penalty crosses the *suppress* threshold is suppressed until it decays
//! below the *reuse* threshold. As a MOAS-era detector it is the natural
//! "instability" baseline: it fires on churny origins regardless of whether
//! they carry a MOAS list — and, instructively, it is structurally blind to
//! a clean one-shot origin hijack (a single stable announcement never
//! accumulates penalty).
//!
//! The implementation decays lazily — the penalty is only brought forward to
//! the current time when an event arrives — which is algebraically identical
//! to the textbook per-increment sum. A differential test pins this against
//! a naive full-history reference model.

use std::collections::BTreeMap;

use bgp_types::{Asn, Ipv4Prefix};

use crate::detector::{AlarmKind, Detector, DetectorAlarm, ObservationKind, RouteObservation};

/// Tunable parameters of the RFC 2439 algorithm.
///
/// Thresholds follow the RFC's worked example shape (suppress at several
/// times the single-flap penalty, reuse well below it); the half-life is in
/// the same time unit as the observation stream.
#[derive(Debug, Clone, PartialEq)]
pub struct FlapDampingConfig {
    /// Exponential-decay half-life of the penalty, in stream time units.
    pub half_life: f64,
    /// Penalty added when an announced route is withdrawn (one flap).
    pub withdraw_penalty: f64,
    /// Penalty added when a re-announcement changes the route's attributes
    /// (RFC 2439 treats attribute change as a lesser instability event).
    pub change_penalty: f64,
    /// A route whose penalty reaches this is suppressed — the alarm event.
    pub suppress_threshold: f64,
    /// A suppressed route whose penalty decays below this is reused.
    pub reuse_threshold: f64,
}

impl Default for FlapDampingConfig {
    fn default() -> Self {
        FlapDampingConfig {
            half_life: 30.0,
            withdraw_penalty: 1.0,
            change_penalty: 0.5,
            suppress_threshold: 2.5,
            reuse_threshold: 0.75,
        }
    }
}

/// Per `(observer, prefix, peer)` damping state.
#[derive(Debug, Clone, Default)]
struct FlapState {
    penalty: f64,
    last: u64,
    suppressed: bool,
    /// Whether a route is currently announced (withdrawals of nothing are
    /// ignored, mirroring the router's actual Adj-RIB-In behaviour).
    announced: bool,
    /// Origin of the current (or last) announcement — the AS an alarm
    /// implicates.
    origin: Option<Asn>,
}

impl FlapState {
    /// Brings the penalty forward to `now` with exponential decay.
    fn decay_to(&mut self, now: u64, half_life: f64) {
        if now > self.last && self.penalty > 0.0 {
            let dt = (now - self.last) as f64;
            // Halve once per half-life elapsed.
            self.penalty *= (-dt / half_life).exp2();
        }
        self.last = now;
    }
}

/// The RFC 2439 flap-damping baseline detector.
#[derive(Debug, Clone)]
pub struct FlapDampingDetector {
    config: FlapDampingConfig,
    state: BTreeMap<(Asn, Ipv4Prefix, Option<Asn>), FlapState>,
}

impl FlapDampingDetector {
    /// A detector with the given tuning.
    #[must_use]
    pub fn new(config: FlapDampingConfig) -> Self {
        FlapDampingDetector {
            config,
            state: BTreeMap::new(),
        }
    }

    /// The tuning in force.
    #[must_use]
    pub fn config(&self) -> &FlapDampingConfig {
        &self.config
    }

    /// Current penalty for one `(observer, prefix, peer)` route, decayed to
    /// `now` — exposed for the differential reference test.
    #[must_use]
    pub fn penalty_at(
        &self,
        observer: Asn,
        prefix: Ipv4Prefix,
        peer: Option<Asn>,
        now: u64,
    ) -> f64 {
        let Some(state) = self.state.get(&(observer, prefix, peer)) else {
            return 0.0;
        };
        let mut copy = state.clone();
        copy.decay_to(now, self.config.half_life);
        copy.penalty
    }

    /// Applies suppress/reuse threshold crossings after a penalty update.
    fn check_thresholds(
        config: &FlapDampingConfig,
        state: &mut FlapState,
        obs: &RouteObservation,
        alarms: &mut Vec<DetectorAlarm>,
    ) {
        if !state.suppressed && state.penalty >= config.suppress_threshold {
            state.suppressed = true;
            alarms.push(DetectorAlarm {
                time: obs.time,
                observer: obs.observer,
                prefix: obs.prefix,
                origin: state.origin,
                kind: AlarmKind::FlapSuppression,
            });
        } else if state.suppressed && state.penalty < config.reuse_threshold {
            // Reuse is silent: the route is simply usable again.
            state.suppressed = false;
        }
    }
}

impl Default for FlapDampingDetector {
    fn default() -> Self {
        FlapDampingDetector::new(FlapDampingConfig::default())
    }
}

impl Detector for FlapDampingDetector {
    fn name(&self) -> &'static str {
        "flap-damping"
    }

    fn observe(&mut self, obs: &RouteObservation, alarms: &mut Vec<DetectorAlarm>) {
        let key = (obs.observer, obs.prefix, obs.from_peer);
        let state = self.state.entry(key).or_default();
        state.decay_to(obs.time, self.config.half_life);
        match &obs.kind {
            ObservationKind::Withdraw => {
                if !state.announced {
                    return;
                }
                state.announced = false;
                state.penalty += self.config.withdraw_penalty;
                Self::check_thresholds(&self.config, state, obs, alarms);
            }
            ObservationKind::Announce { origin, .. } => {
                let changed = state.announced && state.origin != Some(*origin);
                state.announced = true;
                state.origin = Some(*origin);
                if changed {
                    state.penalty += self.config.change_penalty;
                    Self::check_thresholds(&self.config, state, obs, alarms);
                } else if state.suppressed && state.penalty < self.config.reuse_threshold {
                    state.suppressed = false;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Ipv4Prefix {
        "208.8.0.0/16".parse().unwrap()
    }

    fn announce(time: u64, origin: u32) -> RouteObservation {
        RouteObservation {
            time,
            observer: Asn(1),
            from_peer: Some(Asn(10)),
            prefix: p(),
            kind: ObservationKind::Announce {
                origin: Asn(origin),
                moas_list: None,
                communities: Vec::new(),
            },
        }
    }

    fn withdraw(time: u64) -> RouteObservation {
        RouteObservation {
            time,
            observer: Asn(1),
            from_peer: Some(Asn(10)),
            prefix: p(),
            kind: ObservationKind::Withdraw,
        }
    }

    #[test]
    fn stable_route_never_alarms() {
        let mut d = FlapDampingDetector::default();
        let mut alarms = Vec::new();
        d.observe(&announce(0, 4), &mut alarms);
        d.observe(&announce(500, 4), &mut alarms);
        assert!(alarms.is_empty());
        assert_eq!(d.penalty_at(Asn(1), p(), Some(Asn(10)), 500), 0.0);
    }

    #[test]
    fn rapid_flapping_crosses_the_suppress_threshold_once() {
        let mut d = FlapDampingDetector::default();
        let mut alarms = Vec::new();
        for i in 0..4u64 {
            d.observe(&announce(2 * i, 4), &mut alarms);
            d.observe(&withdraw(2 * i + 1), &mut alarms);
        }
        assert_eq!(alarms.len(), 1, "one suppression alarm, not one per flap");
        assert_eq!(alarms[0].kind, AlarmKind::FlapSuppression);
        assert_eq!(alarms[0].origin, Some(Asn(4)));
    }

    #[test]
    fn penalty_decays_with_the_half_life() {
        let mut d = FlapDampingDetector::default();
        let mut alarms = Vec::new();
        d.observe(&announce(0, 4), &mut alarms);
        d.observe(&withdraw(10), &mut alarms);
        let now = 10 + d.config().half_life as u64;
        let decayed = d.penalty_at(Asn(1), p(), Some(Asn(10)), now);
        assert!(
            (decayed - 0.5).abs() < 1e-9,
            "one half-life after a 1.0 penalty: got {decayed}"
        );
    }

    #[test]
    fn suppressed_route_is_reused_after_decay() {
        let config = FlapDampingConfig::default();
        let half_life = config.half_life;
        let mut d = FlapDampingDetector::new(config);
        let mut alarms = Vec::new();
        for i in 0..4u64 {
            d.observe(&announce(2 * i, 4), &mut alarms);
            d.observe(&withdraw(2 * i + 1), &mut alarms);
        }
        assert_eq!(alarms.len(), 1);
        // Long quiet period: penalty decays below reuse; the next flap starts
        // a fresh cycle and can alarm again.
        let quiet = 7 + (half_life * 10.0) as u64;
        for i in 0..4u64 {
            d.observe(&announce(quiet + 2 * i, 4), &mut alarms);
            d.observe(&withdraw(quiet + 2 * i + 1), &mut alarms);
        }
        assert_eq!(alarms.len(), 2, "a second suppression cycle must alarm");
    }

    #[test]
    fn origin_change_counts_as_attribute_change() {
        let mut d = FlapDampingDetector::default();
        let mut alarms = Vec::new();
        // Origin ping-pong without withdrawals: only change penalties, 0.5
        // each, so the 2.5 suppress threshold needs six-plus quick changes.
        for i in 0..9u64 {
            d.observe(&announce(i, 4 + (i % 2) as u32), &mut alarms);
        }
        assert_eq!(alarms.len(), 1);
        assert!(alarms[0].origin.is_some());
    }

    #[test]
    fn withdraw_of_nothing_is_ignored() {
        let mut d = FlapDampingDetector::default();
        let mut alarms = Vec::new();
        d.observe(&withdraw(5), &mut alarms);
        assert!(alarms.is_empty());
        assert_eq!(d.penalty_at(Asn(1), p(), Some(Asn(10)), 5), 0.0);
    }
}
