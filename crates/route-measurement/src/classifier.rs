//! Heuristic valid/invalid classification of observed MOAS cases.
//!
//! §3 of the paper separates MOAS causes by observable signatures: long
//! duration suggests legitimate multi-homing; "a large number of MOAS cases
//! in a single day are most likely caused by faults", especially when the
//! same AS appears across many of them (AS 8584 in 1998, AS 15412 in 2001).
//! This module turns those observations into an executable classifier and —
//! because the synthetic timeline carries ground-truth causes — lets the
//! reproduction *measure* how well the paper's reasoning separates the two
//! populations.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use bgp_types::{Asn, Ipv4Prefix};

use crate::dump::DailyDump;
use crate::timeline::{CaseRecord, Cause};

/// The classifier's verdict for one observed MOAS case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Judged a legitimate (multi-homing style) MOAS.
    Valid,
    /// Judged a fault or attack.
    Invalid,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Verdict::Valid => "valid",
            Verdict::Invalid => "invalid",
        })
    }
}

/// Tunable thresholds of the §3 heuristic.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifierConfig {
    /// Cases lasting at least this many days are presumed legitimate
    /// ("valid MOAS due to multi-homing tend to be long lasting").
    pub long_lived_days: u32,
    /// An origin AS involved in at least this many cases that all began on
    /// the same day marks those cases as a mass fault (the AS 8584 /
    /// AS 15412 signature).
    pub mass_fault_threshold: usize,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        ClassifierConfig {
            long_lived_days: 30,
            mass_fault_threshold: 20,
        }
    }
}

/// One classified case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassifiedCase {
    /// The prefix of the case.
    pub prefix: Ipv4Prefix,
    /// Total days observed in MOAS state.
    pub duration: u32,
    /// First day observed in MOAS state.
    pub first_day: u32,
    /// All origins observed while in MOAS state.
    pub origins: BTreeSet<Asn>,
    /// The classifier's verdict.
    pub verdict: Verdict,
}

/// Classifies every MOAS case visible in the dumps.
#[must_use]
pub fn classify(dumps: &[DailyDump], config: &ClassifierConfig) -> Vec<ClassifiedCase> {
    // Gather per-prefix observations.
    struct Obs {
        days: u32,
        first_day: u32,
        origins: BTreeSet<Asn>,
    }
    let mut observations: BTreeMap<Ipv4Prefix, Obs> = BTreeMap::new();
    for dump in dumps {
        for (prefix, origins) in dump.moas_cases() {
            let obs = observations.entry(prefix).or_insert(Obs {
                days: 0,
                first_day: dump.day(),
                origins: BTreeSet::new(),
            });
            obs.days += 1;
            obs.origins.extend(origins.iter().copied());
        }
    }

    // Mass-fault detection: (origin, first_day) pairs covering many cases.
    let mut per_origin_day: BTreeMap<(Asn, u32), usize> = BTreeMap::new();
    for obs in observations.values() {
        for &origin in &obs.origins {
            *per_origin_day.entry((origin, obs.first_day)).or_insert(0) += 1;
        }
    }
    let mass_faulters: BTreeSet<(Asn, u32)> = per_origin_day
        .into_iter()
        .filter(|&(_, count)| count >= config.mass_fault_threshold)
        .map(|(key, _)| key)
        .collect();

    observations
        .into_iter()
        .map(|(prefix, obs)| {
            let mass = obs
                .origins
                .iter()
                .any(|&origin| mass_faulters.contains(&(origin, obs.first_day)));
            let verdict = if mass {
                Verdict::Invalid
            } else if obs.days >= config.long_lived_days {
                Verdict::Valid
            } else {
                // Short-lived and not part of a mass event: §3 considers
                // these "unintended behavior" — lean invalid.
                Verdict::Invalid
            };
            ClassifiedCase {
                prefix,
                duration: obs.days,
                first_day: obs.first_day,
                origins: obs.origins,
                verdict,
            }
        })
        .collect()
}

/// Accuracy of a classification against generator ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassifierScore {
    /// Cases whose verdict matched the ground-truth cause validity.
    pub correct: usize,
    /// All scored cases.
    pub total: usize,
    /// Invalid cases correctly flagged / all truly invalid cases.
    pub invalid_recall: f64,
    /// Correctly flagged invalid / all flagged invalid.
    pub invalid_precision: f64,
}

impl ClassifierScore {
    /// Overall accuracy.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }
}

impl fmt::Display for ClassifierScore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "accuracy {:.1}% ({} of {}), invalid precision {:.1}% recall {:.1}%",
            100.0 * self.accuracy(),
            self.correct,
            self.total,
            100.0 * self.invalid_precision,
            100.0 * self.invalid_recall
        )
    }
}

/// Scores a classification against the generator's ground-truth causes.
/// Cases absent from the ground truth are skipped.
#[must_use]
pub fn score(classified: &[ClassifiedCase], truth: &[CaseRecord]) -> ClassifierScore {
    let truth_by_prefix: BTreeMap<Ipv4Prefix, &CaseRecord> =
        truth.iter().map(|c| (c.prefix, c)).collect();
    let mut correct = 0usize;
    let mut total = 0usize;
    let mut true_invalid = 0usize;
    let mut flagged_invalid = 0usize;
    let mut hit_invalid = 0usize;

    for case in classified {
        let Some(record) = truth_by_prefix.get(&case.prefix) else {
            continue;
        };
        total += 1;
        let actually_invalid = !record.cause.is_valid() || record.cause == Cause::Churn;
        let judged_invalid = case.verdict == Verdict::Invalid;
        if actually_invalid {
            true_invalid += 1;
        }
        if judged_invalid {
            flagged_invalid += 1;
        }
        if actually_invalid == judged_invalid {
            correct += 1;
            if actually_invalid {
                hit_invalid += 1;
            }
        }
    }
    ClassifierScore {
        correct,
        total,
        invalid_recall: hit_invalid as f64 / true_invalid.max(1) as f64,
        invalid_precision: hit_invalid as f64 / flagged_invalid.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::{generate_timeline, FaultEvent, TimelineConfig};

    fn test_timeline() -> crate::timeline::GeneratedTimeline {
        generate_timeline(&TimelineConfig {
            days: 200,
            active_start: 120,
            active_end: 140,
            presence_prob: 1.0,
            churn_prob: 0.3,
            background_prefixes: 10,
            events: vec![FaultEvent {
                day: 100,
                faulty_as: Asn(8584),
                prefix_count: 60,
                duration_days: 1,
            }],
            modern: crate::timeline::ModernMoasConfig::default(),
            seed: 17,
        })
    }

    #[test]
    fn mass_fault_cases_are_flagged_invalid() {
        let timeline = test_timeline();
        let classified = classify(&timeline.dumps, &ClassifierConfig::default());
        let fault_prefixes: BTreeSet<Ipv4Prefix> = timeline
            .cases
            .iter()
            .filter(|c| matches!(c.cause, Cause::Fault(_)))
            .map(|c| c.prefix)
            .collect();
        for case in classified
            .iter()
            .filter(|c| fault_prefixes.contains(&c.prefix))
        {
            assert_eq!(case.verdict, Verdict::Invalid, "{}", case.prefix);
        }
    }

    #[test]
    fn long_lived_multihoming_is_judged_valid() {
        let timeline = test_timeline();
        let classified = classify(&timeline.dumps, &ClassifierConfig::default());
        let long_valid = classified
            .iter()
            .filter(|c| c.duration >= 100)
            .collect::<Vec<_>>();
        assert!(!long_valid.is_empty());
        for case in long_valid {
            assert_eq!(case.verdict, Verdict::Valid, "{}", case.prefix);
        }
    }

    #[test]
    fn classifier_separates_the_populations_well() {
        let timeline = test_timeline();
        let classified = classify(&timeline.dumps, &ClassifierConfig::default());
        let s = score(&classified, &timeline.cases);
        assert!(s.total > 100, "scored {} cases", s.total);
        assert!(s.accuracy() > 0.85, "{s}");
        assert!(s.invalid_recall > 0.9, "{s}");
        assert!(s.invalid_precision > 0.85, "{s}");
    }

    #[test]
    fn thresholds_change_verdicts() {
        let timeline = test_timeline();
        let strict = classify(
            &timeline.dumps,
            &ClassifierConfig {
                long_lived_days: 1_000_000,
                mass_fault_threshold: 20,
            },
        );
        // With an unreachable long-lived bar, nothing is judged valid.
        assert!(strict.iter().all(|c| c.verdict == Verdict::Invalid));
    }

    #[test]
    fn empty_input_scores_perfectly() {
        let s = score(&[], &[]);
        assert_eq!(s.accuracy(), 1.0);
        assert_eq!(s.total, 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Verdict::Valid.to_string(), "valid");
        let s = ClassifierScore {
            correct: 9,
            total: 10,
            invalid_recall: 1.0,
            invalid_precision: 0.9,
        };
        assert!(s.to_string().contains("90.0%"));
    }
}
