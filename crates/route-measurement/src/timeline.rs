//! Calibrated synthetic announcement timeline: the Route Views stand-in.

use std::collections::BTreeSet;

use bgp_types::{Asn, Ipv4Prefix};
use rand::Rng;

use crate::dump::DailyDump;

/// Why a MOAS case exists — the ground-truth cause taxonomy of §3.2/§3.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cause {
    /// Legitimate multi-homing (BGP peering plus static configuration, or
    /// private-AS substitution on egress). Long-lasting.
    Multihoming,
    /// Exchange-point prefixes advertised by several connected ASes; a small
    /// population in the paper's data.
    ExchangePoint,
    /// Short-lived operational churn (brief reconfigurations).
    Churn,
    /// Anycast service: one organization originating the same prefix from
    /// several sites under distinct ASNs, simultaneously and indefinitely
    /// (Sediqi et al. 2023 — the dominant long-lived legitimate MOAS class
    /// the 2002 paper could not anticipate).
    Anycast,
    /// Sibling ASes: two ASNs of the same organization co-originating,
    /// typically numerically adjacent registrations.
    Sibling,
    /// CDN origin handoff: the prefix alternates between two origins with a
    /// configured dwell time, both visible only on handoff days.
    CdnHandoff,
    /// A fault or attack: the named AS announced prefixes it cannot reach.
    Fault(Asn),
}

impl Cause {
    /// Returns `true` for causes where packets still reach the destination
    /// (valid MOAS, §3.2) and `false` for faults (§3.3).
    #[must_use]
    pub fn is_valid(self) -> bool {
        !matches!(self, Cause::Fault(_))
    }
}

/// A mass-misorigination event, like AS 8584 on 1998-04-07 or the
/// (AS 3561, AS 15412) event on 2001-04-06.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Day index (from the start of collection) the event begins.
    pub day: u32,
    /// The AS that falsely originates other organizations' prefixes.
    pub faulty_as: Asn,
    /// How many prefixes it misoriginates.
    pub prefix_count: usize,
    /// How many consecutive days the bad announcements persist.
    pub duration_days: u32,
}

/// Ground truth for one generated MOAS case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseRecord {
    /// The affected prefix (unique per case in the generator).
    pub prefix: Ipv4Prefix,
    /// The full origin set observed while the case is active.
    pub origins: BTreeSet<Asn>,
    /// Why the conflict exists.
    pub cause: Cause,
    /// Every day the prefix was observed with multiple origins.
    pub active_days: Vec<u32>,
}

impl CaseRecord {
    /// The paper's duration metric: "the total number of days when the routes
    /// to an address prefix were announced by more than one origin,
    /// regardless of whether the days were continuous".
    #[must_use]
    pub fn duration(&self) -> u32 {
        self.active_days.len() as u32
    }
}

/// Knobs for the long-lived legitimate MOAS behaviours of the modern
/// literature (Sediqi et al. 2023). The default is all-zero, which reproduces
/// the 2002-era generator exactly — both the dump contents and the RNG
/// consumption sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModernMoasConfig {
    /// Permanent anycast cases spawned on day 0.
    pub anycast_cases: usize,
    /// Origin-set size of each anycast case (clamped to at least 2).
    pub anycast_set_size: usize,
    /// Fraction of newly birthed long-lived cases converted into permanent
    /// sibling-AS pairs (two adjacent ASNs, one organization).
    pub sibling_fraction: f64,
    /// Permanent CDN-handoff cases spawned on day 0.
    pub cdn_cases: usize,
    /// Days each CDN origin holds the prefix before handing off (clamped to
    /// at least 1 when `cdn_cases > 0`).
    pub cdn_dwell_days: u32,
}

impl Default for ModernMoasConfig {
    fn default() -> Self {
        ModernMoasConfig {
            anycast_cases: 0,
            anycast_set_size: 3,
            sibling_fraction: 0.0,
            cdn_cases: 0,
            cdn_dwell_days: 7,
        }
    }
}

/// Configuration of the synthetic collection period.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineConfig {
    /// Length of the collection period in days (the paper's is 1279).
    pub days: u32,
    /// Target number of simultaneously active long-lived MOAS cases on day 0
    /// (the paper's 1998 median is 683).
    pub active_start: usize,
    /// Target active count on the final day (the paper's 2001 median: 1294).
    pub active_end: usize,
    /// Probability an active long-lived case is visible in a given daily dump
    /// (models collector and announcement jitter).
    pub presence_prob: f64,
    /// Probability a new short-lived churn case appears on a given day.
    pub churn_prob: f64,
    /// Count of single-origin background prefixes included in each dump, to
    /// exercise the analysis' filtering (real tables had tens of thousands;
    /// a token population keeps dumps small).
    pub background_prefixes: usize,
    /// Mass-misorigination events.
    pub events: Vec<FaultEvent>,
    /// Long-lived legitimate MOAS behaviours (anycast, siblings, CDN
    /// handoffs). Zero by default: the 2002-era generator unchanged.
    pub modern: ModernMoasConfig,
    /// Master RNG seed.
    pub seed: u64,
}

impl TimelineConfig {
    /// The configuration calibrated to the paper's reported statistics.
    ///
    /// Day 0 is 1997-11-08; day 150 is 1998-04-07 (the AS 8584 event,
    /// ~1135 one-day misoriginations — 82.7% of the one-day case
    /// population); day 1245 is 2001-04-06 (the (AS 3561, AS 15412) event,
    /// 5532 misoriginated prefixes against a ~1100-case background,
    /// matching the paper's "5532 out of 6627" for that day; archived RIPE
    /// RIS data shows the instability spanned more than one dump, so it is
    /// modeled as two days and therefore does not inflate the one-day
    /// duration bucket).
    #[must_use]
    pub fn paper() -> Self {
        TimelineConfig {
            days: 1279,
            active_start: 683,
            active_end: 1294,
            presence_prob: 0.985,
            churn_prob: 0.55,
            background_prefixes: 200,
            events: vec![
                FaultEvent {
                    day: 150,
                    faulty_as: Asn(8584),
                    prefix_count: 1135,
                    duration_days: 1,
                },
                FaultEvent {
                    day: 1245,
                    faulty_as: Asn(15_412),
                    prefix_count: 5532,
                    duration_days: 2,
                },
            ],
            modern: ModernMoasConfig::default(),
            seed: 0x1998_0407,
        }
    }

    /// Shortens the period (events beyond the horizon are dropped); useful
    /// for fast tests.
    #[must_use]
    pub fn with_days(mut self, days: u32) -> Self {
        self.days = days;
        self.events.retain(|e| e.day < days);
        self
    }

    /// Replaces the event list.
    #[must_use]
    pub fn with_events(mut self, events: Vec<FaultEvent>) -> Self {
        self.events = events;
        self
    }

    /// Replaces the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables the modern long-lived MOAS behaviours.
    #[must_use]
    pub fn with_modern(mut self, modern: ModernMoasConfig) -> Self {
        self.modern = modern;
        self
    }
}

impl Default for TimelineConfig {
    fn default() -> Self {
        TimelineConfig::paper()
    }
}

/// A generated collection period: the observable daily dumps plus the ground
/// truth that produced them.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedTimeline {
    /// One dump per day, in day order.
    pub dumps: Vec<DailyDump>,
    /// Ground truth for every MOAS case (the analysis code never sees this;
    /// tests use it to validate the analysis).
    pub cases: Vec<CaseRecord>,
}

/// Internal: a case being simulated forward.
struct LiveCase {
    prefix: Ipv4Prefix,
    origins: BTreeSet<Asn>,
    cause: Cause,
    ends_on: u32, // exclusive; u32::MAX = permanent
    active_days: Vec<u32>,
}

/// Generates the synthetic collection period.
///
/// The process per §3's taxonomy:
///
/// * a **long-lived multihoming population** is birthed so the active count
///   tracks a linear ramp from `active_start` to `active_end` (25% of cases
///   permanent, the rest 60-700 days — Figure 5's long tail);
/// * **short churn** cases appear with probability `churn_prob` per day and
///   last 1-3 days;
/// * each [`FaultEvent`] misoriginates `prefix_count` fresh prefixes for
///   `duration_days` days (Figure 4's spikes);
/// * origin-set sizes follow the paper's split: 96.14% two origins, 2.7%
///   three, the remainder four or five.
#[must_use]
pub fn generate_timeline(config: &TimelineConfig) -> GeneratedTimeline {
    let mut rng = sim_engine::rng::from_seed(config.seed);
    let mut next_prefix_index: u32 = 0;
    let mut live: Vec<LiveCase> = Vec::new();
    let mut finished: Vec<CaseRecord> = Vec::new();
    let mut dumps: Vec<DailyDump> = Vec::with_capacity(config.days as usize);

    let new_prefix = |next: &mut u32| {
        let p = Ipv4Prefix::new(*next << 11, 21);
        *next += 1;
        p
    };

    // Owner/ISP ASN pools. Owners are edge organizations; extra origins are
    // ISPs announcing statically configured customer space (§3.2).
    let owner_asn = |rng: &mut rand::rngs::SmallRng| Asn(rng.gen_range(3_000..60_000));
    let isp_asn = |rng: &mut rand::rngs::SmallRng| Asn(rng.gen_range(1..1_500));

    let spawn_multihoming = |rng: &mut rand::rngs::SmallRng, next: &mut u32, day: u32| {
        let mut origins = BTreeSet::new();
        origins.insert(owner_asn(rng));
        // §3.1: 96.14% of cases involve 2 ASes, 2.7% three, the rest more.
        let roll: f64 = rng.gen();
        let extra = if roll < 0.9614 {
            1
        } else if roll < 0.9884 {
            2
        } else {
            3 + usize::from(rng.gen::<bool>())
        };
        while origins.len() < extra + 1 {
            origins.insert(isp_asn(rng));
        }
        let permanent = rng.gen::<f64>() < 0.45;
        let ends_on = if permanent {
            u32::MAX
        } else {
            day + rng.gen_range(250..1100)
        };
        LiveCase {
            prefix: new_prefix(next),
            origins,
            cause: Cause::Multihoming,
            ends_on,
            active_days: Vec::new(),
        }
    };

    // Fixed background of single-origin prefixes (never MOAS).
    let background: Vec<(Ipv4Prefix, Asn)> = (0..config.background_prefixes)
        .map(|_| (new_prefix(&mut next_prefix_index), owner_asn(&mut rng)))
        .collect();

    for day in 0..config.days {
        // Retire cases whose lifetime ended.
        for case in live.extract_if(.., |c| c.ends_on <= day) {
            finished.push(CaseRecord {
                prefix: case.prefix,
                origins: case.origins,
                cause: case.cause,
                active_days: case.active_days,
            });
        }

        // Modern long-lived legitimate MOAS (Sediqi et al.): permanent
        // anycast sets and CDN handoff pairs join the population on day 0,
        // before the ramp births, so they count toward the same target.
        if day == 0 {
            for _ in 0..config.modern.anycast_cases {
                let mut origins = BTreeSet::new();
                while origins.len() < config.modern.anycast_set_size.max(2) {
                    origins.insert(owner_asn(&mut rng));
                }
                live.push(LiveCase {
                    prefix: new_prefix(&mut next_prefix_index),
                    origins,
                    cause: Cause::Anycast,
                    ends_on: u32::MAX,
                    active_days: Vec::new(),
                });
            }
            for _ in 0..config.modern.cdn_cases {
                let owner = owner_asn(&mut rng);
                let cdn = isp_asn(&mut rng);
                let origins: BTreeSet<Asn> = [owner, cdn].into_iter().collect();
                live.push(LiveCase {
                    prefix: new_prefix(&mut next_prefix_index),
                    origins,
                    cause: Cause::CdnHandoff,
                    ends_on: u32::MAX,
                    active_days: Vec::new(),
                });
            }
        }

        // Birth long-lived cases toward the linear ramp target.
        let target = config.active_start as f64
            + (config.active_end as f64 - config.active_start as f64) * f64::from(day)
                / f64::from(config.days.max(2) - 1);
        let long_lived_now = live
            .iter()
            .filter(|c| {
                matches!(
                    c.cause,
                    Cause::Multihoming
                        | Cause::ExchangePoint
                        | Cause::Anycast
                        | Cause::Sibling
                        | Cause::CdnHandoff
                )
            })
            .count();
        for _ in long_lived_now..(target.round() as usize) {
            // A small slice of the long-lived population is exchange-point
            // space (§3.2: "a very small percentage").
            let mut case = spawn_multihoming(&mut rng, &mut next_prefix_index, day);
            if rng.gen::<f64>() < 0.01 {
                case.cause = Cause::ExchangePoint;
            }
            // Sibling conversion (guarded so a zero fraction consumes no RNG
            // draws and the legacy stream is bit-identical).
            if config.modern.sibling_fraction > 0.0
                && case.cause == Cause::Multihoming
                && rng.gen::<f64>() < config.modern.sibling_fraction
            {
                let base = owner_asn(&mut rng);
                case.origins = [base, Asn(base.0 + 1)].into_iter().collect();
                case.cause = Cause::Sibling;
                case.ends_on = u32::MAX;
            }
            live.push(case);
        }

        // Short operational churn.
        if sim_engine::rng::coin(&mut rng, config.churn_prob) {
            let mut case = spawn_multihoming(&mut rng, &mut next_prefix_index, day);
            case.cause = Cause::Churn;
            case.ends_on = day + rng.gen_range(1..=3);
            live.push(case);
        }

        // Fault events: fresh victim prefixes misoriginated by the faulty AS.
        for event in &config.events {
            if event.day == day {
                for _ in 0..event.prefix_count {
                    let owner = owner_asn(&mut rng);
                    let origins: BTreeSet<Asn> = [owner, event.faulty_as].into_iter().collect();
                    live.push(LiveCase {
                        prefix: new_prefix(&mut next_prefix_index),
                        origins,
                        cause: Cause::Fault(event.faulty_as),
                        ends_on: day + event.duration_days,
                        active_days: Vec::new(),
                    });
                }
            }
        }

        // Materialize today's dump.
        let mut dump = DailyDump::new(day);
        for (prefix, origin) in &background {
            dump.observe(*prefix, *origin);
        }
        for case in &mut live {
            // CDN handoff cases are deterministic: one origin holds the
            // prefix per dwell period; both are visible only on the handoff
            // day itself, which is the only day the case is in MOAS state.
            if case.cause == Cause::CdnHandoff {
                let dwell = config.modern.cdn_dwell_days.max(1);
                let handoff = day > 0 && day % dwell == 0;
                if handoff {
                    for &origin in &case.origins {
                        dump.observe(case.prefix, origin);
                    }
                    case.active_days.push(day);
                } else {
                    let phase = ((day / dwell) % 2) as usize;
                    if let Some(&holder) = case.origins.iter().nth(phase) {
                        dump.observe(case.prefix, holder);
                    }
                }
                continue;
            }
            let present = match case.cause {
                // Fault announcements are loud and unmissable.
                Cause::Fault(_) => true,
                _ => sim_engine::rng::coin(&mut rng, config.presence_prob),
            };
            if present {
                for &origin in &case.origins {
                    dump.observe(case.prefix, origin);
                }
                case.active_days.push(day);
            } else {
                // The prefix is still announced, just by a single origin today.
                if let Some(&first) = case.origins.iter().next() {
                    dump.observe(case.prefix, first);
                }
            }
        }
        dumps.push(dump);
    }

    // Flush still-live cases into the record.
    for case in live {
        finished.push(CaseRecord {
            prefix: case.prefix,
            origins: case.origins,
            cause: case.cause,
            active_days: case.active_days,
        });
    }
    finished.retain(|c| !c.active_days.is_empty());
    finished.sort_by_key(|c| c.prefix);

    GeneratedTimeline {
        dumps,
        cases: finished,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> TimelineConfig {
        TimelineConfig {
            days: 60,
            active_start: 50,
            active_end: 80,
            presence_prob: 1.0,
            churn_prob: 0.3,
            background_prefixes: 10,
            events: vec![FaultEvent {
                day: 30,
                faulty_as: Asn(8584),
                prefix_count: 40,
                duration_days: 1,
            }],
            modern: ModernMoasConfig::default(),
            seed: 7,
        }
    }

    fn quick_modern() -> TimelineConfig {
        TimelineConfig {
            modern: ModernMoasConfig {
                anycast_cases: 5,
                anycast_set_size: 4,
                sibling_fraction: 0.3,
                cdn_cases: 3,
                cdn_dwell_days: 7,
            },
            ..quick()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate_timeline(&quick()), generate_timeline(&quick()));
    }

    #[test]
    fn dump_count_matches_days() {
        let t = generate_timeline(&quick());
        assert_eq!(t.dumps.len(), 60);
        for (i, d) in t.dumps.iter().enumerate() {
            assert_eq!(d.day(), i as u32);
        }
    }

    #[test]
    fn active_count_tracks_ramp() {
        let t = generate_timeline(&quick());
        let first = t.dumps.first().unwrap().moas_count();
        let last = t.dumps.last().unwrap().moas_count();
        assert!((45..=60).contains(&first), "first day count {first}");
        assert!((72..=95).contains(&last), "last day count {last}");
    }

    #[test]
    fn fault_day_spikes() {
        let t = generate_timeline(&quick());
        let normal = t.dumps[29].moas_count();
        let spike = t.dumps[30].moas_count();
        assert!(spike >= normal + 35, "spike {spike} vs normal {normal}");
        // The spike is gone the next day.
        assert!(t.dumps[31].moas_count() < normal + 10);
    }

    #[test]
    fn fault_cases_have_two_origins_and_correct_cause() {
        let t = generate_timeline(&quick());
        let faults: Vec<&CaseRecord> = t
            .cases
            .iter()
            .filter(|c| matches!(c.cause, Cause::Fault(_)))
            .collect();
        assert_eq!(faults.len(), 40);
        for f in faults {
            assert_eq!(f.origins.len(), 2);
            assert!(f.origins.contains(&Asn(8584)));
            assert_eq!(f.duration(), 1);
            assert!(!f.cause.is_valid());
        }
    }

    #[test]
    fn origin_set_sizes_match_paper_split() {
        let mut config = TimelineConfig::paper().with_days(200).with_events(vec![]);
        config.active_start = 800;
        config.active_end = 900;
        let t = generate_timeline(&config);
        let total = t.cases.len();
        let two = t.cases.iter().filter(|c| c.origins.len() == 2).count();
        let three = t.cases.iter().filter(|c| c.origins.len() == 3).count();
        let frac2 = two as f64 / total as f64;
        let frac3 = three as f64 / total as f64;
        assert!((0.94..0.98).contains(&frac2), "2-origin fraction {frac2}");
        assert!((0.01..0.05).contains(&frac3), "3-origin fraction {frac3}");
        assert!(t.cases.iter().all(|c| c.origins.len() <= 5));
    }

    #[test]
    fn events_past_horizon_are_dropped_by_with_days() {
        let config = TimelineConfig::paper().with_days(100);
        assert!(config.events.is_empty());
        let config = TimelineConfig::paper().with_days(200);
        assert_eq!(config.events.len(), 1);
    }

    #[test]
    fn churn_cases_are_short() {
        let t = generate_timeline(&quick());
        for c in t.cases.iter().filter(|c| c.cause == Cause::Churn) {
            assert!(c.duration() <= 3);
        }
    }

    #[test]
    fn case_prefixes_are_unique() {
        let t = generate_timeline(&quick());
        let mut prefixes: Vec<Ipv4Prefix> = t.cases.iter().map(|c| c.prefix).collect();
        let before = prefixes.len();
        prefixes.dedup();
        assert_eq!(prefixes.len(), before);
    }

    #[test]
    fn default_modern_config_changes_nothing() {
        // The all-zero modern config must not even perturb the RNG stream.
        let legacy = generate_timeline(&quick());
        let modern_off = generate_timeline(&TimelineConfig {
            modern: ModernMoasConfig {
                anycast_cases: 0,
                sibling_fraction: 0.0,
                cdn_cases: 0,
                ..ModernMoasConfig::default()
            },
            ..quick()
        });
        assert_eq!(legacy, modern_off);
    }

    #[test]
    fn anycast_cases_are_permanent_with_configured_set_size() {
        let t = generate_timeline(&quick_modern());
        let anycast: Vec<&CaseRecord> = t
            .cases
            .iter()
            .filter(|c| c.cause == Cause::Anycast)
            .collect();
        assert_eq!(anycast.len(), 5);
        for c in anycast {
            assert_eq!(c.origins.len(), 4);
            assert!(c.cause.is_valid());
            // presence_prob = 1.0 in quick(): active every single day.
            assert_eq!(c.duration(), 60);
        }
    }

    #[test]
    fn sibling_cases_use_adjacent_asns() {
        let t = generate_timeline(&quick_modern());
        let siblings: Vec<&CaseRecord> = t
            .cases
            .iter()
            .filter(|c| c.cause == Cause::Sibling)
            .collect();
        assert!(!siblings.is_empty(), "0.3 fraction must convert some cases");
        for c in siblings {
            assert_eq!(c.origins.len(), 2);
            let origins: Vec<Asn> = c.origins.iter().copied().collect();
            assert_eq!(origins[1].0, origins[0].0 + 1, "{origins:?}");
            assert!(c.cause.is_valid());
        }
    }

    #[test]
    fn cdn_cases_are_moas_only_on_handoff_days() {
        let t = generate_timeline(&quick_modern());
        let cdn: Vec<&CaseRecord> = t
            .cases
            .iter()
            .filter(|c| c.cause == Cause::CdnHandoff)
            .collect();
        assert_eq!(cdn.len(), 3);
        for c in cdn {
            assert_eq!(c.origins.len(), 2);
            // Handoffs at days 7, 14, ..., 56 within the 60-day horizon.
            assert_eq!(c.active_days, vec![7, 14, 21, 28, 35, 42, 49, 56]);
            // Every day shows at least one origin, never a third.
            for d in &t.dumps {
                let origins = d.origins_of(c.prefix);
                assert!(!origins.is_empty(), "day {} lost the prefix", d.day());
                assert!(origins.is_subset(&c.origins));
            }
        }
    }

    #[test]
    fn modern_generation_is_deterministic() {
        assert_eq!(
            generate_timeline(&quick_modern()),
            generate_timeline(&quick_modern())
        );
    }

    #[test]
    fn background_prefixes_are_never_moas() {
        let t = generate_timeline(&quick());
        // Background occupies the first `background_prefixes` prefix slots.
        for d in &t.dumps {
            for (prefix, origins) in d.iter() {
                if origins.len() > 1 {
                    assert!(
                        t.cases.iter().any(|c| c.prefix == prefix),
                        "MOAS prefix {prefix} not in ground truth"
                    );
                }
            }
        }
    }
}
