//! Differential test of the RFC 2439 flap-damping detector against a naive
//! full-history reference.
//!
//! The production detector decays its penalty lazily (brought forward once
//! per event). The reference model below instead keeps every penalty
//! increment with its timestamp and recomputes the decayed sum from scratch
//! at each query — the textbook formulation. The two are algebraically
//! identical; this test pins that equivalence (penalties within 1e-9 and the
//! exact same alarm sequence) over arbitrary observation streams.

use std::collections::BTreeMap;

use bgp_types::{Asn, Ipv4Prefix};
use proptest::prelude::*;
use route_measurement::{
    Detector, DetectorAlarm, FlapDampingConfig, FlapDampingDetector, ObservationKind,
    RouteObservation,
};

/// Naive reference: every penalty increment is kept with its timestamp and
/// the decayed total is recomputed as a sum over the full history.
#[derive(Default)]
struct RefState {
    increments: Vec<(u64, f64)>,
    announced: bool,
    origin: Option<Asn>,
    suppressed: bool,
}

struct ReferenceModel {
    config: FlapDampingConfig,
    state: BTreeMap<(Asn, Ipv4Prefix, Option<Asn>), RefState>,
}

impl ReferenceModel {
    fn new(config: FlapDampingConfig) -> Self {
        ReferenceModel {
            config,
            state: BTreeMap::new(),
        }
    }

    fn penalty_at(&self, key: (Asn, Ipv4Prefix, Option<Asn>), now: u64) -> f64 {
        let Some(state) = self.state.get(&key) else {
            return 0.0;
        };
        Self::penalty_of(&self.config, state, now)
    }

    fn penalty_of(config: &FlapDampingConfig, state: &RefState, now: u64) -> f64 {
        state
            .increments
            .iter()
            .map(|&(t, p)| p * (-((now - t) as f64) / config.half_life).exp2())
            .sum()
    }

    fn observe(&mut self, obs: &RouteObservation, alarms: &mut Vec<DetectorAlarm>) {
        let key = (obs.observer, obs.prefix, obs.from_peer);
        let state = self.state.entry(key).or_default();
        match &obs.kind {
            ObservationKind::Withdraw => {
                if !state.announced {
                    return;
                }
                state.announced = false;
                state
                    .increments
                    .push((obs.time, self.config.withdraw_penalty));
                Self::check_thresholds(&self.config, state, obs, alarms);
            }
            ObservationKind::Announce { origin, .. } => {
                let changed = state.announced && state.origin != Some(*origin);
                state.announced = true;
                state.origin = Some(*origin);
                if changed {
                    state
                        .increments
                        .push((obs.time, self.config.change_penalty));
                    Self::check_thresholds(&self.config, state, obs, alarms);
                } else if state.suppressed
                    && Self::penalty_of(&self.config, state, obs.time) < self.config.reuse_threshold
                {
                    state.suppressed = false;
                }
            }
        }
    }

    fn check_thresholds(
        config: &FlapDampingConfig,
        state: &mut RefState,
        obs: &RouteObservation,
        alarms: &mut Vec<DetectorAlarm>,
    ) {
        let penalty = Self::penalty_of(config, state, obs.time);
        if !state.suppressed && penalty >= config.suppress_threshold {
            state.suppressed = true;
            alarms.push(DetectorAlarm {
                time: obs.time,
                observer: obs.observer,
                prefix: obs.prefix,
                origin: state.origin,
                kind: route_measurement::AlarmKind::FlapSuppression,
            });
        } else if state.suppressed && penalty < config.reuse_threshold {
            state.suppressed = false;
        }
    }
}

/// One generated stream event, before timestamps are accumulated.
#[derive(Debug, Clone)]
struct RawEvent {
    dt: u64,
    observer: u32,
    peer: u32,
    /// `None` = withdraw, `Some(origin)` = announce from that origin.
    origin: Option<u32>,
}

fn raw_event() -> impl Strategy<Value = RawEvent> {
    (
        0u64..=15,
        0u32..2,
        0u32..2,
        prop_oneof![Just(None), (1u32..4).prop_map(Some)],
    )
        .prop_map(|(dt, observer, peer, origin)| RawEvent {
            dt,
            observer,
            peer,
            origin,
        })
}

fn prefix() -> Ipv4Prefix {
    "208.8.0.0/16".parse().unwrap()
}

fn to_observations(raw: &[RawEvent]) -> Vec<RouteObservation> {
    let mut now = 0u64;
    raw.iter()
        .map(|e| {
            now += e.dt;
            RouteObservation {
                time: now,
                observer: Asn(100 + e.observer),
                from_peer: Some(Asn(200 + e.peer)),
                prefix: prefix(),
                kind: match e.origin {
                    None => ObservationKind::Withdraw,
                    Some(origin) => ObservationKind::Announce {
                        origin: Asn(origin),
                        moas_list: None,
                        communities: Vec::new(),
                    },
                },
            }
        })
        .collect()
}

proptest! {
    /// The lazy-decay detector and the full-history reference agree on every
    /// alarm and on the decayed penalty of every route at every event time.
    #[test]
    fn lazy_decay_matches_full_history_reference(raw in prop::collection::vec(raw_event(), 0..60)) {
        let config = FlapDampingConfig::default();
        let mut detector = FlapDampingDetector::new(config.clone());
        let mut reference = ReferenceModel::new(config);
        let mut detector_alarms = Vec::new();
        let mut reference_alarms = Vec::new();

        let observations = to_observations(&raw);
        for obs in &observations {
            detector.observe(obs, &mut detector_alarms);
            reference.observe(obs, &mut reference_alarms);

            // Penalties agree for every tracked route, at this instant.
            for key in reference.state.keys() {
                let lazy = detector.penalty_at(key.0, key.1, key.2, obs.time);
                let naive = reference.penalty_at(*key, obs.time);
                prop_assert!(
                    (lazy - naive).abs() < 1e-9,
                    "penalty diverged at t={}: lazy {lazy} vs naive {naive}",
                    obs.time
                );
            }
        }
        prop_assert_eq!(detector_alarms, reference_alarms);
    }

    /// A single clean announcement — the one-shot hijack shape — never
    /// accumulates penalty in either model, whatever came before on *other*
    /// routes.
    #[test]
    fn one_shot_announcement_stays_penalty_free(raw in prop::collection::vec(raw_event(), 0..40)) {
        let mut detector = FlapDampingDetector::default();
        let mut alarms = Vec::new();
        for obs in to_observations(&raw) {
            detector.observe(&obs, &mut alarms);
        }
        // A fresh route (never seen observer) announced once: zero penalty.
        let t = 10_000;
        let fresh = RouteObservation {
            time: t,
            observer: Asn(999),
            from_peer: Some(Asn(998)),
            prefix: prefix(),
            kind: ObservationKind::Announce {
                origin: Asn(666),
                moas_list: None,
                communities: Vec::new(),
            },
        };
        let before = alarms.len();
        detector.observe(&fresh, &mut alarms);
        prop_assert_eq!(alarms.len(), before, "one-shot announcement alarmed");
        prop_assert_eq!(detector.penalty_at(Asn(999), prefix(), Some(Asn(998)), t), 0.0);
    }
}
