//! Property tests for the long-lived legitimate MOAS generators (anycast,
//! sibling, CDN handoff): whatever the knobs, the generated cases must not
//! overlap or contradict their own ground truth.

use std::collections::BTreeSet;

use bgp_types::Ipv4Prefix;
use proptest::prelude::*;
use route_measurement::{
    generate_timeline, Cause, GeneratedTimeline, ModernMoasConfig, TimelineConfig,
};

fn modern_config() -> impl Strategy<Value = TimelineConfig> {
    (
        30u32..80,    // days
        0usize..4,    // anycast cases
        2usize..5,    // anycast set size
        0u32..=100,   // sibling fraction, in percent
        0usize..4,    // cdn cases
        1u32..10,     // cdn dwell days
        0usize..8,    // background prefixes
        any::<u64>(), // seed
    )
        .prop_map(
            |(days, anycast, set_size, sibling, cdn, dwell, background, seed)| TimelineConfig {
                days,
                active_start: (days / 4) as usize,
                active_end: (days / 2) as usize,
                // Deterministic presence: every live MOAS case is visible
                // every day, so duration properties are exact.
                presence_prob: 1.0,
                churn_prob: 0.2,
                background_prefixes: background,
                events: Vec::new(),
                modern: ModernMoasConfig {
                    anycast_cases: anycast,
                    anycast_set_size: set_size,
                    sibling_fraction: f64::from(sibling) / 100.0,
                    cdn_cases: cdn,
                    cdn_dwell_days: dwell,
                },
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No two generated cases ever share a prefix: timelines cannot overlap
    /// and fabricate conflicts the ground truth does not record.
    #[test]
    fn case_prefixes_are_unique(config in modern_config()) {
        let GeneratedTimeline { cases, .. } = generate_timeline(&config);
        let distinct: BTreeSet<Ipv4Prefix> = cases.iter().map(|c| c.prefix).collect();
        prop_assert_eq!(distinct.len(), cases.len(), "duplicate case prefix");
    }

    /// Every origin observed in any dump for a case's prefix is sanctioned
    /// by that case's ground-truth origin set — the generators never leak a
    /// conflicting origin onto someone else's timeline.
    #[test]
    fn observed_origins_stay_within_ground_truth(config in modern_config()) {
        let GeneratedTimeline { dumps, cases } = generate_timeline(&config);
        for case in &cases {
            for dump in &dumps {
                for (prefix, origins) in dump.moas_cases() {
                    if prefix == case.prefix {
                        prop_assert!(
                            origins.is_subset(&case.origins),
                            "day {}: {prefix} observed {origins:?} beyond {:?} ({:?})",
                            dump.day(),
                            case.origins,
                            case.cause
                        );
                    }
                }
            }
        }
    }

    /// CDN handoff alternates between exactly two origins: any single day
    /// shows at most two (both only on handoff days), and the case's
    /// lifetime origin set is exactly two.
    #[test]
    fn cdn_handoff_shows_at_most_two_origins_per_day(config in modern_config()) {
        let GeneratedTimeline { dumps, cases } = generate_timeline(&config);
        for case in cases.iter().filter(|c| c.cause == Cause::CdnHandoff) {
            prop_assert_eq!(case.origins.len(), 2, "CDN case has two origins total");
            for dump in &dumps {
                for (prefix, origins) in dump.moas_cases() {
                    if prefix == case.prefix {
                        prop_assert!(
                            origins.len() <= 2,
                            "day {}: CDN case {prefix} showed {} origins",
                            dump.day(),
                            origins.len()
                        );
                    }
                }
            }
        }
    }

    /// Anycast and sibling cases are persistent: under full presence they
    /// stay in MOAS state from birth to the end of collection — the modern
    /// long-lived population the §3 duration heuristic judges valid. Sibling
    /// pairs are additionally numerically adjacent registrations, and
    /// anycast sets have the configured size.
    #[test]
    fn anycast_and_sibling_cases_are_long_lived(config in modern_config()) {
        let GeneratedTimeline { cases, .. } = generate_timeline(&config);
        for case in cases
            .iter()
            .filter(|c| matches!(c.cause, Cause::Anycast | Cause::Sibling))
        {
            let first = *case.active_days.first().expect("cases have active days");
            let last = *case.active_days.last().expect("cases have active days");
            prop_assert_eq!(
                last,
                config.days - 1,
                "{:?} case {} went quiet before the end",
                case.cause,
                case.prefix
            );
            prop_assert_eq!(
                case.duration(),
                last - first + 1,
                "{:?} case {} has gaps under full presence",
                case.cause,
                case.prefix
            );
            match case.cause {
                Cause::Anycast => {
                    prop_assert_eq!(first, 0, "anycast spawns on day 0");
                    prop_assert_eq!(
                        case.origins.len(),
                        config.modern.anycast_set_size.max(2)
                    );
                }
                _ => {
                    let mut origins = case.origins.iter();
                    let (a, b) = (origins.next().unwrap(), origins.next().unwrap());
                    prop_assert_eq!(case.origins.len(), 2);
                    prop_assert_eq!(b.0, a.0 + 1, "sibling ASNs are adjacent");
                }
            }
        }
    }
}
