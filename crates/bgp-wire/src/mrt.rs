//! RFC 6396 MRT record framing.
//!
//! Covers the records the MOAS pipeline consumes and produces:
//!
//! * `TABLE_DUMP_V2` / `PEER_INDEX_TABLE` — the collector's peer roster;
//! * `TABLE_DUMP_V2` / `RIB_IPV4_UNICAST` and `RIB_IPV6_UNICAST` — one
//!   prefix with the route each peer held for it (a daily Route Views table
//!   snapshot);
//! * `BGP4MP` / `MESSAGE` and `MESSAGE_AS4` — individual BGP UPDATEs in
//!   flight, wrapping the [`crate::bgp`] codec.
//!
//! [`MrtReader`] and [`MrtWriter`] work over any [`io::Read`] /
//! [`io::Write`]. Reading arbitrary bytes never panics; errors carry the
//! absolute byte offset within the stream.

use std::io;

use bgp_types::Asn;
use bgp_types::{Ipv4Prefix, Ipv6Prefix};

use crate::bgp::{self, AsnEncoding, Cursor, PathAttributes, UpdateMessage};
use crate::error::{WireError, WireErrorKind};

/// MRT type `TABLE_DUMP_V2`.
pub const TYPE_TABLE_DUMP_V2: u16 = 13;
/// MRT type `BGP4MP`.
pub const TYPE_BGP4MP: u16 = 16;
/// `TABLE_DUMP_V2` subtype `PEER_INDEX_TABLE`.
pub const SUBTYPE_PEER_INDEX_TABLE: u16 = 1;
/// `TABLE_DUMP_V2` subtype `RIB_IPV4_UNICAST`.
pub const SUBTYPE_RIB_IPV4_UNICAST: u16 = 2;
/// `TABLE_DUMP_V2` subtype `RIB_IPV6_UNICAST`.
pub const SUBTYPE_RIB_IPV6_UNICAST: u16 = 4;
/// `BGP4MP` subtype `BGP4MP_MESSAGE` (2-octet ASNs).
pub const SUBTYPE_BGP4MP_MESSAGE: u16 = 1;
/// `BGP4MP` subtype `BGP4MP_MESSAGE_AS4` (4-octet ASNs).
pub const SUBTYPE_BGP4MP_MESSAGE_AS4: u16 = 4;

/// Largest MRT record body this reader accepts (matches the BGP message cap
/// plus generous framing headroom; real TABLE_DUMP_V2 records are far
/// smaller). Keeps a corrupt length field from provoking a huge allocation.
pub const MAX_RECORD_LEN: u32 = 1 << 20;

/// One peer in a `PEER_INDEX_TABLE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerEntry {
    /// The peer's BGP identifier.
    pub bgp_id: u32,
    /// The peer's IPv4 address.
    pub addr: u32,
    /// The peer's AS number.
    pub asn: Asn,
}

/// A `PEER_INDEX_TABLE` record: the roster RIB entries index into.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PeerIndexTable {
    /// The collector's BGP identifier.
    pub collector_id: u32,
    /// The optional view name (empty for the default view).
    pub view_name: String,
    /// The peers, in index order.
    pub peers: Vec<PeerEntry>,
}

/// One peer's route inside a [`RibIpv4Unicast`] record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RibEntry {
    /// Index into the current [`PeerIndexTable`].
    pub peer_index: u16,
    /// When the route was originated (seconds, same clock as the record
    /// timestamp).
    pub originated_time: u32,
    /// The route's path attributes (always 4-octet ASNs, per RFC 6396).
    pub attrs: PathAttributes,
}

/// A `RIB_IPV4_UNICAST` record: every peer's route for one prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RibIpv4Unicast {
    /// Record sequence number.
    pub sequence: u32,
    /// The prefix.
    pub prefix: Ipv4Prefix,
    /// One entry per peer that held a route.
    pub entries: Vec<RibEntry>,
}

/// A `RIB_IPV6_UNICAST` record: every peer's route for one IPv6 prefix.
///
/// Entries reuse [`RibEntry`]; per RFC 6396 §4.3.4 their `MP_REACH_NLRI`
/// attribute is abbreviated to `<next-hop length, next hop>` and the prefix
/// lives here in the record header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RibIpv6Unicast {
    /// Record sequence number.
    pub sequence: u32,
    /// The prefix.
    pub prefix: Ipv6Prefix,
    /// One entry per peer that held a route.
    pub entries: Vec<RibEntry>,
}

/// A `BGP4MP_MESSAGE` / `BGP4MP_MESSAGE_AS4` record: one BGP message as
/// exchanged between two peers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bgp4mpMessage {
    /// The sending peer's AS.
    pub peer_asn: Asn,
    /// The receiving (collector-side) AS.
    pub local_asn: Asn,
    /// The sending peer's IPv4 address.
    pub peer_addr: u32,
    /// The receiving side's IPv4 address.
    pub local_addr: u32,
    /// The BGP UPDATE carried in the record.
    pub message: UpdateMessage,
}

impl Bgp4mpMessage {
    /// Whether the record needs the `_AS4` subtype (any ASN above 16 bits).
    #[must_use]
    pub fn needs_as4(&self) -> bool {
        fn wide(asn: Asn) -> bool {
            asn.0 > u32::from(u16::MAX)
        }
        wide(self.peer_asn)
            || wide(self.local_asn)
            || self
                .message
                .attrs
                .as_ref()
                .is_some_and(|a| a.as_path.iter().any(wide))
    }
}

/// The body of one MRT record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MrtBody {
    /// `TABLE_DUMP_V2` / `PEER_INDEX_TABLE`.
    PeerIndexTable(PeerIndexTable),
    /// `TABLE_DUMP_V2` / `RIB_IPV4_UNICAST`.
    RibIpv4Unicast(RibIpv4Unicast),
    /// `TABLE_DUMP_V2` / `RIB_IPV6_UNICAST`.
    RibIpv6Unicast(RibIpv6Unicast),
    /// `BGP4MP` / `MESSAGE` or `MESSAGE_AS4` (chosen on encode by
    /// [`Bgp4mpMessage::needs_as4`]).
    Bgp4mpMessage(Bgp4mpMessage),
}

/// One MRT record: a timestamp and a body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MrtRecord {
    /// Seconds since the Unix epoch (exports encode simulated days; see
    /// [`crate::DAY_ZERO_UNIX`]).
    pub timestamp: u32,
    /// The record body.
    pub body: MrtBody,
}

impl MrtRecord {
    /// Encodes the record, MRT header included.
    ///
    /// # Errors
    ///
    /// Fails if a contained BGP message fails to encode (e.g. a 2-octet
    /// `BGP4MP_MESSAGE` with a wide ASN, which the writer avoids by
    /// selecting `_AS4` automatically) or a length does not fit its wire
    /// field ([`WireErrorKind::LengthOverflow`] — never silent truncation).
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut out = Vec::new();
        self.encode_into(&mut out)?;
        Ok(out)
    }

    /// Appends the encoded record to `out` without intermediate per-record
    /// allocations: the body is written in place and the header's length
    /// field backpatched. On error `out` is restored to its previous
    /// length, so a failed record never corrupts a batch buffer.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`MrtRecord::encode`].
    pub fn encode_into(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        let start = out.len();
        self.encode_into_unguarded(out)
            .inspect_err(|_| out.truncate(start))
    }

    fn encode_into_unguarded(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        let (mrt_type, subtype) = match &self.body {
            MrtBody::PeerIndexTable(_) => (TYPE_TABLE_DUMP_V2, SUBTYPE_PEER_INDEX_TABLE),
            MrtBody::RibIpv4Unicast(_) => (TYPE_TABLE_DUMP_V2, SUBTYPE_RIB_IPV4_UNICAST),
            MrtBody::RibIpv6Unicast(_) => (TYPE_TABLE_DUMP_V2, SUBTYPE_RIB_IPV6_UNICAST),
            MrtBody::Bgp4mpMessage(msg) => (
                TYPE_BGP4MP,
                if msg.needs_as4() {
                    SUBTYPE_BGP4MP_MESSAGE_AS4
                } else {
                    SUBTYPE_BGP4MP_MESSAGE
                },
            ),
        };
        out.extend_from_slice(&self.timestamp.to_be_bytes());
        out.extend_from_slice(&mrt_type.to_be_bytes());
        out.extend_from_slice(&subtype.to_be_bytes());
        let len_at = out.len();
        out.extend_from_slice(&[0u8; 4]);
        match &self.body {
            MrtBody::PeerIndexTable(table) => encode_peer_index_table(out, table)?,
            MrtBody::RibIpv4Unicast(rib) => encode_rib(out, rib)?,
            MrtBody::RibIpv6Unicast(rib) => encode_rib6(out, rib)?,
            MrtBody::Bgp4mpMessage(msg) => {
                encode_bgp4mp(out, msg, subtype == SUBTYPE_BGP4MP_MESSAGE_AS4)?;
            }
        }
        let body_len = out.len() - len_at - 4;
        let body_len = u32::try_from(body_len).map_err(|_| {
            WireError::new(
                WireErrorKind::LengthOverflow {
                    field: "MRT record body",
                    length: body_len,
                    max: u32::MAX as usize,
                },
                0,
            )
        })?;
        out[len_at..len_at + 4].copy_from_slice(&body_len.to_be_bytes());
        Ok(())
    }
}

fn encode_peer_index_table(out: &mut Vec<u8>, table: &PeerIndexTable) -> Result<(), WireError> {
    out.extend_from_slice(&table.collector_id.to_be_bytes());
    let name = table.view_name.as_bytes();
    out.extend_from_slice(
        &bgp::checked_u16("peer index table view name", name.len())?.to_be_bytes(),
    );
    out.extend_from_slice(name);
    out.extend_from_slice(&bgp::checked_u16("peer count", table.peers.len())?.to_be_bytes());
    for peer in &table.peers {
        // Peer type 0x02: IPv4 address, 4-octet AS number.
        out.push(0x02);
        out.extend_from_slice(&peer.bgp_id.to_be_bytes());
        out.extend_from_slice(&peer.addr.to_be_bytes());
        out.extend_from_slice(&peer.asn.0.to_be_bytes());
    }
    Ok(())
}

fn encode_rib_entries(out: &mut Vec<u8>, entries: &[RibEntry]) -> Result<(), WireError> {
    out.extend_from_slice(&bgp::checked_u16("RIB entry count", entries.len())?.to_be_bytes());
    for entry in entries {
        out.extend_from_slice(&entry.peer_index.to_be_bytes());
        out.extend_from_slice(&entry.originated_time.to_be_bytes());
        let attrs_at = bgp::reserve_u16(out);
        // RFC 6396 §4.3.4: TABLE_DUMP_V2 attributes always use 4-octet ASNs
        // and the abbreviated MP_REACH_NLRI form.
        bgp::encode_attributes_rib(out, &entry.attrs, AsnEncoding::FourOctet)?;
        let attrs_len = bgp::checked_u16("RIB entry attributes", out.len() - attrs_at - 2)?;
        bgp::patch_u16(out, attrs_at, attrs_len);
    }
    Ok(())
}

fn encode_rib(out: &mut Vec<u8>, rib: &RibIpv4Unicast) -> Result<(), WireError> {
    out.extend_from_slice(&rib.sequence.to_be_bytes());
    bgp::encode_prefix(out, rib.prefix);
    encode_rib_entries(out, &rib.entries)
}

fn encode_rib6(out: &mut Vec<u8>, rib: &RibIpv6Unicast) -> Result<(), WireError> {
    out.extend_from_slice(&rib.sequence.to_be_bytes());
    bgp::encode_prefix6(out, rib.prefix);
    encode_rib_entries(out, &rib.entries)
}

fn encode_bgp4mp(out: &mut Vec<u8>, msg: &Bgp4mpMessage, as4: bool) -> Result<(), WireError> {
    if as4 {
        out.extend_from_slice(&msg.peer_asn.0.to_be_bytes());
        out.extend_from_slice(&msg.local_asn.0.to_be_bytes());
    } else {
        // needs_as4 guarantees both ASNs fit; keep the conversion checked
        // anyway so a future caller cannot reintroduce silent truncation.
        let peer = bgp::checked_u16("BGP4MP peer ASN", msg.peer_asn.0 as usize)?;
        let local = bgp::checked_u16("BGP4MP local ASN", msg.local_asn.0 as usize)?;
        out.extend_from_slice(&peer.to_be_bytes());
        out.extend_from_slice(&local.to_be_bytes());
    }
    out.extend_from_slice(&0u16.to_be_bytes()); // interface index
    out.extend_from_slice(&1u16.to_be_bytes()); // AFI: IPv4
    out.extend_from_slice(&msg.peer_addr.to_be_bytes());
    out.extend_from_slice(&msg.local_addr.to_be_bytes());
    let encoding = if as4 {
        AsnEncoding::FourOctet
    } else {
        AsnEncoding::TwoOctet
    };
    msg.message.encode_into(out, encoding)
}

fn decode_peer_index_table(body: &[u8], base: u64) -> Result<PeerIndexTable, WireError> {
    let mut cur = Cursor::with_base(body, base);
    let collector_id = cur.u32()?;
    let name_len = usize::from(cur.u16()?);
    let name_bytes = cur.take(name_len)?;
    let view_name = String::from_utf8_lossy(name_bytes).into_owned();
    let peer_count = usize::from(cur.u16()?);
    let mut peers = Vec::with_capacity(peer_count.min(1024));
    for _ in 0..peer_count {
        let at = cur.position();
        let peer_type = cur.u8()?;
        // Bit 0: IPv6 address; bit 1: 4-octet ASN. Only IPv4 is supported.
        if peer_type & 0x01 != 0 {
            return Err(WireError::new(
                WireErrorKind::UnsupportedPeerType(peer_type),
                at,
            ));
        }
        let bgp_id = cur.u32()?;
        let addr = cur.u32()?;
        let asn = if peer_type & 0x02 != 0 {
            cur.u32()?
        } else {
            u32::from(cur.u16()?)
        };
        peers.push(PeerEntry {
            bgp_id,
            addr,
            asn: Asn(asn),
        });
    }
    expect_consumed(&cur)?;
    Ok(PeerIndexTable {
        collector_id,
        view_name,
        peers,
    })
}

fn decode_rib_entries(cur: &mut Cursor<'_>) -> Result<Vec<RibEntry>, WireError> {
    let entry_count = usize::from(cur.u16()?);
    let mut entries = Vec::with_capacity(entry_count.min(1024));
    for _ in 0..entry_count {
        let peer_index = cur.u16()?;
        let originated_time = cur.u32()?;
        let attr_len = usize::from(cur.u16()?);
        let attrs_base = cur.position();
        let attr_bytes = cur.take(attr_len)?;
        let attrs = bgp::decode_attributes_rib(attr_bytes, attrs_base, AsnEncoding::FourOctet)?
            .ok_or_else(|| {
                WireError::new(WireErrorKind::MissingAttribute("AS_PATH"), attrs_base)
            })?;
        entries.push(RibEntry {
            peer_index,
            originated_time,
            attrs,
        });
    }
    Ok(entries)
}

fn decode_rib(body: &[u8], base: u64) -> Result<RibIpv4Unicast, WireError> {
    let mut cur = Cursor::with_base(body, base);
    let sequence = cur.u32()?;
    let prefix = bgp::decode_one_prefix(&mut cur)?;
    let entries = decode_rib_entries(&mut cur)?;
    expect_consumed(&cur)?;
    Ok(RibIpv4Unicast {
        sequence,
        prefix,
        entries,
    })
}

fn decode_rib6(body: &[u8], base: u64) -> Result<RibIpv6Unicast, WireError> {
    let mut cur = Cursor::with_base(body, base);
    let sequence = cur.u32()?;
    let prefix = bgp::decode_one_prefix6(&mut cur)?;
    let entries = decode_rib_entries(&mut cur)?;
    expect_consumed(&cur)?;
    Ok(RibIpv6Unicast {
        sequence,
        prefix,
        entries,
    })
}

fn decode_bgp4mp(body: &[u8], base: u64, as4: bool) -> Result<Bgp4mpMessage, WireError> {
    let mut cur = Cursor::with_base(body, base);
    let (peer_asn, local_asn) = if as4 {
        (cur.u32()?, cur.u32()?)
    } else {
        (u32::from(cur.u16()?), u32::from(cur.u16()?))
    };
    let _interface = cur.u16()?;
    let afi_at = cur.position();
    let afi = cur.u16()?;
    if afi != 1 {
        return Err(WireError::new(
            WireErrorKind::UnsupportedPeerType(afi as u8),
            afi_at,
        ));
    }
    let peer_addr = cur.u32()?;
    let local_addr = cur.u32()?;
    let msg_base = cur.position();
    let encoding = if as4 {
        AsnEncoding::FourOctet
    } else {
        AsnEncoding::TwoOctet
    };
    let message = UpdateMessage::decode(cur.rest(), encoding).map_err(|e| e.at_base(msg_base))?;
    Ok(Bgp4mpMessage {
        peer_asn: Asn(peer_asn),
        local_asn: Asn(local_asn),
        peer_addr,
        local_addr,
        message,
    })
}

fn expect_consumed(cur: &Cursor<'_>) -> Result<(), WireError> {
    if cur.remaining() > 0 {
        return Err(WireError::new(
            WireErrorKind::TrailingBytes {
                remaining: cur.remaining(),
            },
            cur.position(),
        ));
    }
    Ok(())
}

/// Decodes one record from a complete in-memory body.
///
/// `base` is the absolute offset of the record header in the stream, used
/// for error reporting.
fn decode_record(
    timestamp: u32,
    mrt_type: u16,
    subtype: u16,
    body: &[u8],
    base: u64,
) -> Result<MrtRecord, WireError> {
    let body_base = base + 12;
    let body = match (mrt_type, subtype) {
        (TYPE_TABLE_DUMP_V2, SUBTYPE_PEER_INDEX_TABLE) => {
            MrtBody::PeerIndexTable(decode_peer_index_table(body, body_base)?)
        }
        (TYPE_TABLE_DUMP_V2, SUBTYPE_RIB_IPV4_UNICAST) => {
            MrtBody::RibIpv4Unicast(decode_rib(body, body_base)?)
        }
        (TYPE_TABLE_DUMP_V2, SUBTYPE_RIB_IPV6_UNICAST) => {
            MrtBody::RibIpv6Unicast(decode_rib6(body, body_base)?)
        }
        (TYPE_BGP4MP, SUBTYPE_BGP4MP_MESSAGE) => {
            MrtBody::Bgp4mpMessage(decode_bgp4mp(body, body_base, false)?)
        }
        (TYPE_BGP4MP, SUBTYPE_BGP4MP_MESSAGE_AS4) => {
            MrtBody::Bgp4mpMessage(decode_bgp4mp(body, body_base, true)?)
        }
        _ => {
            return Err(WireError::new(
                WireErrorKind::UnsupportedMrtType { mrt_type, subtype },
                base + 4,
            ));
        }
    };
    Ok(MrtRecord { timestamp, body })
}

/// Streams MRT records out of any reader.
///
/// Iterate it directly; iteration ends at clean end-of-file and yields an
/// `Err` (then stops) on the first malformed record.
#[derive(Debug)]
pub struct MrtReader<R> {
    inner: R,
    offset: u64,
    failed: bool,
}

impl<R: io::Read> MrtReader<R> {
    /// Wraps a reader positioned at the start of an MRT stream.
    pub fn new(inner: R) -> Self {
        MrtReader {
            inner,
            offset: 0,
            failed: false,
        }
    }

    /// Reads the next record; `Ok(None)` at clean end-of-file.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] (with stream offset) on I/O failure or a
    /// malformed record. After an error the reader refuses further reads,
    /// since record boundaries are lost.
    pub fn next_record(&mut self) -> Result<Option<MrtRecord>, WireError> {
        if self.failed {
            return Ok(None);
        }
        match self.try_next() {
            Ok(record) => Ok(record),
            Err(e) => {
                self.failed = true;
                Err(e)
            }
        }
    }

    fn try_next(&mut self) -> Result<Option<MrtRecord>, WireError> {
        let mut header = [0u8; 12];
        match read_exact_or_eof(&mut self.inner, &mut header) {
            Ok(0) => return Ok(None),
            Ok(n) if n < header.len() => {
                return Err(WireError::new(
                    WireErrorKind::Truncated {
                        needed: header.len() - n,
                    },
                    self.offset + n as u64,
                ));
            }
            Ok(_) => {}
            Err(e) => {
                return Err(WireError::new(WireErrorKind::Io(e.kind()), self.offset));
            }
        }
        let timestamp = u32::from_be_bytes([header[0], header[1], header[2], header[3]]);
        let mrt_type = u16::from_be_bytes([header[4], header[5]]);
        let subtype = u16::from_be_bytes([header[6], header[7]]);
        let length = u32::from_be_bytes([header[8], header[9], header[10], header[11]]);
        if length > MAX_RECORD_LEN {
            return Err(WireError::new(
                WireErrorKind::BadFieldLength {
                    length: length as usize,
                    available: MAX_RECORD_LEN as usize,
                },
                self.offset + 8,
            ));
        }
        let mut body = vec![0u8; length as usize];
        match read_exact_or_eof(&mut self.inner, &mut body) {
            Ok(n) if n < body.len() => {
                return Err(WireError::new(
                    WireErrorKind::Truncated {
                        needed: body.len() - n,
                    },
                    self.offset + 12 + n as u64,
                ));
            }
            Ok(_) => {}
            Err(e) => {
                return Err(WireError::new(
                    WireErrorKind::Io(e.kind()),
                    self.offset + 12,
                ));
            }
        }
        let record = decode_record(timestamp, mrt_type, subtype, &body, self.offset)?;
        self.offset += 12 + u64::from(length);
        Ok(Some(record))
    }
}

impl<R: io::Read> Iterator for MrtReader<R> {
    type Item = Result<MrtRecord, WireError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

/// Reads until `buf` is full or EOF; returns bytes read.
pub(crate) fn read_exact_or_eof<R: io::Read>(reader: &mut R, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Default size at which [`MrtWriter`]'s batch buffer is handed to the
/// underlying writer. Large enough to amortize write syscalls over hundreds
/// of records, small enough to keep the writer's footprint negligible.
pub const DEFAULT_BATCH_CAPACITY: usize = 256 * 1024;

/// Writes MRT records to any writer, batching encoded bytes in a reusable
/// buffer instead of allocating and writing per record.
///
/// Records are encoded straight into the batch buffer
/// ([`MrtRecord::encode_into`]); the buffer is handed to the underlying
/// writer whenever it crosses the batch capacity, and on [`MrtWriter::flush`]
/// / [`MrtWriter::finish`]. A record that fails to encode leaves the buffer
/// exactly as it was, so one bad record never corrupts the stream.
#[derive(Debug)]
pub struct MrtWriter<W> {
    inner: W,
    records: u64,
    buf: Vec<u8>,
    batch_capacity: usize,
}

impl<W: io::Write> MrtWriter<W> {
    /// Wraps a writer with the default batch capacity.
    pub fn new(inner: W) -> Self {
        Self::with_batch_capacity(inner, DEFAULT_BATCH_CAPACITY)
    }

    /// Wraps a writer, flushing the batch buffer to it whenever the buffer
    /// reaches `batch_capacity` bytes (0 hands every record straight
    /// through).
    pub fn with_batch_capacity(inner: W, batch_capacity: usize) -> Self {
        MrtWriter {
            inner,
            records: 0,
            buf: Vec::new(),
            batch_capacity,
        }
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on encode or I/O failure.
    pub fn write_record(&mut self, record: &MrtRecord) -> Result<(), WireError> {
        record.encode_into(&mut self.buf)?;
        self.records += 1;
        if self.buf.len() >= self.batch_capacity {
            self.write_batch()?;
        }
        Ok(())
    }

    fn write_batch(&mut self) -> Result<(), WireError> {
        if !self.buf.is_empty() {
            self.inner.write_all(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Number of records written so far (batched records included).
    #[must_use]
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Bytes currently batched but not yet handed to the underlying writer.
    #[must_use]
    pub fn buffered_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Hands any batched bytes to the underlying writer and flushes it.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on I/O failure.
    pub fn flush(&mut self) -> Result<(), WireError> {
        self.write_batch()?;
        self.inner.flush()?;
        Ok(())
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the flush fails.
    pub fn finish(mut self) -> Result<W, WireError> {
        self.flush()?;
        Ok(self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::{AsPath, Route};

    fn sample_records() -> Vec<MrtRecord> {
        let table = PeerIndexTable {
            collector_id: 0x0A00_0001,
            view_name: "moas-lab".into(),
            peers: vec![
                PeerEntry {
                    bgp_id: 1,
                    addr: 0x0A00_0001,
                    asn: Asn(701),
                },
                PeerEntry {
                    bgp_id: 2,
                    addr: 0x0A00_0002,
                    asn: Asn(70_000),
                },
            ],
        };
        let route = Route::new(
            "208.8.0.0/16".parse().unwrap(),
            AsPath::from_sequence([Asn(701), Asn(4)]),
        );
        let rib = RibIpv4Unicast {
            sequence: 0,
            prefix: route.prefix(),
            entries: vec![RibEntry {
                peer_index: 0,
                originated_time: 100,
                attrs: PathAttributes::from_route(&route),
            }],
        };
        let bgp4mp = Bgp4mpMessage {
            peer_asn: Asn(701),
            local_asn: Asn(65_000),
            peer_addr: 0x0A00_0001,
            local_addr: 0x0A00_00FE,
            message: UpdateMessage::announce(&route),
        };
        vec![
            MrtRecord {
                timestamp: 1000,
                body: MrtBody::PeerIndexTable(table),
            },
            MrtRecord {
                timestamp: 1000,
                body: MrtBody::RibIpv4Unicast(rib),
            },
            MrtRecord {
                timestamp: 1001,
                body: MrtBody::Bgp4mpMessage(bgp4mp),
            },
        ]
    }

    fn write_all(records: &[MrtRecord]) -> Vec<u8> {
        let mut writer = MrtWriter::new(Vec::new());
        for record in records {
            writer.write_record(record).unwrap();
        }
        assert_eq!(writer.records_written(), records.len() as u64);
        writer.finish().unwrap()
    }

    #[test]
    fn records_round_trip() {
        let records = sample_records();
        let bytes = write_all(&records);
        let back: Vec<MrtRecord> = MrtReader::new(&bytes[..])
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn written_streams_are_byte_stable() {
        let records = sample_records();
        assert_eq!(write_all(&records), write_all(&records));
    }

    #[test]
    fn as4_subtype_selected_for_wide_asns() {
        let route = Route::new(
            "10.0.0.0/8".parse().unwrap(),
            AsPath::from_sequence([Asn(70_000)]),
        );
        let msg = Bgp4mpMessage {
            peer_asn: Asn(70_000),
            local_asn: Asn(1),
            peer_addr: 0,
            local_addr: 0,
            message: UpdateMessage::announce(&route),
        };
        assert!(msg.needs_as4());
        let bytes = MrtRecord {
            timestamp: 0,
            body: MrtBody::Bgp4mpMessage(msg),
        }
        .encode()
        .unwrap();
        let subtype = u16::from_be_bytes([bytes[6], bytes[7]]);
        assert_eq!(subtype, SUBTYPE_BGP4MP_MESSAGE_AS4);
    }

    #[test]
    fn truncated_streams_error_with_offset() {
        let bytes = write_all(&sample_records());
        for cut in [1, 11, 13, bytes.len() - 1] {
            let result: Result<Vec<MrtRecord>, WireError> = MrtReader::new(&bytes[..cut]).collect();
            let err = result.unwrap_err();
            assert!(
                matches!(err.kind, WireErrorKind::Truncated { .. }),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn unknown_record_types_are_rejected_not_panicked() {
        let mut bytes = write_all(&sample_records()[..1]);
        bytes[5] = 99; // type
        let result: Result<Vec<MrtRecord>, WireError> = MrtReader::new(&bytes[..]).collect();
        let err = result.unwrap_err();
        assert!(matches!(err.kind, WireErrorKind::UnsupportedMrtType { .. }));
        assert_eq!(err.offset, 4);
    }

    #[test]
    fn oversized_length_field_is_rejected_without_allocation() {
        let mut bytes = write_all(&sample_records()[..1]);
        bytes[8..12].copy_from_slice(&u32::MAX.to_be_bytes());
        let result: Result<Vec<MrtRecord>, WireError> = MrtReader::new(&bytes[..]).collect();
        let err = result.unwrap_err();
        assert!(matches!(err.kind, WireErrorKind::BadFieldLength { .. }));
    }

    #[test]
    fn reader_stops_after_first_error() {
        let good = write_all(&sample_records());
        let mut bytes = vec![0xAAu8; 7]; // garbage shorter than a header
        bytes.extend_from_slice(&good);
        let mut reader = MrtReader::new(&bytes[..]);
        assert!(reader.next_record().is_err());
        assert!(reader.next_record().unwrap().is_none());
    }
}
