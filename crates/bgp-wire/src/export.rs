//! Serializing simulator state to MRT.
//!
//! The export side plays the role of a Route Views collector peering with a
//! set of vantage ASes inside the simulated network: each daily snapshot is
//! a `PEER_INDEX_TABLE` followed by one `RIB_IPV4_UNICAST` record per
//! prefix, holding the Loc-RIB best route of every vantage AS that has one.
//! Update streams export as `BGP4MP` records.

use std::collections::BTreeSet;
use std::io;

use bgp_engine::{Network, RouteMonitor};
use bgp_types::{Asn, Ipv4Prefix, Update};

use crate::bgp::{PathAttributes, UpdateMessage};
use crate::error::WireError;
use crate::mrt::{
    Bgp4mpMessage, MrtBody, MrtRecord, MrtWriter, PeerEntry, PeerIndexTable, RibEntry,
    RibIpv4Unicast,
};
use crate::{day_to_timestamp, COLLECTOR_ASN};

/// What one snapshot export wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExportSummary {
    /// Prefixes written (one `RIB_IPV4_UNICAST` record each).
    pub prefixes: usize,
    /// RIB entries written across all prefixes.
    pub entries: usize,
    /// Vantage peers in the index table.
    pub peers: usize,
}

fn synthetic_addr(asn: Asn) -> u32 {
    PathAttributes::synthetic_next_hop(Some(asn))
}

/// Builds the collector's peer roster for a set of vantage ASes.
#[must_use]
pub fn peer_table(vantages: &[Asn]) -> PeerIndexTable {
    PeerIndexTable {
        collector_id: synthetic_addr(COLLECTOR_ASN),
        view_name: "moas-lab".to_string(),
        peers: vantages
            .iter()
            .map(|&asn| PeerEntry {
                bgp_id: asn.0,
                addr: synthetic_addr(asn),
                asn,
            })
            .collect(),
    }
}

/// Exports one daily table snapshot: the Loc-RIB best routes of every
/// vantage AS, over every prefix any of them knows.
///
/// Writes a `PEER_INDEX_TABLE` followed by the RIB records, all stamped
/// with `day`'s timestamp, so multiple days can be appended to one stream
/// and regrouped on import.
///
/// # Errors
///
/// Returns a [`WireError`] on encode or I/O failure, or if a vantage ASN
/// does not exist in the network (reported as zero routes, not an error —
/// absent routers simply contribute nothing).
pub fn export_rib_snapshot<W: io::Write, M: RouteMonitor>(
    writer: &mut MrtWriter<W>,
    network: &Network<M>,
    vantages: &[Asn],
    day: u32,
) -> Result<ExportSummary, WireError> {
    let timestamp = day_to_timestamp(day);
    writer.write_record(&MrtRecord {
        timestamp,
        body: MrtBody::PeerIndexTable(peer_table(vantages)),
    })?;

    // The union of all vantage Loc-RIB prefixes, in deterministic order.
    let mut prefixes: BTreeSet<Ipv4Prefix> = BTreeSet::new();
    for &vantage in vantages {
        if let Some(router) = network.router(vantage) {
            prefixes.extend(router.prefixes());
        }
    }

    let mut summary = ExportSummary {
        peers: vantages.len(),
        ..ExportSummary::default()
    };
    for (sequence, &prefix) in prefixes.iter().enumerate() {
        let mut entries = Vec::new();
        for (peer_index, &vantage) in vantages.iter().enumerate() {
            let Some(route) = network.best_route(vantage, prefix) else {
                continue;
            };
            entries.push(RibEntry {
                peer_index: peer_index as u16,
                originated_time: timestamp,
                attrs: PathAttributes::from_route(route),
            });
        }
        if entries.is_empty() {
            continue;
        }
        summary.prefixes += 1;
        summary.entries += entries.len();
        writer.write_record(&MrtRecord {
            timestamp,
            body: MrtBody::RibIpv4Unicast(RibIpv4Unicast {
                sequence: sequence as u32,
                prefix,
                entries,
            }),
        })?;
    }
    Ok(summary)
}

/// Exports a stream of simulator updates as `BGP4MP` records, each
/// attributed to the peer AS that sent it and stamped with `day`.
///
/// # Errors
///
/// Returns a [`WireError`] on encode or I/O failure.
pub fn export_update_stream<'a, W, I>(
    writer: &mut MrtWriter<W>,
    day: u32,
    updates: I,
) -> Result<usize, WireError>
where
    W: io::Write,
    I: IntoIterator<Item = (Asn, &'a Update)>,
{
    let timestamp = day_to_timestamp(day);
    let mut written = 0;
    for (peer, update) in updates {
        writer.write_record(&MrtRecord {
            timestamp,
            body: MrtBody::Bgp4mpMessage(Bgp4mpMessage {
                peer_asn: peer,
                local_asn: COLLECTOR_ASN,
                peer_addr: synthetic_addr(peer),
                local_addr: synthetic_addr(COLLECTOR_ASN),
                message: UpdateMessage::from_update(update),
            }),
        })?;
        written += 1;
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mrt::MrtReader;
    use bgp_types::Route;

    // as-topology is not a bgp-wire dependency, so building a real Network
    // happens in the workspace-root integration tests; here we exercise the
    // update-stream writer, which needs none.
    #[test]
    fn update_stream_round_trips_record_count() {
        let route = Route::new(
            "208.8.0.0/16".parse().unwrap(),
            bgp_types::AsPath::origination(Asn(4)),
        );
        let updates = [
            (Asn(4), Update::announce(route)),
            (Asn(7), Update::withdraw("10.0.0.0/8".parse().unwrap())),
        ];
        let mut writer = MrtWriter::new(Vec::new());
        let n = export_update_stream(&mut writer, 3, updates.iter().map(|(a, u)| (*a, u))).unwrap();
        assert_eq!(n, 2);
        let bytes = writer.finish().unwrap();
        let records: Vec<_> = MrtReader::new(&bytes[..])
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].timestamp, day_to_timestamp(3));
    }
}
