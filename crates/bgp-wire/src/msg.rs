//! RFC 4271 session messages: OPEN, KEEPALIVE and NOTIFICATION.
//!
//! [`crate::bgp`] covers the UPDATE message the measurement pipeline lives
//! on; this module adds the three message types a *live* session exchanges
//! around those updates: the OPEN handshake with RFC 3392/5492 capability
//! negotiation (4-octet AS per RFC 6793, multiprotocol per RFC 4760),
//! KEEPALIVE heartbeats, and typed NOTIFICATION errors. [`Message`] is the
//! dispatcher a session feeds raw bytes into.
//!
//! Decoding is panic-free on arbitrary input, with the same error-parity
//! discipline as the rest of the crate: the zero-copy views in
//! [`crate::view`] accept and reject exactly the same bytes at the same
//! offsets.

use bgp_types::Asn;

use crate::bgp::{
    decode_update_body, AsnEncoding, Cursor, UpdateMessage, HEADER_LEN, MAX_MESSAGE_LEN,
    MESSAGE_TYPE_UPDATE,
};
use crate::error::{WireError, WireErrorKind};

/// BGP message type code for OPEN.
pub const MESSAGE_TYPE_OPEN: u8 = 1;
/// BGP message type code for NOTIFICATION.
pub const MESSAGE_TYPE_NOTIFICATION: u8 = 3;
/// BGP message type code for KEEPALIVE.
pub const MESSAGE_TYPE_KEEPALIVE: u8 = 4;

/// The BGP version every OPEN carries.
pub const BGP_VERSION: u8 = 4;
/// RFC 6793's placeholder 2-octet ASN for speakers whose real ASN needs
/// four octets.
pub const AS_TRANS: u16 = 23456;

/// Smallest legal OPEN: header + version, my-AS, hold-time, BGP id and the
/// optional-parameter length byte.
pub const MIN_OPEN_LEN: usize = HEADER_LEN + 10;
/// Smallest legal NOTIFICATION: header + error code and subcode.
pub const MIN_NOTIFICATION_LEN: usize = HEADER_LEN + 2;

pub(crate) const PARAM_CAPABILITIES: u8 = 2;
pub(crate) const CAP_MULTIPROTOCOL: u8 = 1;
pub(crate) const CAP_FOUR_OCTET_AS: u8 = 65;

/// NOTIFICATION error codes (RFC 4271 §6).
pub mod notif {
    /// Message Header Error.
    pub const MESSAGE_HEADER_ERROR: u8 = 1;
    /// OPEN Message Error.
    pub const OPEN_MESSAGE_ERROR: u8 = 2;
    /// UPDATE Message Error.
    pub const UPDATE_MESSAGE_ERROR: u8 = 3;
    /// Hold Timer Expired.
    pub const HOLD_TIMER_EXPIRED: u8 = 4;
    /// Finite State Machine Error.
    pub const FSM_ERROR: u8 = 5;
    /// Cease.
    pub const CEASE: u8 = 6;

    /// OPEN subcode: Unsupported Version Number.
    pub const UNSUPPORTED_VERSION: u8 = 1;
    /// OPEN subcode: Unacceptable Hold Time.
    pub const UNACCEPTABLE_HOLD_TIME: u8 = 6;
    /// OPEN subcode: Unsupported Capability (RFC 5492).
    pub const UNSUPPORTED_CAPABILITY: u8 = 7;
}

/// One negotiated capability (RFC 5492 encoding inside OPEN's optional
/// parameters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Capability {
    /// Multiprotocol IPv4 unicast (RFC 4760; AFI 1, SAFI 1).
    MultiprotocolIpv4Unicast,
    /// Multiprotocol IPv6 unicast (RFC 4760; AFI 2, SAFI 1).
    MultiprotocolIpv6Unicast,
    /// 4-octet AS numbers (RFC 6793), carrying the speaker's real ASN.
    FourOctetAs(Asn),
    /// Any capability this crate does not interpret, kept verbatim so it
    /// round-trips.
    Unknown {
        /// Capability code.
        code: u8,
        /// Raw capability value bytes.
        data: Vec<u8>,
    },
}

impl Capability {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Capability::MultiprotocolIpv4Unicast => {
                out.extend_from_slice(&[CAP_MULTIPROTOCOL, 4, 0, 1, 0, 1]);
            }
            Capability::MultiprotocolIpv6Unicast => {
                out.extend_from_slice(&[CAP_MULTIPROTOCOL, 4, 0, 2, 0, 1]);
            }
            Capability::FourOctetAs(asn) => {
                out.extend_from_slice(&[CAP_FOUR_OCTET_AS, 4]);
                out.extend_from_slice(&asn.0.to_be_bytes());
            }
            Capability::Unknown { code, data } => {
                out.push(*code);
                // Capability bodies longer than 255 cannot exist on the
                // wire; constructors never build them, and decode cannot
                // produce them, so truncation is unreachable here.
                out.push(data.len().min(255) as u8);
                out.extend_from_slice(&data[..data.len().min(255)]);
            }
        }
    }
}

/// Decodes one capability from a cursor positioned at its code byte.
/// Shared verbatim with the view validator for error parity.
pub(crate) fn decode_one_capability(cur: &mut Cursor<'_>) -> Result<Capability, WireError> {
    let code = cur.u8()?;
    let len_at = cur.position();
    let len = cur.u8()?;
    let body = cur.take(usize::from(len))?;
    Ok(match code {
        CAP_MULTIPROTOCOL => {
            if len != 4 {
                return Err(WireError::new(
                    WireErrorKind::BadCapabilityLength { code, length: len },
                    len_at,
                ));
            }
            let afi = u16::from_be_bytes([body[0], body[1]]);
            let safi = body[3];
            match (afi, safi) {
                (1, 1) => Capability::MultiprotocolIpv4Unicast,
                (2, 1) => Capability::MultiprotocolIpv6Unicast,
                _ => Capability::Unknown {
                    code,
                    data: body.to_vec(),
                },
            }
        }
        CAP_FOUR_OCTET_AS => {
            if len != 4 {
                return Err(WireError::new(
                    WireErrorKind::BadCapabilityLength { code, length: len },
                    len_at,
                ));
            }
            Capability::FourOctetAs(Asn(u32::from_be_bytes([
                body[0], body[1], body[2], body[3],
            ])))
        }
        _ => Capability::Unknown {
            code,
            data: body.to_vec(),
        },
    })
}

/// A BGP OPEN message: the session handshake's identity card.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenMessage {
    /// The sender's ASN. Encoded into the 2-octet My-AS field directly when
    /// it fits, as [`AS_TRANS`] plus a [`Capability::FourOctetAs`] otherwise.
    pub asn: Asn,
    /// Proposed hold time in seconds: 0 (no keepalives) or >= 3.
    pub hold_time: u16,
    /// The sender's BGP identifier (an IPv4 address in practice).
    pub bgp_id: u32,
    /// Announced capabilities, in wire order.
    pub capabilities: Vec<Capability>,
}

impl OpenMessage {
    /// An OPEN announcing `asn` with the standard capability set this
    /// workspace speaks: 4-octet AS and multiprotocol IPv4 + IPv6 unicast.
    #[must_use]
    pub fn new(asn: Asn, hold_time: u16, bgp_id: u32) -> Self {
        OpenMessage {
            asn,
            hold_time,
            bgp_id,
            capabilities: vec![
                Capability::MultiprotocolIpv4Unicast,
                Capability::MultiprotocolIpv6Unicast,
                Capability::FourOctetAs(asn),
            ],
        }
    }

    /// The ASN the peer actually speaks for: the 4-octet capability value
    /// when announced, the My-AS field otherwise.
    #[must_use]
    pub fn effective_asn(&self) -> Asn {
        self.capabilities
            .iter()
            .find_map(|c| match c {
                Capability::FourOctetAs(asn) => Some(*asn),
                _ => None,
            })
            .unwrap_or(self.asn)
    }

    /// Whether a given capability was announced.
    #[must_use]
    pub fn has_capability(&self, cap: &Capability) -> bool {
        self.capabilities.contains(cap)
    }

    /// Encodes the full message, marker and header included.
    ///
    /// # Errors
    ///
    /// Fails with [`WireErrorKind::BadHoldTime`] for a hold time of 1 or 2,
    /// or [`WireErrorKind::LengthOverflow`] if the capabilities do not fit
    /// their one-byte length fields.
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut out = Vec::new();
        self.encode_into(&mut out)?;
        Ok(out)
    }

    /// Appends the encoded message to `out`; on error `out` is restored.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`OpenMessage::encode`].
    pub fn encode_into(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        let start = out.len();
        self.encode_into_unguarded(out)
            .inspect_err(|_| out.truncate(start))
    }

    fn encode_into_unguarded(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        if self.hold_time == 1 || self.hold_time == 2 {
            return Err(WireError::new(
                WireErrorKind::BadHoldTime(self.hold_time),
                0,
            ));
        }
        let start = out.len();
        out.extend_from_slice(&[0xFF; 16]);
        let total_at = crate::bgp::reserve_u16(out);
        out.push(MESSAGE_TYPE_OPEN);
        out.push(BGP_VERSION);
        let my_as = u16::try_from(self.asn.0).unwrap_or(AS_TRANS);
        out.extend_from_slice(&my_as.to_be_bytes());
        out.extend_from_slice(&self.hold_time.to_be_bytes());
        out.extend_from_slice(&self.bgp_id.to_be_bytes());

        let mut caps = Vec::new();
        for cap in &self.capabilities {
            cap.encode_into(&mut caps);
        }
        if self.capabilities.is_empty() {
            out.push(0);
        } else {
            let cap_len = u8::try_from(caps.len()).map_err(|_| {
                WireError::new(
                    WireErrorKind::LengthOverflow {
                        field: "OPEN capabilities",
                        length: caps.len(),
                        max: 255,
                    },
                    0,
                )
            })?;
            // One optional parameter (type 2) holding every capability.
            out.push(cap_len + 2);
            out.push(PARAM_CAPABILITIES);
            out.push(cap_len);
            out.extend_from_slice(&caps);
        }

        let total = out.len() - start;
        if total > MAX_MESSAGE_LEN {
            return Err(WireError::new(
                WireErrorKind::LengthOverflow {
                    field: "BGP message",
                    length: total,
                    max: MAX_MESSAGE_LEN,
                },
                0,
            ));
        }
        crate::bgp::patch_u16(
            out,
            total_at,
            crate::bgp::checked_u16("BGP message", total)?,
        );
        Ok(())
    }
}

/// Decodes an OPEN body (after the 19-byte header), reporting errors at
/// `base` + local offset.
pub(crate) fn decode_open_body(body: &[u8], base: u64) -> Result<OpenMessage, WireError> {
    let mut cur = Cursor::with_base(body, base);
    let version_at = cur.position();
    let version = cur.u8()?;
    if version != BGP_VERSION {
        return Err(WireError::new(
            WireErrorKind::BadVersion(version),
            version_at,
        ));
    }
    let my_as = cur.u16()?;
    let hold_at = cur.position();
    let hold_time = cur.u16()?;
    if hold_time == 1 || hold_time == 2 {
        return Err(WireError::new(
            WireErrorKind::BadHoldTime(hold_time),
            hold_at,
        ));
    }
    let bgp_id = cur.u32()?;
    let opt_len = usize::from(cur.u8()?);
    let opt_base = cur.position();
    let opt = cur.take(opt_len)?;
    if cur.remaining() > 0 {
        return Err(WireError::new(
            WireErrorKind::TrailingBytes {
                remaining: cur.remaining(),
            },
            cur.position(),
        ));
    }

    let mut capabilities = Vec::new();
    let mut params = Cursor::with_base(opt, opt_base);
    while params.remaining() > 0 {
        let ptype = params.u8()?;
        let plen = usize::from(params.u8()?);
        let pbase = params.position();
        let pbody = params.take(plen)?;
        if ptype == PARAM_CAPABILITIES {
            let mut caps = Cursor::with_base(pbody, pbase);
            while caps.remaining() > 0 {
                capabilities.push(decode_one_capability(&mut caps)?);
            }
        }
        // Other parameter types (deprecated authentication, &c.) are
        // skipped, length-validated only.
    }

    Ok(OpenMessage {
        asn: Asn(u32::from(my_as)),
        hold_time,
        bgp_id,
        capabilities,
    })
}

/// A BGP NOTIFICATION: the typed error that closes a session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotificationMessage {
    /// Error code (see [`notif`]).
    pub code: u8,
    /// Error subcode (0 when the code defines none).
    pub subcode: u8,
    /// Diagnostic data, verbatim.
    pub data: Vec<u8>,
}

impl NotificationMessage {
    /// A NOTIFICATION with no diagnostic data.
    #[must_use]
    pub fn new(code: u8, subcode: u8) -> Self {
        NotificationMessage {
            code,
            subcode,
            data: Vec::new(),
        }
    }

    /// The Hold Timer Expired notification (code 4).
    #[must_use]
    pub fn hold_timer_expired() -> Self {
        NotificationMessage::new(notif::HOLD_TIMER_EXPIRED, 0)
    }

    /// The administrative Cease notification (code 6).
    #[must_use]
    pub fn cease() -> Self {
        NotificationMessage::new(notif::CEASE, 0)
    }

    /// The FSM Error notification (code 5), for messages that arrive in a
    /// state that cannot accept them.
    #[must_use]
    pub fn fsm_error() -> Self {
        NotificationMessage::new(notif::FSM_ERROR, 0)
    }

    /// Encodes the full message, marker and header included.
    ///
    /// # Errors
    ///
    /// Fails with [`WireErrorKind::BadNotificationCode`] for a code outside
    /// 1..=6, or [`WireErrorKind::LengthOverflow`] if the data pushes the
    /// message past 4096 bytes.
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut out = Vec::new();
        self.encode_into(&mut out)?;
        Ok(out)
    }

    /// Appends the encoded message to `out`; on error `out` is restored.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`NotificationMessage::encode`].
    pub fn encode_into(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        if !(1..=6).contains(&self.code) {
            return Err(WireError::new(
                WireErrorKind::BadNotificationCode(self.code),
                0,
            ));
        }
        let total = MIN_NOTIFICATION_LEN + self.data.len();
        if total > MAX_MESSAGE_LEN {
            return Err(WireError::new(
                WireErrorKind::LengthOverflow {
                    field: "BGP message",
                    length: total,
                    max: MAX_MESSAGE_LEN,
                },
                0,
            ));
        }
        out.extend_from_slice(&[0xFF; 16]);
        out.extend_from_slice(&(total as u16).to_be_bytes());
        out.push(MESSAGE_TYPE_NOTIFICATION);
        out.push(self.code);
        out.push(self.subcode);
        out.extend_from_slice(&self.data);
        Ok(())
    }
}

/// Decodes a NOTIFICATION body (after the 19-byte header).
pub(crate) fn decode_notification_body(
    body: &[u8],
    base: u64,
) -> Result<NotificationMessage, WireError> {
    let mut cur = Cursor::with_base(body, base);
    let code_at = cur.position();
    let code = cur.u8()?;
    if !(1..=6).contains(&code) {
        return Err(WireError::new(
            WireErrorKind::BadNotificationCode(code),
            code_at,
        ));
    }
    let subcode = cur.u8()?;
    let data = cur.rest().to_vec();
    Ok(NotificationMessage {
        code,
        subcode,
        data,
    })
}

/// Encodes the 19-byte KEEPALIVE message.
#[must_use]
pub fn encode_keepalive() -> [u8; HEADER_LEN] {
    let mut out = [0xFF; HEADER_LEN];
    out[16..18].copy_from_slice(&(HEADER_LEN as u16).to_be_bytes());
    out[18] = MESSAGE_TYPE_KEEPALIVE;
    out
}

/// Any of the four RFC 4271 message types, as a live session receives them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// An OPEN handshake message.
    Open(OpenMessage),
    /// An UPDATE carrying routes.
    Update(UpdateMessage),
    /// A NOTIFICATION closing the session.
    Notification(NotificationMessage),
    /// A KEEPALIVE heartbeat.
    Keepalive,
}

impl Message {
    /// The message's RFC 4271 type code.
    #[must_use]
    pub fn type_code(&self) -> u8 {
        match self {
            Message::Open(_) => MESSAGE_TYPE_OPEN,
            Message::Update(_) => MESSAGE_TYPE_UPDATE,
            Message::Notification(_) => MESSAGE_TYPE_NOTIFICATION,
            Message::Keepalive => MESSAGE_TYPE_KEEPALIVE,
        }
    }

    /// Encodes the full message, marker and header included.
    ///
    /// # Errors
    ///
    /// The failure modes of the per-type encoders.
    pub fn encode(&self, encoding: AsnEncoding) -> Result<Vec<u8>, WireError> {
        match self {
            Message::Open(open) => open.encode(),
            Message::Update(update) => update.encode(encoding),
            Message::Notification(n) => n.encode(),
            Message::Keepalive => Ok(encode_keepalive().to_vec()),
        }
    }

    /// Decodes one message from the start of `bytes`, returning it and the
    /// number of bytes it occupied (for reading back-to-back messages off a
    /// TCP stream).
    ///
    /// # Errors
    ///
    /// Never panics; returns a [`WireError`] locating the first problem. A
    /// [`WireErrorKind::Truncated`] error means more bytes are needed — a
    /// session keeps buffering on it; anything else is fatal.
    pub fn decode_prefix_of(
        bytes: &[u8],
        encoding: AsnEncoding,
    ) -> Result<(Message, usize), WireError> {
        let mut cur = Cursor::new(bytes);
        let marker = cur.take(16)?;
        if marker.iter().any(|&b| b != 0xFF) {
            return Err(WireError::new(WireErrorKind::BadMarker, 0));
        }
        let total = usize::from(cur.u16()?);
        let msg_type = cur.u8()?;
        if !(HEADER_LEN..=MAX_MESSAGE_LEN).contains(&total) {
            return Err(WireError::new(
                WireErrorKind::BadMessageLength(total as u16),
                16,
            ));
        }
        let body = cur.take(total - HEADER_LEN)?;
        let base = HEADER_LEN as u64;
        let message = match msg_type {
            MESSAGE_TYPE_OPEN => {
                if body.len() < MIN_OPEN_LEN - HEADER_LEN {
                    return Err(WireError::new(
                        WireErrorKind::BadMessageLength(total as u16),
                        16,
                    ));
                }
                Message::Open(decode_open_body(body, base)?)
            }
            MESSAGE_TYPE_UPDATE => Message::Update(decode_update_body(body, base, encoding)?),
            MESSAGE_TYPE_NOTIFICATION => {
                if body.len() < MIN_NOTIFICATION_LEN - HEADER_LEN {
                    return Err(WireError::new(
                        WireErrorKind::BadMessageLength(total as u16),
                        16,
                    ));
                }
                Message::Notification(decode_notification_body(body, base)?)
            }
            MESSAGE_TYPE_KEEPALIVE => {
                if !body.is_empty() {
                    return Err(WireError::new(
                        WireErrorKind::BadMessageLength(total as u16),
                        16,
                    ));
                }
                Message::Keepalive
            }
            other => {
                return Err(WireError::new(
                    WireErrorKind::UnsupportedMessageType(other),
                    18,
                ));
            }
        };
        Ok((message, total))
    }

    /// Decodes one full message, requiring that nothing follows it.
    ///
    /// # Errors
    ///
    /// Never panics; returns a [`WireError`] locating the first problem.
    pub fn decode(bytes: &[u8], encoding: AsnEncoding) -> Result<Message, WireError> {
        let (message, used) = Self::decode_prefix_of(bytes, encoding)?;
        if used != bytes.len() {
            return Err(WireError::new(
                WireErrorKind::TrailingBytes {
                    remaining: bytes.len() - used,
                },
                used as u64,
            ));
        }
        Ok(message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_open() -> OpenMessage {
        OpenMessage::new(Asn(70_000), 90, 0x0A00_0001)
    }

    #[test]
    fn open_round_trips_with_capabilities() {
        let open = sample_open();
        let bytes = open.encode().unwrap();
        let Message::Open(back) = Message::decode(&bytes, AsnEncoding::FourOctet).unwrap() else {
            panic!("expected OPEN");
        };
        // My-AS was AS_TRANS on the wire; the 4-octet capability restores it.
        assert_eq!(back.asn, Asn(u32::from(AS_TRANS)));
        assert_eq!(back.effective_asn(), Asn(70_000));
        assert_eq!(back.hold_time, 90);
        assert_eq!(back.bgp_id, 0x0A00_0001);
        assert_eq!(back.capabilities, open.capabilities);
    }

    #[test]
    fn narrow_asn_skips_as_trans() {
        let open = OpenMessage {
            capabilities: Vec::new(),
            ..OpenMessage::new(Asn(64512), 30, 7)
        };
        let bytes = open.encode().unwrap();
        let Message::Open(back) = Message::decode(&bytes, AsnEncoding::FourOctet).unwrap() else {
            panic!("expected OPEN");
        };
        assert_eq!(back.asn, Asn(64512));
        assert_eq!(back.effective_asn(), Asn(64512));
        assert!(back.capabilities.is_empty());
    }

    #[test]
    fn keepalive_round_trips_and_rejects_bodies() {
        let bytes = encode_keepalive();
        assert_eq!(
            Message::decode(&bytes, AsnEncoding::FourOctet).unwrap(),
            Message::Keepalive
        );
        let mut fat = bytes.to_vec();
        fat.push(0);
        fat[16..18].copy_from_slice(&20u16.to_be_bytes());
        let err = Message::decode(&fat, AsnEncoding::FourOctet).unwrap_err();
        assert_eq!(err.kind, WireErrorKind::BadMessageLength(20));
        assert_eq!(err.offset, 16);
    }

    #[test]
    fn notification_round_trips_with_data() {
        let n = NotificationMessage {
            code: notif::OPEN_MESSAGE_ERROR,
            subcode: notif::UNACCEPTABLE_HOLD_TIME,
            data: vec![0, 1],
        };
        let bytes = n.encode().unwrap();
        let Message::Notification(back) = Message::decode(&bytes, AsnEncoding::FourOctet).unwrap()
        else {
            panic!("expected NOTIFICATION");
        };
        assert_eq!(back, n);
    }

    #[test]
    fn bad_version_and_hold_time_are_typed() {
        let mut bytes = sample_open().encode().unwrap();
        bytes[HEADER_LEN] = 3;
        let err = Message::decode(&bytes, AsnEncoding::FourOctet).unwrap_err();
        assert_eq!(err.kind, WireErrorKind::BadVersion(3));
        assert_eq!(err.offset, HEADER_LEN as u64);

        let err = OpenMessage::new(Asn(1), 2, 0).encode().unwrap_err();
        assert_eq!(err.kind, WireErrorKind::BadHoldTime(2));
        let mut bytes = sample_open().encode().unwrap();
        bytes[HEADER_LEN + 3] = 0;
        bytes[HEADER_LEN + 4] = 1;
        let err = Message::decode(&bytes, AsnEncoding::FourOctet).unwrap_err();
        assert_eq!(err.kind, WireErrorKind::BadHoldTime(1));
    }

    #[test]
    fn bad_capability_length_is_typed() {
        let mut bytes = sample_open().encode().unwrap();
        // First capability starts after version/as/hold/id/opt-len/ptype/plen.
        let cap_len_at = HEADER_LEN + 10 + 2 + 1;
        assert_eq!(bytes[cap_len_at - 1], CAP_MULTIPROTOCOL);
        bytes[cap_len_at] = 3;
        let err = Message::decode(&bytes, AsnEncoding::FourOctet).unwrap_err();
        assert!(
            matches!(
                err.kind,
                WireErrorKind::BadCapabilityLength { code: 1, .. }
                    | WireErrorKind::Truncated { .. }
            ),
            "unexpected {err:?}"
        );
    }

    #[test]
    fn undefined_notification_code_is_rejected_both_ways() {
        let err = NotificationMessage::new(9, 0).encode().unwrap_err();
        assert_eq!(err.kind, WireErrorKind::BadNotificationCode(9));
        let mut bytes = NotificationMessage::cease().encode().unwrap();
        bytes[HEADER_LEN] = 0;
        let err = Message::decode(&bytes, AsnEncoding::FourOctet).unwrap_err();
        assert_eq!(err.kind, WireErrorKind::BadNotificationCode(0));
    }

    #[test]
    fn update_dispatches_through_message() {
        use bgp_types::{AsPath, Route};
        let route = Route::new("10.0.0.0/8".parse().unwrap(), AsPath::origination(Asn(9)));
        let bytes = UpdateMessage::announce(&route)
            .encode(AsnEncoding::FourOctet)
            .unwrap();
        let Message::Update(update) = Message::decode(&bytes, AsnEncoding::FourOctet).unwrap()
        else {
            panic!("expected UPDATE");
        };
        assert_eq!(update.nlri, vec![route.prefix()]);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let bytes = sample_open().encode().unwrap();
        for cut in 0..bytes.len() {
            let err = Message::decode(&bytes[..cut], AsnEncoding::FourOctet).unwrap_err();
            assert!(err.offset <= cut as u64);
        }
    }

    #[test]
    fn back_to_back_messages_stream() {
        let mut stream = sample_open().encode().unwrap();
        stream.extend_from_slice(&encode_keepalive());
        stream.extend_from_slice(&NotificationMessage::cease().encode().unwrap());
        let mut at = 0;
        let mut kinds = Vec::new();
        while at < stream.len() {
            let (msg, used) =
                Message::decode_prefix_of(&stream[at..], AsnEncoding::FourOctet).unwrap();
            kinds.push(msg.type_code());
            at += used;
        }
        assert_eq!(kinds, vec![1, 4, 3]);
    }
}
