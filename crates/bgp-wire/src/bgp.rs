//! RFC 4271 BGP UPDATE messages, with RFC 1997 communities.
//!
//! The encoder and decoder cover exactly the attributes the MOAS study
//! needs: `ORIGIN`, `AS_PATH` (2- and 4-octet), `NEXT_HOP`, `LOCAL_PREF`,
//! and `COMMUNITIES` — the attribute that carries the paper's MOAS list
//! (one `asn:0x4d4c` community per list member, see
//! [`bgp_types::Community::moas_member`]).
//!
//! Decoding is panic-free on arbitrary bytes: every length field is
//! bounds-checked and failures come back as [`WireError`] with the byte
//! offset of the problem.

use bgp_types::{
    AsPath, AsPathSegment, Asn, Community, Ipv4Prefix, Ipv6Prefix, Route, RouteOrigin, Update,
};

use crate::error::{WireError, WireErrorKind};

/// BGP message type code for UPDATE.
pub const MESSAGE_TYPE_UPDATE: u8 = 2;
/// Size of the fixed BGP message header (marker + length + type).
pub const HEADER_LEN: usize = 19;
/// Largest BGP message RFC 4271 allows.
pub const MAX_MESSAGE_LEN: usize = 4096;

pub(crate) const ATTR_ORIGIN: u8 = 1;
pub(crate) const ATTR_AS_PATH: u8 = 2;
pub(crate) const ATTR_NEXT_HOP: u8 = 3;
pub(crate) const ATTR_LOCAL_PREF: u8 = 5;
pub(crate) const ATTR_COMMUNITIES: u8 = 8;
pub(crate) const ATTR_MP_REACH_NLRI: u8 = 14;
pub(crate) const ATTR_MP_UNREACH_NLRI: u8 = 15;

/// RFC 4760 address family identifier for IPv6.
pub(crate) const AFI_IPV6: u16 = 2;
/// RFC 4760 subsequent address family identifier for unicast.
pub(crate) const SAFI_UNICAST: u8 = 1;

const FLAG_OPTIONAL: u8 = 0x80;
const FLAG_TRANSITIVE: u8 = 0x40;
pub(crate) const FLAG_EXTENDED_LENGTH: u8 = 0x10;

pub(crate) const SEGMENT_AS_SET: u8 = 1;
pub(crate) const SEGMENT_AS_SEQUENCE: u8 = 2;

/// RFC 4271 caps an AS_PATH segment's ASN count at one byte; longer logical
/// segments are split on encode and re-joined on decode.
pub(crate) const MAX_SEGMENT_ASNS: usize = 255;

/// How ASNs are laid out inside `AS_PATH`.
///
/// Classic BGP carries 2-octet ASNs; RFC 6793 speakers carry 4 octets
/// (`AS4_PATH` semantics folded into `AS_PATH`, as MRT's `AS4` subtypes do).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AsnEncoding {
    /// 2-octet ASNs; encoding an ASN above 65535 fails with
    /// [`WireErrorKind::AsnTooWide`].
    TwoOctet,
    /// 4-octet ASNs.
    #[default]
    FourOctet,
}

/// RFC 4760 `MP_REACH_NLRI` payload for IPv6 unicast (AFI 2, SAFI 1).
///
/// Inside a live UPDATE the attribute carries its own AFI/SAFI, next hop
/// *and* the announced prefixes; inside a `TABLE_DUMP_V2` RIB entry
/// (RFC 6396 §4.3.4) it is abbreviated to just the next hop — the prefix
/// lives in the enclosing RIB record. Both forms decode into this struct
/// (the abbreviated one with empty `nlri`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MpReach {
    /// The next-hop address bytes (16 for a global address, 32 when a
    /// link-local address rides along).
    pub next_hop: Vec<u8>,
    /// Announced IPv6 prefixes (empty in the MRT RIB form).
    pub nlri: Vec<Ipv6Prefix>,
}

/// RFC 4760 `MP_UNREACH_NLRI` payload for IPv6 unicast (AFI 2, SAFI 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MpUnreach {
    /// Withdrawn IPv6 prefixes.
    pub withdrawn: Vec<Ipv6Prefix>,
}

/// The path attributes this crate round-trips.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathAttributes {
    /// `ORIGIN` (type 1).
    pub origin: RouteOrigin,
    /// `AS_PATH` (type 2).
    pub as_path: AsPath,
    /// `NEXT_HOP` (type 3), as a raw IPv4 address. The simulator routes at
    /// AS granularity and has no router addresses, so exports synthesize
    /// one; see [`PathAttributes::synthetic_next_hop`]. Zero when the
    /// update is IPv6-only (reachability in `mp_reach`, which carries its
    /// own next hop).
    pub next_hop: u32,
    /// `LOCAL_PREF` (type 5), when present.
    pub local_pref: Option<u32>,
    /// `COMMUNITIES` (type 8); carries the MOAS list members.
    pub communities: Vec<Community>,
    /// `MP_REACH_NLRI` (type 14) for IPv6 unicast, when present. Other
    /// AFI/SAFI pairs are skipped like any unimplemented optional attribute.
    pub mp_reach: Option<MpReach>,
    /// `MP_UNREACH_NLRI` (type 15) for IPv6 unicast, when present.
    pub mp_unreach: Option<MpUnreach>,
}

impl PathAttributes {
    /// Captures a simulator route's attributes.
    #[must_use]
    pub fn from_route(route: &Route) -> Self {
        PathAttributes {
            origin: route.origin(),
            as_path: route.as_path().clone(),
            next_hop: Self::synthetic_next_hop(route.as_path().first()),
            local_pref: Some(route.local_pref()),
            communities: route.communities().to_vec(),
            mp_reach: None,
            mp_unreach: None,
        }
    }

    /// The next-hop address exports fabricate for a route learned from
    /// `neighbor`: `10.x.y.z` built from the neighbor's ASN, or `10.0.0.1`
    /// for locally originated routes. Purely cosmetic — the import path
    /// never reads it back.
    #[must_use]
    pub fn synthetic_next_hop(neighbor: Option<Asn>) -> u32 {
        match neighbor {
            Some(asn) => (10 << 24) | (asn.0 & 0x00FF_FFFF),
            None => (10 << 24) | 1,
        }
    }

    /// Rebuilds a simulator route for `prefix` from these attributes.
    #[must_use]
    pub fn to_route(&self, prefix: Ipv4Prefix) -> Route {
        let mut route = Route::new(prefix, self.as_path.clone()).with_origin(self.origin);
        if let Some(lp) = self.local_pref {
            route = route.with_local_pref(lp);
        }
        for &community in &self.communities {
            route = route.with_community(community);
        }
        route
    }
}

/// A BGP UPDATE message: withdrawals, shared path attributes, and the
/// prefixes (NLRI) announced with them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateMessage {
    /// Withdrawn routes.
    pub withdrawn: Vec<Ipv4Prefix>,
    /// Attributes shared by every announced prefix. `None` for pure
    /// withdrawals; mandatory whenever `nlri` is non-empty.
    pub attrs: Option<PathAttributes>,
    /// Announced prefixes.
    pub nlri: Vec<Ipv4Prefix>,
}

impl UpdateMessage {
    /// An UPDATE announcing one simulator route.
    #[must_use]
    pub fn announce(route: &Route) -> Self {
        UpdateMessage {
            withdrawn: Vec::new(),
            attrs: Some(PathAttributes::from_route(route)),
            nlri: vec![route.prefix()],
        }
    }

    /// An UPDATE withdrawing one prefix.
    #[must_use]
    pub fn withdraw(prefix: Ipv4Prefix) -> Self {
        UpdateMessage {
            withdrawn: vec![prefix],
            attrs: None,
            nlri: Vec::new(),
        }
    }

    /// An UPDATE for a simulator [`Update`].
    #[must_use]
    pub fn from_update(update: &Update) -> Self {
        match update {
            Update::Announce(route) => UpdateMessage::announce(route),
            Update::Withdraw(prefix) => UpdateMessage::withdraw(*prefix),
        }
    }

    /// Expands the message back into simulator [`Update`]s (withdrawals
    /// first, then one announcement per NLRI prefix, as RFC 4271 orders the
    /// message body).
    #[must_use]
    pub fn updates(&self) -> Vec<Update> {
        let mut out: Vec<Update> = self
            .withdrawn
            .iter()
            .copied()
            .map(Update::withdraw)
            .collect();
        if let Some(attrs) = &self.attrs {
            out.extend(
                self.nlri
                    .iter()
                    .map(|&p| Update::announce(attrs.to_route(p))),
            );
        }
        out
    }

    /// Encodes the full message, marker and header included.
    ///
    /// # Errors
    ///
    /// Fails with [`WireErrorKind::AsnTooWide`] if a path ASN does not fit
    /// `encoding`, [`WireErrorKind::MissingAttribute`] if NLRI is present
    /// without attributes, or [`WireErrorKind::BadMessageLength`] if the
    /// result would exceed RFC 4271's 4096-byte cap.
    pub fn encode(&self, encoding: AsnEncoding) -> Result<Vec<u8>, WireError> {
        let mut out = Vec::new();
        self.encode_into(&mut out, encoding)?;
        Ok(out)
    }

    /// Appends the encoded message to `out` without intermediate
    /// allocations: sections are written in place and their length fields
    /// backpatched. On error `out` is restored to its previous length.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`UpdateMessage::encode`].
    pub fn encode_into(&self, out: &mut Vec<u8>, encoding: AsnEncoding) -> Result<(), WireError> {
        let start = out.len();
        self.encode_into_unguarded(out, encoding)
            .inspect_err(|_| out.truncate(start))
    }

    fn encode_into_unguarded(
        &self,
        out: &mut Vec<u8>,
        encoding: AsnEncoding,
    ) -> Result<(), WireError> {
        if self.attrs.is_none() && !self.nlri.is_empty() {
            return Err(WireError::new(
                WireErrorKind::MissingAttribute("AS_PATH"),
                0,
            ));
        }

        let start = out.len();
        out.extend_from_slice(&[0xFF; 16]);
        let total_at = reserve_u16(out);
        out.push(MESSAGE_TYPE_UPDATE);

        let withdrawn_at = reserve_u16(out);
        for &prefix in &self.withdrawn {
            encode_prefix(out, prefix);
        }
        // Every length below is checked, never cast: a section that does not
        // fit its length field is a typed error, not a silent truncation.
        let withdrawn_len = checked_u16("withdrawn routes section", out.len() - withdrawn_at - 2)?;
        patch_u16(out, withdrawn_at, withdrawn_len);

        let attrs_at = reserve_u16(out);
        if let Some(pa) = &self.attrs {
            encode_attributes(out, pa, encoding)?;
        }
        let attrs_len = checked_u16("path attributes section", out.len() - attrs_at - 2)?;
        patch_u16(out, attrs_at, attrs_len);

        for &prefix in &self.nlri {
            encode_prefix(out, prefix);
        }

        let total = out.len() - start;
        if total > MAX_MESSAGE_LEN {
            return Err(WireError::new(
                WireErrorKind::LengthOverflow {
                    field: "BGP message",
                    length: total,
                    max: MAX_MESSAGE_LEN,
                },
                0,
            ));
        }
        patch_u16(out, total_at, checked_u16("BGP message", total)?);
        Ok(())
    }

    /// Decodes one full message (marker and header included) from the start
    /// of `bytes`, requiring that nothing follows it.
    ///
    /// # Errors
    ///
    /// Never panics; returns a [`WireError`] locating the first problem.
    pub fn decode(bytes: &[u8], encoding: AsnEncoding) -> Result<UpdateMessage, WireError> {
        let (message, used) = Self::decode_prefix_of(bytes, encoding)?;
        if used != bytes.len() {
            return Err(WireError::new(
                WireErrorKind::TrailingBytes {
                    remaining: bytes.len() - used,
                },
                used as u64,
            ));
        }
        Ok(message)
    }

    /// Decodes one message from the start of `bytes`, returning it and the
    /// number of bytes it occupied (for reading back-to-back messages).
    ///
    /// # Errors
    ///
    /// Never panics; returns a [`WireError`] locating the first problem.
    pub fn decode_prefix_of(
        bytes: &[u8],
        encoding: AsnEncoding,
    ) -> Result<(UpdateMessage, usize), WireError> {
        let mut cur = Cursor::new(bytes);
        let marker = cur.take(16)?;
        if marker.iter().any(|&b| b != 0xFF) {
            return Err(cur.error_at(0, WireErrorKind::BadMarker));
        }
        let total = usize::from(cur.u16()?);
        let msg_type = cur.u8()?;
        if !(HEADER_LEN..=MAX_MESSAGE_LEN).contains(&total) {
            return Err(cur.error_at(16, WireErrorKind::BadMessageLength(total as u16)));
        }
        if msg_type != MESSAGE_TYPE_UPDATE {
            return Err(cur.error_at(18, WireErrorKind::UnsupportedMessageType(msg_type)));
        }
        let body = cur.take(total - HEADER_LEN)?;
        let message = decode_update_body(body, HEADER_LEN as u64, encoding)?;
        Ok((message, total))
    }
}

/// Decodes an UPDATE body (everything after the 19-byte header), reporting
/// errors at `base` + local offset. Shared by [`UpdateMessage`] and the
/// session-message dispatcher in [`crate::msg`].
pub(crate) fn decode_update_body(
    body: &[u8],
    base: u64,
    encoding: AsnEncoding,
) -> Result<UpdateMessage, WireError> {
    let mut body_cur = Cursor::with_base(body, base);
    let withdrawn_len = usize::from(body_cur.u16()?);
    let withdrawn_bytes = body_cur.take(withdrawn_len)?;
    let withdrawn = decode_prefix_run(withdrawn_bytes, body_cur.base + 2)?;

    let attrs_len = usize::from(body_cur.u16()?);
    let attrs_base = body_cur.position();
    let attr_bytes = body_cur.take(attrs_len)?;
    let nlri_base = body_cur.position();
    let nlri = decode_prefix_run(body_cur.rest(), nlri_base)?;

    let attrs = decode_attributes(attr_bytes, attrs_base, encoding)?;
    if attrs.is_none() && !nlri.is_empty() {
        return Err(WireError::new(
            WireErrorKind::MissingAttribute("AS_PATH"),
            nlri_base,
        ));
    }

    Ok(UpdateMessage {
        withdrawn,
        attrs,
        nlri,
    })
}

/// A bounds-checked reader over a byte slice, tracking the absolute offset
/// (`base` + local position) for error reporting.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    base: u64,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Cursor {
            bytes,
            pos: 0,
            base: 0,
        }
    }

    pub(crate) fn with_base(bytes: &'a [u8], base: u64) -> Self {
        Cursor {
            bytes,
            pos: 0,
            base,
        }
    }

    pub(crate) fn position(&self) -> u64 {
        self.base + self.pos as u64
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub(crate) fn rest(&mut self) -> &'a [u8] {
        let rest = &self.bytes[self.pos..];
        self.pos = self.bytes.len();
        rest
    }

    fn error_at(&self, local: u64, kind: WireErrorKind) -> WireError {
        WireError::new(kind, self.base + local)
    }

    pub(crate) fn truncated(&self, needed: usize) -> WireError {
        WireError::new(
            WireErrorKind::Truncated {
                needed: needed - self.remaining(),
            },
            self.position(),
        )
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(self.truncated(n));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }
}

/// Writes one RFC 4271 `<length, prefix>` tuple.
pub(crate) fn encode_prefix(out: &mut Vec<u8>, prefix: Ipv4Prefix) {
    out.push(prefix.len());
    let octets = prefix.network().to_be_bytes();
    out.extend_from_slice(&octets[..prefix_octets(prefix.len())]);
}

pub(crate) fn prefix_octets(bits: u8) -> usize {
    usize::from(bits).div_ceil(8)
}

/// Reads one `<length, prefix>` tuple from a cursor.
pub(crate) fn decode_one_prefix(cur: &mut Cursor<'_>) -> Result<Ipv4Prefix, WireError> {
    let at = cur.position();
    let bits = cur.u8()?;
    if bits > 32 {
        return Err(WireError::new(WireErrorKind::BadPrefixLength(bits), at));
    }
    let body = cur.take(prefix_octets(bits))?;
    let mut octets = [0u8; 4];
    octets[..body.len()].copy_from_slice(body);
    // try_new cannot fail (bits <= 32 was checked), but stay panic-free.
    Ipv4Prefix::try_new(u32::from_be_bytes(octets), bits)
        .map_err(|_| WireError::new(WireErrorKind::BadPrefixLength(bits), at))
}

/// Decodes a back-to-back run of `<length, prefix>` tuples filling `bytes`.
fn decode_prefix_run(bytes: &[u8], base: u64) -> Result<Vec<Ipv4Prefix>, WireError> {
    let mut cur = Cursor::with_base(bytes, base);
    let mut out = Vec::new();
    while cur.remaining() > 0 {
        out.push(decode_one_prefix(&mut cur)?);
    }
    Ok(out)
}

/// Writes one IPv6 `<length, prefix>` tuple.
pub(crate) fn encode_prefix6(out: &mut Vec<u8>, prefix: Ipv6Prefix) {
    out.push(prefix.len());
    let octets = prefix.network().to_be_bytes();
    out.extend_from_slice(&octets[..prefix_octets(prefix.len())]);
}

/// Reads one IPv6 `<length, prefix>` tuple from a cursor.
pub(crate) fn decode_one_prefix6(cur: &mut Cursor<'_>) -> Result<Ipv6Prefix, WireError> {
    let at = cur.position();
    let bits = cur.u8()?;
    if bits > 128 {
        return Err(WireError::new(WireErrorKind::BadPrefixLength(bits), at));
    }
    let body = cur.take(prefix_octets(bits))?;
    let mut octets = [0u8; 16];
    octets[..body.len()].copy_from_slice(body);
    // try_new cannot fail (bits <= 128 was checked), but stay panic-free.
    Ipv6Prefix::try_new(u128::from_be_bytes(octets), bits)
        .map_err(|_| WireError::new(WireErrorKind::BadPrefixLength(bits), at))
}

/// Decodes a back-to-back run of IPv6 `<length, prefix>` tuples.
fn decode_prefix6_run(bytes: &[u8], base: u64) -> Result<Vec<Ipv6Prefix>, WireError> {
    let mut cur = Cursor::with_base(bytes, base);
    let mut out = Vec::new();
    while cur.remaining() > 0 {
        out.push(decode_one_prefix6(&mut cur)?);
    }
    Ok(out)
}

/// Reserves a 2-byte length field in `out`, returning its offset for
/// [`patch_u16`] once the section it describes has been written.
pub(crate) fn reserve_u16(out: &mut Vec<u8>) -> usize {
    let at = out.len();
    out.extend_from_slice(&[0, 0]);
    at
}

/// Backpatches a length field reserved by [`reserve_u16`].
pub(crate) fn patch_u16(out: &mut [u8], at: usize, value: u16) {
    out[at..at + 2].copy_from_slice(&value.to_be_bytes());
}

/// Converts a length to `u16`, failing with a typed [`WireError`] instead of
/// truncating when it does not fit the wire format's 2-byte length field.
pub(crate) fn checked_u16(field: &'static str, length: usize) -> Result<u16, WireError> {
    u16::try_from(length).map_err(|_| {
        WireError::new(
            WireErrorKind::LengthOverflow {
                field,
                length,
                max: usize::from(u16::MAX),
            },
            0,
        )
    })
}

/// Writes one path attribute, selecting the extended-length form (2-byte
/// length) whenever the body exceeds the 1-byte field.
///
/// Fails with [`WireErrorKind::LengthOverflow`] when the body exceeds even
/// the extended 2-byte length field — an attribute that large cannot be
/// represented in RFC 4271 at all, so truncating its length would corrupt
/// the attribute block.
fn push_attr(out: &mut Vec<u8>, flags: u8, type_code: u8, body: &[u8]) -> Result<(), WireError> {
    if body.len() > 255 {
        let len = checked_u16("path attribute body", body.len())?;
        out.push(flags | FLAG_EXTENDED_LENGTH);
        out.push(type_code);
        out.extend_from_slice(&len.to_be_bytes());
    } else {
        out.push(flags);
        out.push(type_code);
        out.push(body.len() as u8);
    }
    out.extend_from_slice(body);
    Ok(())
}

fn encode_asn(out: &mut Vec<u8>, asn: Asn, encoding: AsnEncoding) -> Result<(), WireError> {
    match encoding {
        AsnEncoding::TwoOctet => {
            let narrow = u16::try_from(asn.0)
                .map_err(|_| WireError::new(WireErrorKind::AsnTooWide(asn.0), 0))?;
            out.extend_from_slice(&narrow.to_be_bytes());
        }
        AsnEncoding::FourOctet => out.extend_from_slice(&asn.0.to_be_bytes()),
    }
    Ok(())
}

/// Encodes the attribute block (without the leading total-length field).
/// Multiprotocol attributes are written in the full RFC 4760 form; see
/// [`encode_attributes_rib`] for the abbreviated MRT RIB form.
pub(crate) fn encode_attributes(
    out: &mut Vec<u8>,
    attrs: &PathAttributes,
    encoding: AsnEncoding,
) -> Result<(), WireError> {
    encode_attributes_form(out, attrs, encoding, false)
}

/// [`encode_attributes`] in the `TABLE_DUMP_V2` RIB-entry form: the
/// `MP_REACH_NLRI` body is abbreviated to `<next-hop length, next hop>`
/// (RFC 6396 §4.3.4) — no AFI/SAFI, no NLRI.
pub(crate) fn encode_attributes_rib(
    out: &mut Vec<u8>,
    attrs: &PathAttributes,
    encoding: AsnEncoding,
) -> Result<(), WireError> {
    encode_attributes_form(out, attrs, encoding, true)
}

fn encode_attributes_form(
    out: &mut Vec<u8>,
    attrs: &PathAttributes,
    encoding: AsnEncoding,
    rib_form: bool,
) -> Result<(), WireError> {
    let origin_code = match attrs.origin {
        RouteOrigin::Igp => 0u8,
        RouteOrigin::Egp => 1,
        RouteOrigin::Incomplete => 2,
    };
    push_attr(out, FLAG_TRANSITIVE, ATTR_ORIGIN, &[origin_code])?;

    let mut path = Vec::new();
    for segment in attrs.as_path.segments() {
        let (seg_type, asns) = match segment {
            AsPathSegment::Sequence(asns) => (SEGMENT_AS_SEQUENCE, asns),
            AsPathSegment::Set(asns) => (SEGMENT_AS_SET, asns),
        };
        // RFC 4271 caps a segment at 255 ASNs; split longer ones into
        // multiple segments of the same type (re-joined on decode, see
        // `decode_as_path`). `chunks` yields at most 255 elements per
        // chunk, so the count byte below cannot truncate.
        for chunk in asns.chunks(MAX_SEGMENT_ASNS) {
            path.push(seg_type);
            path.push(chunk.len() as u8);
            for &asn in chunk {
                encode_asn(&mut path, asn, encoding)?;
            }
        }
    }
    push_attr(out, FLAG_TRANSITIVE, ATTR_AS_PATH, &path)?;
    push_attr(
        out,
        FLAG_TRANSITIVE,
        ATTR_NEXT_HOP,
        &attrs.next_hop.to_be_bytes(),
    )?;
    if let Some(lp) = attrs.local_pref {
        push_attr(out, FLAG_TRANSITIVE, ATTR_LOCAL_PREF, &lp.to_be_bytes())?;
    }
    if !attrs.communities.is_empty() {
        let mut body = Vec::with_capacity(4 * attrs.communities.len());
        for community in &attrs.communities {
            body.extend_from_slice(&community.0.to_be_bytes());
        }
        push_attr(
            out,
            FLAG_OPTIONAL | FLAG_TRANSITIVE,
            ATTR_COMMUNITIES,
            &body,
        )?;
    }
    if let Some(mp) = &attrs.mp_reach {
        let mut body = Vec::with_capacity(5 + mp.next_hop.len() + 17 * mp.nlri.len());
        if rib_form {
            let nh_len = u8::try_from(mp.next_hop.len()).map_err(|_| {
                WireError::new(
                    WireErrorKind::LengthOverflow {
                        field: "MP_REACH_NLRI next hop",
                        length: mp.next_hop.len(),
                        max: 255,
                    },
                    0,
                )
            })?;
            body.push(nh_len);
            body.extend_from_slice(&mp.next_hop);
        } else {
            body.extend_from_slice(&AFI_IPV6.to_be_bytes());
            body.push(SAFI_UNICAST);
            let nh_len = u8::try_from(mp.next_hop.len()).map_err(|_| {
                WireError::new(
                    WireErrorKind::LengthOverflow {
                        field: "MP_REACH_NLRI next hop",
                        length: mp.next_hop.len(),
                        max: 255,
                    },
                    0,
                )
            })?;
            body.push(nh_len);
            body.extend_from_slice(&mp.next_hop);
            body.push(0); // reserved (SNPA count in RFC 2858)
            for &prefix in &mp.nlri {
                encode_prefix6(&mut body, prefix);
            }
        }
        push_attr(out, FLAG_OPTIONAL, ATTR_MP_REACH_NLRI, &body)?;
    }
    if let Some(mp) = &attrs.mp_unreach {
        let mut body = Vec::with_capacity(3 + 17 * mp.withdrawn.len());
        body.extend_from_slice(&AFI_IPV6.to_be_bytes());
        body.push(SAFI_UNICAST);
        for &prefix in &mp.withdrawn {
            encode_prefix6(&mut body, prefix);
        }
        push_attr(out, FLAG_OPTIONAL, ATTR_MP_UNREACH_NLRI, &body)?;
    }
    Ok(())
}

/// Decodes an attribute block. Returns `None` when the block is empty (a
/// pure withdrawal). Multiprotocol attributes are expected in the full
/// RFC 4760 form; see [`decode_attributes_rib`] for MRT RIB entries.
pub(crate) fn decode_attributes(
    bytes: &[u8],
    base: u64,
    encoding: AsnEncoding,
) -> Result<Option<PathAttributes>, WireError> {
    decode_attributes_form(bytes, base, encoding, false)
}

/// [`decode_attributes`] for `TABLE_DUMP_V2` RIB entries, where
/// `MP_REACH_NLRI` is abbreviated to `<next-hop length, next hop>`
/// (RFC 6396 §4.3.4).
pub(crate) fn decode_attributes_rib(
    bytes: &[u8],
    base: u64,
    encoding: AsnEncoding,
) -> Result<Option<PathAttributes>, WireError> {
    decode_attributes_form(bytes, base, encoding, true)
}

fn decode_attributes_form(
    bytes: &[u8],
    base: u64,
    encoding: AsnEncoding,
    rib_form: bool,
) -> Result<Option<PathAttributes>, WireError> {
    if bytes.is_empty() {
        return Ok(None);
    }
    let mut cur = Cursor::with_base(bytes, base);
    let mut origin = None;
    let mut as_path = None;
    let mut next_hop = None;
    let mut local_pref = None;
    let mut communities = Vec::new();
    let mut mp_reach = None;
    let mut mp_unreach = None;

    while cur.remaining() > 0 {
        let flags = cur.u8()?;
        let type_code = cur.u8()?;
        let len = if flags & FLAG_EXTENDED_LENGTH != 0 {
            usize::from(cur.u16()?)
        } else {
            usize::from(cur.u8()?)
        };
        let at = cur.position();
        let body = cur.take(len)?;
        let bad_len = || {
            WireError::new(
                WireErrorKind::BadAttributeLength {
                    type_code,
                    length: len,
                },
                at,
            )
        };
        match type_code {
            ATTR_ORIGIN => {
                let &[code] = body else { return Err(bad_len()) };
                origin = Some(match code {
                    0 => RouteOrigin::Igp,
                    1 => RouteOrigin::Egp,
                    2 => RouteOrigin::Incomplete,
                    other => {
                        return Err(WireError::new(WireErrorKind::BadOrigin(other), at));
                    }
                });
            }
            ATTR_AS_PATH => as_path = Some(decode_as_path(body, at, encoding)?),
            ATTR_NEXT_HOP => {
                let Ok(octets) = <[u8; 4]>::try_from(body) else {
                    return Err(bad_len());
                };
                next_hop = Some(u32::from_be_bytes(octets));
            }
            ATTR_LOCAL_PREF => {
                let Ok(octets) = <[u8; 4]>::try_from(body) else {
                    return Err(bad_len());
                };
                local_pref = Some(u32::from_be_bytes(octets));
            }
            ATTR_COMMUNITIES => {
                if body.len() % 4 != 0 {
                    return Err(bad_len());
                }
                for chunk in body.chunks_exact(4) {
                    communities.push(Community(u32::from_be_bytes([
                        chunk[0], chunk[1], chunk[2], chunk[3],
                    ])));
                }
            }
            ATTR_MP_REACH_NLRI => {
                mp_reach = decode_mp_reach(body, at, rib_form)?.or(mp_reach);
            }
            ATTR_MP_UNREACH_NLRI => {
                mp_unreach = decode_mp_unreach(body, at)?.or(mp_unreach);
            }
            // Unrecognized attributes are skipped, as BGP speakers do with
            // optional attributes they do not implement.
            _ => {}
        }
    }

    let end = cur.position();
    let missing = |name| WireError::new(WireErrorKind::MissingAttribute(name), end);
    let origin = origin.ok_or_else(|| missing("ORIGIN"))?;
    let as_path = as_path.ok_or_else(|| missing("AS_PATH"))?;
    // An IPv6-only update carries its next hop inside MP_REACH_NLRI and has
    // no NEXT_HOP attribute at all (RFC 4760 §7); zero stands in for it.
    let next_hop = match (next_hop, &mp_reach) {
        (Some(nh), _) => nh,
        (None, Some(_)) => 0,
        (None, None) => return Err(missing("NEXT_HOP")),
    };
    Ok(Some(PathAttributes {
        origin,
        as_path,
        next_hop,
        local_pref,
        communities,
        mp_reach,
        mp_unreach,
    }))
}

/// Decodes an `MP_REACH_NLRI` body at absolute offset `base`. Returns
/// `None` (skip, like any unimplemented optional attribute) for AFI/SAFI
/// pairs other than IPv6 unicast; the abbreviated `rib_form` carries no
/// AFI/SAFI and always decodes.
fn decode_mp_reach(body: &[u8], base: u64, rib_form: bool) -> Result<Option<MpReach>, WireError> {
    let mut cur = Cursor::with_base(body, base);
    if rib_form {
        let nh_at = cur.position();
        let nh_len = usize::from(cur.u8()?);
        let next_hop = cur.take(nh_len)?.to_vec();
        if cur.remaining() > 0 {
            return Err(WireError::new(
                WireErrorKind::BadAttributeLength {
                    type_code: ATTR_MP_REACH_NLRI,
                    length: body.len(),
                },
                nh_at,
            ));
        }
        return Ok(Some(MpReach {
            next_hop,
            nlri: Vec::new(),
        }));
    }
    let afi = cur.u16()?;
    let safi = cur.u8()?;
    let nh_at = cur.position();
    let nh_len = usize::from(cur.u8()?);
    let next_hop = cur.take(nh_len)?.to_vec();
    cur.u8()?; // reserved (SNPA count)
    if afi != AFI_IPV6 || safi != SAFI_UNICAST {
        return Ok(None);
    }
    if nh_len != 16 && nh_len != 32 {
        return Err(WireError::new(
            WireErrorKind::BadAttributeLength {
                type_code: ATTR_MP_REACH_NLRI,
                length: nh_len,
            },
            nh_at,
        ));
    }
    let nlri_base = cur.position();
    let nlri = decode_prefix6_run(cur.rest(), nlri_base)?;
    Ok(Some(MpReach { next_hop, nlri }))
}

/// Decodes an `MP_UNREACH_NLRI` body at absolute offset `base`. Returns
/// `None` for AFI/SAFI pairs other than IPv6 unicast.
fn decode_mp_unreach(body: &[u8], base: u64) -> Result<Option<MpUnreach>, WireError> {
    let mut cur = Cursor::with_base(body, base);
    let afi = cur.u16()?;
    let safi = cur.u8()?;
    if afi != AFI_IPV6 || safi != SAFI_UNICAST {
        return Ok(None);
    }
    let run_base = cur.position();
    let withdrawn = decode_prefix6_run(cur.rest(), run_base)?;
    Ok(Some(MpUnreach { withdrawn }))
}

fn decode_as_path(bytes: &[u8], base: u64, encoding: AsnEncoding) -> Result<AsPath, WireError> {
    let mut cur = Cursor::with_base(bytes, base);
    let mut segments: Vec<AsPathSegment> = Vec::new();
    // Tracks whether the previous wire segment was full (exactly 255 ASNs):
    // the encoder splits oversized logical segments into full chunks, so a
    // full segment followed by one of the same type is re-joined here. A
    // non-full predecessor is left alone — adjacent same-type segments can
    // also appear legitimately (aggregated AS_SETs), and merging those
    // would change path semantics.
    let mut prev_full = false;
    while cur.remaining() > 0 {
        let at = cur.position();
        let seg_type = cur.u8()?;
        let count = usize::from(cur.u8()?);
        let mut asns = Vec::with_capacity(count);
        for _ in 0..count {
            let asn = match encoding {
                AsnEncoding::TwoOctet => u32::from(cur.u16()?),
                AsnEncoding::FourOctet => cur.u32()?,
            };
            asns.push(Asn(asn));
        }
        let segment = match seg_type {
            SEGMENT_AS_SEQUENCE => AsPathSegment::Sequence(asns),
            SEGMENT_AS_SET => AsPathSegment::Set(asns),
            other => return Err(WireError::new(WireErrorKind::BadSegmentType(other), at)),
        };
        match (segments.last_mut(), prev_full, segment) {
            (Some(AsPathSegment::Sequence(tail)), true, AsPathSegment::Sequence(next))
            | (Some(AsPathSegment::Set(tail)), true, AsPathSegment::Set(next)) => {
                tail.extend(next);
            }
            (_, _, segment) => segments.push(segment),
        }
        prev_full = count == MAX_SEGMENT_ASNS;
    }
    // from_segments canonicalizes (drops empties, merges adjacent
    // sequences), matching what the simulator-side constructors produce.
    Ok(AsPath::from_segments(segments))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::MoasList;

    fn sample_route() -> Route {
        let mut list = MoasList::new();
        list.insert(Asn(4));
        list.insert(Asn(226));
        Route::new(
            "208.8.0.0/16".parse().unwrap(),
            AsPath::from_sequence([Asn(701), Asn(1239), Asn(4)]),
        )
        .with_origin(RouteOrigin::Incomplete)
        .with_local_pref(120)
        .with_moas_list(list)
    }

    #[test]
    fn announce_round_trips_in_both_encodings() {
        let route = sample_route();
        for encoding in [AsnEncoding::TwoOctet, AsnEncoding::FourOctet] {
            let msg = UpdateMessage::announce(&route);
            let bytes = msg.encode(encoding).unwrap();
            let back = UpdateMessage::decode(&bytes, encoding).unwrap();
            assert_eq!(back, msg);
            let updates = back.updates();
            assert_eq!(updates.len(), 1);
            let Update::Announce(decoded) = &updates[0] else {
                panic!("expected announcement");
            };
            assert_eq!(decoded, &route);
        }
    }

    #[test]
    fn moas_list_survives_the_wire() {
        let route = sample_route();
        let bytes = UpdateMessage::announce(&route)
            .encode(AsnEncoding::FourOctet)
            .unwrap();
        let back = UpdateMessage::decode(&bytes, AsnEncoding::FourOctet).unwrap();
        let attrs = back.attrs.unwrap();
        let list = MoasList::from_communities(&attrs.communities).unwrap();
        assert!(list.contains(Asn(4)));
        assert!(list.contains(Asn(226)));
        assert_eq!(list.len(), 2);
    }

    #[test]
    fn withdrawal_round_trips() {
        let msg = UpdateMessage::withdraw("10.1.0.0/16".parse().unwrap());
        let bytes = msg.encode(AsnEncoding::FourOctet).unwrap();
        let back = UpdateMessage::decode(&bytes, AsnEncoding::FourOctet).unwrap();
        assert_eq!(back, msg);
        assert!(back.updates()[0].is_withdrawal());
    }

    #[test]
    fn as_set_segments_round_trip() {
        let route = Route::new(
            "10.2.0.0/16".parse().unwrap(),
            AsPath::from_segments([
                AsPathSegment::Sequence(vec![Asn(1), Asn(2)]),
                AsPathSegment::Set(vec![Asn(7), Asn(9)]),
            ]),
        );
        let bytes = UpdateMessage::announce(&route)
            .encode(AsnEncoding::TwoOctet)
            .unwrap();
        let back = UpdateMessage::decode(&bytes, AsnEncoding::TwoOctet).unwrap();
        assert_eq!(back.attrs.unwrap().as_path, *route.as_path());
    }

    #[test]
    fn wide_asn_rejected_by_two_octet_encoding() {
        let route = Route::new(
            "10.0.0.0/8".parse().unwrap(),
            AsPath::from_sequence([Asn(70_000)]),
        );
        let err = UpdateMessage::announce(&route)
            .encode(AsnEncoding::TwoOctet)
            .unwrap_err();
        assert_eq!(err.kind, WireErrorKind::AsnTooWide(70_000));
        assert!(UpdateMessage::announce(&route)
            .encode(AsnEncoding::FourOctet)
            .is_ok());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let bytes = UpdateMessage::announce(&sample_route())
            .encode(AsnEncoding::FourOctet)
            .unwrap();
        for cut in 0..bytes.len() {
            let err = UpdateMessage::decode(&bytes[..cut], AsnEncoding::FourOctet).unwrap_err();
            assert!(
                err.offset <= cut as u64,
                "offset {} past cut {cut}",
                err.offset
            );
        }
    }

    #[test]
    fn bad_marker_and_type_are_rejected() {
        let mut bytes = UpdateMessage::withdraw("10.0.0.0/8".parse().unwrap())
            .encode(AsnEncoding::FourOctet)
            .unwrap();
        let mut broken = bytes.clone();
        broken[3] = 0;
        let err = UpdateMessage::decode(&broken, AsnEncoding::FourOctet).unwrap_err();
        assert_eq!(err.kind, WireErrorKind::BadMarker);
        bytes[18] = 1; // OPEN
        let err = UpdateMessage::decode(&bytes, AsnEncoding::FourOctet).unwrap_err();
        assert_eq!(err.kind, WireErrorKind::UnsupportedMessageType(1));
        assert_eq!(err.offset, 18);
    }

    #[test]
    fn prefix_length_over_32_is_rejected_with_offset() {
        let msg = UpdateMessage::withdraw("10.0.0.0/8".parse().unwrap());
        let mut bytes = msg.encode(AsnEncoding::FourOctet).unwrap();
        bytes[21] = 33; // the withdrawn prefix's length byte
        let err = UpdateMessage::decode(&bytes, AsnEncoding::FourOctet).unwrap_err();
        assert_eq!(err.kind, WireErrorKind::BadPrefixLength(33));
        assert_eq!(err.offset, 21);
    }

    #[test]
    fn nlri_without_attributes_is_rejected() {
        // Hand-build: empty withdrawn, empty attrs, one NLRI prefix.
        let mut body = vec![0u8, 0, 0, 0];
        body.push(8);
        body.push(10);
        let total = HEADER_LEN + body.len();
        let mut bytes = vec![0xFF; 16];
        bytes.extend_from_slice(&(total as u16).to_be_bytes());
        bytes.push(MESSAGE_TYPE_UPDATE);
        bytes.extend_from_slice(&body);
        let err = UpdateMessage::decode(&bytes, AsnEncoding::FourOctet).unwrap_err();
        assert_eq!(err.kind, WireErrorKind::MissingAttribute("AS_PATH"));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = UpdateMessage::withdraw("10.0.0.0/8".parse().unwrap())
            .encode(AsnEncoding::FourOctet)
            .unwrap();
        bytes.push(0);
        let err = UpdateMessage::decode(&bytes, AsnEncoding::FourOctet).unwrap_err();
        assert_eq!(err.kind, WireErrorKind::TrailingBytes { remaining: 1 });
    }

    #[test]
    fn unknown_attributes_are_skipped() {
        let route = Route::new("10.0.0.0/8".parse().unwrap(), AsPath::origination(Asn(7)));
        let msg = UpdateMessage::announce(&route);
        let mut bytes = msg.encode(AsnEncoding::FourOctet).unwrap();
        // Splice in an unknown optional attribute (type 99, 2 bytes) by
        // rebuilding the message body around the existing attribute block.
        let attrs_len = usize::from(u16::from_be_bytes([bytes[21], bytes[22]]));
        let insert_at = 23 + attrs_len;
        let extra = [FLAG_OPTIONAL | FLAG_TRANSITIVE, 99, 2, 0xAB, 0xCD];
        for (i, b) in extra.iter().enumerate() {
            bytes.insert(insert_at + i, *b);
        }
        let new_attrs_len = u16::try_from(attrs_len + extra.len()).unwrap();
        bytes[21..23].copy_from_slice(&new_attrs_len.to_be_bytes());
        let new_total = u16::try_from(bytes.len()).unwrap().to_be_bytes();
        bytes[16..18].copy_from_slice(&new_total);
        let back = UpdateMessage::decode(&bytes, AsnEncoding::FourOctet).unwrap();
        assert_eq!(back.attrs.unwrap().as_path, *route.as_path());
    }
}
