//! Allocation-free (borrowed) decoding of BGP UPDATE and MRT bytes.
//!
//! The owned decoders in [`crate::bgp`] and [`crate::mrt`] materialise a
//! full object graph per record — `Vec<Ipv4Prefix>` runs, `AsPath` segment
//! vectors, `String` view names — even when the consumer only wants each
//! record's prefix and origin AS. Over a multi-year Route Views archive
//! that is millions of allocations whose contents are immediately thrown
//! away.
//!
//! This module is the zero-copy alternative: a *view* borrows the record's
//! bytes and decodes fields lazily, on access. Parsing a view runs the
//! **exact same validation, in the same order, producing the same
//! [`WireError`] kinds and offsets** as the owned decoder — the property
//! the differential tests in `tests/view_props.rs` pin down — so a view is
//! never a weaker parse, just a cheaper one. Once a view exists, its
//! iterators ([`UpdateView::nlri`], [`RibView::entries`],
//! [`AttrsView::path_asns`], …) walk the validated bytes infallibly and
//! without allocating; `to_*` conversions rebuild the owned types when a
//! caller really needs them.
//!
//! Two companions complete the ingest path:
//!
//! * [`MrtViewReader`] — streams MRT records through one reusable buffer
//!   (the owned [`crate::mrt::MrtReader`] allocates a fresh body `Vec` per
//!   record), exposing the timestamp before the body is parsed so callers
//!   can group by day without decoding;
//! * [`AttrInterner`] — hash-conses `AS_PATH` and `COMMUNITIES` wire bytes
//!   into owned values via [`bgp_types::Interner`], so a RIB dump that
//!   repeats the same path ten thousand times decodes it once.

use std::io;

use bgp_types::{
    AsPath, AsPathSegment, Asn, Community, Interner, Ipv4Prefix, Ipv6Prefix, Route, RouteOrigin,
};

use crate::bgp::{
    decode_one_prefix, decode_one_prefix6, prefix_octets, AsnEncoding, Cursor, MpReach, MpUnreach,
    PathAttributes, UpdateMessage, AFI_IPV6, ATTR_AS_PATH, ATTR_COMMUNITIES, ATTR_LOCAL_PREF,
    ATTR_MP_REACH_NLRI, ATTR_MP_UNREACH_NLRI, ATTR_NEXT_HOP, ATTR_ORIGIN, FLAG_EXTENDED_LENGTH,
    HEADER_LEN, MAX_MESSAGE_LEN, MAX_SEGMENT_ASNS, MESSAGE_TYPE_UPDATE, SAFI_UNICAST,
    SEGMENT_AS_SEQUENCE, SEGMENT_AS_SET,
};
use crate::error::{WireError, WireErrorKind};
use crate::mrt::{
    read_exact_or_eof, Bgp4mpMessage, MrtBody, MrtRecord, PeerEntry, PeerIndexTable, RibEntry,
    RibIpv4Unicast, RibIpv6Unicast, MAX_RECORD_LEN, SUBTYPE_BGP4MP_MESSAGE,
    SUBTYPE_BGP4MP_MESSAGE_AS4, SUBTYPE_PEER_INDEX_TABLE, SUBTYPE_RIB_IPV4_UNICAST,
    SUBTYPE_RIB_IPV6_UNICAST, TYPE_BGP4MP, TYPE_TABLE_DUMP_V2,
};
use crate::msg::{
    decode_one_capability, Capability, Message, NotificationMessage, OpenMessage, BGP_VERSION,
    CAP_FOUR_OCTET_AS, CAP_MULTIPROTOCOL, MESSAGE_TYPE_KEEPALIVE, MESSAGE_TYPE_NOTIFICATION,
    MESSAGE_TYPE_OPEN, MIN_NOTIFICATION_LEN, MIN_OPEN_LEN, PARAM_CAPABILITIES,
};

// ---------------------------------------------------------------------------
// Validation walks (no construction). Each mirrors its owned decoder
// statement by statement so error kinds and offsets stay identical.
// ---------------------------------------------------------------------------

/// Mirrors the prefix-run walk of the owned decoder without building a Vec.
fn validate_prefix_run(bytes: &[u8], base: u64) -> Result<(), WireError> {
    let mut cur = Cursor::with_base(bytes, base);
    while cur.remaining() > 0 {
        decode_one_prefix(&mut cur)?;
    }
    Ok(())
}

/// Mirrors `decode_as_path` without building segments: ASN octets are read
/// (not skipped) so truncation errors land on the same offset, and the
/// segment-type check happens after the ASNs exactly as the owned decoder
/// orders it.
fn validate_as_path(bytes: &[u8], base: u64, encoding: AsnEncoding) -> Result<(), WireError> {
    let mut cur = Cursor::with_base(bytes, base);
    while cur.remaining() > 0 {
        let at = cur.position();
        let seg_type = cur.u8()?;
        let count = usize::from(cur.u8()?);
        for _ in 0..count {
            match encoding {
                AsnEncoding::TwoOctet => {
                    cur.u16()?;
                }
                AsnEncoding::FourOctet => {
                    cur.u32()?;
                }
            }
        }
        if seg_type != SEGMENT_AS_SEQUENCE && seg_type != SEGMENT_AS_SET {
            return Err(WireError::new(WireErrorKind::BadSegmentType(seg_type), at));
        }
    }
    Ok(())
}

/// Mirrors the IPv6 prefix-run walk without building a Vec.
fn validate_prefix6_run(bytes: &[u8], base: u64) -> Result<(), WireError> {
    let mut cur = Cursor::with_base(bytes, base);
    while cur.remaining() > 0 {
        decode_one_prefix6(&mut cur)?;
    }
    Ok(())
}

/// Mirrors `decode_mp_reach` without building [`MpReach`]. Returns whether
/// the attribute applied (`Some` in owned terms — IPv6 unicast, or any body
/// in the abbreviated RIB form).
fn validate_mp_reach(body: &[u8], base: u64, rib_form: bool) -> Result<bool, WireError> {
    let mut cur = Cursor::with_base(body, base);
    if rib_form {
        let nh_at = cur.position();
        let nh_len = usize::from(cur.u8()?);
        cur.take(nh_len)?;
        if cur.remaining() > 0 {
            return Err(WireError::new(
                WireErrorKind::BadAttributeLength {
                    type_code: ATTR_MP_REACH_NLRI,
                    length: body.len(),
                },
                nh_at,
            ));
        }
        return Ok(true);
    }
    let afi = cur.u16()?;
    let safi = cur.u8()?;
    let nh_at = cur.position();
    let nh_len = usize::from(cur.u8()?);
    cur.take(nh_len)?;
    cur.u8()?; // reserved (SNPA count)
    if afi != AFI_IPV6 || safi != SAFI_UNICAST {
        return Ok(false);
    }
    if nh_len != 16 && nh_len != 32 {
        return Err(WireError::new(
            WireErrorKind::BadAttributeLength {
                type_code: ATTR_MP_REACH_NLRI,
                length: nh_len,
            },
            nh_at,
        ));
    }
    let nlri_base = cur.position();
    validate_prefix6_run(cur.rest(), nlri_base)?;
    Ok(true)
}

/// Mirrors `decode_mp_unreach` without building [`MpUnreach`].
fn validate_mp_unreach(body: &[u8], base: u64) -> Result<(), WireError> {
    let mut cur = Cursor::with_base(body, base);
    let afi = cur.u16()?;
    let safi = cur.u8()?;
    if afi != AFI_IPV6 || safi != SAFI_UNICAST {
        return Ok(());
    }
    let run_base = cur.position();
    validate_prefix6_run(cur.rest(), run_base)
}

/// Mirrors `decode_attributes` without building [`PathAttributes`]. Returns
/// whether the block is non-empty (`Some` in owned terms).
fn validate_attributes(
    bytes: &[u8],
    base: u64,
    encoding: AsnEncoding,
    rib_form: bool,
) -> Result<bool, WireError> {
    if bytes.is_empty() {
        return Ok(false);
    }
    let mut cur = Cursor::with_base(bytes, base);
    let mut has_origin = false;
    let mut has_as_path = false;
    let mut has_next_hop = false;
    let mut has_mp_reach = false;
    while cur.remaining() > 0 {
        let flags = cur.u8()?;
        let type_code = cur.u8()?;
        let len = if flags & FLAG_EXTENDED_LENGTH != 0 {
            usize::from(cur.u16()?)
        } else {
            usize::from(cur.u8()?)
        };
        let at = cur.position();
        let body = cur.take(len)?;
        let bad_len = || {
            WireError::new(
                WireErrorKind::BadAttributeLength {
                    type_code,
                    length: len,
                },
                at,
            )
        };
        match type_code {
            ATTR_ORIGIN => {
                let &[code] = body else { return Err(bad_len()) };
                if code > 2 {
                    return Err(WireError::new(WireErrorKind::BadOrigin(code), at));
                }
                has_origin = true;
            }
            ATTR_AS_PATH => {
                validate_as_path(body, at, encoding)?;
                has_as_path = true;
            }
            ATTR_NEXT_HOP => {
                if body.len() != 4 {
                    return Err(bad_len());
                }
                has_next_hop = true;
            }
            ATTR_LOCAL_PREF if body.len() != 4 => return Err(bad_len()),
            ATTR_COMMUNITIES if body.len() % 4 != 0 => return Err(bad_len()),
            ATTR_MP_REACH_NLRI => {
                has_mp_reach = validate_mp_reach(body, at, rib_form)? || has_mp_reach;
            }
            ATTR_MP_UNREACH_NLRI => validate_mp_unreach(body, at)?,
            _ => {}
        }
    }
    let end = cur.position();
    let missing = |name| WireError::new(WireErrorKind::MissingAttribute(name), end);
    if !has_origin {
        return Err(missing("ORIGIN"));
    }
    if !has_as_path {
        return Err(missing("AS_PATH"));
    }
    // An IPv6-only update carries its next hop inside MP_REACH_NLRI.
    if !has_next_hop && !has_mp_reach {
        return Err(missing("NEXT_HOP"));
    }
    Ok(true)
}

/// Mirrors `decode_open_body` without building [`OpenMessage`]. Capability
/// bytes run through the owned per-capability decoder so errors stay
/// identical by construction.
fn validate_open_body(body: &[u8], base: u64) -> Result<(), WireError> {
    let mut cur = Cursor::with_base(body, base);
    let version_at = cur.position();
    let version = cur.u8()?;
    if version != BGP_VERSION {
        return Err(WireError::new(
            WireErrorKind::BadVersion(version),
            version_at,
        ));
    }
    cur.u16()?; // my_as
    let hold_at = cur.position();
    let hold_time = cur.u16()?;
    if hold_time == 1 || hold_time == 2 {
        return Err(WireError::new(
            WireErrorKind::BadHoldTime(hold_time),
            hold_at,
        ));
    }
    cur.u32()?; // bgp id
    let opt_len = usize::from(cur.u8()?);
    let opt_base = cur.position();
    let opt = cur.take(opt_len)?;
    if cur.remaining() > 0 {
        return Err(WireError::new(
            WireErrorKind::TrailingBytes {
                remaining: cur.remaining(),
            },
            cur.position(),
        ));
    }
    let mut params = Cursor::with_base(opt, opt_base);
    while params.remaining() > 0 {
        let ptype = params.u8()?;
        let plen = usize::from(params.u8()?);
        let pbase = params.position();
        let pbody = params.take(plen)?;
        if ptype == PARAM_CAPABILITIES {
            let mut caps = Cursor::with_base(pbody, pbase);
            while caps.remaining() > 0 {
                decode_one_capability(&mut caps)?;
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Infallible iterators over validated bytes.
//
// Each iterator trusts that its input passed the validation walk above, so
// its bounds checks cannot fire; they still use `get` (never indexing) so a
// misuse degrades to early iterator exhaustion, not a panic.
// ---------------------------------------------------------------------------

/// Iterates a validated run of `<length, prefix>` tuples.
#[derive(Debug, Clone, Copy)]
pub struct PrefixIter<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Iterator for PrefixIter<'_> {
    type Item = Ipv4Prefix;

    fn next(&mut self) -> Option<Ipv4Prefix> {
        let bits = *self.bytes.get(self.pos)?;
        let octets = prefix_octets(bits);
        let body = self.bytes.get(self.pos + 1..self.pos + 1 + octets)?;
        self.pos += 1 + octets;
        let mut buf = [0u8; 4];
        buf[..body.len()].copy_from_slice(body);
        Ipv4Prefix::try_new(u32::from_be_bytes(buf), bits).ok()
    }
}

/// Iterates a validated run of IPv6 `<length, prefix>` tuples.
#[derive(Debug, Clone, Copy)]
pub struct Prefix6Iter<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Iterator for Prefix6Iter<'_> {
    type Item = Ipv6Prefix;

    fn next(&mut self) -> Option<Ipv6Prefix> {
        let bits = *self.bytes.get(self.pos)?;
        let octets = prefix_octets(bits);
        let body = self.bytes.get(self.pos + 1..self.pos + 1 + octets)?;
        self.pos += 1 + octets;
        let mut buf = [0u8; 16];
        buf[..body.len()].copy_from_slice(body);
        Ipv6Prefix::try_new(u128::from_be_bytes(buf), bits).ok()
    }
}

/// Raw attribute walk: yields `(type_code, body)` per attribute.
#[derive(Debug, Clone, Copy)]
struct RawAttrIter<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Iterator for RawAttrIter<'a> {
    type Item = (u8, &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        let flags = *self.bytes.get(self.pos)?;
        let type_code = *self.bytes.get(self.pos + 1)?;
        let (len, header) = if flags & FLAG_EXTENDED_LENGTH != 0 {
            let hi = *self.bytes.get(self.pos + 2)?;
            let lo = *self.bytes.get(self.pos + 3)?;
            (usize::from(u16::from_be_bytes([hi, lo])), 4)
        } else {
            (usize::from(*self.bytes.get(self.pos + 2)?), 3)
        };
        let body = self.bytes.get(self.pos + header..self.pos + header + len)?;
        self.pos += header + len;
        Some((type_code, body))
    }
}

/// Iterates the ASNs of one wire segment.
#[derive(Debug, Clone, Copy)]
pub struct AsnIter<'a> {
    bytes: &'a [u8],
    encoding: AsnEncoding,
}

impl Iterator for AsnIter<'_> {
    type Item = Asn;

    fn next(&mut self) -> Option<Asn> {
        match self.encoding {
            AsnEncoding::TwoOctet => {
                let b = self.bytes.get(..2)?;
                self.bytes = &self.bytes[2..];
                Some(Asn(u32::from(u16::from_be_bytes([b[0], b[1]]))))
            }
            AsnEncoding::FourOctet => {
                let b = self.bytes.get(..4)?;
                self.bytes = &self.bytes[4..];
                Some(Asn(u32::from_be_bytes([b[0], b[1], b[2], b[3]])))
            }
        }
    }
}

/// One raw `AS_PATH` wire segment (pre-merge: the encoder may have split a
/// long logical segment into several full wire segments).
#[derive(Debug, Clone, Copy)]
pub struct AsPathSegmentView<'a> {
    /// `true` for `AS_SET`, `false` for `AS_SEQUENCE`.
    pub is_set: bool,
    asns: &'a [u8],
    encoding: AsnEncoding,
}

impl<'a> AsPathSegmentView<'a> {
    /// Number of ASNs in this wire segment (0..=255).
    #[must_use]
    pub fn count(&self) -> usize {
        self.asns.len() / self.encoding_width()
    }

    /// The segment's ASNs in wire order.
    #[must_use]
    pub fn asns(&self) -> AsnIter<'a> {
        AsnIter {
            bytes: self.asns,
            encoding: self.encoding,
        }
    }

    /// The final ASN of the segment, without iterating.
    #[must_use]
    pub fn last_asn(&self) -> Option<Asn> {
        let width = self.encoding_width();
        let tail = self.asns.get(self.asns.len().checked_sub(width)?..)?;
        AsnIter {
            bytes: tail,
            encoding: self.encoding,
        }
        .next()
    }

    fn encoding_width(&self) -> usize {
        match self.encoding {
            AsnEncoding::TwoOctet => 2,
            AsnEncoding::FourOctet => 4,
        }
    }
}

/// Iterates the raw wire segments of a validated `AS_PATH` body.
#[derive(Debug, Clone, Copy)]
pub struct SegmentIter<'a> {
    bytes: &'a [u8],
    encoding: AsnEncoding,
}

impl<'a> Iterator for SegmentIter<'a> {
    type Item = AsPathSegmentView<'a>;

    fn next(&mut self) -> Option<Self::Item> {
        let seg_type = *self.bytes.first()?;
        let count = usize::from(*self.bytes.get(1)?);
        let width = match self.encoding {
            AsnEncoding::TwoOctet => 2,
            AsnEncoding::FourOctet => 4,
        };
        let asns = self.bytes.get(2..2 + count * width)?;
        self.bytes = &self.bytes[2 + count * width..];
        Some(AsPathSegmentView {
            is_set: seg_type == SEGMENT_AS_SET,
            asns,
            encoding: self.encoding,
        })
    }
}

// ---------------------------------------------------------------------------
// Attribute block view
// ---------------------------------------------------------------------------

/// A validated, borrowed path-attribute block.
///
/// Accessors re-walk the (small) block on demand instead of caching spans;
/// duplicate attributes follow the owned decoder's semantics exactly: the
/// last `ORIGIN`/`AS_PATH`/`NEXT_HOP`/`LOCAL_PREF` wins, while multiple
/// `COMMUNITIES` attributes concatenate.
#[derive(Debug, Clone, Copy)]
pub struct AttrsView<'a> {
    bytes: &'a [u8],
    encoding: AsnEncoding,
    /// Whether `MP_REACH_NLRI` bodies use the abbreviated `TABLE_DUMP_V2`
    /// RIB-entry form (RFC 6396 §4.3.4) instead of the full RFC 4760 one.
    rib_form: bool,
}

impl<'a> AttrsView<'a> {
    fn raw(&self) -> RawAttrIter<'a> {
        RawAttrIter {
            bytes: self.bytes,
            pos: 0,
        }
    }

    /// The ASN encoding this block was parsed under.
    #[must_use]
    pub fn encoding(&self) -> AsnEncoding {
        self.encoding
    }

    /// The raw bytes of the whole attribute block.
    #[must_use]
    pub fn wire(&self) -> &'a [u8] {
        self.bytes
    }

    /// The `ORIGIN` attribute.
    #[must_use]
    pub fn origin(&self) -> RouteOrigin {
        let mut origin = RouteOrigin::Igp;
        for (type_code, body) in self.raw() {
            if type_code == ATTR_ORIGIN {
                origin = match body.first() {
                    Some(1) => RouteOrigin::Egp,
                    Some(2) => RouteOrigin::Incomplete,
                    _ => RouteOrigin::Igp,
                };
            }
        }
        origin
    }

    /// The `NEXT_HOP` attribute as a raw IPv4 address.
    #[must_use]
    pub fn next_hop(&self) -> u32 {
        let mut next_hop = 0;
        for (type_code, body) in self.raw() {
            if type_code == ATTR_NEXT_HOP {
                if let Ok(octets) = <[u8; 4]>::try_from(body) {
                    next_hop = u32::from_be_bytes(octets);
                }
            }
        }
        next_hop
    }

    /// The `LOCAL_PREF` attribute, when present.
    #[must_use]
    pub fn local_pref(&self) -> Option<u32> {
        let mut local_pref = None;
        for (type_code, body) in self.raw() {
            if type_code == ATTR_LOCAL_PREF {
                if let Ok(octets) = <[u8; 4]>::try_from(body) {
                    local_pref = Some(u32::from_be_bytes(octets));
                }
            }
        }
        local_pref
    }

    /// The wire bytes of the (winning) `AS_PATH` attribute body — the
    /// interning key for [`AttrInterner`].
    #[must_use]
    pub fn as_path_wire(&self) -> &'a [u8] {
        let mut wire: &'a [u8] = &[];
        for (type_code, body) in self.raw() {
            if type_code == ATTR_AS_PATH {
                wire = body;
            }
        }
        wire
    }

    /// The raw wire segments of the `AS_PATH`, pre-merge.
    #[must_use]
    pub fn segments(&self) -> SegmentIter<'a> {
        SegmentIter {
            bytes: self.as_path_wire(),
            encoding: self.encoding,
        }
    }

    /// Every ASN the path mentions, in path order (identical to the flat
    /// order of [`AsPath::iter`] on the owned decode — canonicalization only
    /// drops empty segments and merges adjacent ones, neither of which
    /// changes flat order).
    pub fn path_asns(&self) -> impl Iterator<Item = Asn> + 'a {
        self.segments().flat_map(|s| s.asns())
    }

    /// The path's **origin AS** straight from the wire: the last ASN of the
    /// last non-empty segment when that segment is an `AS_SEQUENCE`, `None`
    /// for a set-terminated (aggregate) or empty path. Agrees with
    /// [`AsPath::origin`] on the owned decode: segment merging never changes
    /// the final element, and canonicalization drops exactly the empty
    /// segments skipped here.
    #[must_use]
    pub fn origin_asn(&self) -> Option<Asn> {
        let mut last: Option<AsPathSegmentView<'a>> = None;
        for segment in self.segments() {
            if segment.count() > 0 {
                last = Some(segment);
            }
        }
        let segment = last?;
        if segment.is_set {
            None
        } else {
            segment.last_asn()
        }
    }

    /// Every community carried, concatenated across `COMMUNITIES`
    /// attributes in wire order (the owned decoder's append semantics).
    pub fn communities(&self) -> impl Iterator<Item = Community> + 'a {
        self.raw()
            .filter(|&(type_code, _)| type_code == ATTR_COMMUNITIES)
            .flat_map(|(_, body)| {
                body.chunks_exact(4).map(|chunk| {
                    Community(u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]))
                })
            })
    }

    /// The wire bytes of the `COMMUNITIES` body when exactly one such
    /// attribute is present (the interning key); `None` when there are zero
    /// or several (fall back to [`AttrsView::communities`]).
    #[must_use]
    pub fn communities_wire(&self) -> Option<&'a [u8]> {
        let mut found = None;
        for (type_code, body) in self.raw() {
            if type_code == ATTR_COMMUNITIES {
                if found.is_some() {
                    return None;
                }
                found = Some(body);
            }
        }
        found
    }

    /// The `MP_REACH_NLRI` attribute for IPv6 unicast, rebuilt owned (its
    /// next hop is variable-length, so there is no borrowed form). Follows
    /// the owned decoder's semantics: the last applicable attribute wins and
    /// other AFI/SAFI pairs are skipped.
    #[must_use]
    pub fn mp_reach(&self) -> Option<MpReach> {
        let mut found = None;
        for (type_code, body) in self.raw() {
            if type_code != ATTR_MP_REACH_NLRI {
                continue;
            }
            if self.rib_form {
                let nh_len = usize::from(*body.first().unwrap_or(&0));
                let next_hop = body.get(1..1 + nh_len).unwrap_or(&[]).to_vec();
                found = Some(MpReach {
                    next_hop,
                    nlri: Vec::new(),
                });
            } else {
                if read_u16(body, 0) != AFI_IPV6 || *body.get(2).unwrap_or(&0) != SAFI_UNICAST {
                    continue;
                }
                let nh_len = usize::from(*body.get(3).unwrap_or(&0));
                let next_hop = body.get(4..4 + nh_len).unwrap_or(&[]).to_vec();
                let nlri = Prefix6Iter {
                    bytes: body.get(5 + nh_len..).unwrap_or(&[]),
                    pos: 0,
                };
                found = Some(MpReach {
                    next_hop,
                    nlri: nlri.collect(),
                });
            }
        }
        found
    }

    /// The IPv6 prefixes withdrawn via `MP_UNREACH_NLRI` (last applicable
    /// attribute wins, matching the owned decoder).
    #[must_use]
    pub fn mp_unreach(&self) -> Option<MpUnreach> {
        let mut found = None;
        for (type_code, body) in self.raw() {
            if type_code != ATTR_MP_UNREACH_NLRI {
                continue;
            }
            if read_u16(body, 0) != AFI_IPV6 || *body.get(2).unwrap_or(&0) != SAFI_UNICAST {
                continue;
            }
            let withdrawn = Prefix6Iter {
                bytes: body.get(3..).unwrap_or(&[]),
                pos: 0,
            };
            found = Some(MpUnreach {
                withdrawn: withdrawn.collect(),
            });
        }
        found
    }

    /// Rebuilds the owned [`AsPath`], re-joining encoder-split segments the
    /// way the owned decoder does.
    #[must_use]
    pub fn to_as_path(&self) -> AsPath {
        let mut segments: Vec<AsPathSegment> = Vec::new();
        let mut prev_full = false;
        for view in self.segments() {
            let count = view.count();
            let asns: Vec<Asn> = view.asns().collect();
            let segment = if view.is_set {
                AsPathSegment::Set(asns)
            } else {
                AsPathSegment::Sequence(asns)
            };
            match (segments.last_mut(), prev_full, segment) {
                (Some(AsPathSegment::Sequence(tail)), true, AsPathSegment::Sequence(next))
                | (Some(AsPathSegment::Set(tail)), true, AsPathSegment::Set(next)) => {
                    tail.extend(next);
                }
                (_, _, segment) => segments.push(segment),
            }
            prev_full = count == MAX_SEGMENT_ASNS;
        }
        AsPath::from_segments(segments)
    }

    /// Rebuilds owned [`PathAttributes`], equal to what the owned decoder
    /// returns for the same bytes.
    #[must_use]
    pub fn to_attributes(&self) -> PathAttributes {
        PathAttributes {
            origin: self.origin(),
            as_path: self.to_as_path(),
            next_hop: self.next_hop(),
            local_pref: self.local_pref(),
            communities: self.communities().collect(),
            mp_reach: self.mp_reach(),
            mp_unreach: self.mp_unreach(),
        }
    }
}

// ---------------------------------------------------------------------------
// UPDATE message view
// ---------------------------------------------------------------------------

/// A validated, borrowed BGP UPDATE message.
///
/// [`UpdateView::parse`] accepts and rejects **exactly** the inputs
/// [`UpdateMessage::decode_prefix_of`] does, with identical errors; the
/// difference is purely that nothing is materialised until asked.
#[derive(Debug, Clone, Copy)]
pub struct UpdateView<'a> {
    withdrawn: &'a [u8],
    attrs: Option<AttrsView<'a>>,
    nlri: &'a [u8],
}

impl<'a> UpdateView<'a> {
    /// Parses (and fully validates) one message from the start of `bytes`,
    /// returning the view and the bytes consumed.
    ///
    /// # Errors
    ///
    /// The same [`WireError`]s, at the same offsets, as
    /// [`UpdateMessage::decode_prefix_of`].
    pub fn parse(bytes: &'a [u8], encoding: AsnEncoding) -> Result<(Self, usize), WireError> {
        let mut cur = Cursor::new(bytes);
        let marker = cur.take(16)?;
        if marker.iter().any(|&b| b != 0xFF) {
            return Err(WireError::new(WireErrorKind::BadMarker, 0));
        }
        let total = usize::from(cur.u16()?);
        let msg_type = cur.u8()?;
        if !(HEADER_LEN..=MAX_MESSAGE_LEN).contains(&total) {
            return Err(WireError::new(
                WireErrorKind::BadMessageLength(total as u16),
                16,
            ));
        }
        if msg_type != MESSAGE_TYPE_UPDATE {
            return Err(WireError::new(
                WireErrorKind::UnsupportedMessageType(msg_type),
                18,
            ));
        }
        let body = cur.take(total - HEADER_LEN)?;
        let view = Self::parse_body(body, HEADER_LEN as u64, encoding)?;
        Ok((view, total))
    }

    /// Parses (and fully validates) an UPDATE body — the bytes after the
    /// 19-byte header — mirroring `decode_update_body`.
    pub(crate) fn parse_body(
        body: &'a [u8],
        base: u64,
        encoding: AsnEncoding,
    ) -> Result<Self, WireError> {
        let mut body_cur = Cursor::with_base(body, base);
        let withdrawn_len = usize::from(body_cur.u16()?);
        let withdrawn = body_cur.take(withdrawn_len)?;
        validate_prefix_run(withdrawn, base + 2)?;

        let attrs_len = usize::from(body_cur.u16()?);
        let attrs_base = body_cur.position();
        let attr_bytes = body_cur.take(attrs_len)?;
        let nlri_base = body_cur.position();
        let nlri = body_cur.rest();
        validate_prefix_run(nlri, nlri_base)?;

        let has_attrs = validate_attributes(attr_bytes, attrs_base, encoding, false)?;
        if !has_attrs && !nlri.is_empty() {
            return Err(WireError::new(
                WireErrorKind::MissingAttribute("AS_PATH"),
                nlri_base,
            ));
        }

        Ok(UpdateView {
            withdrawn,
            attrs: has_attrs.then_some(AttrsView {
                bytes: attr_bytes,
                encoding,
                rib_form: false,
            }),
            nlri,
        })
    }

    /// Parses one message filling all of `bytes`, mirroring
    /// [`UpdateMessage::decode`] (trailing bytes are an error).
    ///
    /// # Errors
    ///
    /// The same [`WireError`]s, at the same offsets, as
    /// [`UpdateMessage::decode`].
    pub fn parse_exact(bytes: &'a [u8], encoding: AsnEncoding) -> Result<Self, WireError> {
        let (view, used) = Self::parse(bytes, encoding)?;
        if used != bytes.len() {
            return Err(WireError::new(
                WireErrorKind::TrailingBytes {
                    remaining: bytes.len() - used,
                },
                used as u64,
            ));
        }
        Ok(view)
    }

    /// The withdrawn prefixes.
    #[must_use]
    pub fn withdrawn(&self) -> PrefixIter<'a> {
        PrefixIter {
            bytes: self.withdrawn,
            pos: 0,
        }
    }

    /// The shared path attributes (`None` for a pure withdrawal).
    #[must_use]
    pub fn attrs(&self) -> Option<&AttrsView<'a>> {
        self.attrs.as_ref()
    }

    /// The announced prefixes.
    #[must_use]
    pub fn nlri(&self) -> PrefixIter<'a> {
        PrefixIter {
            bytes: self.nlri,
            pos: 0,
        }
    }

    /// Rebuilds the owned [`UpdateMessage`] through the lazy iterators,
    /// equal to what the owned decoder returns for the same bytes.
    #[must_use]
    pub fn to_message(&self) -> UpdateMessage {
        UpdateMessage {
            withdrawn: self.withdrawn().collect(),
            attrs: self.attrs.as_ref().map(AttrsView::to_attributes),
            nlri: self.nlri().collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// Session message views (OPEN / NOTIFICATION / KEEPALIVE)
// ---------------------------------------------------------------------------

/// A validated, borrowed BGP OPEN message body.
#[derive(Debug, Clone, Copy)]
pub struct OpenView<'a> {
    body: &'a [u8],
}

impl<'a> OpenView<'a> {
    fn parse_body(body: &'a [u8], base: u64) -> Result<Self, WireError> {
        validate_open_body(body, base)?;
        Ok(OpenView { body })
    }

    /// The BGP version field (always 4 on validated bytes).
    #[must_use]
    pub fn version(&self) -> u8 {
        *self.body.first().unwrap_or(&0)
    }

    /// The raw 2-octet My-AS field ([`crate::msg::AS_TRANS`] when the real
    /// ASN rides in a capability — see [`OpenView::effective_asn`]).
    #[must_use]
    pub fn my_as(&self) -> u16 {
        read_u16(self.body, 1)
    }

    /// Proposed hold time in seconds.
    #[must_use]
    pub fn hold_time(&self) -> u16 {
        read_u16(self.body, 3)
    }

    /// The sender's BGP identifier.
    #[must_use]
    pub fn bgp_id(&self) -> u32 {
        read_u32(self.body, 5)
    }

    /// The announced capabilities, in wire order.
    #[must_use]
    pub fn capabilities(&self) -> CapabilityIter<'a> {
        let opt_len = usize::from(*self.body.get(9).unwrap_or(&0));
        CapabilityIter {
            params: self.body.get(10..10 + opt_len).unwrap_or(&[]),
            caps: &[],
        }
    }

    /// The ASN the peer actually speaks for: the 4-octet capability value
    /// when announced, the My-AS field otherwise (mirrors
    /// [`OpenMessage::effective_asn`]).
    #[must_use]
    pub fn effective_asn(&self) -> Asn {
        self.capabilities()
            .find_map(|c| match c {
                Capability::FourOctetAs(asn) => Some(asn),
                _ => None,
            })
            .unwrap_or(Asn(u32::from(self.my_as())))
    }

    /// Rebuilds the owned [`OpenMessage`], equal to what the owned decoder
    /// returns for the same bytes.
    #[must_use]
    pub fn to_open(&self) -> OpenMessage {
        OpenMessage {
            asn: Asn(u32::from(self.my_as())),
            hold_time: self.hold_time(),
            bgp_id: self.bgp_id(),
            capabilities: self.capabilities().collect(),
        }
    }
}

/// Iterates the capabilities of a validated OPEN's optional parameters,
/// crossing parameter boundaries (several type-2 parameters concatenate,
/// matching the owned decoder).
#[derive(Debug, Clone, Copy)]
pub struct CapabilityIter<'a> {
    params: &'a [u8],
    caps: &'a [u8],
}

impl Iterator for CapabilityIter<'_> {
    type Item = Capability;

    fn next(&mut self) -> Option<Capability> {
        loop {
            if let Some(&code) = self.caps.first() {
                let len = usize::from(*self.caps.get(1)?);
                let body = self.caps.get(2..2 + len)?;
                self.caps = &self.caps[2 + len..];
                // Validated bytes: fixed-size codes are guaranteed len 4, so
                // the mapping below agrees with `decode_one_capability`.
                return Some(match code {
                    CAP_MULTIPROTOCOL if body.len() == 4 => {
                        match (u16::from_be_bytes([body[0], body[1]]), body[3]) {
                            (1, 1) => Capability::MultiprotocolIpv4Unicast,
                            (2, 1) => Capability::MultiprotocolIpv6Unicast,
                            _ => Capability::Unknown {
                                code,
                                data: body.to_vec(),
                            },
                        }
                    }
                    CAP_FOUR_OCTET_AS if body.len() == 4 => {
                        Capability::FourOctetAs(Asn(u32::from_be_bytes([
                            body[0], body[1], body[2], body[3],
                        ])))
                    }
                    _ => Capability::Unknown {
                        code,
                        data: body.to_vec(),
                    },
                });
            }
            let ptype = *self.params.first()?;
            let plen = usize::from(*self.params.get(1)?);
            let pbody = self.params.get(2..2 + plen)?;
            self.params = &self.params[2 + plen..];
            if ptype == PARAM_CAPABILITIES {
                self.caps = pbody;
            }
        }
    }
}

/// A validated, borrowed BGP NOTIFICATION message body.
#[derive(Debug, Clone, Copy)]
pub struct NotificationView<'a> {
    body: &'a [u8],
}

impl<'a> NotificationView<'a> {
    fn parse_body(body: &'a [u8], base: u64) -> Result<Self, WireError> {
        let mut cur = Cursor::with_base(body, base);
        let code_at = cur.position();
        let code = cur.u8()?;
        if !(1..=6).contains(&code) {
            return Err(WireError::new(
                WireErrorKind::BadNotificationCode(code),
                code_at,
            ));
        }
        cur.u8()?; // subcode
        Ok(NotificationView { body })
    }

    /// Error code (see [`crate::msg::notif`]).
    #[must_use]
    pub fn code(&self) -> u8 {
        *self.body.first().unwrap_or(&0)
    }

    /// Error subcode.
    #[must_use]
    pub fn subcode(&self) -> u8 {
        *self.body.get(1).unwrap_or(&0)
    }

    /// Diagnostic data, verbatim.
    #[must_use]
    pub fn data(&self) -> &'a [u8] {
        self.body.get(2..).unwrap_or(&[])
    }

    /// Rebuilds the owned [`NotificationMessage`].
    #[must_use]
    pub fn to_notification(&self) -> NotificationMessage {
        NotificationMessage {
            code: self.code(),
            subcode: self.subcode(),
            data: self.data().to_vec(),
        }
    }
}

/// A validated, borrowed message of any RFC 4271 type — the zero-copy twin
/// of [`Message`].
#[derive(Debug, Clone, Copy)]
pub enum MessageView<'a> {
    /// An OPEN handshake message.
    Open(OpenView<'a>),
    /// An UPDATE carrying routes.
    Update(UpdateView<'a>),
    /// A NOTIFICATION closing the session.
    Notification(NotificationView<'a>),
    /// A KEEPALIVE heartbeat.
    Keepalive,
}

impl<'a> MessageView<'a> {
    /// Parses (and fully validates) one message from the start of `bytes`,
    /// returning the view and the bytes consumed.
    ///
    /// # Errors
    ///
    /// The same [`WireError`]s, at the same offsets, as
    /// [`Message::decode_prefix_of`].
    pub fn parse(bytes: &'a [u8], encoding: AsnEncoding) -> Result<(Self, usize), WireError> {
        let mut cur = Cursor::new(bytes);
        let marker = cur.take(16)?;
        if marker.iter().any(|&b| b != 0xFF) {
            return Err(WireError::new(WireErrorKind::BadMarker, 0));
        }
        let total = usize::from(cur.u16()?);
        let msg_type = cur.u8()?;
        if !(HEADER_LEN..=MAX_MESSAGE_LEN).contains(&total) {
            return Err(WireError::new(
                WireErrorKind::BadMessageLength(total as u16),
                16,
            ));
        }
        let body = cur.take(total - HEADER_LEN)?;
        let base = HEADER_LEN as u64;
        let view = match msg_type {
            MESSAGE_TYPE_OPEN => {
                if body.len() < MIN_OPEN_LEN - HEADER_LEN {
                    return Err(WireError::new(
                        WireErrorKind::BadMessageLength(total as u16),
                        16,
                    ));
                }
                MessageView::Open(OpenView::parse_body(body, base)?)
            }
            MESSAGE_TYPE_UPDATE => {
                MessageView::Update(UpdateView::parse_body(body, base, encoding)?)
            }
            MESSAGE_TYPE_NOTIFICATION => {
                if body.len() < MIN_NOTIFICATION_LEN - HEADER_LEN {
                    return Err(WireError::new(
                        WireErrorKind::BadMessageLength(total as u16),
                        16,
                    ));
                }
                MessageView::Notification(NotificationView::parse_body(body, base)?)
            }
            MESSAGE_TYPE_KEEPALIVE => {
                if !body.is_empty() {
                    return Err(WireError::new(
                        WireErrorKind::BadMessageLength(total as u16),
                        16,
                    ));
                }
                MessageView::Keepalive
            }
            other => {
                return Err(WireError::new(
                    WireErrorKind::UnsupportedMessageType(other),
                    18,
                ));
            }
        };
        Ok((view, total))
    }

    /// Parses one message filling all of `bytes`, mirroring
    /// [`Message::decode`] (trailing bytes are an error).
    ///
    /// # Errors
    ///
    /// The same [`WireError`]s, at the same offsets, as [`Message::decode`].
    pub fn parse_exact(bytes: &'a [u8], encoding: AsnEncoding) -> Result<Self, WireError> {
        let (view, used) = Self::parse(bytes, encoding)?;
        if used != bytes.len() {
            return Err(WireError::new(
                WireErrorKind::TrailingBytes {
                    remaining: bytes.len() - used,
                },
                used as u64,
            ));
        }
        Ok(view)
    }

    /// The message's RFC 4271 type code.
    #[must_use]
    pub fn type_code(&self) -> u8 {
        match self {
            MessageView::Open(_) => MESSAGE_TYPE_OPEN,
            MessageView::Update(_) => MESSAGE_TYPE_UPDATE,
            MessageView::Notification(_) => MESSAGE_TYPE_NOTIFICATION,
            MessageView::Keepalive => MESSAGE_TYPE_KEEPALIVE,
        }
    }

    /// Rebuilds the owned [`Message`], equal to what the owned decoder
    /// returns for the same bytes.
    #[must_use]
    pub fn to_message(&self) -> Message {
        match self {
            MessageView::Open(v) => Message::Open(v.to_open()),
            MessageView::Update(v) => Message::Update(v.to_message()),
            MessageView::Notification(v) => Message::Notification(v.to_notification()),
            MessageView::Keepalive => Message::Keepalive,
        }
    }
}

// ---------------------------------------------------------------------------
// MRT record views
// ---------------------------------------------------------------------------

/// A validated, borrowed `PEER_INDEX_TABLE` record body.
#[derive(Debug, Clone, Copy)]
pub struct PeerIndexTableView<'a> {
    body: &'a [u8],
}

impl<'a> PeerIndexTableView<'a> {
    fn parse(body: &'a [u8], base: u64) -> Result<Self, WireError> {
        let mut cur = Cursor::with_base(body, base);
        cur.u32()?; // collector id
        let name_len = usize::from(cur.u16()?);
        cur.take(name_len)?;
        let peer_count = usize::from(cur.u16()?);
        for _ in 0..peer_count {
            let at = cur.position();
            let peer_type = cur.u8()?;
            if peer_type & 0x01 != 0 {
                return Err(WireError::new(
                    WireErrorKind::UnsupportedPeerType(peer_type),
                    at,
                ));
            }
            cur.u32()?; // bgp id
            cur.u32()?; // addr
            if peer_type & 0x02 != 0 {
                cur.u32()?;
            } else {
                cur.u16()?;
            }
        }
        expect_consumed(&cur)?;
        Ok(PeerIndexTableView { body })
    }

    /// The collector's BGP identifier.
    #[must_use]
    pub fn collector_id(&self) -> u32 {
        read_u32(self.body, 0)
    }

    /// The raw view-name bytes.
    #[must_use]
    pub fn view_name_bytes(&self) -> &'a [u8] {
        let name_len = usize::from(read_u16(self.body, 4));
        self.body.get(6..6 + name_len).unwrap_or(&[])
    }

    /// Number of peers in the roster.
    #[must_use]
    pub fn peer_count(&self) -> usize {
        let name_len = usize::from(read_u16(self.body, 4));
        usize::from(read_u16(self.body, 6 + name_len))
    }

    /// The peers, in index order.
    #[must_use]
    pub fn peers(&self) -> PeerIter<'a> {
        let name_len = usize::from(read_u16(self.body, 4));
        PeerIter {
            bytes: self.body.get(8 + name_len..).unwrap_or(&[]),
        }
    }

    /// Rebuilds the owned [`PeerIndexTable`].
    #[must_use]
    pub fn to_table(&self) -> PeerIndexTable {
        PeerIndexTable {
            collector_id: self.collector_id(),
            view_name: String::from_utf8_lossy(self.view_name_bytes()).into_owned(),
            peers: self.peers().collect(),
        }
    }
}

/// Iterates the peers of a validated `PEER_INDEX_TABLE`.
#[derive(Debug, Clone, Copy)]
pub struct PeerIter<'a> {
    bytes: &'a [u8],
}

impl Iterator for PeerIter<'_> {
    type Item = PeerEntry;

    fn next(&mut self) -> Option<PeerEntry> {
        let peer_type = *self.bytes.first()?;
        let wide = peer_type & 0x02 != 0;
        let entry_len = if wide { 13 } else { 11 };
        let entry = self.bytes.get(..entry_len)?;
        self.bytes = &self.bytes[entry_len..];
        Some(PeerEntry {
            bgp_id: read_u32(entry, 1),
            addr: read_u32(entry, 5),
            asn: Asn(if wide {
                read_u32(entry, 9)
            } else {
                u32::from(read_u16(entry, 9))
            }),
        })
    }
}

/// A validated, borrowed `RIB_IPV4_UNICAST` record body.
#[derive(Debug, Clone, Copy)]
pub struct RibView<'a> {
    sequence: u32,
    prefix: Ipv4Prefix,
    entry_count: usize,
    entries: &'a [u8],
}

impl<'a> RibView<'a> {
    fn parse(body: &'a [u8], base: u64) -> Result<Self, WireError> {
        let mut cur = Cursor::with_base(body, base);
        let sequence = cur.u32()?;
        let prefix = decode_one_prefix(&mut cur)?;
        let entry_count = usize::from(cur.u16()?);
        let entries = cur.rest();
        // Validate each entry in order; a per-entry error must surface
        // before the trailing-bytes check, as the owned decoder orders it.
        let entries_base = base + 4 + 1 + prefix_octets(prefix.len()) as u64 + 2;
        let mut entry_cur = Cursor::with_base(entries, entries_base);
        for _ in 0..entry_count {
            entry_cur.u16()?; // peer index
            entry_cur.u32()?; // originated time
            let attr_len = usize::from(entry_cur.u16()?);
            let attrs_base = entry_cur.position();
            let attr_bytes = entry_cur.take(attr_len)?;
            if !validate_attributes(attr_bytes, attrs_base, AsnEncoding::FourOctet, true)? {
                return Err(WireError::new(
                    WireErrorKind::MissingAttribute("AS_PATH"),
                    attrs_base,
                ));
            }
        }
        expect_consumed(&entry_cur)?;
        Ok(RibView {
            sequence,
            prefix,
            entry_count,
            entries,
        })
    }

    /// Record sequence number.
    #[must_use]
    pub fn sequence(&self) -> u32 {
        self.sequence
    }

    /// The prefix all entries describe.
    #[must_use]
    pub fn prefix(&self) -> Ipv4Prefix {
        self.prefix
    }

    /// Number of per-peer entries.
    #[must_use]
    pub fn entry_count(&self) -> usize {
        self.entry_count
    }

    /// The per-peer entries, in record order.
    #[must_use]
    pub fn entries(&self) -> RibEntryIter<'a> {
        RibEntryIter {
            bytes: self.entries,
        }
    }

    /// Rebuilds the owned [`RibIpv4Unicast`].
    #[must_use]
    pub fn to_rib(&self) -> RibIpv4Unicast {
        RibIpv4Unicast {
            sequence: self.sequence,
            prefix: self.prefix,
            entries: self
                .entries()
                .map(|entry| RibEntry {
                    peer_index: entry.peer_index,
                    originated_time: entry.originated_time,
                    attrs: entry.attrs.to_attributes(),
                })
                .collect(),
        }
    }
}

/// One peer's route inside a [`RibView`].
#[derive(Debug, Clone, Copy)]
pub struct RibEntryView<'a> {
    /// Index into the current peer table.
    pub peer_index: u16,
    /// When the route was originated.
    pub originated_time: u32,
    /// The route's borrowed attributes (always 4-octet ASNs, per RFC 6396).
    pub attrs: AttrsView<'a>,
}

/// Iterates the entries of a validated `RIB_IPV4_UNICAST` record.
#[derive(Debug, Clone, Copy)]
pub struct RibEntryIter<'a> {
    bytes: &'a [u8],
}

impl<'a> Iterator for RibEntryIter<'a> {
    type Item = RibEntryView<'a>;

    fn next(&mut self) -> Option<Self::Item> {
        let head = self.bytes.get(..8)?;
        let attr_len = usize::from(read_u16(head, 6));
        let attrs = self.bytes.get(8..8 + attr_len)?;
        self.bytes = &self.bytes[8 + attr_len..];
        Some(RibEntryView {
            peer_index: read_u16(head, 0),
            originated_time: read_u32(head, 2),
            attrs: AttrsView {
                bytes: attrs,
                encoding: AsnEncoding::FourOctet,
                rib_form: true,
            },
        })
    }
}

/// A validated, borrowed `RIB_IPV6_UNICAST` record body.
#[derive(Debug, Clone, Copy)]
pub struct Rib6View<'a> {
    sequence: u32,
    prefix: Ipv6Prefix,
    entry_count: usize,
    entries: &'a [u8],
}

impl<'a> Rib6View<'a> {
    fn parse(body: &'a [u8], base: u64) -> Result<Self, WireError> {
        let mut cur = Cursor::with_base(body, base);
        let sequence = cur.u32()?;
        let prefix = decode_one_prefix6(&mut cur)?;
        let entry_count = usize::from(cur.u16()?);
        let entries = cur.rest();
        // Validate each entry in order; a per-entry error must surface
        // before the trailing-bytes check, as the owned decoder orders it.
        let entries_base = base + 4 + 1 + prefix_octets(prefix.len()) as u64 + 2;
        let mut entry_cur = Cursor::with_base(entries, entries_base);
        for _ in 0..entry_count {
            entry_cur.u16()?; // peer index
            entry_cur.u32()?; // originated time
            let attr_len = usize::from(entry_cur.u16()?);
            let attrs_base = entry_cur.position();
            let attr_bytes = entry_cur.take(attr_len)?;
            if !validate_attributes(attr_bytes, attrs_base, AsnEncoding::FourOctet, true)? {
                return Err(WireError::new(
                    WireErrorKind::MissingAttribute("AS_PATH"),
                    attrs_base,
                ));
            }
        }
        expect_consumed(&entry_cur)?;
        Ok(Rib6View {
            sequence,
            prefix,
            entry_count,
            entries,
        })
    }

    /// Record sequence number.
    #[must_use]
    pub fn sequence(&self) -> u32 {
        self.sequence
    }

    /// The prefix all entries describe.
    #[must_use]
    pub fn prefix(&self) -> Ipv6Prefix {
        self.prefix
    }

    /// Number of per-peer entries.
    #[must_use]
    pub fn entry_count(&self) -> usize {
        self.entry_count
    }

    /// The per-peer entries, in record order.
    #[must_use]
    pub fn entries(&self) -> RibEntryIter<'a> {
        RibEntryIter {
            bytes: self.entries,
        }
    }

    /// Rebuilds the owned [`RibIpv6Unicast`].
    #[must_use]
    pub fn to_rib(&self) -> RibIpv6Unicast {
        RibIpv6Unicast {
            sequence: self.sequence,
            prefix: self.prefix,
            entries: self
                .entries()
                .map(|entry| RibEntry {
                    peer_index: entry.peer_index,
                    originated_time: entry.originated_time,
                    attrs: entry.attrs.to_attributes(),
                })
                .collect(),
        }
    }
}

/// A validated, borrowed `BGP4MP_MESSAGE` / `_AS4` record body.
#[derive(Debug, Clone, Copy)]
pub struct Bgp4mpView<'a> {
    /// The sending peer's AS.
    pub peer_asn: Asn,
    /// The receiving (collector-side) AS.
    pub local_asn: Asn,
    /// The sending peer's IPv4 address.
    pub peer_addr: u32,
    /// The receiving side's IPv4 address.
    pub local_addr: u32,
    update: UpdateView<'a>,
}

impl<'a> Bgp4mpView<'a> {
    fn parse(body: &'a [u8], base: u64, as4: bool) -> Result<Self, WireError> {
        let mut cur = Cursor::with_base(body, base);
        let (peer_asn, local_asn) = if as4 {
            (cur.u32()?, cur.u32()?)
        } else {
            (u32::from(cur.u16()?), u32::from(cur.u16()?))
        };
        let _interface = cur.u16()?;
        let afi_at = cur.position();
        let afi = cur.u16()?;
        if afi != 1 {
            return Err(WireError::new(
                WireErrorKind::UnsupportedPeerType(afi as u8),
                afi_at,
            ));
        }
        let peer_addr = cur.u32()?;
        let local_addr = cur.u32()?;
        let msg_base = cur.position();
        let encoding = if as4 {
            AsnEncoding::FourOctet
        } else {
            AsnEncoding::TwoOctet
        };
        let update =
            UpdateView::parse_exact(cur.rest(), encoding).map_err(|e| e.at_base(msg_base))?;
        Ok(Bgp4mpView {
            peer_asn: Asn(peer_asn),
            local_asn: Asn(local_asn),
            peer_addr,
            local_addr,
            update,
        })
    }

    /// The BGP UPDATE carried in the record.
    #[must_use]
    pub fn update(&self) -> &UpdateView<'a> {
        &self.update
    }

    /// Rebuilds the owned [`Bgp4mpMessage`].
    #[must_use]
    pub fn to_bgp4mp(&self) -> Bgp4mpMessage {
        Bgp4mpMessage {
            peer_asn: self.peer_asn,
            local_asn: self.local_asn,
            peer_addr: self.peer_addr,
            local_addr: self.local_addr,
            message: self.update.to_message(),
        }
    }
}

/// The body of one borrowed MRT record.
#[derive(Debug, Clone, Copy)]
pub enum MrtBodyView<'a> {
    /// `TABLE_DUMP_V2` / `PEER_INDEX_TABLE`.
    PeerIndexTable(PeerIndexTableView<'a>),
    /// `TABLE_DUMP_V2` / `RIB_IPV4_UNICAST`.
    RibIpv4Unicast(RibView<'a>),
    /// `TABLE_DUMP_V2` / `RIB_IPV6_UNICAST`.
    RibIpv6Unicast(Rib6View<'a>),
    /// `BGP4MP` / `MESSAGE` or `MESSAGE_AS4`.
    Bgp4mpMessage(Bgp4mpView<'a>),
}

/// One borrowed MRT record: a timestamp and a validated body view.
#[derive(Debug, Clone, Copy)]
pub struct MrtRecordView<'a> {
    /// Seconds since the Unix epoch.
    pub timestamp: u32,
    /// The record body.
    pub body: MrtBodyView<'a>,
}

impl<'a> MrtRecordView<'a> {
    /// Parses (and fully validates) one record body, mirroring the owned
    /// record decoder. `base` is the absolute offset of the record *header*
    /// in the stream; the body starts 12 bytes later.
    ///
    /// # Errors
    ///
    /// The same [`WireError`]s, at the same offsets, as the owned decode.
    pub fn parse(
        timestamp: u32,
        mrt_type: u16,
        subtype: u16,
        body: &'a [u8],
        base: u64,
    ) -> Result<Self, WireError> {
        let body_base = base + 12;
        let body = match (mrt_type, subtype) {
            (TYPE_TABLE_DUMP_V2, SUBTYPE_PEER_INDEX_TABLE) => {
                MrtBodyView::PeerIndexTable(PeerIndexTableView::parse(body, body_base)?)
            }
            (TYPE_TABLE_DUMP_V2, SUBTYPE_RIB_IPV4_UNICAST) => {
                MrtBodyView::RibIpv4Unicast(RibView::parse(body, body_base)?)
            }
            (TYPE_TABLE_DUMP_V2, SUBTYPE_RIB_IPV6_UNICAST) => {
                MrtBodyView::RibIpv6Unicast(Rib6View::parse(body, body_base)?)
            }
            (TYPE_BGP4MP, SUBTYPE_BGP4MP_MESSAGE) => {
                MrtBodyView::Bgp4mpMessage(Bgp4mpView::parse(body, body_base, false)?)
            }
            (TYPE_BGP4MP, SUBTYPE_BGP4MP_MESSAGE_AS4) => {
                MrtBodyView::Bgp4mpMessage(Bgp4mpView::parse(body, body_base, true)?)
            }
            _ => {
                return Err(WireError::new(
                    WireErrorKind::UnsupportedMrtType { mrt_type, subtype },
                    base + 4,
                ));
            }
        };
        Ok(MrtRecordView { timestamp, body })
    }

    /// Rebuilds the owned [`MrtRecord`], equal to what the owned decoder
    /// returns for the same bytes.
    #[must_use]
    pub fn to_record(&self) -> MrtRecord {
        MrtRecord {
            timestamp: self.timestamp,
            body: match &self.body {
                MrtBodyView::PeerIndexTable(v) => MrtBody::PeerIndexTable(v.to_table()),
                MrtBodyView::RibIpv4Unicast(v) => MrtBody::RibIpv4Unicast(v.to_rib()),
                MrtBodyView::RibIpv6Unicast(v) => MrtBody::RibIpv6Unicast(v.to_rib()),
                MrtBodyView::Bgp4mpMessage(v) => MrtBody::Bgp4mpMessage(v.to_bgp4mp()),
            },
        }
    }
}

fn expect_consumed(cur: &Cursor<'_>) -> Result<(), WireError> {
    if cur.remaining() > 0 {
        return Err(WireError::new(
            WireErrorKind::TrailingBytes {
                remaining: cur.remaining(),
            },
            cur.position(),
        ));
    }
    Ok(())
}

/// Big-endian `u16` at `at`; 0 on out-of-bounds (unreachable on validated
/// bytes).
fn read_u16(bytes: &[u8], at: usize) -> u16 {
    match bytes.get(at..at + 2) {
        Some(b) => u16::from_be_bytes([b[0], b[1]]),
        None => 0,
    }
}

/// Big-endian `u32` at `at`; 0 on out-of-bounds (unreachable on validated
/// bytes).
fn read_u32(bytes: &[u8], at: usize) -> u32 {
    match bytes.get(at..at + 4) {
        Some(b) => u32::from_be_bytes([b[0], b[1], b[2], b[3]]),
        None => 0,
    }
}

// ---------------------------------------------------------------------------
// Streaming reader over a reusable buffer
// ---------------------------------------------------------------------------

/// Streams MRT records out of any reader through **one reusable buffer**.
///
/// Where [`crate::mrt::MrtReader`] allocates a fresh body `Vec` and decodes
/// a full owned record per iteration, this reader splits the two steps:
/// [`advance`](Self::advance) reads the next record's framing and body into
/// the internal buffer (no parsing, no allocation after warm-up), then
/// [`timestamp`](Self::timestamp) is available for day grouping and
/// [`view`](Self::view) parses the buffered bytes into a borrowed
/// [`MrtRecordView`] on demand.
///
/// Framing and parse errors match the owned reader's, offsets included, and
/// like the owned reader it refuses further reads after the first error
/// (record boundaries are lost).
#[derive(Debug)]
pub struct MrtViewReader<R> {
    inner: R,
    buf: Vec<u8>,
    timestamp: u32,
    mrt_type: u16,
    subtype: u16,
    /// Stream offset of the current record's header.
    record_base: u64,
    /// Stream offset right after the current record.
    offset: u64,
    failed: bool,
}

impl<R: io::Read> MrtViewReader<R> {
    /// Wraps a reader positioned at the start of an MRT stream.
    pub fn new(inner: R) -> Self {
        MrtViewReader {
            inner,
            buf: Vec::new(),
            timestamp: 0,
            mrt_type: 0,
            subtype: 0,
            record_base: 0,
            offset: 0,
            failed: false,
        }
    }

    /// Reads the next record's header and body into the internal buffer
    /// without parsing. Returns `false` at clean end-of-file.
    ///
    /// # Errors
    ///
    /// The same framing [`WireError`]s (with stream offsets) as the owned
    /// reader. After any error — framing here or parse in
    /// [`view`](Self::view) — further calls return `Ok(false)`.
    pub fn advance(&mut self) -> Result<bool, WireError> {
        if self.failed {
            return Ok(false);
        }
        match self.try_advance() {
            Ok(more) => Ok(more),
            Err(e) => {
                self.failed = true;
                Err(e)
            }
        }
    }

    fn try_advance(&mut self) -> Result<bool, WireError> {
        let mut header = [0u8; 12];
        match read_exact_or_eof(&mut self.inner, &mut header) {
            Ok(0) => return Ok(false),
            Ok(n) if n < header.len() => {
                return Err(WireError::new(
                    WireErrorKind::Truncated {
                        needed: header.len() - n,
                    },
                    self.offset + n as u64,
                ));
            }
            Ok(_) => {}
            Err(e) => {
                return Err(WireError::new(WireErrorKind::Io(e.kind()), self.offset));
            }
        }
        self.timestamp = u32::from_be_bytes([header[0], header[1], header[2], header[3]]);
        self.mrt_type = u16::from_be_bytes([header[4], header[5]]);
        self.subtype = u16::from_be_bytes([header[6], header[7]]);
        let length = u32::from_be_bytes([header[8], header[9], header[10], header[11]]);
        if length > MAX_RECORD_LEN {
            return Err(WireError::new(
                WireErrorKind::BadFieldLength {
                    length: length as usize,
                    available: MAX_RECORD_LEN as usize,
                },
                self.offset + 8,
            ));
        }
        self.buf.resize(length as usize, 0);
        match read_exact_or_eof(&mut self.inner, &mut self.buf) {
            Ok(n) if n < self.buf.len() => {
                return Err(WireError::new(
                    WireErrorKind::Truncated {
                        needed: self.buf.len() - n,
                    },
                    self.offset + 12 + n as u64,
                ));
            }
            Ok(_) => {}
            Err(e) => {
                return Err(WireError::new(
                    WireErrorKind::Io(e.kind()),
                    self.offset + 12,
                ));
            }
        }
        self.record_base = self.offset;
        self.offset += 12 + u64::from(length);
        Ok(true)
    }

    /// The buffered record's timestamp — readable before any parsing, so
    /// day grouping can defer the parse across a boundary.
    #[must_use]
    pub fn timestamp(&self) -> u32 {
        self.timestamp
    }

    /// Parses the buffered record into a borrowed view.
    ///
    /// # Errors
    ///
    /// The same parse [`WireError`]s as the owned decode; an error also
    /// poisons the reader (matching the owned reader's post-error behavior).
    pub fn view(&mut self) -> Result<MrtRecordView<'_>, WireError> {
        match MrtRecordView::parse(
            self.timestamp,
            self.mrt_type,
            self.subtype,
            &self.buf,
            self.record_base,
        ) {
            Ok(view) => Ok(view),
            Err(e) => {
                self.failed = true;
                Err(e)
            }
        }
    }

    /// Total stream bytes consumed so far (framing included) — the
    /// numerator for ingest throughput accounting.
    #[must_use]
    pub fn bytes_read(&self) -> u64 {
        self.offset
    }
}

// ---------------------------------------------------------------------------
// Attribute interning
// ---------------------------------------------------------------------------

/// Hash-conses decoded attribute values across records.
///
/// A table dump repeats the same `AS_PATH` and `COMMUNITIES` bytes across
/// huge numbers of RIB entries; this interner keys each attribute's wire
/// bytes (per encoding, so a 2-octet and a 4-octet block can never collide)
/// and materialises the owned value once per distinct key.
#[derive(Debug, Clone, Default)]
pub struct AttrInterner {
    paths_two: Interner<AsPath>,
    paths_four: Interner<AsPath>,
    communities: Interner<Vec<Community>>,
}

impl AttrInterner {
    /// Creates an empty interner.
    #[must_use]
    pub fn new() -> Self {
        AttrInterner::default()
    }

    /// The interned [`AsPath`] for this block's `AS_PATH` bytes, decoding
    /// it only on first sight.
    pub fn as_path(&mut self, attrs: &AttrsView<'_>) -> &AsPath {
        let table = match attrs.encoding() {
            AsnEncoding::TwoOctet => &mut self.paths_two,
            AsnEncoding::FourOctet => &mut self.paths_four,
        };
        table.intern(attrs.as_path_wire(), |_| attrs.to_as_path())
    }

    /// The communities of this block, cloned from the interned value (or
    /// collected directly in the no-/multi-attribute corner cases).
    pub fn communities(&mut self, attrs: &AttrsView<'_>) -> Vec<Community> {
        match attrs.communities_wire() {
            Some([]) => Vec::new(),
            Some(bytes) => self
                .communities
                .intern(bytes, |_| attrs.communities().collect())
                .clone(),
            None => attrs.communities().collect(),
        }
    }

    /// Builds the simulator [`Route`] for `prefix` from a borrowed
    /// attribute block, sharing interned paths. Equal to
    /// `attrs.to_attributes().to_route(prefix)` on the same bytes.
    pub fn to_route(&mut self, attrs: &AttrsView<'_>, prefix: Ipv4Prefix) -> Route {
        let as_path = self.as_path(attrs).clone();
        let mut route = Route::new(prefix, as_path).with_origin(attrs.origin());
        if let Some(lp) = attrs.local_pref() {
            route = route.with_local_pref(lp);
        }
        for community in attrs.communities() {
            route = route.with_community(community);
        }
        route
    }

    /// Number of distinct AS paths interned so far (both encodings).
    #[must_use]
    pub fn unique_paths(&self) -> usize {
        self.paths_two.len() + self.paths_four.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::MoasList;

    fn sample_route() -> Route {
        let mut list = MoasList::new();
        list.insert(Asn(4));
        list.insert(Asn(226));
        Route::new(
            "208.8.0.0/16".parse().unwrap(),
            AsPath::from_sequence([Asn(701), Asn(1239), Asn(4)]),
        )
        .with_origin(RouteOrigin::Incomplete)
        .with_local_pref(120)
        .with_moas_list(list)
    }

    #[test]
    fn view_decodes_announcement_lazily() {
        let route = sample_route();
        let msg = UpdateMessage::announce(&route);
        for encoding in [AsnEncoding::TwoOctet, AsnEncoding::FourOctet] {
            let bytes = msg.encode(encoding).unwrap();
            let view = UpdateView::parse_exact(&bytes, encoding).unwrap();
            assert_eq!(view.withdrawn().count(), 0);
            let nlri: Vec<Ipv4Prefix> = view.nlri().collect();
            assert_eq!(nlri, vec![route.prefix()]);
            let attrs = view.attrs().unwrap();
            assert_eq!(attrs.origin(), RouteOrigin::Incomplete);
            assert_eq!(attrs.local_pref(), Some(120));
            assert_eq!(attrs.origin_asn(), Some(Asn(4)));
            let asns: Vec<Asn> = attrs.path_asns().collect();
            assert_eq!(asns, vec![Asn(701), Asn(1239), Asn(4)]);
            assert_eq!(view.to_message(), msg);
        }
    }

    #[test]
    fn view_matches_owned_on_withdrawal() {
        let msg = UpdateMessage::withdraw("10.1.0.0/16".parse().unwrap());
        let bytes = msg.encode(AsnEncoding::FourOctet).unwrap();
        let view = UpdateView::parse_exact(&bytes, AsnEncoding::FourOctet).unwrap();
        assert!(view.attrs().is_none());
        assert_eq!(view.to_message(), msg);
    }

    #[test]
    fn origin_asn_is_none_for_set_terminated_paths() {
        let route = Route::new(
            "10.2.0.0/16".parse().unwrap(),
            AsPath::from_segments([
                AsPathSegment::Sequence(vec![Asn(1), Asn(2)]),
                AsPathSegment::Set(vec![Asn(7), Asn(9)]),
            ]),
        );
        let bytes = UpdateMessage::announce(&route)
            .encode(AsnEncoding::FourOctet)
            .unwrap();
        let view = UpdateView::parse_exact(&bytes, AsnEncoding::FourOctet).unwrap();
        let attrs = view.attrs().unwrap();
        assert_eq!(attrs.origin_asn(), None);
        assert_eq!(attrs.to_as_path(), *route.as_path());
    }

    #[test]
    fn truncated_bytes_error_like_owned() {
        let bytes = UpdateMessage::announce(&sample_route())
            .encode(AsnEncoding::FourOctet)
            .unwrap();
        for cut in 0..bytes.len() {
            let owned = UpdateMessage::decode(&bytes[..cut], AsnEncoding::FourOctet).unwrap_err();
            let view = UpdateView::parse_exact(&bytes[..cut], AsnEncoding::FourOctet).unwrap_err();
            assert_eq!(owned, view, "cut {cut}");
        }
    }

    #[test]
    fn communities_iterate_in_wire_order() {
        let route = sample_route();
        let bytes = UpdateMessage::announce(&route)
            .encode(AsnEncoding::FourOctet)
            .unwrap();
        let view = UpdateView::parse_exact(&bytes, AsnEncoding::FourOctet).unwrap();
        let attrs = view.attrs().unwrap();
        let from_view: Vec<Community> = attrs.communities().collect();
        assert_eq!(from_view, route.communities());
        assert!(attrs.communities_wire().is_some());
        let list = MoasList::from_communities(&from_view).unwrap();
        assert!(list.contains(Asn(4)) && list.contains(Asn(226)));
    }

    #[test]
    fn view_reader_streams_with_one_buffer() {
        let route = sample_route();
        let table = PeerIndexTable {
            collector_id: 9,
            view_name: "lab".into(),
            peers: vec![PeerEntry {
                bgp_id: 1,
                addr: 2,
                asn: Asn(701),
            }],
        };
        let records = vec![
            MrtRecord {
                timestamp: 100,
                body: MrtBody::PeerIndexTable(table),
            },
            MrtRecord {
                timestamp: 100,
                body: MrtBody::RibIpv4Unicast(RibIpv4Unicast {
                    sequence: 7,
                    prefix: route.prefix(),
                    entries: vec![RibEntry {
                        peer_index: 0,
                        originated_time: 50,
                        attrs: PathAttributes::from_route(&route),
                    }],
                }),
            },
        ];
        let mut bytes = Vec::new();
        for record in &records {
            record.encode_into(&mut bytes).unwrap();
        }
        let mut reader = MrtViewReader::new(&bytes[..]);
        let mut back = Vec::new();
        while reader.advance().unwrap() {
            assert_eq!(reader.timestamp(), 100);
            back.push(reader.view().unwrap().to_record());
        }
        assert_eq!(back, records);
        assert_eq!(reader.bytes_read(), bytes.len() as u64);
    }

    #[test]
    fn view_reader_poisons_after_parse_error() {
        let good = MrtRecord {
            timestamp: 1,
            body: MrtBody::PeerIndexTable(PeerIndexTable::default()),
        };
        let mut bytes = good.encode().unwrap();
        bytes[5] = 99; // unknown MRT type
        let more = good.encode().unwrap();
        bytes.extend_from_slice(&more);
        let mut reader = MrtViewReader::new(&bytes[..]);
        assert!(reader.advance().unwrap());
        assert!(reader.view().is_err());
        assert!(!reader.advance().unwrap(), "reader is poisoned");
    }

    #[test]
    fn interner_decodes_repeated_paths_once() {
        let route = sample_route();
        let bytes = UpdateMessage::announce(&route)
            .encode(AsnEncoding::FourOctet)
            .unwrap();
        let view = UpdateView::parse_exact(&bytes, AsnEncoding::FourOctet).unwrap();
        let attrs = *view.attrs().unwrap();
        let mut interner = AttrInterner::new();
        for _ in 0..5 {
            assert_eq!(interner.as_path(&attrs), route.as_path());
            let rebuilt = interner.to_route(&attrs, route.prefix());
            assert_eq!(rebuilt, route);
        }
        assert_eq!(interner.unique_paths(), 1);
        // Same bytes under the other encoding key a separate entry.
        let two = UpdateMessage::announce(&route)
            .encode(AsnEncoding::TwoOctet)
            .unwrap();
        let view2 = UpdateView::parse_exact(&two, AsnEncoding::TwoOctet).unwrap();
        interner.as_path(view2.attrs().unwrap());
        assert_eq!(interner.unique_paths(), 2);
    }
}
