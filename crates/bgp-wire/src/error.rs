//! Typed decode errors with byte offsets.

use std::fmt;

/// Why a decode failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireErrorKind {
    /// Input ended before a field of `needed` bytes could be read.
    Truncated {
        /// Bytes the decoder needed at the failure offset.
        needed: usize,
    },
    /// The 16-byte BGP marker was not all-ones.
    BadMarker,
    /// The BGP header carried an impossible message length.
    BadMessageLength(u16),
    /// The message type is not UPDATE (2).
    UnsupportedMessageType(u8),
    /// A prefix length field exceeded its address family's width.
    BadPrefixLength(u8),
    /// An OPEN message carried a BGP version other than 4.
    BadVersion(u8),
    /// An OPEN hold time of 1 or 2 seconds, which RFC 4271 forbids.
    BadHoldTime(u16),
    /// A capability body length disagreed with its code's fixed size.
    BadCapabilityLength {
        /// Capability code.
        code: u8,
        /// Observed body length.
        length: u8,
    },
    /// A NOTIFICATION carried an undefined error code.
    BadNotificationCode(u8),
    /// A length field pointed past the end of its enclosing structure.
    BadFieldLength {
        /// The offending length value.
        length: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// An `ORIGIN` attribute carried an undefined code.
    BadOrigin(u8),
    /// An `AS_PATH` segment type was neither `AS_SET` nor `AS_SEQUENCE`.
    BadSegmentType(u8),
    /// A mandatory attribute was missing from an announcement.
    MissingAttribute(&'static str),
    /// An attribute body length disagreed with its type's fixed size.
    BadAttributeLength {
        /// Attribute type code.
        type_code: u8,
        /// Observed body length.
        length: usize,
    },
    /// An ASN does not fit the selected 2-octet encoding.
    AsnTooWide(u32),
    /// An encoder was handed data whose length does not fit the wire
    /// format's length field. Encoders fail with this instead of silently
    /// truncating the length (which would corrupt the stream).
    LengthOverflow {
        /// What was being encoded (e.g. `"path attribute body"`).
        field: &'static str,
        /// The length that was requested.
        length: usize,
        /// The largest length the format can carry.
        max: usize,
    },
    /// An MRT record type/subtype pair this crate does not decode.
    UnsupportedMrtType {
        /// MRT type field.
        mrt_type: u16,
        /// MRT subtype field.
        subtype: u16,
    },
    /// An MRT peer entry used an address family other than IPv4.
    UnsupportedPeerType(u8),
    /// A RIB entry named a peer index absent from the peer index table.
    BadPeerIndex(u16),
    /// A RIB record arrived before any `PEER_INDEX_TABLE`.
    MissingPeerIndexTable,
    /// Bytes were left over after a complete message.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
    /// The underlying reader or writer failed.
    Io(std::io::ErrorKind),
}

/// A decode (or encode) failure, carrying the absolute byte offset at which
/// the decoder gave up.
///
/// Offsets are relative to the start of whatever buffer or stream the
/// decoder was handed, so an MRT reader reports positions within the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What went wrong.
    pub kind: WireErrorKind,
    /// Byte offset of the failure.
    pub offset: u64,
}

impl WireError {
    pub(crate) fn new(kind: WireErrorKind, offset: u64) -> Self {
        WireError { kind, offset }
    }

    /// Shifts the error's offset by `base` bytes (used when a decoder runs
    /// over a slice carved out of a larger stream).
    #[must_use]
    pub(crate) fn at_base(mut self, base: u64) -> Self {
        self.offset += base;
        self
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            WireErrorKind::Truncated { needed } => {
                write!(f, "input truncated: needed {needed} more byte(s)")
            }
            WireErrorKind::BadMarker => write!(f, "BGP header marker is not all-ones"),
            WireErrorKind::BadMessageLength(len) => write!(f, "impossible BGP length {len}"),
            WireErrorKind::UnsupportedMessageType(t) => {
                write!(f, "unsupported BGP message type {t}")
            }
            WireErrorKind::BadPrefixLength(len) => {
                write!(f, "prefix length {len} exceeds the address width")
            }
            WireErrorKind::BadVersion(v) => write!(f, "unsupported BGP version {v}"),
            WireErrorKind::BadHoldTime(t) => {
                write!(f, "OPEN hold time {t} is forbidden by RFC 4271")
            }
            WireErrorKind::BadCapabilityLength { code, length } => {
                write!(f, "capability code {code} has impossible length {length}")
            }
            WireErrorKind::BadNotificationCode(code) => {
                write!(f, "undefined NOTIFICATION error code {code}")
            }
            WireErrorKind::BadFieldLength { length, available } => {
                write!(
                    f,
                    "field length {length} exceeds {available} available byte(s)"
                )
            }
            WireErrorKind::BadOrigin(code) => write!(f, "undefined ORIGIN code {code}"),
            WireErrorKind::BadSegmentType(t) => write!(f, "undefined AS_PATH segment type {t}"),
            WireErrorKind::MissingAttribute(name) => {
                write!(f, "announcement lacks mandatory {name} attribute")
            }
            WireErrorKind::BadAttributeLength { type_code, length } => {
                write!(
                    f,
                    "attribute type {type_code} has impossible length {length}"
                )
            }
            WireErrorKind::AsnTooWide(asn) => {
                write!(f, "AS{asn} does not fit a 2-octet AS_PATH")
            }
            WireErrorKind::LengthOverflow { field, length, max } => {
                write!(f, "{field} of {length} byte(s) exceeds the format's {max}")
            }
            WireErrorKind::UnsupportedMrtType { mrt_type, subtype } => {
                write!(
                    f,
                    "unsupported MRT record type {mrt_type} subtype {subtype}"
                )
            }
            WireErrorKind::UnsupportedPeerType(t) => {
                write!(f, "unsupported MRT peer type 0x{t:02x} (IPv4 only)")
            }
            WireErrorKind::BadPeerIndex(i) => write!(f, "RIB entry names unknown peer index {i}"),
            WireErrorKind::MissingPeerIndexTable => {
                write!(f, "RIB record precedes any PEER_INDEX_TABLE")
            }
            WireErrorKind::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing byte(s) after message")
            }
            WireErrorKind::Io(kind) => write!(f, "I/O error: {kind}"),
        }?;
        write!(f, " at byte {}", self.offset)
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::new(WireErrorKind::Io(e.kind()), 0)
    }
}
