//! BGP and MRT wire codecs bridging the simulator and the measurement
//! pipeline.
//!
//! The paper's measurement study (§2) runs over Route Views archives —
//! BGP routing tables and update streams on disk in MRT format. This crate
//! gives the reproduction the same boundary: simulated networks export
//! their tables as real MRT bytes, and the measurement pipeline imports MRT
//! bytes (ours or anyone's IPv4 table dumps) back into its native
//! structures.
//!
//! Three layers:
//!
//! * [`bgp`] — RFC 4271 UPDATE messages with the RFC 1997 `COMMUNITIES`
//!   attribute. The paper's MOAS list rides in communities (one
//!   `asn:0x4d4c` value per list member), so a list attached by
//!   `bgp_types::Route::with_moas_list` survives a trip through real BGP
//!   bytes and back.
//! * [`mrt`] — RFC 6396 record framing: `TABLE_DUMP_V2`
//!   (`PEER_INDEX_TABLE`, `RIB_IPV4_UNICAST`) for table snapshots and
//!   `BGP4MP` (`MESSAGE`, `MESSAGE_AS4`) for update streams, over any
//!   `io::Read`/`io::Write`.
//! * [`export`] / [`import`] — the bridges: `bgp-engine` Loc-RIBs out to
//!   MRT (batched through [`mrt::MrtWriter`]'s reusable buffer), MRT back
//!   in to `route_measurement::DailyDump` streams and routes for the
//!   offline monitor — either whole-archive ([`import_table_dumps`]) or
//!   one day at a time in constant memory ([`DailyDumpStream`]).
//!
//! Decoding is panic-free on arbitrary input: every failure is a typed
//! [`WireError`] carrying the byte offset of the problem.
//!
//! # Example
//!
//! ```
//! use bgp_types::{AsPath, Asn, MoasList, Route};
//! use bgp_wire::bgp::{AsnEncoding, UpdateMessage};
//!
//! let mut list = MoasList::new();
//! list.insert(Asn(4));
//! list.insert(Asn(226));
//! let route = Route::new(
//!     "208.8.0.0/16".parse().unwrap(),
//!     AsPath::from_sequence([Asn(701), Asn(4)]),
//! )
//! .with_moas_list(list.clone());
//!
//! let bytes = UpdateMessage::announce(&route)
//!     .encode(AsnEncoding::FourOctet)
//!     .unwrap();
//! let back = UpdateMessage::decode(&bytes, AsnEncoding::FourOctet).unwrap();
//! let decoded = back.updates().remove(0).route().unwrap().clone();
//! assert_eq!(decoded.moas_list(), Some(list));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bgp;
mod error;
pub mod export;
pub mod import;
pub mod mrt;
pub mod msg;
pub mod view;

pub use error::{WireError, WireErrorKind};
pub use export::{export_rib_snapshot, export_update_stream, ExportSummary};
pub use import::{
    import_table_dumps, import_update_stream, DailyDumpStream, DayImport, ImportedTables,
};
pub use view::{
    AttrInterner, AttrsView, Bgp4mpView, CapabilityIter, MessageView, MrtBodyView, MrtRecordView,
    MrtViewReader, NotificationView, OpenView, PeerIndexTableView, Prefix6Iter, Rib6View,
    RibEntryView, RibView, UpdateView,
};

use bgp_types::Asn;

/// The private ASN the synthetic collector peers under.
pub const COLLECTOR_ASN: Asn = Asn(64512);

/// Unix timestamp of simulated day 0: 2001-01-01T00:00:00Z, the start of
/// the paper's measurement window.
pub const DAY_ZERO_UNIX: u32 = 978_307_200;

/// Seconds per simulated day.
const SECONDS_PER_DAY: u32 = 86_400;

/// The MRT timestamp encoding simulated day `day`.
#[must_use]
pub fn day_to_timestamp(day: u32) -> u32 {
    DAY_ZERO_UNIX.saturating_add(day.saturating_mul(SECONDS_PER_DAY))
}

/// The simulated day an MRT timestamp falls on. Timestamps before day 0
/// (foreign archives predating the window) clamp to day 0.
#[must_use]
pub fn timestamp_to_day(timestamp: u32) -> u32 {
    timestamp.saturating_sub(DAY_ZERO_UNIX) / SECONDS_PER_DAY
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_codec_round_trips() {
        for day in [0, 1, 29, 365, 10_000] {
            assert_eq!(timestamp_to_day(day_to_timestamp(day)), day);
        }
        // Mid-day timestamps land on the same day.
        assert_eq!(timestamp_to_day(day_to_timestamp(3) + 4000), 3);
        // Pre-window timestamps clamp instead of wrapping.
        assert_eq!(timestamp_to_day(0), 0);
    }
}
