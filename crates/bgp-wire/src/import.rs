//! Decoding MRT streams into the measurement pipeline's types.
//!
//! Table-dump records regroup by timestamp into per-day
//! [`DailyDump`]s — the same structures the simulated Route Views collector
//! produces — and into full [`Route`]s for the offline monitor
//! (`moas_core::OfflineMonitor::scan`). `BGP4MP` records decode back into
//! simulator [`Update`]s.
//!
//! Two consumption styles:
//!
//! * [`DailyDumpStream`] — constant-memory streaming: one [`DayImport`] is
//!   yielded each time the record timestamps cross a day boundary, and the
//!   importer never holds more than the day in progress. This is how
//!   archives far larger than memory (years of Route Views dumps) are
//!   processed.
//! * [`import_table_dumps`] — whole-archive convenience built on the
//!   stream: collects every day (merging same-day groups of an unordered
//!   stream) into one [`ImportedTables`].

use std::collections::BTreeMap;
use std::io;

use bgp_types::{Asn, Route, Update};
use route_measurement::DailyDump;

use crate::error::{WireError, WireErrorKind};
use crate::mrt::{MrtBody, MrtReader, PeerIndexTable};
use crate::timestamp_to_day;
use crate::view::{AttrInterner, MrtBodyView, MrtViewReader};

/// Everything a table-dump import recovers.
#[derive(Debug, Clone, Default)]
pub struct ImportedTables {
    /// Per-day origin observations, sorted by day — feed these to
    /// `route_measurement::origin_events` / `daily_moas_counts`.
    pub dumps: Vec<DailyDump>,
    /// Every RIB route, with the day it was dumped on — feed these to
    /// `moas_core::OfflineMonitor::scan`.
    pub routes: Vec<(u32, Route)>,
    /// `BGP4MP` records encountered (and skipped) along the way.
    pub skipped_messages: usize,
}

impl ImportedTables {
    /// Total number of daily MOAS cases, summed over days (the quantity the
    /// round-trip tests compare against the exporting simulation).
    #[must_use]
    pub fn total_moas_count(&self) -> usize {
        self.dumps.iter().map(DailyDump::moas_count).sum()
    }
}

/// One day of a streamed table-dump archive.
#[derive(Debug, Clone, Default)]
pub struct DayImport {
    /// The simulated day ([`crate::timestamp_to_day`] of the records).
    pub day: u32,
    /// The day's origin observations.
    pub dump: DailyDump,
    /// Number of RIB entries the day contributed (counted whether or not
    /// routes are collected).
    pub rib_entries: usize,
    /// The day's full RIB routes, in stream order — empty unless the stream
    /// was configured with [`DailyDumpStream::collect_routes`].
    pub routes: Vec<Route>,
}

/// Streams an MRT table-dump archive one day at a time, in constant memory.
///
/// Where [`import_table_dumps`] accumulates every day of the archive before
/// returning, this iterator yields a [`DayImport`] each time record
/// timestamps cross a day boundary and then drops the day — the working set
/// is one day's table regardless of how many years the archive spans.
/// Day grouping and origin extraction are identical to
/// [`import_table_dumps`]: origins come from each RIB entry's `AS_PATH`,
/// falling back to the owning peer's ASN when the path has no well-defined
/// origin.
///
/// `BGP4MP` records are skipped (counted in
/// [`DailyDumpStream::skipped_messages`]); a record whose timestamp falls on
/// a different day than the day in progress — in either direction — closes
/// that day. Archives with one group of records per day (how Route Views
/// archives and [`crate::export_rib_snapshot`] lay days out) therefore come
/// back exactly as the whole-archive importer would return them; an archive
/// that interleaves days yields one `DayImport` per contiguous group, which
/// callers can merge via [`DailyDump::merge`] (as `import_table_dumps`
/// does).
///
/// Internally the stream runs on the allocation-free decode path: records
/// are framed into one reusable buffer ([`MrtViewReader`]), origins are
/// read straight off the wire via [`crate::view::AttrsView::origin_asn`],
/// and when routes are collected their `AS_PATH`s are hash-consed through
/// an [`AttrInterner`] so each distinct path in a dump is decoded once.
#[derive(Debug)]
pub struct DailyDumpStream<R> {
    mrt: MrtViewReader<R>,
    peer_table: Option<PeerIndexTable>,
    pending: Option<DayImport>,
    /// The buffered record belongs to the next day group; re-process it
    /// (without advancing) on the next call.
    deferred: bool,
    interner: AttrInterner,
    /// Per-record origin batch, reused across records.
    scratch_origins: Vec<Asn>,
    skipped_messages: usize,
    collect_routes: bool,
    day_entries: usize,
    peak_day_entries: usize,
}

impl<R: io::Read> DailyDumpStream<R> {
    /// Wraps a reader positioned at the start of an MRT table-dump stream.
    pub fn new(reader: R) -> Self {
        DailyDumpStream {
            mrt: MrtViewReader::new(reader),
            peer_table: None,
            pending: None,
            deferred: false,
            interner: AttrInterner::new(),
            scratch_origins: Vec::new(),
            skipped_messages: 0,
            collect_routes: false,
            day_entries: 0,
            peak_day_entries: 0,
        }
    }

    /// Also collect each day's full [`Route`]s into
    /// [`DayImport::routes`] (for `OfflineMonitor::scan`). Off by default:
    /// route objects are by far the largest part of a day's working set,
    /// and origin counting does not need them.
    #[must_use]
    pub fn collect_routes(mut self, collect: bool) -> Self {
        self.collect_routes = collect;
        self
    }

    /// `BGP4MP` records skipped so far.
    #[must_use]
    pub fn skipped_messages(&self) -> usize {
        self.skipped_messages
    }

    /// The largest number of RIB entries buffered for any single day — the
    /// streaming importer's peak working set, in records. Bounded by the
    /// biggest day in the archive, not the archive length.
    #[must_use]
    pub fn peak_day_entries(&self) -> usize {
        self.peak_day_entries
    }

    /// Reads up to the next day boundary (or end of stream) and returns the
    /// completed day; `Ok(None)` once the archive is exhausted.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] with stream offset on the first malformed
    /// record, a RIB record preceding any peer table, or a RIB entry naming
    /// a peer index outside the table. After an error the underlying reader
    /// refuses further reads.
    pub fn next_day(&mut self) -> Result<Option<DayImport>, WireError> {
        loop {
            if self.deferred {
                // The buffered record opened a new day last call; consume it
                // now without reading another.
                self.deferred = false;
            } else if !self.mrt.advance()? {
                return Ok(self.take_pending());
            }

            let day = timestamp_to_day(self.mrt.timestamp());
            if let Some(pending) = &self.pending {
                if pending.day != day {
                    // Day boundary: hand the finished day out and re-process
                    // the buffered record on the next call.
                    self.deferred = true;
                    return Ok(self.take_pending());
                }
            }
            self.process(day)?;
        }
    }

    /// Total stream bytes consumed so far — the numerator for ingest
    /// throughput reporting.
    #[must_use]
    pub fn bytes_read(&self) -> u64 {
        self.mrt.bytes_read()
    }

    fn take_pending(&mut self) -> Option<DayImport> {
        self.peak_day_entries = self.peak_day_entries.max(self.day_entries);
        self.day_entries = 0;
        self.pending.take()
    }

    fn process(&mut self, day: u32) -> Result<(), WireError> {
        let view = self.mrt.view()?;
        match view.body {
            MrtBodyView::PeerIndexTable(table) => self.peer_table = Some(table.to_table()),
            MrtBodyView::RibIpv4Unicast(rib) => {
                let table = self
                    .peer_table
                    .as_ref()
                    .ok_or_else(|| WireError::new(WireErrorKind::MissingPeerIndexTable, 0))?;
                let pending = self.pending.get_or_insert_with(|| DayImport {
                    day,
                    dump: DailyDump::new(day),
                    rib_entries: 0,
                    routes: Vec::new(),
                });
                self.scratch_origins.clear();
                for entry in rib.entries() {
                    let peer = table
                        .peers
                        .get(usize::from(entry.peer_index))
                        .ok_or_else(|| {
                            WireError::new(WireErrorKind::BadPeerIndex(entry.peer_index), 0)
                        })?;
                    let origin = entry.attrs.origin_asn().unwrap_or(peer.asn);
                    self.scratch_origins.push(origin);
                    if self.collect_routes {
                        pending
                            .routes
                            .push(self.interner.to_route(&entry.attrs, rib.prefix()));
                    }
                    pending.rib_entries += 1;
                    self.day_entries += 1;
                }
                pending
                    .dump
                    .observe_all(rib.prefix(), self.scratch_origins.iter().copied());
            }
            // The measurement pipeline is IPv4-only (§2 of the paper); IPv6
            // RIB records decode and validate but do not enter daily dumps.
            MrtBodyView::RibIpv6Unicast(_) => {}
            MrtBodyView::Bgp4mpMessage(_) => self.skipped_messages += 1,
        }
        Ok(())
    }
}

impl<R: io::Read> Iterator for DailyDumpStream<R> {
    type Item = Result<DayImport, WireError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_day().transpose()
    }
}

/// Reads a whole MRT stream of table dumps.
///
/// Records regroup by timestamp, so a stream holding several daily
/// snapshots (each introduced by its own `PEER_INDEX_TABLE`) comes back as
/// one [`DailyDump`] per day. Origins are taken from each RIB entry's
/// `AS_PATH`; entries whose path has no well-defined origin (empty, or
/// ending in an `AS_SET`) fall back to the owning peer's ASN.
///
/// Built on [`DailyDumpStream`]; use the stream directly when the archive
/// may not fit in memory.
///
/// # Errors
///
/// Returns a [`WireError`] with stream offset on the first malformed
/// record, a RIB record preceding any peer table, or a RIB entry naming a
/// peer index outside the table.
pub fn import_table_dumps<R: io::Read>(reader: R) -> Result<ImportedTables, WireError> {
    let mut stream = DailyDumpStream::new(reader).collect_routes(true);
    let mut dumps: BTreeMap<u32, DailyDump> = BTreeMap::new();
    let mut routes = Vec::new();

    while let Some(imported) = stream.next_day()? {
        dumps
            .entry(imported.day)
            .and_modify(|dump| dump.merge(&imported.dump))
            .or_insert(imported.dump);
        routes.extend(imported.routes.into_iter().map(|r| (imported.day, r)));
    }

    Ok(ImportedTables {
        dumps: dumps.into_values().collect(),
        routes,
        skipped_messages: stream.skipped_messages(),
    })
}

/// Reads a `BGP4MP` stream back into simulator updates, each tagged with
/// its day and sending peer. Table-dump records in the stream are skipped.
///
/// # Errors
///
/// Returns a [`WireError`] with stream offset on the first malformed
/// record.
pub fn import_update_stream<R: io::Read>(reader: R) -> Result<Vec<(u32, Asn, Update)>, WireError> {
    let mut mrt = MrtReader::new(reader);
    let mut out = Vec::new();
    while let Some(record) = mrt.next_record()? {
        if let MrtBody::Bgp4mpMessage(msg) = record.body {
            let day = timestamp_to_day(record.timestamp);
            out.extend(
                msg.message
                    .updates()
                    .into_iter()
                    .map(|update| (day, msg.peer_asn, update)),
            );
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bgp::{PathAttributes, UpdateMessage};
    use crate::export::{export_update_stream, peer_table};
    use crate::mrt::{Bgp4mpMessage, MrtRecord, MrtWriter, RibEntry, RibIpv4Unicast};
    use crate::{day_to_timestamp, COLLECTOR_ASN};
    use bgp_types::{AsPath, Ipv4Prefix, MoasList};

    fn rib_record(day: u32, prefix: Ipv4Prefix, origins: &[Asn]) -> MrtRecord {
        let entries = origins
            .iter()
            .enumerate()
            .map(|(i, &origin)| RibEntry {
                peer_index: (i % 2) as u16,
                originated_time: day_to_timestamp(day),
                attrs: PathAttributes::from_route(&Route::new(
                    prefix,
                    AsPath::from_sequence([Asn(1000 + i as u32), origin]),
                )),
            })
            .collect();
        MrtRecord {
            timestamp: day_to_timestamp(day),
            body: crate::mrt::MrtBody::RibIpv4Unicast(RibIpv4Unicast {
                sequence: 0,
                prefix,
                entries,
            }),
        }
    }

    fn table_record(day: u32) -> MrtRecord {
        MrtRecord {
            timestamp: day_to_timestamp(day),
            body: crate::mrt::MrtBody::PeerIndexTable(peer_table(&[Asn(701), Asn(1239)])),
        }
    }

    #[test]
    fn multi_day_stream_groups_into_daily_dumps() {
        let p1: Ipv4Prefix = "208.8.0.0/16".parse().unwrap();
        let p2: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        let mut writer = MrtWriter::new(Vec::new());
        for day in 0..2u32 {
            writer.write_record(&table_record(day)).unwrap();
            writer
                .write_record(&rib_record(day, p1, &[Asn(4), Asn(226)]))
                .unwrap();
            writer
                .write_record(&rib_record(day, p2, &[Asn(701)]))
                .unwrap();
        }
        let bytes = writer.finish().unwrap();
        let imported = import_table_dumps(&bytes[..]).unwrap();
        assert_eq!(imported.dumps.len(), 2);
        for (day, dump) in imported.dumps.iter().enumerate() {
            assert_eq!(dump.day(), day as u32);
            assert_eq!(dump.prefix_count(), 2);
            assert_eq!(dump.moas_count(), 1, "only p1 is MOAS");
        }
        assert_eq!(imported.total_moas_count(), 2);
        assert_eq!(imported.routes.len(), 6);
    }

    #[test]
    fn rib_before_peer_table_is_rejected() {
        let mut writer = MrtWriter::new(Vec::new());
        writer
            .write_record(&rib_record(0, "10.0.0.0/8".parse().unwrap(), &[Asn(1)]))
            .unwrap();
        let bytes = writer.finish().unwrap();
        let err = import_table_dumps(&bytes[..]).unwrap_err();
        assert_eq!(err.kind, WireErrorKind::MissingPeerIndexTable);
    }

    #[test]
    fn out_of_range_peer_index_is_rejected() {
        let mut writer = MrtWriter::new(Vec::new());
        writer.write_record(&table_record(0)).unwrap();
        let mut rib = rib_record(0, "10.0.0.0/8".parse().unwrap(), &[Asn(1)]);
        if let crate::mrt::MrtBody::RibIpv4Unicast(r) = &mut rib.body {
            r.entries[0].peer_index = 40;
        }
        writer.write_record(&rib).unwrap();
        let bytes = writer.finish().unwrap();
        let err = import_table_dumps(&bytes[..]).unwrap_err();
        assert_eq!(err.kind, WireErrorKind::BadPeerIndex(40));
    }

    #[test]
    fn moas_list_communities_survive_import() {
        let prefix: Ipv4Prefix = "208.8.0.0/16".parse().unwrap();
        let mut list = MoasList::new();
        list.insert(Asn(4));
        list.insert(Asn(226));
        let route = Route::new(prefix, AsPath::from_sequence([Asn(701), Asn(4)]))
            .with_moas_list(list.clone());
        let mut writer = MrtWriter::new(Vec::new());
        writer.write_record(&table_record(0)).unwrap();
        writer
            .write_record(&MrtRecord {
                timestamp: day_to_timestamp(0),
                body: crate::mrt::MrtBody::RibIpv4Unicast(RibIpv4Unicast {
                    sequence: 0,
                    prefix,
                    entries: vec![RibEntry {
                        peer_index: 0,
                        originated_time: 0,
                        attrs: PathAttributes::from_route(&route),
                    }],
                }),
            })
            .unwrap();
        let bytes = writer.finish().unwrap();
        let imported = import_table_dumps(&bytes[..]).unwrap();
        assert_eq!(imported.routes.len(), 1);
        assert_eq!(imported.routes[0].1.moas_list(), Some(list));
    }

    #[test]
    fn update_streams_round_trip_through_bgp4mp() {
        let route = Route::new(
            "208.8.0.0/16".parse().unwrap(),
            AsPath::from_sequence([Asn(70_000), Asn(4)]),
        );
        let updates = [
            (Asn(4), Update::announce(route.clone())),
            (Asn(70_000), Update::withdraw(route.prefix())),
        ];
        let mut writer = MrtWriter::new(Vec::new());
        export_update_stream(&mut writer, 5, updates.iter().map(|(a, u)| (*a, u))).unwrap();
        let bytes = writer.finish().unwrap();
        let back = import_update_stream(&bytes[..]).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0], (5, Asn(4), updates[0].1.clone()));
        assert_eq!(back[1], (5, Asn(70_000), updates[1].1.clone()));
    }

    #[test]
    fn import_skips_interleaved_message_records() {
        let mut writer = MrtWriter::new(Vec::new());
        writer.write_record(&table_record(0)).unwrap();
        writer
            .write_record(&MrtRecord {
                timestamp: day_to_timestamp(0),
                body: crate::mrt::MrtBody::Bgp4mpMessage(Bgp4mpMessage {
                    peer_asn: Asn(4),
                    local_asn: COLLECTOR_ASN,
                    peer_addr: 0,
                    local_addr: 0,
                    message: UpdateMessage::withdraw("10.0.0.0/8".parse().unwrap()),
                }),
            })
            .unwrap();
        writer
            .write_record(&rib_record(0, "10.0.0.0/8".parse().unwrap(), &[Asn(1)]))
            .unwrap();
        let bytes = writer.finish().unwrap();
        let imported = import_table_dumps(&bytes[..]).unwrap();
        assert_eq!(imported.skipped_messages, 1);
        assert_eq!(imported.dumps.len(), 1);
    }
}
