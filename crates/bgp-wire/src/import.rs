//! Decoding MRT streams into the measurement pipeline's types.
//!
//! Table-dump records regroup by timestamp into per-day
//! [`DailyDump`]s — the same structures the simulated Route Views collector
//! produces — and into full [`Route`]s for the offline monitor
//! (`moas_core::OfflineMonitor::scan`). `BGP4MP` records decode back into
//! simulator [`Update`]s.

use std::collections::BTreeMap;
use std::io;

use bgp_types::{Asn, Route, Update};
use route_measurement::DailyDump;

use crate::error::{WireError, WireErrorKind};
use crate::mrt::{MrtBody, MrtReader, PeerIndexTable};
use crate::timestamp_to_day;

/// Everything a table-dump import recovers.
#[derive(Debug, Clone, Default)]
pub struct ImportedTables {
    /// Per-day origin observations, sorted by day — feed these to
    /// `route_measurement::origin_events` / `daily_moas_counts`.
    pub dumps: Vec<DailyDump>,
    /// Every RIB route, with the day it was dumped on — feed these to
    /// `moas_core::OfflineMonitor::scan`.
    pub routes: Vec<(u32, Route)>,
    /// `BGP4MP` records encountered (and skipped) along the way.
    pub skipped_messages: usize,
}

impl ImportedTables {
    /// Total number of daily MOAS cases, summed over days (the quantity the
    /// round-trip tests compare against the exporting simulation).
    #[must_use]
    pub fn total_moas_count(&self) -> usize {
        self.dumps.iter().map(DailyDump::moas_count).sum()
    }
}

/// Reads a whole MRT stream of table dumps.
///
/// Records regroup by timestamp, so a stream holding several daily
/// snapshots (each introduced by its own `PEER_INDEX_TABLE`) comes back as
/// one [`DailyDump`] per day. Origins are taken from each RIB entry's
/// `AS_PATH`; entries whose path has no well-defined origin (empty, or
/// ending in an `AS_SET`) fall back to the owning peer's ASN.
///
/// # Errors
///
/// Returns a [`WireError`] with stream offset on the first malformed
/// record, a RIB record preceding any peer table, or a RIB entry naming a
/// peer index outside the table.
pub fn import_table_dumps<R: io::Read>(reader: R) -> Result<ImportedTables, WireError> {
    let mut mrt = MrtReader::new(reader);
    let mut peer_table: Option<PeerIndexTable> = None;
    let mut dumps: BTreeMap<u32, DailyDump> = BTreeMap::new();
    let mut routes = Vec::new();
    let mut skipped_messages = 0;

    while let Some(record) = mrt.next_record()? {
        match record.body {
            MrtBody::PeerIndexTable(table) => peer_table = Some(table),
            MrtBody::RibIpv4Unicast(rib) => {
                let table = peer_table
                    .as_ref()
                    .ok_or_else(|| WireError::new(WireErrorKind::MissingPeerIndexTable, 0))?;
                let day = timestamp_to_day(record.timestamp);
                let dump = dumps.entry(day).or_insert_with(|| DailyDump::new(day));
                for entry in rib.entries {
                    let peer = table
                        .peers
                        .get(usize::from(entry.peer_index))
                        .ok_or_else(|| {
                            WireError::new(WireErrorKind::BadPeerIndex(entry.peer_index), 0)
                        })?;
                    let route = entry.attrs.to_route(rib.prefix);
                    let origin = route.origin_as().unwrap_or(peer.asn);
                    dump.observe(rib.prefix, origin);
                    routes.push((day, route));
                }
            }
            MrtBody::Bgp4mpMessage(_) => skipped_messages += 1,
        }
    }

    Ok(ImportedTables {
        dumps: dumps.into_values().collect(),
        routes,
        skipped_messages,
    })
}

/// Reads a `BGP4MP` stream back into simulator updates, each tagged with
/// its day and sending peer. Table-dump records in the stream are skipped.
///
/// # Errors
///
/// Returns a [`WireError`] with stream offset on the first malformed
/// record.
pub fn import_update_stream<R: io::Read>(reader: R) -> Result<Vec<(u32, Asn, Update)>, WireError> {
    let mut mrt = MrtReader::new(reader);
    let mut out = Vec::new();
    while let Some(record) = mrt.next_record()? {
        if let MrtBody::Bgp4mpMessage(msg) = record.body {
            let day = timestamp_to_day(record.timestamp);
            out.extend(
                msg.message
                    .updates()
                    .into_iter()
                    .map(|update| (day, msg.peer_asn, update)),
            );
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bgp::{PathAttributes, UpdateMessage};
    use crate::export::{export_update_stream, peer_table};
    use crate::mrt::{Bgp4mpMessage, MrtRecord, MrtWriter, RibEntry, RibIpv4Unicast};
    use crate::{day_to_timestamp, COLLECTOR_ASN};
    use bgp_types::{AsPath, Ipv4Prefix, MoasList};

    fn rib_record(day: u32, prefix: Ipv4Prefix, origins: &[Asn]) -> MrtRecord {
        let entries = origins
            .iter()
            .enumerate()
            .map(|(i, &origin)| RibEntry {
                peer_index: (i % 2) as u16,
                originated_time: day_to_timestamp(day),
                attrs: PathAttributes::from_route(&Route::new(
                    prefix,
                    AsPath::from_sequence([Asn(1000 + i as u32), origin]),
                )),
            })
            .collect();
        MrtRecord {
            timestamp: day_to_timestamp(day),
            body: crate::mrt::MrtBody::RibIpv4Unicast(RibIpv4Unicast {
                sequence: 0,
                prefix,
                entries,
            }),
        }
    }

    fn table_record(day: u32) -> MrtRecord {
        MrtRecord {
            timestamp: day_to_timestamp(day),
            body: crate::mrt::MrtBody::PeerIndexTable(peer_table(&[Asn(701), Asn(1239)])),
        }
    }

    #[test]
    fn multi_day_stream_groups_into_daily_dumps() {
        let p1: Ipv4Prefix = "208.8.0.0/16".parse().unwrap();
        let p2: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        let mut writer = MrtWriter::new(Vec::new());
        for day in 0..2u32 {
            writer.write_record(&table_record(day)).unwrap();
            writer
                .write_record(&rib_record(day, p1, &[Asn(4), Asn(226)]))
                .unwrap();
            writer
                .write_record(&rib_record(day, p2, &[Asn(701)]))
                .unwrap();
        }
        let bytes = writer.finish().unwrap();
        let imported = import_table_dumps(&bytes[..]).unwrap();
        assert_eq!(imported.dumps.len(), 2);
        for (day, dump) in imported.dumps.iter().enumerate() {
            assert_eq!(dump.day(), day as u32);
            assert_eq!(dump.prefix_count(), 2);
            assert_eq!(dump.moas_count(), 1, "only p1 is MOAS");
        }
        assert_eq!(imported.total_moas_count(), 2);
        assert_eq!(imported.routes.len(), 6);
    }

    #[test]
    fn rib_before_peer_table_is_rejected() {
        let mut writer = MrtWriter::new(Vec::new());
        writer
            .write_record(&rib_record(0, "10.0.0.0/8".parse().unwrap(), &[Asn(1)]))
            .unwrap();
        let bytes = writer.finish().unwrap();
        let err = import_table_dumps(&bytes[..]).unwrap_err();
        assert_eq!(err.kind, WireErrorKind::MissingPeerIndexTable);
    }

    #[test]
    fn out_of_range_peer_index_is_rejected() {
        let mut writer = MrtWriter::new(Vec::new());
        writer.write_record(&table_record(0)).unwrap();
        let mut rib = rib_record(0, "10.0.0.0/8".parse().unwrap(), &[Asn(1)]);
        if let crate::mrt::MrtBody::RibIpv4Unicast(r) = &mut rib.body {
            r.entries[0].peer_index = 40;
        }
        writer.write_record(&rib).unwrap();
        let bytes = writer.finish().unwrap();
        let err = import_table_dumps(&bytes[..]).unwrap_err();
        assert_eq!(err.kind, WireErrorKind::BadPeerIndex(40));
    }

    #[test]
    fn moas_list_communities_survive_import() {
        let prefix: Ipv4Prefix = "208.8.0.0/16".parse().unwrap();
        let mut list = MoasList::new();
        list.insert(Asn(4));
        list.insert(Asn(226));
        let route = Route::new(prefix, AsPath::from_sequence([Asn(701), Asn(4)]))
            .with_moas_list(list.clone());
        let mut writer = MrtWriter::new(Vec::new());
        writer.write_record(&table_record(0)).unwrap();
        writer
            .write_record(&MrtRecord {
                timestamp: day_to_timestamp(0),
                body: crate::mrt::MrtBody::RibIpv4Unicast(RibIpv4Unicast {
                    sequence: 0,
                    prefix,
                    entries: vec![RibEntry {
                        peer_index: 0,
                        originated_time: 0,
                        attrs: PathAttributes::from_route(&route),
                    }],
                }),
            })
            .unwrap();
        let bytes = writer.finish().unwrap();
        let imported = import_table_dumps(&bytes[..]).unwrap();
        assert_eq!(imported.routes.len(), 1);
        assert_eq!(imported.routes[0].1.moas_list(), Some(list));
    }

    #[test]
    fn update_streams_round_trip_through_bgp4mp() {
        let route = Route::new(
            "208.8.0.0/16".parse().unwrap(),
            AsPath::from_sequence([Asn(70_000), Asn(4)]),
        );
        let updates = [
            (Asn(4), Update::announce(route.clone())),
            (Asn(70_000), Update::withdraw(route.prefix())),
        ];
        let mut writer = MrtWriter::new(Vec::new());
        export_update_stream(&mut writer, 5, updates.iter().map(|(a, u)| (*a, u))).unwrap();
        let bytes = writer.finish().unwrap();
        let back = import_update_stream(&bytes[..]).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0], (5, Asn(4), updates[0].1.clone()));
        assert_eq!(back[1], (5, Asn(70_000), updates[1].1.clone()));
    }

    #[test]
    fn import_skips_interleaved_message_records() {
        let mut writer = MrtWriter::new(Vec::new());
        writer.write_record(&table_record(0)).unwrap();
        writer
            .write_record(&MrtRecord {
                timestamp: day_to_timestamp(0),
                body: crate::mrt::MrtBody::Bgp4mpMessage(Bgp4mpMessage {
                    peer_asn: Asn(4),
                    local_asn: COLLECTOR_ASN,
                    peer_addr: 0,
                    local_addr: 0,
                    message: UpdateMessage::withdraw("10.0.0.0/8".parse().unwrap()),
                }),
            })
            .unwrap();
        writer
            .write_record(&rib_record(0, "10.0.0.0/8".parse().unwrap(), &[Asn(1)]))
            .unwrap();
        let bytes = writer.finish().unwrap();
        let imported = import_table_dumps(&bytes[..]).unwrap();
        assert_eq!(imported.skipped_messages, 1);
        assert_eq!(imported.dumps.len(), 1);
    }
}
