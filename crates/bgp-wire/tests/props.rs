//! Property tests for the wire codecs: encode→decode is the identity on
//! well-formed messages, and decoding never panics on corrupted bytes.

use bgp_types::{AsPath, AsPathSegment, Asn, Community, Ipv4Prefix, Ipv6Prefix, RouteOrigin};
use bgp_wire::bgp::{AsnEncoding, MpReach, MpUnreach, PathAttributes, UpdateMessage};
use bgp_wire::mrt::{
    Bgp4mpMessage, MrtBody, MrtReader, MrtRecord, PeerEntry, PeerIndexTable, RibEntry,
    RibIpv4Unicast, RibIpv6Unicast,
};
use bgp_wire::WireErrorKind;
use proptest::prelude::*;

// --- strategies -----------------------------------------------------------

/// An ASN that fits the 2-octet encoding (and RFC 1997 communities).
fn asn16() -> impl Strategy<Value = Asn> + Clone {
    (1u32..0x1_0000).prop_map(Asn)
}

/// Any non-zero 4-octet ASN.
fn asn32() -> impl Strategy<Value = Asn> + Clone {
    (1u32..u32::MAX).prop_map(Asn)
}

/// A canonical (host-bits-masked) IPv4 prefix.
fn prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| Ipv4Prefix::new(addr, len))
}

/// An AS path: a sequence of 1-4 hops, sometimes followed by an AS_SET.
fn as_path(asn: impl Strategy<Value = Asn> + Clone) -> impl Strategy<Value = AsPath> {
    (
        prop::collection::vec(asn.clone(), 1..5),
        prop::collection::btree_set(asn, 0..3),
    )
        .prop_map(|(seq, set)| {
            AsPath::from_segments([
                AsPathSegment::Sequence(seq),
                AsPathSegment::Set(set.into_iter().collect()),
            ])
        })
}

fn origin() -> impl Strategy<Value = RouteOrigin> {
    prop_oneof![
        Just(RouteOrigin::Igp),
        Just(RouteOrigin::Egp),
        Just(RouteOrigin::Incomplete),
    ]
}

fn attrs(asn: impl Strategy<Value = Asn> + Clone) -> impl Strategy<Value = PathAttributes> {
    (
        origin(),
        as_path(asn),
        any::<u32>(),
        prop_oneof![Just(None), (0u32..1000).prop_map(Some)],
        prop::collection::vec(
            (asn16(), any::<u16>()).prop_map(|(a, v)| Community::new(a, v)),
            0..4,
        ),
    )
        .prop_map(
            |(origin, as_path, next_hop, local_pref, communities)| PathAttributes {
                origin,
                as_path,
                next_hop,
                local_pref,
                communities,
                mp_reach: None,
                mp_unreach: None,
            },
        )
}

/// A well-formed UPDATE: NLRI only rides along when attributes are present.
fn update(asn: impl Strategy<Value = Asn> + Clone) -> impl Strategy<Value = UpdateMessage> {
    (
        prop::collection::vec(prefix(), 0..4),
        attrs(asn),
        prop::collection::vec(prefix(), 1..4),
        any::<bool>(),
    )
        .prop_map(|(withdrawn, attrs, nlri, announce)| {
            if announce {
                UpdateMessage {
                    withdrawn,
                    attrs: Some(attrs),
                    nlri,
                }
            } else {
                UpdateMessage {
                    withdrawn,
                    attrs: None,
                    nlri: Vec::new(),
                }
            }
        })
}

fn rib_record() -> impl Strategy<Value = MrtRecord> {
    (
        any::<u32>(),
        any::<u32>(),
        prefix(),
        prop::collection::vec((0u16..64, any::<u32>(), attrs(asn32())), 0..4),
    )
        .prop_map(|(timestamp, sequence, prefix, raw_entries)| MrtRecord {
            timestamp,
            body: MrtBody::RibIpv4Unicast(RibIpv4Unicast {
                sequence,
                prefix,
                entries: raw_entries
                    .into_iter()
                    .map(|(peer_index, originated_time, attrs)| RibEntry {
                        peer_index,
                        originated_time,
                        attrs,
                    })
                    .collect(),
            }),
        })
}

fn peer_index_record() -> impl Strategy<Value = MrtRecord> {
    (
        any::<u32>(),
        any::<u32>(),
        prop::collection::vec((any::<u32>(), any::<u32>(), asn32()), 0..5),
    )
        .prop_map(|(timestamp, collector_id, peers)| MrtRecord {
            timestamp,
            body: MrtBody::PeerIndexTable(PeerIndexTable {
                collector_id,
                view_name: String::from("props"),
                peers: peers
                    .into_iter()
                    .map(|(bgp_id, addr, asn)| PeerEntry { bgp_id, addr, asn })
                    .collect(),
            }),
        })
}

fn bgp4mp_record(asn: impl Strategy<Value = Asn> + Clone) -> impl Strategy<Value = MrtRecord> {
    (
        any::<u32>(),
        asn.clone(),
        asn.clone(),
        any::<u32>(),
        any::<u32>(),
        update(asn),
    )
        .prop_map(
            |(timestamp, peer_asn, local_asn, peer_addr, local_addr, message)| MrtRecord {
                timestamp,
                body: MrtBody::Bgp4mpMessage(Bgp4mpMessage {
                    peer_asn,
                    local_asn,
                    peer_addr,
                    local_addr,
                    message,
                }),
            },
        )
}

fn mrt_record() -> impl Strategy<Value = MrtRecord> {
    prop_oneof![
        rib_record(),
        peer_index_record(),
        bgp4mp_record(asn16()),
        bgp4mp_record(asn32()),
    ]
}

// --- round-trip identity --------------------------------------------------

proptest! {
    #[test]
    fn update_round_trips_four_octet(msg in update(asn32())) {
        let bytes = msg.encode(AsnEncoding::FourOctet).expect("encodes");
        let back = UpdateMessage::decode(&bytes, AsnEncoding::FourOctet).expect("decodes");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn update_round_trips_two_octet(msg in update(asn16())) {
        let bytes = msg.encode(AsnEncoding::TwoOctet).expect("encodes");
        let back = UpdateMessage::decode(&bytes, AsnEncoding::TwoOctet).expect("decodes");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn mrt_record_round_trips(record in mrt_record()) {
        let bytes = record.encode().expect("encodes");
        let mut reader = MrtReader::new(bytes.as_slice());
        let back = reader.next_record().expect("decodes").expect("one record");
        prop_assert_eq!(back, record);
        prop_assert_eq!(reader.next_record().expect("clean EOF"), None);
    }

    #[test]
    fn mrt_stream_round_trips(records in prop::collection::vec(mrt_record(), 1..5)) {
        let mut bytes = Vec::new();
        for record in &records {
            bytes.extend_from_slice(&record.encode().expect("encodes"));
        }
        let mut reader = MrtReader::new(bytes.as_slice());
        let mut back = Vec::new();
        while let Some(record) = reader.next_record().expect("decodes") {
            back.push(record);
        }
        prop_assert_eq!(back, records);
    }
}

// --- IPv6 round trips -----------------------------------------------------

/// A canonical IPv6 prefix.
fn prefix6() -> impl Strategy<Value = Ipv6Prefix> {
    (any::<u128>(), 0u8..=128).prop_map(|(addr, len)| Ipv6Prefix::new(addr, len))
}

proptest! {
    /// UPDATEs carrying the full RFC 4760 MP attributes — including
    /// IPv6-only ones with no IPv4 NLRI at all — round-trip exactly.
    #[test]
    fn ipv6_update_round_trips(
        path in as_path(asn32()),
        nh_len in prop_oneof![Just(16usize), Just(32)],
        reach_nlri in prop::collection::vec(prefix6(), 0..4),
        withdrawn6 in prop::collection::vec(prefix6(), 0..4),
        nlri4 in prop::collection::vec(prefix(), 0..3),
    ) {
        let msg = UpdateMessage {
            withdrawn: Vec::new(),
            attrs: Some(PathAttributes {
                origin: RouteOrigin::Igp,
                as_path: path,
                next_hop: if nlri4.is_empty() { 0 } else { 0x0A00_0001 },
                local_pref: None,
                communities: Vec::new(),
                mp_reach: Some(MpReach {
                    next_hop: vec![0xFE; nh_len],
                    nlri: reach_nlri,
                }),
                mp_unreach: Some(MpUnreach { withdrawn: withdrawn6 }),
            }),
            nlri: nlri4,
        };
        let bytes = msg.encode(AsnEncoding::FourOctet).expect("encodes");
        let back = UpdateMessage::decode(&bytes, AsnEncoding::FourOctet).expect("decodes");
        prop_assert_eq!(back, msg);
    }

    /// `RIB_IPV6_UNICAST` records round-trip exactly. The abbreviated MRT
    /// form of MP_REACH_NLRI carries only the next hop, so entries use the
    /// empty-NLRI shape the decoder reconstructs.
    #[test]
    fn rib6_record_round_trips(
        timestamp in any::<u32>(),
        sequence in any::<u32>(),
        prefix in prefix6(),
        raw_entries in prop::collection::vec(
            (0u16..64, any::<u32>(), as_path(asn32()), prop_oneof![Just(16usize), Just(32)]),
            0..4,
        ),
    ) {
        let record = MrtRecord {
            timestamp,
            body: MrtBody::RibIpv6Unicast(RibIpv6Unicast {
                sequence,
                prefix,
                entries: raw_entries
                    .into_iter()
                    .map(|(peer_index, originated_time, path, nh_len)| RibEntry {
                        peer_index,
                        originated_time,
                        attrs: PathAttributes {
                            origin: RouteOrigin::Igp,
                            as_path: path,
                            next_hop: 0,
                            local_pref: None,
                            communities: Vec::new(),
                            mp_reach: Some(MpReach {
                                next_hop: vec![0xFE; nh_len],
                                nlri: Vec::new(),
                            }),
                            mp_unreach: None,
                        },
                    })
                    .collect(),
            }),
        };
        let bytes = record.encode().expect("encodes");
        let mut reader = MrtReader::new(bytes.as_slice());
        let back = reader.next_record().expect("decodes").expect("one record");
        prop_assert_eq!(back, record);
        prop_assert_eq!(reader.next_record().expect("clean EOF"), None);
    }
}

// --- decoder never panics -------------------------------------------------

proptest! {
    #[test]
    fn truncated_update_errors_not_panics(msg in update(asn32()), cut in 0usize..1000) {
        let bytes = msg.encode(AsnEncoding::FourOctet).expect("encodes");
        let cut = cut % bytes.len().max(1);
        // Every proper prefix of a valid message must fail cleanly.
        prop_assert!(UpdateMessage::decode(&bytes[..cut], AsnEncoding::FourOctet).is_err());
    }

    #[test]
    fn mutated_update_never_panics(
        msg in update(asn32()),
        position in 0usize..1000,
        value in any::<u8>(),
    ) {
        let mut bytes = msg.encode(AsnEncoding::FourOctet).expect("encodes");
        let position = position % bytes.len().max(1);
        bytes[position] = value;
        // Any outcome is fine — Ok if the flip was benign, Err otherwise —
        // as long as the decoder returns instead of panicking.
        let _ = UpdateMessage::decode(&bytes, AsnEncoding::FourOctet);
    }

    #[test]
    fn truncated_mrt_errors_not_panics(record in mrt_record(), cut in 0usize..4000) {
        let bytes = record.encode().expect("encodes");
        let cut = cut % bytes.len().max(1);
        if cut == 0 {
            // An empty stream is a clean EOF, not an error.
            let mut reader = MrtReader::new(&bytes[..0]);
            prop_assert_eq!(reader.next_record().expect("EOF"), None);
        } else {
            let mut reader = MrtReader::new(&bytes[..cut]);
            prop_assert!(reader.next_record().is_err());
        }
    }

    #[test]
    fn mutated_mrt_never_panics(
        record in mrt_record(),
        position in 0usize..4000,
        value in any::<u8>(),
    ) {
        let mut bytes = record.encode().expect("encodes");
        let position = position % bytes.len().max(1);
        bytes[position] = value;
        let mut reader = MrtReader::new(bytes.as_slice());
        while let Ok(Some(_)) = reader.next_record() {}
    }

    #[test]
    fn random_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = UpdateMessage::decode(&bytes, AsnEncoding::FourOctet);
        let _ = UpdateMessage::decode(&bytes, AsnEncoding::TwoOctet);
        let mut reader = MrtReader::new(bytes.as_slice());
        while let Ok(Some(_)) = reader.next_record() {}
    }
}

// --- oversized inputs: exact round-trip or typed error, never silent
// --- truncation -----------------------------------------------------------

/// Minimal attributes carrying `path` and `communities`.
fn attrs_with(path: AsPath, communities: Vec<Community>) -> PathAttributes {
    PathAttributes {
        origin: RouteOrigin::Igp,
        as_path: path,
        next_hop: 0xC0A8_0001,
        local_pref: None,
        communities,
        mp_reach: None,
        mp_unreach: None,
    }
}

/// An announcement of one prefix with the given attributes.
fn announce_with(attrs: PathAttributes) -> UpdateMessage {
    UpdateMessage {
        withdrawn: Vec::new(),
        attrs: Some(attrs),
        nlri: vec![Ipv4Prefix::new(0x0A00_0000, 8)],
    }
}

/// `n` distinct communities (4 wire bytes each).
fn communities(n: usize) -> Vec<Community> {
    (0..n)
        .map(|i| Community::new(Asn(64_512 + (i as u32 >> 16)), i as u16))
        .collect()
}

/// A RIB record whose single entry carries `attrs` — the path with no
/// 4096-byte message cap, so attribute blocks can grow past it.
fn rib_record_with(attrs: PathAttributes) -> MrtRecord {
    MrtRecord {
        timestamp: 0,
        body: MrtBody::RibIpv4Unicast(RibIpv4Unicast {
            sequence: 0,
            prefix: Ipv4Prefix::new(0x0A00_0000, 8),
            entries: vec![RibEntry {
                peer_index: 0,
                originated_time: 0,
                attrs,
            }],
        }),
    }
}

proptest! {
    /// Paths longer than one wire segment (255 ASNs) split into multiple
    /// segments on encode and re-join into the original on decode.
    #[test]
    fn long_sequences_round_trip_exactly(hops in prop::collection::vec(asn32(), 256..700)) {
        let msg = announce_with(attrs_with(AsPath::from_sequence(hops), Vec::new()));
        let bytes = msg.encode(AsnEncoding::FourOctet).expect("under 4096 bytes");
        let back = UpdateMessage::decode(&bytes, AsnEncoding::FourOctet).expect("decodes");
        prop_assert_eq!(back, msg);
    }

    /// `AS_SET`s past 255 members take the same split-and-re-join path.
    #[test]
    fn long_sets_round_trip_exactly(set in prop::collection::btree_set(asn32(), 256..450)) {
        let path = AsPath::from_segments([
            AsPathSegment::Sequence(vec![Asn(701)]),
            AsPathSegment::Set(set.into_iter().collect()),
        ]);
        let msg = announce_with(attrs_with(path, Vec::new()));
        let bytes = msg.encode(AsnEncoding::FourOctet).expect("under 4096 bytes");
        let back = UpdateMessage::decode(&bytes, AsnEncoding::FourOctet).expect("decodes");
        prop_assert_eq!(back, msg);
    }

    /// A community list pushing the message past RFC 4271's 4096-byte cap
    /// is a typed error, not a truncated message.
    #[test]
    fn oversized_update_is_rejected_not_truncated(n in 1030usize..1500) {
        let msg = announce_with(attrs_with(
            AsPath::from_sequence([Asn(701)]),
            communities(n),
        ));
        let err = msg.encode(AsnEncoding::FourOctet).expect_err("over 4096 bytes");
        prop_assert!(matches!(
            err.kind,
            WireErrorKind::LengthOverflow { field: "BGP message", .. }
        ));
    }

    /// Attribute bodies past 255 bytes (but within u16) ride the
    /// extended-length flag and round-trip exactly through a RIB record —
    /// including bodies larger than any UPDATE message could carry.
    #[test]
    fn extended_length_attribute_blocks_round_trip(n in 1100usize..2500) {
        let record = rib_record_with(attrs_with(
            AsPath::from_sequence([Asn(701), Asn(4)]),
            communities(n),
        ));
        let bytes = record.encode().expect("encodes");
        let mut reader = MrtReader::new(bytes.as_slice());
        let back = reader.next_record().expect("decodes").expect("one record");
        prop_assert_eq!(back, record);
    }

    /// An attribute body past even the extended length field's u16 range is
    /// a typed error — this is the path the old `as u16` cast silently
    /// corrupted.
    #[test]
    fn attribute_block_past_u16_is_rejected(n in 16_384usize..16_600) {
        let record = rib_record_with(attrs_with(
            AsPath::from_sequence([Asn(701)]),
            communities(n),
        ));
        let err = record.encode().expect_err("over u16::MAX");
        prop_assert!(matches!(
            err.kind,
            WireErrorKind::LengthOverflow { field: "path attribute body", .. }
        ));
    }
}
