//! Differential property tests: the zero-copy view decode
//! (`UpdateView`/`MrtRecordView`/`MrtViewReader`) must be *observationally
//! identical* to the owned decode — same accepted inputs, same rebuilt
//! values, and the same `WireError` kind **and offset** on every rejected
//! input, including truncations, random byte flips, and raw garbage. The
//! owned decoder is the reference; these tests are what lets the hot path
//! chase throughput without re-litigating correctness.

use bgp_types::{AsPath, AsPathSegment, Asn, Community, Ipv4Prefix, Ipv6Prefix, RouteOrigin};
use bgp_wire::bgp::{AsnEncoding, MpReach, MpUnreach, PathAttributes, UpdateMessage};
use bgp_wire::mrt::{
    Bgp4mpMessage, MrtBody, MrtReader, MrtRecord, PeerEntry, PeerIndexTable, RibEntry,
    RibIpv4Unicast, RibIpv6Unicast,
};
use bgp_wire::{MrtViewReader, UpdateView, WireError};
use proptest::prelude::*;

// --- strategies (same corpus shapes as tests/props.rs) --------------------

fn asn16() -> impl Strategy<Value = Asn> + Clone {
    (1u32..0x1_0000).prop_map(Asn)
}

fn asn32() -> impl Strategy<Value = Asn> + Clone {
    (1u32..u32::MAX).prop_map(Asn)
}

fn prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| Ipv4Prefix::new(addr, len))
}

fn as_path(asn: impl Strategy<Value = Asn> + Clone) -> impl Strategy<Value = AsPath> {
    (
        prop::collection::vec(asn.clone(), 1..5),
        prop::collection::btree_set(asn, 0..3),
    )
        .prop_map(|(seq, set)| {
            AsPath::from_segments([
                AsPathSegment::Sequence(seq),
                AsPathSegment::Set(set.into_iter().collect()),
            ])
        })
}

fn prefix6() -> impl Strategy<Value = Ipv6Prefix> {
    (any::<u128>(), 0u8..=128).prop_map(|(addr, len)| Ipv6Prefix::new(addr, len))
}

fn mp_reach() -> impl Strategy<Value = MpReach> {
    (
        prop_oneof![Just(16usize), Just(32)],
        prop::collection::vec(prefix6(), 0..3),
    )
        .prop_map(|(nh_len, nlri)| MpReach {
            next_hop: vec![0xFE; nh_len],
            nlri,
        })
}

fn mp_unreach() -> impl Strategy<Value = MpUnreach> {
    prop::collection::vec(prefix6(), 0..3).prop_map(|withdrawn| MpUnreach { withdrawn })
}

fn origin() -> impl Strategy<Value = RouteOrigin> {
    prop_oneof![
        Just(RouteOrigin::Igp),
        Just(RouteOrigin::Egp),
        Just(RouteOrigin::Incomplete),
    ]
}

fn attrs(asn: impl Strategy<Value = Asn> + Clone) -> impl Strategy<Value = PathAttributes> {
    (
        origin(),
        as_path(asn),
        any::<u32>(),
        prop_oneof![Just(None), (0u32..1000).prop_map(Some)],
        prop::collection::vec(
            (asn16(), any::<u16>()).prop_map(|(a, v)| Community::new(a, v)),
            0..4,
        ),
        prop_oneof![Just(None), mp_reach().prop_map(Some)],
        prop_oneof![Just(None), mp_unreach().prop_map(Some)],
    )
        .prop_map(
            |(origin, as_path, next_hop, local_pref, communities, mp_reach, mp_unreach)| {
                PathAttributes {
                    origin,
                    as_path,
                    next_hop,
                    local_pref,
                    communities,
                    mp_reach,
                    mp_unreach,
                }
            },
        )
}

fn update(asn: impl Strategy<Value = Asn> + Clone) -> impl Strategy<Value = UpdateMessage> {
    (
        prop::collection::vec(prefix(), 0..4),
        attrs(asn),
        prop::collection::vec(prefix(), 1..4),
        any::<bool>(),
    )
        .prop_map(|(withdrawn, attrs, nlri, announce)| {
            if announce {
                UpdateMessage {
                    withdrawn,
                    attrs: Some(attrs),
                    nlri,
                }
            } else {
                UpdateMessage {
                    withdrawn,
                    attrs: None,
                    nlri: Vec::new(),
                }
            }
        })
}

fn rib_record() -> impl Strategy<Value = MrtRecord> {
    (
        any::<u32>(),
        any::<u32>(),
        prefix(),
        prop::collection::vec((0u16..64, any::<u32>(), attrs(asn32())), 0..4),
    )
        .prop_map(|(timestamp, sequence, prefix, raw_entries)| MrtRecord {
            timestamp,
            body: MrtBody::RibIpv4Unicast(RibIpv4Unicast {
                sequence,
                prefix,
                entries: raw_entries
                    .into_iter()
                    .map(|(peer_index, originated_time, attrs)| RibEntry {
                        peer_index,
                        originated_time,
                        attrs,
                    })
                    .collect(),
            }),
        })
}

fn rib6_record() -> impl Strategy<Value = MrtRecord> {
    (
        any::<u32>(),
        any::<u32>(),
        prefix6(),
        prop::collection::vec((0u16..64, any::<u32>(), attrs(asn32())), 0..4),
    )
        .prop_map(|(timestamp, sequence, prefix, raw_entries)| MrtRecord {
            timestamp,
            body: MrtBody::RibIpv6Unicast(RibIpv6Unicast {
                sequence,
                prefix,
                entries: raw_entries
                    .into_iter()
                    .map(|(peer_index, originated_time, attrs)| RibEntry {
                        peer_index,
                        originated_time,
                        attrs,
                    })
                    .collect(),
            }),
        })
}

fn peer_index_record() -> impl Strategy<Value = MrtRecord> {
    (
        any::<u32>(),
        any::<u32>(),
        prop::collection::vec((any::<u32>(), any::<u32>(), asn32()), 0..5),
    )
        .prop_map(|(timestamp, collector_id, peers)| MrtRecord {
            timestamp,
            body: MrtBody::PeerIndexTable(PeerIndexTable {
                collector_id,
                view_name: String::from("props"),
                peers: peers
                    .into_iter()
                    .map(|(bgp_id, addr, asn)| PeerEntry { bgp_id, addr, asn })
                    .collect(),
            }),
        })
}

fn bgp4mp_record(asn: impl Strategy<Value = Asn> + Clone) -> impl Strategy<Value = MrtRecord> {
    (
        any::<u32>(),
        asn.clone(),
        asn.clone(),
        any::<u32>(),
        any::<u32>(),
        update(asn),
    )
        .prop_map(
            |(timestamp, peer_asn, local_asn, peer_addr, local_addr, message)| MrtRecord {
                timestamp,
                body: MrtBody::Bgp4mpMessage(Bgp4mpMessage {
                    peer_asn,
                    local_asn,
                    peer_addr,
                    local_addr,
                    message,
                }),
            },
        )
}

fn mrt_record() -> impl Strategy<Value = MrtRecord> {
    prop_oneof![
        rib_record(),
        rib6_record(),
        peer_index_record(),
        bgp4mp_record(asn16()),
        bgp4mp_record(asn32()),
    ]
}

// --- differential helpers -------------------------------------------------

/// Decodes `bytes` both ways and asserts observational identity: equal
/// rebuilt messages on accept, equal `WireError` (kind and offset) on
/// reject. On accept, every lazy accessor is checked against the owned
/// decomposition, not just `to_message`.
fn assert_update_parity(bytes: &[u8], encoding: AsnEncoding) {
    let owned = UpdateMessage::decode(bytes, encoding);
    let view = UpdateView::parse_exact(bytes, encoding);
    match (owned, view) {
        (Ok(owned), Ok(view)) => {
            prop_assert_eq!(&view.to_message(), &owned);
            let nlri: Vec<Ipv4Prefix> = view.nlri().collect();
            let withdrawn: Vec<Ipv4Prefix> = view.withdrawn().collect();
            prop_assert_eq!(nlri, owned.nlri);
            prop_assert_eq!(withdrawn, owned.withdrawn);
            match (view.attrs(), owned.attrs) {
                (Some(va), Some(oa)) => {
                    prop_assert_eq!(va.origin(), oa.origin);
                    prop_assert_eq!(va.next_hop(), oa.next_hop);
                    prop_assert_eq!(va.local_pref(), oa.local_pref);
                    prop_assert_eq!(va.origin_asn(), oa.as_path.origin());
                    prop_assert_eq!(va.to_as_path(), oa.as_path.clone());
                    let asns: Vec<Asn> = va.path_asns().collect();
                    let owned_asns: Vec<Asn> = oa.as_path.iter().collect();
                    prop_assert_eq!(asns, owned_asns);
                    let communities: Vec<Community> = va.communities().collect();
                    prop_assert_eq!(communities, oa.communities);
                    prop_assert_eq!(va.mp_reach(), oa.mp_reach);
                    prop_assert_eq!(va.mp_unreach(), oa.mp_unreach);
                }
                (None, None) => {}
                (va, oa) => prop_assert!(false, "attrs presence diverged: {va:?} vs {oa:?}"),
            }
        }
        (Err(owned), Err(view)) => prop_assert_eq!(view, owned),
        (owned, view) => prop_assert!(
            false,
            "accept/reject diverged: owned {owned:?} vs view {view:?}"
        ),
    }
}

/// Walks `bytes` through the owned and view MRT readers in lockstep,
/// asserting each step yields the same record or the same error — and that
/// both readers poison identically afterwards.
fn assert_stream_parity(bytes: &[u8]) {
    let mut owned = MrtReader::new(bytes);
    let mut view = MrtViewReader::new(bytes);
    loop {
        let owned_step: Result<Option<MrtRecord>, WireError> = owned.next_record();
        let view_step: Result<Option<MrtRecord>, WireError> = match view.advance() {
            Ok(false) => Ok(None),
            Ok(true) => view.view().map(|v| Some(v.to_record())),
            Err(e) => Err(e),
        };
        match (owned_step, view_step) {
            (Ok(Some(a)), Ok(Some(b))) => prop_assert_eq!(a, b),
            (Ok(None), Ok(None)) => return,
            (Err(a), Err(b)) => {
                prop_assert_eq!(a, b);
                // Both must refuse further reads identically.
                prop_assert_eq!(owned.next_record(), Ok(None));
                prop_assert!(matches!(view.advance(), Ok(false)));
                return;
            }
            (a, b) => prop_assert!(false, "stream steps diverged: {a:?} vs {b:?}"),
        }
    }
}

// --- well-formed corpora --------------------------------------------------

proptest! {
    #[test]
    fn view_matches_owned_update_four_octet(msg in update(asn32())) {
        let bytes = msg.encode(AsnEncoding::FourOctet).expect("encodes");
        assert_update_parity(&bytes, AsnEncoding::FourOctet);
    }

    #[test]
    fn view_matches_owned_update_two_octet(msg in update(asn16())) {
        let bytes = msg.encode(AsnEncoding::TwoOctet).expect("encodes");
        assert_update_parity(&bytes, AsnEncoding::TwoOctet);
    }

    #[test]
    fn view_matches_owned_mrt_stream(records in prop::collection::vec(mrt_record(), 1..5)) {
        let mut bytes = Vec::new();
        for record in &records {
            bytes.extend_from_slice(&record.encode().expect("encodes"));
        }
        assert_stream_parity(&bytes);
    }

    /// Encoder-split wire segments (paths past 255 ASNs) re-join through
    /// the view's `to_as_path` exactly as the owned decoder re-joins them,
    /// and the wire-level origin shortcut agrees with the owned origin.
    #[test]
    fn view_rejoins_split_segments(hops in prop::collection::vec(asn32(), 256..700)) {
        let path = AsPath::from_sequence(hops);
        let msg = UpdateMessage {
            withdrawn: Vec::new(),
            attrs: Some(PathAttributes {
                origin: RouteOrigin::Igp,
                as_path: path.clone(),
                next_hop: 0xC0A8_0001,
                local_pref: None,
                communities: Vec::new(),
                mp_reach: None,
                mp_unreach: None,
            }),
            nlri: vec![Ipv4Prefix::new(0x0A00_0000, 8)],
        };
        let bytes = msg.encode(AsnEncoding::FourOctet).expect("under 4096 bytes");
        let view = UpdateView::parse_exact(&bytes, AsnEncoding::FourOctet).expect("parses");
        let va = view.attrs().expect("attrs");
        // More than one raw wire segment, but one logical segment back.
        prop_assert!(va.segments().count() >= 2);
        prop_assert_eq!(va.to_as_path(), path.clone());
        prop_assert_eq!(va.origin_asn(), path.origin());
        assert_update_parity(&bytes, AsnEncoding::FourOctet);
    }

    /// Same for `AS_SET`s past 255 members (set-terminated: origin is None).
    #[test]
    fn view_rejoins_split_sets(set in prop::collection::btree_set(asn32(), 256..450)) {
        let path = AsPath::from_segments([
            AsPathSegment::Sequence(vec![Asn(701)]),
            AsPathSegment::Set(set.into_iter().collect()),
        ]);
        let msg = UpdateMessage {
            withdrawn: Vec::new(),
            attrs: Some(PathAttributes {
                origin: RouteOrigin::Igp,
                as_path: path.clone(),
                next_hop: 0xC0A8_0001,
                local_pref: None,
                communities: Vec::new(),
                mp_reach: None,
                mp_unreach: None,
            }),
            nlri: vec![Ipv4Prefix::new(0x0A00_0000, 8)],
        };
        let bytes = msg.encode(AsnEncoding::FourOctet).expect("under 4096 bytes");
        let view = UpdateView::parse_exact(&bytes, AsnEncoding::FourOctet).expect("parses");
        let va = view.attrs().expect("attrs");
        prop_assert_eq!(va.to_as_path(), path);
        prop_assert_eq!(va.origin_asn(), None);
        assert_update_parity(&bytes, AsnEncoding::FourOctet);
    }

    /// IPv6-only UPDATEs (no IPv4 NLRI, reachability and withdrawals in
    /// the MP attributes) decode identically in both decoders.
    #[test]
    fn view_matches_owned_ipv6_only_update(
        reach in prop_oneof![Just(None), mp_reach().prop_map(Some)],
        unreach in mp_unreach(),
        path in as_path(asn32()),
    ) {
        let msg = UpdateMessage {
            withdrawn: Vec::new(),
            attrs: Some(PathAttributes {
                origin: RouteOrigin::Igp,
                as_path: path,
                next_hop: 0,
                local_pref: None,
                communities: Vec::new(),
                mp_reach: reach,
                mp_unreach: Some(unreach),
            }),
            nlri: Vec::new(),
        };
        let bytes = msg.encode(AsnEncoding::FourOctet).expect("encodes");
        assert_update_parity(&bytes, AsnEncoding::FourOctet);
    }
}

/// An UPDATE whose attribute block has MP_REACH_NLRI but *no* NEXT_HOP —
/// the shape a real IPv6-only speaker sends (RFC 4760 makes NEXT_HOP
/// redundant there). The encoder never produces this, so the wire image is
/// built by hand; both decoders must accept it with the zero stand-in.
#[test]
fn ipv6_update_without_next_hop_decodes_identically() {
    let mut attrs = Vec::new();
    attrs.extend_from_slice(&[0x40, 1, 1, 0]); // ORIGIN: IGP
    attrs.extend_from_slice(&[0x40, 2, 6, 2, 1, 0, 0, 0xFD, 0xE9]); // AS_PATH: seq [65001]
                                                                    // MP_REACH_NLRI: AFI 2, SAFI 1, 16-byte next hop, reserved, ::/0 + 2001:db8::/32
    let mp_body_len = 3 + 1 + 16 + 1 + 1 + 5;
    attrs.extend_from_slice(&[0x80, 14, mp_body_len as u8, 0, 2, 1, 16]);
    attrs.extend_from_slice(&[0x20; 16]);
    attrs.push(0); // reserved
    attrs.push(0); // ::/0
    attrs.extend_from_slice(&[32, 0x20, 0x01, 0x0D, 0xB8]); // 2001:db8::/32
    let mut bytes = vec![0xFF; 16];
    let total = 19 + 2 + 2 + attrs.len();
    bytes.extend_from_slice(&(total as u16).to_be_bytes());
    bytes.push(2); // UPDATE
    bytes.extend_from_slice(&[0, 0]); // no withdrawn routes
    bytes.extend_from_slice(&(attrs.len() as u16).to_be_bytes());
    bytes.extend_from_slice(&attrs);

    let owned = UpdateMessage::decode(&bytes, AsnEncoding::FourOctet).expect("decodes");
    let attrs = owned.attrs.as_ref().expect("attrs");
    assert_eq!(attrs.next_hop, 0);
    let reach = attrs.mp_reach.as_ref().expect("mp_reach");
    assert_eq!(reach.next_hop, vec![0x20; 16]);
    assert_eq!(
        reach.nlri,
        vec![Ipv6Prefix::DEFAULT, Ipv6Prefix::new(0x2001_0DB8 << 96, 32)]
    );
    assert_update_parity(&bytes, AsnEncoding::FourOctet);

    // Strip the MP_REACH attribute: now NEXT_HOP really is missing, and
    // both decoders must say so at the same offset.
    let attrs_no_mp = &bytes[23..23 + 13];
    let mut broken = vec![0xFF; 16];
    let total = 19 + 2 + 2 + attrs_no_mp.len();
    broken.extend_from_slice(&(total as u16).to_be_bytes());
    broken.push(2);
    broken.extend_from_slice(&[0, 0]);
    broken.extend_from_slice(&(attrs_no_mp.len() as u16).to_be_bytes());
    broken.extend_from_slice(attrs_no_mp);
    let owned = UpdateMessage::decode(&broken, AsnEncoding::FourOctet).unwrap_err();
    assert!(matches!(
        owned.kind,
        bgp_wire::WireErrorKind::MissingAttribute("NEXT_HOP")
    ));
    assert_update_parity(&broken, AsnEncoding::FourOctet);
}

// --- corrupted corpora: identical rejection --------------------------------

proptest! {
    /// Every proper prefix of a valid message fails with the identical
    /// error, offset included.
    #[test]
    fn truncated_update_errors_identically(msg in update(asn32()), cut in 0usize..1000) {
        let bytes = msg.encode(AsnEncoding::FourOctet).expect("encodes");
        let cut = cut % bytes.len().max(1);
        assert_update_parity(&bytes[..cut], AsnEncoding::FourOctet);
    }

    /// A single flipped byte either stays decodable (same value) or fails
    /// identically in both decoders.
    #[test]
    fn mutated_update_decodes_identically(
        msg in update(asn32()),
        position in 0usize..1000,
        value in any::<u8>(),
    ) {
        let mut bytes = msg.encode(AsnEncoding::FourOctet).expect("encodes");
        let position = position % bytes.len().max(1);
        bytes[position] = value;
        assert_update_parity(&bytes, AsnEncoding::FourOctet);
    }

    /// Raw garbage is rejected (or, vanishingly rarely, accepted)
    /// identically under both encodings.
    #[test]
    fn garbage_update_decodes_identically(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        assert_update_parity(&bytes, AsnEncoding::FourOctet);
        assert_update_parity(&bytes, AsnEncoding::TwoOctet);
    }

    /// Truncated MRT streams fail framing/parsing at the same step with the
    /// same error.
    #[test]
    fn truncated_mrt_errors_identically(record in mrt_record(), cut in 0usize..4000) {
        let bytes = record.encode().expect("encodes");
        let cut = cut % bytes.len().max(1);
        assert_stream_parity(&bytes[..cut]);
    }

    /// Byte flips anywhere in a multi-record stream — including the framing
    /// header and length fields — keep both readers in lockstep.
    #[test]
    fn mutated_mrt_stream_decodes_identically(
        records in prop::collection::vec(mrt_record(), 1..4),
        position in 0usize..8000,
        value in any::<u8>(),
    ) {
        let mut bytes = Vec::new();
        for record in &records {
            bytes.extend_from_slice(&record.encode().expect("encodes"));
        }
        let position = position % bytes.len().max(1);
        bytes[position] = value;
        assert_stream_parity(&bytes);
    }

    /// Raw garbage streams too.
    #[test]
    fn garbage_mrt_stream_decodes_identically(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        assert_stream_parity(&bytes);
    }
}
