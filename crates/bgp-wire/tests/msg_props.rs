//! Differential property tests for the session-message codecs
//! (OPEN / KEEPALIVE / NOTIFICATION): the zero-copy [`MessageView`] must be
//! observationally identical to the owned [`Message`] decoder — same
//! accepted inputs, same rebuilt values, and the same `WireError` kind
//! **and offset** on every rejected input, including truncations, random
//! byte flips, and raw garbage. The framing walk (`decode_prefix_of` vs
//! `MessageView::parse`) is held in lockstep too, because the session FSM
//! buffers partial frames off exactly those errors.

use bgp_types::{AsPath, Asn, Ipv4Prefix, RouteOrigin};
use bgp_wire::bgp::{AsnEncoding, PathAttributes, UpdateMessage};
use bgp_wire::msg::{encode_keepalive, Capability, Message, NotificationMessage, OpenMessage};
use bgp_wire::{MessageView, WireError, WireErrorKind};
use proptest::prelude::*;

// --- strategies -----------------------------------------------------------

fn asn32() -> impl Strategy<Value = Asn> + Clone {
    (1u32..u32::MAX).prop_map(Asn)
}

fn capability() -> impl Strategy<Value = Capability> {
    prop_oneof![
        Just(Capability::MultiprotocolIpv4Unicast),
        Just(Capability::MultiprotocolIpv6Unicast),
        asn32().prop_map(Capability::FourOctetAs),
        // Codes 1 and 65 with length != 4 are rejected on decode; pick
        // codes the crate does not interpret so `Unknown` round-trips.
        (66u8..255, prop::collection::vec(any::<u8>(), 0..8))
            .prop_map(|(code, data)| Capability::Unknown { code, data }),
    ]
}

fn hold_time() -> impl Strategy<Value = u16> {
    prop_oneof![Just(0u16), 3u16..u16::MAX]
}

fn open() -> impl Strategy<Value = OpenMessage> {
    (
        asn32(),
        hold_time(),
        any::<u32>(),
        prop::collection::vec(capability(), 0..5),
    )
        .prop_map(|(asn, hold_time, bgp_id, capabilities)| OpenMessage {
            asn,
            hold_time,
            bgp_id,
            capabilities,
        })
}

fn notification() -> impl Strategy<Value = NotificationMessage> {
    (
        1u8..=6,
        any::<u8>(),
        prop::collection::vec(any::<u8>(), 0..16),
    )
        .prop_map(|(code, subcode, data)| NotificationMessage {
            code,
            subcode,
            data,
        })
}

fn small_update() -> impl Strategy<Value = UpdateMessage> {
    (asn32(), any::<u32>(), any::<u32>(), 0u8..=32).prop_map(|(asn, next_hop, addr, len)| {
        UpdateMessage {
            withdrawn: Vec::new(),
            attrs: Some(PathAttributes {
                origin: RouteOrigin::Igp,
                as_path: AsPath::from_sequence([asn]),
                next_hop,
                local_pref: None,
                communities: Vec::new(),
                mp_reach: None,
                mp_unreach: None,
            }),
            nlri: vec![Ipv4Prefix::new(addr, len)],
        }
    })
}

fn message() -> impl Strategy<Value = Message> {
    prop_oneof![
        open().prop_map(Message::Open),
        notification().prop_map(Message::Notification),
        Just(Message::Keepalive),
        small_update().prop_map(Message::Update),
    ]
}

// --- differential helpers -------------------------------------------------

/// Decodes `bytes` both ways and asserts observational identity. On
/// accept, every lazy accessor on the typed views is checked against the
/// owned decomposition, not just `to_message`.
fn assert_message_parity(bytes: &[u8], encoding: AsnEncoding) {
    let owned = Message::decode(bytes, encoding);
    let view = MessageView::parse_exact(bytes, encoding);
    match (owned, view) {
        (Ok(owned), Ok(view)) => {
            prop_assert_eq!(view.type_code(), owned.type_code());
            prop_assert_eq!(&view.to_message(), &owned);
            match (&view, &owned) {
                (MessageView::Open(v), Message::Open(o)) => {
                    prop_assert_eq!(v.my_as(), u16::try_from(o.asn.0).unwrap_or(23456));
                    prop_assert_eq!(v.hold_time(), o.hold_time);
                    prop_assert_eq!(v.bgp_id(), o.bgp_id);
                    prop_assert_eq!(v.effective_asn(), o.effective_asn());
                    let caps: Vec<Capability> = v.capabilities().collect();
                    prop_assert_eq!(&caps, &o.capabilities);
                }
                (MessageView::Notification(v), Message::Notification(o)) => {
                    prop_assert_eq!(v.code(), o.code);
                    prop_assert_eq!(v.subcode(), o.subcode);
                    prop_assert_eq!(v.data(), &o.data[..]);
                }
                (MessageView::Update(_), Message::Update(_))
                | (MessageView::Keepalive, Message::Keepalive) => {}
                (v, o) => prop_assert!(false, "variant diverged: {v:?} vs {o:?}"),
            }
        }
        (Err(owned), Err(view)) => prop_assert_eq!(view, owned),
        (owned, view) => prop_assert!(
            false,
            "accept/reject diverged: owned {owned:?} vs view {view:?}"
        ),
    }
}

/// Walks a concatenated byte stream through `Message::decode_prefix_of`
/// and `MessageView::parse` in lockstep — same messages, same consumed
/// lengths, same error (`Truncated` from both means "keep buffering").
fn assert_frame_parity(bytes: &[u8], encoding: AsnEncoding) {
    let mut pos = 0usize;
    loop {
        if pos == bytes.len() {
            return;
        }
        let rest = &bytes[pos..];
        let owned: Result<(Message, usize), WireError> = Message::decode_prefix_of(rest, encoding);
        let view = MessageView::parse(rest, encoding);
        match (owned, view) {
            (Ok((o, used_o)), Ok((v, used_v))) => {
                prop_assert_eq!(used_o, used_v);
                prop_assert_eq!(&v.to_message(), &o);
                pos += used_o;
            }
            (Err(o), Err(v)) => {
                prop_assert_eq!(&v, &o);
                return;
            }
            (o, v) => prop_assert!(false, "frame steps diverged: {o:?} vs {v:?}"),
        }
    }
}

// --- well-formed corpora --------------------------------------------------

proptest! {
    #[test]
    fn view_matches_owned_message(msg in message()) {
        let bytes = msg.encode(AsnEncoding::FourOctet).expect("encodes");
        assert_message_parity(&bytes, AsnEncoding::FourOctet);
    }

    #[test]
    fn view_matches_owned_frame_stream(msgs in prop::collection::vec(message(), 1..5)) {
        let mut bytes = Vec::new();
        for msg in &msgs {
            bytes.extend_from_slice(&msg.encode(AsnEncoding::FourOctet).expect("encodes"));
        }
        assert_frame_parity(&bytes, AsnEncoding::FourOctet);
    }

    /// A 4-byte-ASN OPEN puts AS_TRANS on the wire and recovers the real
    /// ASN through the capability, identically in both decoders.
    #[test]
    fn four_octet_asn_survives_as_trans(asn in (1u32 << 16..u32::MAX).prop_map(Asn)) {
        let open = OpenMessage::new(asn, 90, 0x0A00_0001);
        let bytes = open.encode().expect("encodes");
        let owned = Message::decode(&bytes, AsnEncoding::FourOctet).expect("decodes");
        let Message::Open(owned) = owned else { panic!("not an OPEN") };
        prop_assert_eq!(owned.asn, Asn(23456));
        prop_assert_eq!(owned.effective_asn(), asn);
        let view = MessageView::parse_exact(&bytes, AsnEncoding::FourOctet).expect("parses");
        let MessageView::Open(view) = view else { panic!("not an OPEN") };
        prop_assert_eq!(view.effective_asn(), asn);
    }
}

// --- corrupted corpora: identical rejection --------------------------------

proptest! {
    /// Every proper prefix of a valid message fails (or, for frame-level
    /// truncation, buffers) identically in both decoders.
    #[test]
    fn truncated_message_errors_identically(msg in message(), cut in 0usize..5000) {
        let bytes = msg.encode(AsnEncoding::FourOctet).expect("encodes");
        let cut = cut % bytes.len().max(1);
        assert_message_parity(&bytes[..cut], AsnEncoding::FourOctet);
        assert_frame_parity(&bytes[..cut], AsnEncoding::FourOctet);
    }

    /// A single flipped byte either stays decodable (same value) or fails
    /// identically in both decoders.
    #[test]
    fn mutated_message_decodes_identically(
        msg in message(),
        position in 0usize..5000,
        value in any::<u8>(),
    ) {
        let mut bytes = msg.encode(AsnEncoding::FourOctet).expect("encodes");
        let position = position % bytes.len().max(1);
        bytes[position] = value;
        assert_message_parity(&bytes, AsnEncoding::FourOctet);
    }

    /// Raw garbage is rejected (or, vanishingly rarely, accepted)
    /// identically under both encodings.
    #[test]
    fn garbage_message_decodes_identically(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        assert_message_parity(&bytes, AsnEncoding::FourOctet);
        assert_message_parity(&bytes, AsnEncoding::TwoOctet);
        assert_frame_parity(&bytes, AsnEncoding::FourOctet);
    }
}

// --- targeted rejections ---------------------------------------------------

#[test]
fn keepalive_is_nineteen_bytes_and_parses_both_ways() {
    let bytes = encode_keepalive();
    assert_eq!(bytes.len(), 19);
    let owned = Message::decode(&bytes, AsnEncoding::FourOctet).expect("decodes");
    assert_eq!(owned, Message::Keepalive);
    let view = MessageView::parse_exact(&bytes, AsnEncoding::FourOctet).expect("parses");
    assert!(matches!(view, MessageView::Keepalive));
}

#[test]
fn bad_hold_time_rejected_identically() {
    for hold in [1u16, 2] {
        let mut open = OpenMessage::new(Asn(64512), 90, 1);
        open.hold_time = hold;
        // The encoder refuses; build the bytes by patching a valid OPEN.
        let mut bytes = OpenMessage::new(Asn(64512), 90, 1)
            .encode()
            .expect("encodes");
        bytes[22..24].copy_from_slice(&hold.to_be_bytes());
        let owned = Message::decode(&bytes, AsnEncoding::FourOctet).unwrap_err();
        let view = MessageView::parse_exact(&bytes, AsnEncoding::FourOctet).unwrap_err();
        assert_eq!(owned, view);
        assert!(matches!(owned.kind, WireErrorKind::BadHoldTime(h) if h == hold));
    }
}

#[test]
fn bad_version_rejected_identically() {
    let mut bytes = OpenMessage::new(Asn(64512), 90, 1)
        .encode()
        .expect("encodes");
    bytes[19] = 3; // BGP-3 speaker
    let owned = Message::decode(&bytes, AsnEncoding::FourOctet).unwrap_err();
    let view = MessageView::parse_exact(&bytes, AsnEncoding::FourOctet).unwrap_err();
    assert_eq!(owned, view);
    assert!(matches!(owned.kind, WireErrorKind::BadVersion(3)));
}

#[test]
fn bad_notification_code_rejected_identically() {
    for code in [0u8, 7, 255] {
        let mut bytes = NotificationMessage::cease().encode().expect("encodes");
        bytes[19] = code;
        let owned = Message::decode(&bytes, AsnEncoding::FourOctet).unwrap_err();
        let view = MessageView::parse_exact(&bytes, AsnEncoding::FourOctet).unwrap_err();
        assert_eq!(owned, view);
        assert!(matches!(owned.kind, WireErrorKind::BadNotificationCode(c) if c == code));
    }
}
