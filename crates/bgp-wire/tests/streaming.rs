//! Streaming-import behavior: `DailyDumpStream` yields the same per-day
//! picture as the whole-archive importer, and its working set is bounded by
//! the largest day — not the archive length.

use std::io::{self, Read};

use bgp_types::{AsPath, Asn, Ipv4Prefix, Route};
use bgp_wire::bgp::PathAttributes;
use bgp_wire::mrt::{
    MrtBody, MrtRecord, MrtWriter, PeerEntry, PeerIndexTable, RibEntry, RibIpv4Unicast,
};
use bgp_wire::{day_to_timestamp, import_table_dumps, DailyDumpStream};
use route_measurement::{origin_events, OriginEventTracker};

/// Two peers, as a real collector would have several.
fn table_record(day: u32) -> MrtRecord {
    let peers = [Asn(701), Asn(1239)]
        .into_iter()
        .map(|asn| PeerEntry {
            bgp_id: asn.0,
            addr: asn.0,
            asn,
        })
        .collect();
    MrtRecord {
        timestamp: day_to_timestamp(day),
        body: MrtBody::PeerIndexTable(PeerIndexTable {
            collector_id: 0,
            view_name: String::from("stream-test"),
            peers,
        }),
    }
}

/// One RIB record for prefix `i`: every prefix has a steady origin, and
/// every third prefix gains a second origin (a MOAS case) that rotates with
/// the day so consecutive days differ.
fn rib_record(day: u32, i: u32) -> MrtRecord {
    let prefix = Ipv4Prefix::new((10 << 24) | (i << 8), 24);
    let mut entries = Vec::new();
    let mut push = |origin: Asn| {
        entries.push(RibEntry {
            peer_index: (entries.len() % 2) as u16,
            originated_time: day_to_timestamp(day),
            attrs: PathAttributes::from_route(&Route::new(
                prefix,
                AsPath::from_sequence([Asn(701), origin]),
            )),
        });
    };
    push(Asn(1000 + i));
    if i.is_multiple_of(3) {
        push(Asn(8584 + (day + i) % 2));
    }
    MrtRecord {
        timestamp: day_to_timestamp(day),
        body: MrtBody::RibIpv4Unicast(RibIpv4Unicast {
            sequence: i,
            prefix,
            entries,
        }),
    }
}

/// Encodes one day of the synthetic archive.
fn day_bytes(day: u32, prefixes: u32) -> Vec<u8> {
    let mut writer = MrtWriter::new(Vec::new());
    writer.write_record(&table_record(day)).unwrap();
    for i in 0..prefixes {
        writer.write_record(&rib_record(day, i)).unwrap();
    }
    writer.finish().unwrap()
}

/// Synthesizes an N-day archive one day at a time, so even the MRT bytes
/// never exist in memory all at once.
struct ArchiveGenerator {
    days: u32,
    prefixes_per_day: u32,
    next_day: u32,
    buf: Vec<u8>,
    pos: usize,
}

impl ArchiveGenerator {
    fn new(days: u32, prefixes_per_day: u32) -> Self {
        ArchiveGenerator {
            days,
            prefixes_per_day,
            next_day: 0,
            buf: Vec::new(),
            pos: 0,
        }
    }
}

impl Read for ArchiveGenerator {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if self.pos == self.buf.len() {
            if self.next_day >= self.days {
                return Ok(0);
            }
            self.buf = day_bytes(self.next_day, self.prefixes_per_day);
            self.pos = 0;
            self.next_day += 1;
        }
        let n = out.len().min(self.buf.len() - self.pos);
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[test]
fn streaming_matches_in_memory_per_day() {
    const DAYS: u32 = 6;
    const PREFIXES: u32 = 40;
    let mut bytes = Vec::new();
    for day in 0..DAYS {
        bytes.extend_from_slice(&day_bytes(day, PREFIXES));
    }

    let in_memory = import_table_dumps(bytes.as_slice()).unwrap();
    let streamed: Vec<_> = DailyDumpStream::new(bytes.as_slice())
        .collect::<Result<Vec<_>, _>>()
        .unwrap();

    assert_eq!(in_memory.dumps.len(), DAYS as usize);
    assert_eq!(streamed.len(), DAYS as usize);
    for (batch, day) in in_memory.dumps.iter().zip(&streamed) {
        assert_eq!(batch.day(), day.day);
        assert_eq!(batch.prefix_count(), day.dump.prefix_count());
        assert_eq!(batch.moas_count(), day.dump.moas_count());
        assert!(day.dump.moas_count() > 0, "synthetic days carry MOAS");
    }
    let total_entries: usize = streamed.iter().map(|d| d.rib_entries).sum();
    assert_eq!(total_entries, in_memory.routes.len());
}

#[test]
fn streaming_origin_events_match_batch() {
    const DAYS: u32 = 5;
    let mut bytes = Vec::new();
    for day in 0..DAYS {
        bytes.extend_from_slice(&day_bytes(day, 30));
    }

    let in_memory = import_table_dumps(bytes.as_slice()).unwrap();
    let batch_events = origin_events(&in_memory.dumps);

    let mut tracker = OriginEventTracker::new();
    let mut streamed_events = Vec::new();
    for day in DailyDumpStream::new(bytes.as_slice()) {
        tracker.advance(&day.unwrap().dump, &mut streamed_events);
    }
    assert_eq!(streamed_events, batch_events);
    assert!(!streamed_events.is_empty());
}

#[test]
fn working_set_is_bounded_by_largest_day() {
    // 16 days, each ~333 entries: the archive is 16x the per-day working
    // set (comfortably past the 4x the acceptance bar asks for).
    const DAYS: u32 = 16;
    const PREFIXES: u32 = 250;
    let mut stream = DailyDumpStream::new(ArchiveGenerator::new(DAYS, PREFIXES));

    let mut days = 0u32;
    let mut total_entries = 0usize;
    let mut max_day_entries = 0usize;
    while let Some(day) = stream.next_day().unwrap() {
        assert!(
            day.routes.is_empty(),
            "routes are not collected unless asked for"
        );
        days += 1;
        total_entries += day.rib_entries;
        max_day_entries = max_day_entries.max(day.rib_entries);
    }

    assert_eq!(days, DAYS);
    assert_eq!(stream.peak_day_entries(), max_day_entries);
    assert!(
        total_entries >= 4 * stream.peak_day_entries(),
        "archive ({total_entries} entries) must dwarf the working set ({})",
        stream.peak_day_entries()
    );
}

#[test]
fn unordered_archives_merge_per_day_in_memory() {
    // Interleave two groups of the same day: the stream yields two groups,
    // the in-memory importer merges them into one dump.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&day_bytes(0, 10));
    bytes.extend_from_slice(&day_bytes(1, 10));
    bytes.extend_from_slice(&day_bytes(0, 20));

    let streamed: Vec<_> = DailyDumpStream::new(bytes.as_slice())
        .collect::<Result<Vec<_>, _>>()
        .unwrap();
    assert_eq!(
        streamed.iter().map(|d| d.day).collect::<Vec<_>>(),
        vec![0, 1, 0]
    );

    let in_memory = import_table_dumps(bytes.as_slice()).unwrap();
    let days: Vec<u32> = in_memory.dumps.iter().map(|d| d.day()).collect();
    assert_eq!(days, vec![0, 1]);
    assert_eq!(in_memory.dumps[0].prefix_count(), 20);
}
