//! AS-level BGP protocol engine.
//!
//! This crate plays the role of the modified SSFnet BGP simulator the paper
//! used for its evaluation (§5.1): every node is one autonomous system
//! speaking BGP to its peers, with per-peer Adj-RIB-In tables, a
//! deterministic decision process (highest `LOCAL_PREF`, then shortest AS
//! path, then lowest peer ASN), AS-path loop suppression, split-horizon
//! advertisement, and event-driven propagation over a [`sim_engine`]
//! discrete-event queue with per-link delays.
//!
//! Route validation — the paper's MOAS-list checking — plugs in through the
//! [`RouteMonitor`] trait, which sees every import and export. The `moas-core`
//! crate provides the paper's monitor; [`NoopMonitor`] gives the "Normal BGP"
//! baseline.
//!
//! # Example
//!
//! ```
//! use as_topology::{AsGraph, AsRole};
//! use bgp_engine::Network;
//! use bgp_types::Asn;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Figure 1: AS 4 originates 208.8.0.0/16 toward AS Y (=2) and AS Z (=3),
//! // which both serve AS X (=1).
//! let mut g = AsGraph::new();
//! g.add_as(Asn(4), AsRole::Stub);
//! for t in [1, 2, 3] { g.add_as(Asn(t), AsRole::Transit); }
//! g.add_link(Asn(4), Asn(2));
//! g.add_link(Asn(4), Asn(3));
//! g.add_link(Asn(2), Asn(1));
//! g.add_link(Asn(3), Asn(1));
//!
//! let mut net = Network::new(&g);
//! net.originate(Asn(4), "208.8.0.0/16".parse()?, None);
//! net.run()?;
//!
//! // AS X picked one of the two equal-length paths; both originate at AS 4.
//! assert_eq!(net.best_origin(Asn(1), "208.8.0.0/16".parse()?), Some(Asn(4)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod error;
mod fault;
mod forwarding;
mod monitor;
mod network;
mod policy;
mod router;
mod sharded;
mod update;
mod valley_free;

pub use error::{ConvergenceError, FaultPlanError, UnknownAsError};
pub use fault::{FaultEvent, NetFaultPlan};
pub use forwarding::{ForwardOutcome, ForwardingPlane};
pub use monitor::{ExportAction, ImportContext, ImportDecision, NoopMonitor, RouteMonitor};
pub use network::{Network, NetworkStats, SessionCounters};
pub use policy::{CommunityPolicies, CommunityPolicy, CommunityPolicyMap, REWRITE_MARKER_VALUE};
pub use router::Router;
pub use sharded::ShardedNetwork;
pub use update::SharedUpdate;
pub use valley_free::ValleyFree;
