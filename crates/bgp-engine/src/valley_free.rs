//! Valley-free (Gao-Rexford) export policy as a composable monitor.

use as_topology::{AsRelationships, Relationship};
use bgp_types::{Asn, Ipv4Prefix, Route};
use sim_engine::SimTime;

use crate::monitor::{ExportAction, ImportContext, ImportDecision, NoopMonitor, RouteMonitor};

/// Wraps another monitor with the Gao-Rexford export rule:
///
/// * routes learned from a **customer** (or originated locally) are exported
///   to everyone;
/// * routes learned from a **peer or provider** are exported only to
///   customers.
///
/// Links with no relationship annotation are treated permissively (exported),
/// so a partially annotated topology degrades toward the paper's
/// policy-free model rather than partitioning.
///
/// The wrapped monitor's `on_import` runs unchanged, and its `on_export` runs
/// after the policy check, so `ValleyFree<MoasMonitor<_>>` evaluates the
/// MOAS mechanism under policy routing — the realism ablation the paper
/// leaves to future work.
///
/// # Example
///
/// ```
/// use as_topology::{AsGraph, AsRole, AsRelationships};
/// use bgp_engine::{Network, ValleyFree};
/// use bgp_types::Asn;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // AS 1 and AS 2 are peers; each has a customer (3 and 4).
/// let mut g = AsGraph::new();
/// for t in [1, 2] { g.add_as(Asn(t), AsRole::Transit); }
/// for s in [3, 4] { g.add_as(Asn(s), AsRole::Stub); }
/// g.add_link(Asn(1), Asn(2));
/// g.add_link(Asn(1), Asn(3));
/// g.add_link(Asn(2), Asn(4));
///
/// let mut rels = AsRelationships::new();
/// rels.add_peer(Asn(1), Asn(2));
/// rels.add_transit(Asn(1), Asn(3));
/// rels.add_transit(Asn(2), Asn(4));
///
/// let prefix = "208.8.0.0/16".parse()?;
/// let mut net = Network::with_monitor(&g, ValleyFree::new(rels));
/// net.originate(Asn(3), prefix, None);
/// net.run()?;
///
/// // Customer routes go everywhere: AS 4 hears it through the peering.
/// assert_eq!(net.best_origin(Asn(4), prefix), Some(Asn(3)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ValleyFree<M = NoopMonitor> {
    relationships: AsRelationships,
    inner: M,
    suppressed: u64,
}

impl ValleyFree<NoopMonitor> {
    /// Valley-free policy over plain BGP.
    #[must_use]
    pub fn new(relationships: AsRelationships) -> Self {
        ValleyFree::wrapping(relationships, NoopMonitor)
    }
}

impl<M: RouteMonitor> ValleyFree<M> {
    /// Valley-free policy applied before `inner`'s export hook.
    #[must_use]
    pub fn wrapping(relationships: AsRelationships, inner: M) -> Self {
        ValleyFree {
            relationships,
            inner,
            suppressed: 0,
        }
    }

    /// The wrapped monitor.
    #[must_use]
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Mutable access to the wrapped monitor.
    #[must_use]
    pub fn inner_mut(&mut self) -> &mut M {
        &mut self.inner
    }

    /// The relationship annotations in force.
    #[must_use]
    pub fn relationships(&self) -> &AsRelationships {
        &self.relationships
    }

    /// Number of advertisements the policy suppressed.
    #[must_use]
    pub fn suppressed_count(&self) -> u64 {
        self.suppressed
    }

    /// The Gao-Rexford rule for one (learned-from, to-peer) pair at `local`.
    fn permits(&self, local: Asn, to_peer: Asn, learned_from: Option<Asn>) -> bool {
        let Some(from) = learned_from else {
            return true; // locally originated: export to everyone
        };
        match self.relationships.relationship(local, from) {
            // Learned from a customer: export to everyone.
            Some(Relationship::Customer) => true,
            // Learned from peer/provider: only to customers.
            Some(Relationship::Peer) | Some(Relationship::Provider) => matches!(
                self.relationships.relationship(local, to_peer),
                Some(Relationship::Customer) | None
            ),
            // Unannotated ingress link: permissive.
            None => true,
        }
    }
}

impl<M: RouteMonitor> RouteMonitor for ValleyFree<M> {
    fn on_import(&mut self, ctx: &ImportContext<'_>) -> ImportDecision {
        self.inner.on_import(ctx)
    }

    fn on_export(
        &mut self,
        local: Asn,
        to_peer: Asn,
        learned_from: Option<Asn>,
        route: &Route,
    ) -> ExportAction {
        if !self.permits(local, to_peer, learned_from) {
            self.suppressed += 1;
            return ExportAction::Suppress;
        }
        self.inner.on_export(local, to_peer, learned_from, route)
    }

    fn on_withdraw(&mut self, local: Asn, from_peer: Asn, prefix: Ipv4Prefix) {
        self.inner.on_withdraw(local, from_peer, prefix);
    }

    fn on_clock(&mut self, now: SimTime) {
        self.inner.on_clock(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use as_topology::{AsGraph, AsRole};
    use bgp_types::Ipv4Prefix;

    fn p() -> Ipv4Prefix {
        "208.8.0.0/16".parse().unwrap()
    }

    /// Two providers (1, 2) peering; stubs 3 (customer of 1) and 4 (customer
    /// of 2); plus provider 5 peering with both 1 and 2, with customer 6.
    fn policy_world() -> (AsGraph, AsRelationships) {
        let mut g = AsGraph::new();
        for t in [1, 2, 5] {
            g.add_as(Asn(t), AsRole::Transit);
        }
        for s in [3, 4, 6] {
            g.add_as(Asn(s), AsRole::Stub);
        }
        for (a, b) in [(1, 2), (1, 5), (2, 5), (1, 3), (2, 4), (5, 6)] {
            g.add_link(Asn(a), Asn(b));
        }
        let mut rels = AsRelationships::new();
        rels.add_peer(Asn(1), Asn(2));
        rels.add_peer(Asn(1), Asn(5));
        rels.add_peer(Asn(2), Asn(5));
        rels.add_transit(Asn(1), Asn(3));
        rels.add_transit(Asn(2), Asn(4));
        rels.add_transit(Asn(5), Asn(6));
        (g, rels)
    }

    #[test]
    fn customer_routes_reach_everyone() {
        let (g, rels) = policy_world();
        let mut net = Network::with_monitor(&g, ValleyFree::new(rels));
        net.originate(Asn(3), p(), None);
        net.run().unwrap();
        for asn in [1, 2, 4, 5, 6] {
            assert_eq!(net.best_origin(Asn(asn), p()), Some(Asn(3)), "AS {asn}");
        }
    }

    #[test]
    fn peer_routes_are_not_re_exported_to_peers() {
        // Route originated by peer AS 2 itself: AS 1 learns it over the
        // peering and must NOT hand it to its other peer AS 5 — but AS 5
        // peers with AS 2 directly, so it still gets the route first-hand.
        // The observable policy effect: AS 1 never advertises it to AS 5,
        // so the suppression counter rises while reachability is preserved
        // by the direct peering mesh.
        let (g, rels) = policy_world();
        let mut net = Network::with_monitor(&g, ValleyFree::new(rels));
        net.originate(Asn(2), p(), None);
        net.run().unwrap();
        assert!(net.monitor().suppressed_count() > 0);
        for asn in [1, 3, 4, 5, 6] {
            assert_eq!(net.best_origin(Asn(asn), p()), Some(Asn(2)), "AS {asn}");
        }
        // AS 5's route came over its own peering with AS 2, not via AS 1.
        assert_eq!(
            net.router(Asn(5)).unwrap().best_learned_from(p()),
            Some(Asn(2))
        );
    }

    #[test]
    fn valley_paths_are_eliminated() {
        // Cut the 2-5 peering: AS 5 can now only reach AS 4's prefix through
        // a valley (up to peer 1, across to peer 2? no — 1 learned it from
        // peer 2 and must not export to peer 5). AS 5 and its customer 6
        // remain without a route: the classic valley-free reachability gap.
        let (mut g, rels) = policy_world();
        g.remove_link(Asn(2), Asn(5));
        let mut net = Network::with_monitor(&g, ValleyFree::new(rels));
        net.originate(Asn(4), p(), None);
        net.run().unwrap();
        assert_eq!(net.best_origin(Asn(2), p()), Some(Asn(4)));
        assert_eq!(net.best_origin(Asn(1), p()), Some(Asn(4)));
        assert!(
            net.best_route(Asn(5), p()).is_none(),
            "valley route leaked to AS 5"
        );
        assert!(
            net.best_route(Asn(6), p()).is_none(),
            "valley route leaked to AS 6"
        );
    }

    #[test]
    fn unannotated_links_stay_permissive() {
        let (g, _) = policy_world();
        let mut net = Network::with_monitor(&g, ValleyFree::new(AsRelationships::new()));
        net.originate(Asn(4), p(), None);
        net.run().unwrap();
        for asn in [1, 2, 3, 5, 6] {
            assert_eq!(net.best_origin(Asn(asn), p()), Some(Asn(4)), "AS {asn}");
        }
        assert_eq!(net.monitor().suppressed_count(), 0);
    }

    #[test]
    fn wrapping_preserves_inner_monitor_behaviour() {
        struct CountImports(u64);
        impl RouteMonitor for CountImports {
            fn on_import(&mut self, _ctx: &ImportContext<'_>) -> ImportDecision {
                self.0 += 1;
                ImportDecision::accept()
            }
        }
        let (g, rels) = policy_world();
        let mut net = Network::with_monitor(&g, ValleyFree::wrapping(rels, CountImports(0)));
        net.originate(Asn(3), p(), None);
        net.run().unwrap();
        assert!(net.monitor().inner().0 > 0);
    }
}
