//! Per-AS community-handling policies as a composable monitor.
//!
//! Krenc et al. ("Keep your Communities Clean") measured that community
//! attributes are not transparently transitive in practice: some ASes
//! propagate them, some strip everything, some strip selectively, and some
//! rewrite the set with their own markers. The original reproduction modelled
//! only a binary "stripper" set (drop MOAS markers on export, §4.3); this
//! module generalizes that to a per-AS [`CommunityPolicy`] class applied at
//! export time by the [`CommunityPolicies`] wrapper monitor. The legacy
//! stripper behaviour is exactly the [`CommunityPolicy::StripMoas`] class.

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

use bgp_types::{Asn, Community, Ipv4Prefix, Route};
use sim_engine::SimTime;

use crate::monitor::{ExportAction, ImportContext, ImportDecision, RouteMonitor};

/// The value half of the marker community a [`CommunityPolicy::Rewrite`] AS
/// attaches in place of the communities it removed (`"RW"` in ASCII, chosen
/// the same way as the MOAS-list marker `"ML"`). It is deliberately not
/// [`bgp_types::MOAS_LIST_VALUE`], so a rewritten route carries no MOAS list.
pub const REWRITE_MARKER_VALUE: u16 = 0x5257;

/// How one AS handles community attributes on routes it exports — the
/// Krenc et al. behaviour classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum CommunityPolicy {
    /// Forward every community untouched (transparent transit; the default).
    #[default]
    Propagate,
    /// Remove only MOAS-list marker communities — the legacy binary
    /// "stripper" of §4.3, kept as its own class.
    StripMoas,
    /// Remove every community attribute on export.
    StripAll,
    /// Replace the community set with a single local marker community
    /// `(local AS : RW)` — the "informational rewrite" class.
    Rewrite,
}

impl CommunityPolicy {
    /// Every policy class, in display order.
    pub const ALL: [CommunityPolicy; 4] = [
        CommunityPolicy::Propagate,
        CommunityPolicy::StripMoas,
        CommunityPolicy::StripAll,
        CommunityPolicy::Rewrite,
    ];

    /// Applies the policy at `local` to an outbound route. Returns `None`
    /// when the route is unaffected (the zero-copy fast path), or the
    /// modified route to send instead.
    #[must_use]
    pub fn apply(self, local: Asn, route: &Route) -> Option<Route> {
        match self {
            CommunityPolicy::Propagate => None,
            CommunityPolicy::StripMoas => route.moas_list().is_some().then(|| {
                let mut stripped = route.clone();
                stripped.set_moas_list(None);
                stripped
            }),
            CommunityPolicy::StripAll => (!route.communities().is_empty()).then(|| {
                let mut stripped = route.clone();
                stripped.set_communities(Vec::new());
                stripped
            }),
            CommunityPolicy::Rewrite => (!route.communities().is_empty()).then(|| {
                let mut rewritten = route.clone();
                rewritten.set_communities(vec![Community::new(local, REWRITE_MARKER_VALUE)]);
                rewritten
            }),
        }
    }
}

impl fmt::Display for CommunityPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CommunityPolicy::Propagate => "propagate",
            CommunityPolicy::StripMoas => "strip-moas",
            CommunityPolicy::StripAll => "strip-all",
            CommunityPolicy::Rewrite => "rewrite",
        })
    }
}

impl FromStr for CommunityPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "propagate" => Ok(CommunityPolicy::Propagate),
            "strip-moas" => Ok(CommunityPolicy::StripMoas),
            "strip-all" => Ok(CommunityPolicy::StripAll),
            "rewrite" => Ok(CommunityPolicy::Rewrite),
            other => Err(format!(
                "unknown community policy '{other}' \
                 (expected propagate|strip-moas|strip-all|rewrite)"
            )),
        }
    }
}

/// Per-AS assignment of [`CommunityPolicy`] classes. ASes without an entry
/// default to [`CommunityPolicy::Propagate`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommunityPolicyMap {
    policies: BTreeMap<Asn, CommunityPolicy>,
}

impl CommunityPolicyMap {
    /// An empty map: every AS propagates.
    #[must_use]
    pub fn new() -> Self {
        CommunityPolicyMap::default()
    }

    /// The legacy binary-stripper configuration: every AS in `strippers`
    /// gets [`CommunityPolicy::StripMoas`], everyone else propagates.
    #[must_use]
    pub fn from_strippers<I: IntoIterator<Item = Asn>>(strippers: I) -> Self {
        let mut map = CommunityPolicyMap::new();
        for asn in strippers {
            map.set(asn, CommunityPolicy::StripMoas);
        }
        map
    }

    /// Assigns a policy class to one AS. [`CommunityPolicy::Propagate`]
    /// removes the entry (it is the default anyway), keeping the map minimal.
    pub fn set(&mut self, asn: Asn, policy: CommunityPolicy) {
        if policy == CommunityPolicy::Propagate {
            self.policies.remove(&asn);
        } else {
            self.policies.insert(asn, policy);
        }
    }

    /// The policy class in force at `asn`.
    #[must_use]
    pub fn policy_of(&self, asn: Asn) -> CommunityPolicy {
        self.policies.get(&asn).copied().unwrap_or_default()
    }

    /// Number of ASes with a non-default policy.
    #[must_use]
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// `true` when every AS propagates.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }

    /// Iterates the non-default assignments in ASN order.
    pub fn iter(&self) -> impl Iterator<Item = (Asn, CommunityPolicy)> + '_ {
        self.policies.iter().map(|(&asn, &policy)| (asn, policy))
    }
}

/// Wraps another monitor with per-AS community-handling policies applied at
/// export, *before* the inner monitor sees the route — exactly where a real
/// router's outbound policy runs. `CommunityPolicies<MoasMonitor<_>>`
/// evaluates the MOAS mechanism under realistic community weather.
#[derive(Debug, Clone)]
pub struct CommunityPolicies<M> {
    map: CommunityPolicyMap,
    inner: M,
    modified: u64,
}

impl<M: RouteMonitor> CommunityPolicies<M> {
    /// Applies `map` before `inner`'s export hook.
    #[must_use]
    pub fn wrapping(map: CommunityPolicyMap, inner: M) -> Self {
        CommunityPolicies {
            map,
            inner,
            modified: 0,
        }
    }

    /// The wrapped monitor.
    #[must_use]
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Mutable access to the wrapped monitor.
    #[must_use]
    pub fn inner_mut(&mut self) -> &mut M {
        &mut self.inner
    }

    /// The policy assignment in force.
    #[must_use]
    pub fn map(&self) -> &CommunityPolicyMap {
        &self.map
    }

    /// Number of exports the policies modified (stripped or rewritten).
    #[must_use]
    pub fn modified_count(&self) -> u64 {
        self.modified
    }
}

impl<M: RouteMonitor> RouteMonitor for CommunityPolicies<M> {
    fn on_import(&mut self, ctx: &ImportContext<'_>) -> ImportDecision {
        self.inner.on_import(ctx)
    }

    fn on_export(
        &mut self,
        local: Asn,
        to_peer: Asn,
        learned_from: Option<Asn>,
        route: &Route,
    ) -> ExportAction {
        match self.map.policy_of(local).apply(local, route) {
            None => self.inner.on_export(local, to_peer, learned_from, route),
            Some(modified) => {
                self.modified += 1;
                // The inner monitor must see (and may further replace) the
                // policy-modified route, never the original.
                match self
                    .inner
                    .on_export(local, to_peer, learned_from, &modified)
                {
                    ExportAction::Forward => ExportAction::Replace(modified),
                    other => other,
                }
            }
        }
    }

    fn on_withdraw(&mut self, local: Asn, from_peer: Asn, prefix: Ipv4Prefix) {
        self.inner.on_withdraw(local, from_peer, prefix);
    }

    fn on_clock(&mut self, now: SimTime) {
        self.inner.on_clock(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::NoopMonitor;
    use bgp_types::{AsPath, Ipv4Prefix, MoasList};

    fn p() -> Ipv4Prefix {
        "208.8.0.0/16".parse().unwrap()
    }

    fn listed_route() -> Route {
        Route::new(p(), AsPath::origination(Asn(4)))
            .with_community(Community::new(Asn(701), 120))
            .with_moas_list([Asn(4), Asn(226)].into_iter().collect::<MoasList>())
    }

    #[test]
    fn propagate_leaves_routes_untouched() {
        let r = listed_route();
        assert_eq!(CommunityPolicy::Propagate.apply(Asn(9), &r), None);
    }

    #[test]
    fn strip_moas_matches_legacy_stripper_semantics() {
        let r = listed_route();
        let stripped = CommunityPolicy::StripMoas.apply(Asn(9), &r).unwrap();
        assert!(stripped.moas_list().is_none());
        assert_eq!(stripped.communities(), &[Community::new(Asn(701), 120)]);
        // No list attached: nothing to strip, fast path.
        let bare = Route::new(p(), AsPath::origination(Asn(4)));
        assert_eq!(CommunityPolicy::StripMoas.apply(Asn(9), &bare), None);
    }

    #[test]
    fn strip_all_clears_every_community() {
        let r = listed_route();
        let stripped = CommunityPolicy::StripAll.apply(Asn(9), &r).unwrap();
        assert!(stripped.communities().is_empty());
        let bare = Route::new(p(), AsPath::origination(Asn(4)));
        assert_eq!(CommunityPolicy::StripAll.apply(Asn(9), &bare), None);
    }

    #[test]
    fn rewrite_replaces_set_with_local_marker() {
        let r = listed_route();
        let rewritten = CommunityPolicy::Rewrite.apply(Asn(9), &r).unwrap();
        assert_eq!(
            rewritten.communities(),
            &[Community::new(Asn(9), REWRITE_MARKER_VALUE)]
        );
        assert!(rewritten.moas_list().is_none(), "marker is not a MOAS list");
    }

    #[test]
    fn policy_parsing_round_trips() {
        for policy in CommunityPolicy::ALL {
            assert_eq!(policy.to_string().parse::<CommunityPolicy>(), Ok(policy));
        }
        assert!("mangle".parse::<CommunityPolicy>().is_err());
    }

    #[test]
    fn map_defaults_to_propagate_and_drops_default_entries() {
        let mut map = CommunityPolicyMap::new();
        assert!(map.is_empty());
        map.set(Asn(7), CommunityPolicy::StripAll);
        assert_eq!(map.policy_of(Asn(7)), CommunityPolicy::StripAll);
        assert_eq!(map.policy_of(Asn(8)), CommunityPolicy::Propagate);
        assert_eq!(map.len(), 1);
        map.set(Asn(7), CommunityPolicy::Propagate);
        assert!(map.is_empty());
    }

    #[test]
    fn from_strippers_assigns_strip_moas() {
        let map = CommunityPolicyMap::from_strippers([Asn(3), Asn(5)]);
        assert_eq!(map.policy_of(Asn(3)), CommunityPolicy::StripMoas);
        assert_eq!(map.policy_of(Asn(5)), CommunityPolicy::StripMoas);
        assert_eq!(map.policy_of(Asn(4)), CommunityPolicy::Propagate);
        assert_eq!(map.iter().count(), 2);
    }

    #[test]
    fn wrapper_replaces_forwarded_exports_and_counts() {
        let mut map = CommunityPolicyMap::new();
        map.set(Asn(9), CommunityPolicy::StripAll);
        let mut monitor = CommunityPolicies::wrapping(map, NoopMonitor);
        let r = listed_route();
        let ExportAction::Replace(sent) = monitor.on_export(Asn(9), Asn(2), None, &r) else {
            panic!("policy must replace the route");
        };
        assert!(sent.communities().is_empty());
        assert_eq!(monitor.modified_count(), 1);
        // A propagate AS forwards the shared payload untouched.
        assert_eq!(
            monitor.on_export(Asn(8), Asn(2), None, &r),
            ExportAction::Forward
        );
        assert_eq!(monitor.modified_count(), 1);
        assert_eq!(monitor.map().policy_of(Asn(9)), CommunityPolicy::StripAll);
        let _ = monitor.inner_mut();
        let _ = monitor.inner();
    }

    #[test]
    fn wrapper_forwards_withdraw_and_clock_to_inner() {
        #[derive(Default)]
        struct Probe {
            withdrawals: u32,
            now: SimTime,
        }
        impl RouteMonitor for Probe {
            fn on_withdraw(&mut self, _local: Asn, _from: Asn, _prefix: Ipv4Prefix) {
                self.withdrawals += 1;
            }
            fn on_clock(&mut self, now: SimTime) {
                self.now = now;
            }
        }
        let mut monitor = CommunityPolicies::wrapping(CommunityPolicyMap::new(), Probe::default());
        monitor.on_withdraw(Asn(1), Asn(2), p());
        monitor.on_clock(SimTime::from_ticks(7));
        assert_eq!(monitor.inner().withdrawals, 1);
        assert_eq!(monitor.inner().now, SimTime::from_ticks(7));
    }
}
