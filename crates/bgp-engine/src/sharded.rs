//! Deterministic intra-trial sharding: one trial fanned over the pool.
//!
//! [`ShardedNetwork`] partitions the AS graph into per-shard engines (via
//! [`as_topology::Partition`]'s balanced edge-cut) and exchanges cross-shard
//! BGP messages in batches at virtual-time boundaries. A coordinator advances
//! all shards to the globally next event timestamp in lockstep rounds; within
//! a timestamp, every shard processes its events in an *intrinsic* order —
//! `(event kind, global edge id, per-edge send sequence)` — that depends only
//! on the event itself, never on queue arrival order or shard layout. All
//! link delays are at least one tick, so no event at time `T` can spawn
//! another event at `T`, and the per-timestamp event set is closed before the
//! round starts.
//!
//! The result is the property the experiments need: every RIB, alarm,
//! counter, and fingerprint is **bit-identical for every `--shards N`**
//! (including `N = 1`). See DESIGN.md "Sharded execution" for the full
//! determinism argument.
//!
//! This engine complements — and does not replace — [`Network`](crate::Network):
//! the classic engine keeps its single global event queue and remains the
//! reference for the paper-scale experiments; the sharded engine is the
//! Internet-scale (~70k AS) path.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::fmt::Write as _;
use std::sync::Arc;

use as_topology::{AsGraph, Partition};
use bgp_types::{AsPath, Asn, Ipv4Prefix, MoasList, Route};
use minimetrics::MetricsSink;
use rand::rngs::SmallRng;
use rand::Rng;
use sim_engine::fault::{FaultAction, FaultStats, LinkFaultModel, TimelineEntry};
use sim_engine::SimTime;

use crate::error::{ConvergenceError, FaultPlanError, UnknownAsError};
use crate::fault::{FaultEvent, NetFaultPlan};
use crate::monitor::{NoopMonitor, RouteMonitor};
use crate::network::{NetworkStats, SessionCounters};
use crate::router::Router;
use crate::update::SharedUpdate;

/// Default event budget, matching [`Network::run`](crate::Network::run).
const DEFAULT_EVENT_LIMIT: u64 = 50_000_000;

/// Repeated-fingerprint sightings before the watchdog declares oscillation.
const WATCHDOG_STRIKES: u32 = 3;

/// Immutable topology shared by every shard: the same dense interner and CSR
/// adjacency the classic engine builds, constructed once and reference-
/// counted. Edge ids are *global* — identical for every shard count — which
/// is what makes the intrinsic event order and the per-edge fault RNG streams
/// invariant under re-sharding.
#[derive(Debug)]
struct Topo {
    /// Sorted ASNs; position = dense node index.
    asn_index: Vec<Asn>,
    /// CSR row starts into `peer_idx`/`delays`; len `n + 1`.
    peer_start: Vec<usize>,
    /// CSR column data: neighbor node index per directed edge.
    peer_idx: Vec<u32>,
    /// Per directed edge: link delay in ticks (all >= 1).
    delays: Vec<u64>,
    /// Per dense node index: owning shard.
    assignment: Vec<u32>,
}

impl Topo {
    fn index_of(&self, asn: Asn) -> Option<usize> {
        self.asn_index.binary_search(&asn).ok()
    }

    fn edge_between(&self, from: usize, to: usize) -> Option<usize> {
        let row = &self.peer_idx[self.peer_start[from]..self.peer_start[from + 1]];
        row.binary_search(&(to as u32))
            .ok()
            .map(|k| self.peer_start[from] + k)
    }

    fn edge_endpoints(&self, e: usize) -> (Asn, Asn) {
        let from = self.peer_start.partition_point(|&start| start <= e) - 1;
        let to = self.peer_idx[e] as usize;
        (self.asn_index[from], self.asn_index[to])
    }

    fn directed_edges(&self, a: Asn, b: Asn) -> Result<(usize, usize), FaultPlanError> {
        let ia = self.index_of(a).ok_or(FaultPlanError::UnknownAs(a))?;
        let ib = self.index_of(b).ok_or(FaultPlanError::UnknownAs(b))?;
        let ab = self
            .edge_between(ia, ib)
            .ok_or(FaultPlanError::NotALink(a, b))?;
        let ba = self
            .edge_between(ib, ia)
            .ok_or(FaultPlanError::NotALink(a, b))?;
        Ok((ab, ba))
    }
}

/// A shard-queue event; mirrors the classic engine's `NetEvent`.
#[derive(Debug, Clone)]
enum ShardEvent {
    Deliver {
        edge: u32,
        from: u32,
        to: u32,
        epoch: u32,
        corrupt: bool,
        update: SharedUpdate,
    },
    MraiFlush {
        from: u32,
        to: u32,
    },
    Fault {
        entry: u32,
    },
}

/// One scheduled event with its intrinsic ordering key.
///
/// Within a timestamp, events sort by `(kind, key1, key2)`:
///
/// * Deliver   = `(0, global edge id, per-edge send sequence)`
/// * MraiFlush = `(1, global edge id, 0)`
/// * Fault     = `(2, timeline entry index, 0)`
///
/// Every component is derived from the event itself, not from scheduling
/// order, so any shard holding the same event set processes it in the same
/// order regardless of how the events arrived.
#[derive(Debug, Clone)]
struct Scheduled {
    time: SimTime,
    key: (u8, u64, u64),
    event: ShardEvent,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.key) == (other.time, other.key)
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.key).cmp(&(other.time, other.key))
    }
}

/// Fault-plan state replicated on every shard. The timeline, remaining
/// counts, and models are identical replicas (global events must fire on all
/// shards at the same virtual time); message-fate RNGs are **per edge**,
/// seeded from `(plan seed, global edge id)`, and only ever drawn by the
/// sending router's owner shard — so each edge's fate stream is the same for
/// every shard count.
#[derive(Debug)]
struct ShardFaults {
    seed: u64,
    rngs: BTreeMap<u32, SmallRng>,
    models: BTreeMap<usize, LinkFaultModel>,
    stats: Vec<FaultStats>,
    timeline: Vec<TimelineEntry<FaultEvent>>,
    remaining: Vec<Option<u64>>,
}

/// One partition of the network: full-width per-edge state vectors (indexed
/// by global edge id), but only the entries a shard *owns* are ever written —
/// sent-side fields by the sender's owner, received-side fields by the
/// receiver's owner — so merging shard states is a plain field-wise sum.
#[derive(Debug)]
struct Shard<M> {
    id: u32,
    topo: Arc<Topo>,
    /// Full-size router table; only owned routers are mutated.
    routers: Vec<Router>,
    queue: BinaryHeap<Reverse<Scheduled>>,
    now: SimTime,
    /// Last time forwarded to the monitor's `on_clock`.
    clock_mark: SimTime,
    sessions: Vec<SessionCounters>,
    monitor: M,
    stats: NetworkStats,
    mrai: u64,
    mrai_gate: Vec<SimTime>,
    mrai_pending: Vec<BTreeMap<Ipv4Prefix, SharedUpdate>>,
    /// Per directed edge: monotone send sequence (intrinsic Deliver key).
    edge_seq: Vec<u64>,
    /// Session epochs, replicated identically on every shard (bumped only by
    /// globally-applied fault events).
    epochs: Vec<u32>,
    epochs_active: bool,
    failed_links: BTreeSet<(Asn, Asn)>,
    faults: Option<Box<ShardFaults>>,
    /// Cross-shard messages produced since the last drain: `(dest shard,
    /// scheduled event)`.
    outbox: Vec<(u32, Scheduled)>,
}

/// One barrier-round command from the coordinator.
#[derive(Debug, Clone)]
enum Cmd {
    /// Advance to `time`, absorb `inbox`, process every event at `time`.
    Step {
        time: SimTime,
        inbox: Vec<Scheduled>,
    },
    /// Hash the owned slice of the routing state (watchdog support).
    Fingerprint,
}

#[derive(Debug)]
struct RoundResult {
    outbox: Vec<(u32, Scheduled)>,
    next_time: Option<SimTime>,
    queue_len: usize,
    /// Deliver + MraiFlush events processed this round (each unique to one
    /// shard, so the coordinator may sum them).
    fired: u64,
    /// Fault events processed this round (replicated on every shard, so the
    /// coordinator counts shard 0's only).
    fault_fired: u64,
}

#[derive(Debug)]
enum RoundReply {
    Step(RoundResult),
    Fingerprint(u64),
}

impl<M: RouteMonitor> Shard<M> {
    fn owns(&self, node: usize) -> bool {
        self.topo.assignment[node] == self.id
    }

    fn link_is_down(&self, a: Asn, b: Asn) -> bool {
        !self.failed_links.is_empty() && self.failed_links.contains(&link_key(a, b))
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|s| s.0.time)
    }

    fn execute(&mut self, cmd: Cmd) -> RoundReply {
        match cmd {
            Cmd::Step { time, inbox } => RoundReply::Step(self.step(time, inbox)),
            Cmd::Fingerprint => RoundReply::Fingerprint(self.fingerprint()),
        }
    }

    /// Processes every event at exactly `time`. All delays are >= 1 tick, so
    /// processing can enqueue only strictly-future events and the loop always
    /// terminates; the clock is advanced even on shards with nothing to do,
    /// keeping `now` identical everywhere between rounds.
    fn step(&mut self, time: SimTime, inbox: Vec<Scheduled>) -> RoundResult {
        for msg in inbox {
            debug_assert!(msg.time >= time, "cross-shard message from the past");
            self.queue.push(Reverse(msg));
        }
        self.now = time;
        let mut fired = 0u64;
        let mut fault_fired = 0u64;
        while self.queue.peek().is_some_and(|s| s.0.time == time) {
            let Reverse(sch) = self.queue.pop().expect("peeked event");
            if self.clock_mark != time {
                self.clock_mark = time;
                self.monitor.on_clock(time);
            }
            match sch.event {
                ShardEvent::Fault { .. } => fault_fired += 1,
                _ => fired += 1,
            }
            self.process(sch.event);
        }
        RoundResult {
            outbox: std::mem::take(&mut self.outbox),
            next_time: self.peek_time(),
            queue_len: self.queue.len(),
            fired,
            fault_fired,
        }
    }

    fn process(&mut self, event: ShardEvent) {
        match event {
            ShardEvent::Deliver {
                edge,
                from,
                to,
                epoch,
                corrupt,
                update,
            } => {
                let (edge, from, to) = (edge as usize, from as usize, to as usize);
                debug_assert!(self.owns(to), "delivery routed to the wrong shard");
                let from_asn = self.topo.asn_index[from];
                let to_asn = self.topo.asn_index[to];
                if !self.failed_links.is_empty() && self.link_is_down(from_asn, to_asn) {
                    self.drop_in_flight(edge);
                    return;
                }
                if self.epochs_active && self.epochs[edge] != epoch {
                    self.drop_in_flight(edge);
                    return;
                }
                if corrupt {
                    self.stats.corrupted_dropped += 1;
                    if let Some(f) = self.faults.as_deref_mut() {
                        f.stats[edge].corrupted += 1;
                    }
                    return;
                }
                match &update {
                    SharedUpdate::Announce(_) => {
                        self.stats.announcements += 1;
                        self.sessions[edge].recv_announcements += 1;
                    }
                    SharedUpdate::Withdraw(_) => {
                        self.stats.withdrawals += 1;
                        self.sessions[edge].recv_withdrawals += 1;
                    }
                }
                let updates = self.routers[to].handle_update(from_asn, update, &mut self.monitor);
                self.enqueue(to, updates);
            }
            ShardEvent::MraiFlush { from, to } => {
                let (from, to) = (from as usize, to as usize);
                let edge = self
                    .topo
                    .edge_between(from, to)
                    .expect("MRAI state only exists on real sessions");
                let pending = std::mem::take(&mut self.mrai_pending[edge]);
                if pending.is_empty() {
                    return;
                }
                self.mrai_gate[edge] = self.now + self.mrai;
                for (_, update) in pending {
                    self.schedule_delivery(edge, from as u32, to as u32, update);
                }
            }
            ShardEvent::Fault { entry } => {
                let idx = entry as usize;
                let Some(faults) = self.faults.as_deref_mut() else {
                    return;
                };
                let mut reschedule = None;
                if let Some(period) = faults.timeline[idx].period {
                    let fire_again = match &mut faults.remaining[idx] {
                        None => true,
                        Some(n) if *n > 1 => {
                            *n -= 1;
                            true
                        }
                        Some(n) => {
                            *n = 0;
                            false
                        }
                    };
                    if fire_again {
                        reschedule = Some(period);
                    }
                }
                let event = faults.timeline[idx].event.clone();
                if let Some(period) = reschedule {
                    self.queue.push(Reverse(Scheduled {
                        time: self.now + period,
                        key: (2, idx as u64, 0),
                        event: ShardEvent::Fault { entry },
                    }));
                }
                self.apply_fault_event(event);
            }
        }
    }

    /// Executes one scripted fault event. Global state transitions (failed
    /// links, epochs, MRAI clears) run on every shard — each replica applies
    /// them at the same virtual time in the same intrinsic order, so replicas
    /// never diverge. Router mutations run only on the owner shard.
    fn apply_fault_event(&mut self, event: FaultEvent) {
        match event {
            FaultEvent::FailLink(a, b) => self.fail_link(a, b),
            FaultEvent::RestoreLink(a, b) => self.restore_link(a, b),
            FaultEvent::ResetSession(a, b) => self.reset_session(a, b),
            FaultEvent::Announce { asn, route } => {
                if let Some(idx) = self.topo.index_of(asn) {
                    if self.owns(idx) {
                        let updates = self.routers[idx].originate(route, &mut self.monitor);
                        self.enqueue(idx, updates);
                    }
                }
            }
            FaultEvent::Withdraw { asn, prefix } => {
                if let Some(idx) = self.topo.index_of(asn) {
                    if self.owns(idx) {
                        let updates = self.routers[idx].withdraw_origin(prefix, &mut self.monitor);
                        self.enqueue(idx, updates);
                    }
                }
            }
            FaultEvent::ToggleOrigin { asn, route } => {
                let Some(idx) = self.topo.index_of(asn) else {
                    return;
                };
                if !self.owns(idx) {
                    return;
                }
                let prefix = route.prefix();
                let updates = if self.routers[idx].originates(prefix) {
                    self.routers[idx].withdraw_origin(prefix, &mut self.monitor)
                } else {
                    self.routers[idx].originate(route, &mut self.monitor)
                };
                self.enqueue(idx, updates);
            }
        }
    }

    fn fail_link(&mut self, a: Asn, b: Asn) {
        if !self.failed_links.insert(link_key(a, b)) {
            return;
        }
        if let (Some(ia), Some(ib)) = (self.topo.index_of(a), self.topo.index_of(b)) {
            for (x, y) in [(ia, ib), (ib, ia)] {
                if let Some(e) = self.topo.edge_between(x, y) {
                    self.mrai_pending[e].clear();
                    self.mrai_gate[e] = SimTime::ZERO;
                    self.epochs[e] = self.epochs[e].wrapping_add(1);
                    self.epochs_active = true;
                }
            }
        }
        for (local, peer) in [(a, b), (b, a)] {
            if let Some(idx) = self.topo.index_of(local) {
                if self.owns(idx) {
                    let updates = self.routers[idx].peer_down(peer, &mut self.monitor);
                    self.enqueue(idx, updates);
                }
            }
        }
    }

    fn restore_link(&mut self, a: Asn, b: Asn) {
        if !self.failed_links.remove(&link_key(a, b)) {
            return;
        }
        for (local, peer) in [(a, b), (b, a)] {
            if let Some(idx) = self.topo.index_of(local) {
                if self.owns(idx) {
                    let updates = self.routers[idx].refresh_peer(peer, &mut self.monitor);
                    self.enqueue(idx, updates);
                }
            }
        }
    }

    fn reset_session(&mut self, a: Asn, b: Asn) {
        if self.link_is_down(a, b) {
            return;
        }
        let (Some(ia), Some(ib)) = (self.topo.index_of(a), self.topo.index_of(b)) else {
            return;
        };
        let (Some(ab), Some(ba)) = (
            self.topo.edge_between(ia, ib),
            self.topo.edge_between(ib, ia),
        ) else {
            return;
        };
        for e in [ab, ba] {
            self.mrai_pending[e].clear();
            self.mrai_gate[e] = SimTime::ZERO;
            self.epochs[e] = self.epochs[e].wrapping_add(1);
        }
        self.epochs_active = true;
        for (idx, peer) in [(ia, b), (ib, a)] {
            if self.owns(idx) {
                let updates = self.routers[idx].peer_down(peer, &mut self.monitor);
                self.enqueue(idx, updates);
            }
        }
        for (idx, peer) in [(ia, b), (ib, a)] {
            if self.owns(idx) {
                let updates = self.routers[idx].refresh_peer(peer, &mut self.monitor);
                self.enqueue(idx, updates);
            }
        }
    }

    fn drop_in_flight(&mut self, edge: usize) {
        self.stats.dropped_on_failed_links += 1;
        if let Some(f) = self.faults.as_deref_mut() {
            f.stats[edge].dropped_link_down += 1;
        }
    }

    fn enqueue(&mut self, from: usize, updates: Vec<(Asn, SharedUpdate)>) {
        let from_asn = self.topo.asn_index[from];
        for (to_asn, update) in updates {
            if self.link_is_down(from_asn, to_asn) {
                continue;
            }
            let k = self.routers[from]
                .peers()
                .binary_search(&to_asn)
                .expect("router update targets a peer");
            let edge = self.topo.peer_start[from] + k;
            let to = self.topo.peer_idx[edge];
            if self.mrai == 0 {
                self.schedule_delivery(edge, from as u32, to, update);
                continue;
            }
            let now = self.now;
            let gate = self.mrai_gate[edge];
            if now >= gate && self.mrai_pending[edge].is_empty() {
                self.mrai_gate[edge] = now + self.mrai;
                self.schedule_delivery(edge, from as u32, to, update);
            } else {
                self.stats.mrai_deferred += 1;
                let pending = &mut self.mrai_pending[edge];
                if pending.insert(update.prefix(), update).is_some() {
                    self.stats.mrai_coalesced += 1;
                }
                if pending.len() == 1 {
                    let wait = gate.ticks().saturating_sub(now.ticks()).max(1);
                    self.queue.push(Reverse(Scheduled {
                        time: now + wait,
                        key: (1, edge as u64, 0),
                        event: ShardEvent::MraiFlush {
                            from: from as u32,
                            to,
                        },
                    }));
                }
            }
        }
    }

    /// The single choke point for deliveries: stamps the epoch, applies the
    /// edge's fault model, assigns the intrinsic send sequence, and routes
    /// the event to the receiver's queue — local push or cross-shard outbox.
    fn schedule_delivery(&mut self, edge: usize, from: u32, to: u32, update: SharedUpdate) {
        match &update {
            SharedUpdate::Announce(_) => self.sessions[edge].sent_announcements += 1,
            SharedUpdate::Withdraw(_) => self.sessions[edge].sent_withdrawals += 1,
        }
        let epoch = self.epochs[edge];
        let mut delay = self.topo.delays[edge];
        let mut corrupt = false;
        let mut copies = 1u8;
        if let Some(faults) = self.faults.as_deref_mut() {
            if let Some(model) = faults.models.get(&edge) {
                let seed = faults.seed;
                let rng = faults.rngs.entry(edge as u32).or_insert_with(|| {
                    sim_engine::rng::from_seed(sim_engine::rng::derive_seed(seed, edge as u64))
                });
                match model.decide(rng) {
                    FaultAction::Deliver => faults.stats[edge].delivered += 1,
                    FaultAction::Drop => {
                        faults.stats[edge].dropped += 1;
                        return;
                    }
                    FaultAction::Duplicate => {
                        faults.stats[edge].duplicated += 1;
                        copies = 2;
                    }
                    FaultAction::Delay(extra) => {
                        faults.stats[edge].reordered += 1;
                        delay += extra;
                    }
                    FaultAction::Corrupt => corrupt = true,
                }
            }
        }
        let dest = self.topo.assignment[to as usize];
        for _ in 0..copies {
            let seq = self.edge_seq[edge];
            self.edge_seq[edge] += 1;
            let sch = Scheduled {
                time: self.now + delay,
                key: (0, edge as u64, seq),
                event: ShardEvent::Deliver {
                    edge: edge as u32,
                    from,
                    to,
                    epoch,
                    corrupt,
                    update: update.clone(),
                },
            };
            if dest == self.id {
                self.queue.push(Reverse(sch));
            } else {
                self.outbox.push((dest, sch));
            }
        }
    }

    /// Per-node FNV hash of the owned routing slice, combined by *wrapping
    /// sum*. Addition commutes, so the total over all shards is independent
    /// of the shard layout (every node is owned exactly once).
    fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        fn mix(h: u64, word: u64) -> u64 {
            (h ^ word).wrapping_mul(PRIME)
        }
        let mut total = 0u64;
        for (node, router) in self.routers.iter().enumerate() {
            if !self.owns(node) {
                continue;
            }
            let mut h = OFFSET;
            h = mix(h, node as u64);
            for prefix in router.prefixes() {
                h = mix(
                    h,
                    (u64::from(prefix.network()) << 8) | u64::from(prefix.len()),
                );
                h = match router.best_learned_from(prefix) {
                    Some(peer) => mix(h, u64::from(peer.0) | (1 << 40)),
                    None => mix(h, 1 << 41),
                };
                if let Some(route) = router.best_route(prefix) {
                    for asn in route.as_path().iter() {
                        h = mix(h, u64::from(asn.0));
                    }
                }
                h = mix(h, u64::MAX);
            }
            total = total.wrapping_add(h);
        }
        total
    }
}

fn link_key(a: Asn, b: Asn) -> (Asn, Asn) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// The barrier driver: either the shards run inline on the calling thread
/// (the sequential reference path) or pinned to long-lived [`minipool::Crew`]
/// workers. Both paths run the *same* shard code on the *same* command
/// sequence, so results are bit-identical.
enum Driver<M: RouteMonitor + Send + 'static> {
    Inline(Vec<Shard<M>>),
    Pool(minipool::Crew<Shard<M>, Cmd, RoundReply>),
}

impl<M: RouteMonitor + Send + 'static> Driver<M> {
    fn round(&mut self, cmds: Vec<Cmd>) -> Vec<RoundReply> {
        match self {
            Driver::Inline(shards) => shards
                .iter_mut()
                .zip(cmds)
                .map(|(s, c)| s.execute(c))
                .collect(),
            Driver::Pool(crew) => crew.round(cmds),
        }
    }

    fn into_shards(self) -> Vec<Shard<M>> {
        match self {
            Driver::Inline(shards) => shards,
            Driver::Pool(crew) => crew.join(),
        }
    }
}

/// An AS-level BGP network partitioned over per-shard engines, driven to
/// quiescence in deterministic lockstep rounds.
///
/// Construction partitions the graph with [`Partition`] (greedy balanced
/// edge-cut), builds one engine per shard around a shared CSR topology, and
/// gives each shard its own monitor from a factory closure. `jobs > 1` runs
/// the shards on long-lived worker threads; the results are identical either
/// way, and identical **for every shard count** — that invariance is pinned
/// by the differential tests in `experiments`.
///
/// # Example
///
/// ```
/// use as_topology::InternetModel;
/// use bgp_engine::ShardedNetwork;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = InternetModel::new().transit_count(5).stub_count(20).build(1);
/// let victim = graph.stub_asns()[0];
/// let prefix = as_topology::prefix_for_asn(victim);
///
/// let mut net = ShardedNetwork::new(&graph, 2);
/// net.originate(victim, prefix, None);
/// net.run()?;
/// assert!(graph.asns().all(|asn| net.best_origin(asn, prefix) == Some(victim)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ShardedNetwork<M = NoopMonitor> {
    topo: Arc<Topo>,
    shards: Vec<Shard<M>>,
    jobs: usize,
    watchdog: u64,
    now: SimTime,
    converged_at: SimTime,
    /// Deliver + MraiFlush + (deduplicated) Fault events processed over the
    /// network's lifetime; the sharded analogue of `sim.events.fired`.
    fired_lifetime: u64,
    /// Cross-shard messages awaiting distribution at the next round.
    pending: Vec<(u32, Scheduled)>,
    plan_installed: bool,
    cut_links: usize,
}

impl ShardedNetwork<NoopMonitor> {
    /// Builds a plain sharded BGP network (no validation, unit delays,
    /// inline execution).
    #[must_use]
    pub fn new(graph: &AsGraph, shard_count: usize) -> Self {
        ShardedNetwork::with_monitor_factory(graph, shard_count, 1, || NoopMonitor)
    }
}

impl<M: RouteMonitor> ShardedNetwork<M> {
    /// Builds a sharded network whose shards each consult a monitor produced
    /// by `monitor`. All links have unit delay. `jobs <= 1` (or a single
    /// shard) runs every round inline on the calling thread.
    #[must_use]
    pub fn with_monitor_factory(
        graph: &AsGraph,
        shard_count: usize,
        jobs: usize,
        monitor: impl Fn() -> M,
    ) -> Self {
        let partition = Partition::new(graph, shard_count);
        let shard_count = partition.shard_count();
        let cut_links = partition.cut_links();
        let asn_index: Vec<Asn> = graph.asns().collect();
        let n = asn_index.len();
        let mut peer_start = Vec::with_capacity(n + 1);
        peer_start.push(0);
        let mut peer_idx = Vec::new();
        for &asn in &asn_index {
            for peer in graph.neighbors(asn) {
                let idx = asn_index
                    .binary_search(&peer)
                    .expect("graph links only name graph ASes");
                peer_idx.push(idx as u32);
            }
            peer_start.push(peer_idx.len());
        }
        let edges = peer_idx.len();
        let topo = Arc::new(Topo {
            asn_index,
            peer_start,
            peer_idx,
            delays: vec![1; edges],
            assignment: partition.assignment().to_vec(),
        });
        let shards = (0..shard_count as u32)
            .map(|id| Shard {
                id,
                topo: Arc::clone(&topo),
                routers: topo
                    .asn_index
                    .iter()
                    .map(|&asn| Router::new(asn, graph.neighbors(asn).collect()))
                    .collect(),
                queue: BinaryHeap::new(),
                now: SimTime::ZERO,
                clock_mark: SimTime::ZERO,
                sessions: vec![SessionCounters::default(); edges],
                monitor: monitor(),
                stats: NetworkStats::default(),
                mrai: 0,
                mrai_gate: vec![SimTime::ZERO; edges],
                mrai_pending: vec![BTreeMap::new(); edges],
                edge_seq: vec![0; edges],
                epochs: vec![0; edges],
                epochs_active: false,
                failed_links: BTreeSet::new(),
                faults: None,
                outbox: Vec::new(),
            })
            .collect();
        ShardedNetwork {
            topo,
            shards,
            jobs: jobs.max(1),
            watchdog: 0,
            now: SimTime::ZERO,
            converged_at: SimTime::ZERO,
            fired_lifetime: 0,
            pending: Vec::new(),
            plan_installed: false,
            cut_links,
        }
    }

    /// Like [`ShardedNetwork::with_monitor_factory`], but each directed link
    /// gets an independent delay drawn uniformly from `1..=max_delay` —
    /// drawn in the same global link order as the classic engine, so the
    /// timing pattern depends only on `(graph, seed)`, never on the shard
    /// count.
    #[must_use]
    pub fn with_monitor_and_jitter(
        graph: &AsGraph,
        shard_count: usize,
        jobs: usize,
        seed: u64,
        max_delay: u64,
        monitor: impl Fn() -> M,
    ) -> Self {
        let mut net = ShardedNetwork::with_monitor_factory(graph, shard_count, jobs, monitor);
        let max_delay = max_delay.max(1);
        let mut rng = sim_engine::rng::from_seed(seed);
        let mut delays = vec![1u64; net.topo.peer_idx.len()];
        for (a, b) in graph.links() {
            let ia = net.topo.index_of(a).expect("link endpoint in graph");
            let ib = net.topo.index_of(b).expect("link endpoint in graph");
            let ab = net.topo.edge_between(ia, ib).expect("endpoints adjacent");
            delays[ab] = rng.gen_range(1..=max_delay);
            let ba = net.topo.edge_between(ib, ia).expect("endpoints adjacent");
            delays[ba] = rng.gen_range(1..=max_delay);
        }
        let topo = Arc::get_mut(&mut net.topo);
        match topo {
            Some(t) => t.delays = delays,
            // Shards hold clones of the Arc, so rebuild it with new delays.
            None => {
                let t = &net.topo;
                let fresh = Arc::new(Topo {
                    asn_index: t.asn_index.clone(),
                    peer_start: t.peer_start.clone(),
                    peer_idx: t.peer_idx.clone(),
                    delays,
                    assignment: t.assignment.clone(),
                });
                for shard in &mut net.shards {
                    shard.topo = Arc::clone(&fresh);
                }
                net.topo = fresh;
            }
        }
        net
    }

    /// Number of shards (always >= 1).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Undirected links whose endpoints landed on different shards.
    #[must_use]
    pub fn cut_links(&self) -> usize {
        self.cut_links
    }

    /// Total events processed over the network's lifetime (the sharded
    /// analogue of the classic queue's `fired` counter — replicated fault
    /// firings are counted once).
    #[must_use]
    pub fn events_fired(&self) -> u64 {
        self.fired_lifetime
    }

    /// The current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The ASes in the network, ascending.
    pub fn asns(&self) -> impl Iterator<Item = Asn> + '_ {
        self.topo.asn_index.iter().copied()
    }

    /// Read access to a router (served by its owning shard).
    #[must_use]
    pub fn router(&self, asn: Asn) -> Option<&Router> {
        let idx = self.topo.index_of(asn)?;
        let shard = self.topo.assignment[idx] as usize;
        Some(&self.shards[shard].routers[idx])
    }

    /// The best route an AS holds for `prefix`.
    #[must_use]
    pub fn best_route(&self, asn: Asn, prefix: Ipv4Prefix) -> Option<&Route> {
        self.router(asn)?.best_route(prefix)
    }

    /// The origin AS of the best route an AS holds for `prefix`.
    #[must_use]
    pub fn best_origin(&self, asn: Asn, prefix: Ipv4Prefix) -> Option<Asn> {
        self.router(asn)?.best_origin(prefix)
    }

    /// Each shard's monitor, in shard order. Observer-scoped state (alarms,
    /// verifier queries) can be summed across shards; the split of routers
    /// over monitors follows the partition.
    pub fn monitors(&self) -> impl Iterator<Item = &M> {
        self.shards.iter().map(|s| &s.monitor)
    }

    /// Makes `asn` originate `prefix`, optionally with a MOAS list; mirrors
    /// [`Network::originate`](crate::Network::originate).
    ///
    /// # Panics
    ///
    /// Panics if `asn` is not in the network.
    pub fn originate(&mut self, asn: Asn, prefix: Ipv4Prefix, moas_list: Option<MoasList>) {
        let mut route = Route::new(prefix, AsPath::new());
        if let Some(list) = moas_list {
            route = route.with_moas_list(list);
        }
        self.originate_route(asn, route);
    }

    /// Makes `asn` originate an arbitrary pre-built route.
    ///
    /// # Panics
    ///
    /// Panics if `asn` is not in the network.
    pub fn originate_route(&mut self, asn: Asn, route: Route) {
        self.try_originate_route(asn, route)
            .expect("originating AS not in network");
    }

    /// Fallible [`ShardedNetwork::originate_route`].
    ///
    /// # Errors
    ///
    /// Returns [`UnknownAsError`] when `asn` is not in the network.
    pub fn try_originate_route(&mut self, asn: Asn, route: Route) -> Result<(), UnknownAsError> {
        let idx = self.topo.index_of(asn).ok_or(UnknownAsError { asn })?;
        let shard = &mut self.shards[self.topo.assignment[idx] as usize];
        let updates = shard.routers[idx].originate(route, &mut shard.monitor);
        shard.enqueue(idx, updates);
        Ok(())
    }

    /// Makes `asn` stop originating `prefix`.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownAsError`] when `asn` is not in the network.
    pub fn try_withdraw(&mut self, asn: Asn, prefix: Ipv4Prefix) -> Result<(), UnknownAsError> {
        let idx = self.topo.index_of(asn).ok_or(UnknownAsError { asn })?;
        let shard = &mut self.shards[self.topo.assignment[idx] as usize];
        let updates = shard.routers[idx].withdraw_origin(prefix, &mut shard.monitor);
        shard.enqueue(idx, updates);
        Ok(())
    }

    /// Enables the minimum route advertisement interval on every shard;
    /// mirrors [`Network::set_mrai`](crate::Network::set_mrai).
    pub fn set_mrai(&mut self, ticks: u64) {
        for shard in &mut self.shards {
            shard.mrai = ticks;
        }
    }

    /// Arms the convergence watchdog: the coordinator fingerprints the global
    /// routing state whenever the processed-event count crosses a multiple of
    /// `interval_events` at a round boundary (at most once per boundary) and
    /// applies the classic three-strike rule. Pass 0 to disable.
    pub fn set_watchdog(&mut self, interval_events: u64) {
        self.watchdog = interval_events;
    }

    /// Installs a fault plan, validated once and replicated onto every shard
    /// so global events (link failures, session resets) apply everywhere at
    /// the same virtual time. Per-edge message-fate RNGs are seeded from
    /// `(plan seed, global edge id)` — see DESIGN.md for why this keeps fault
    /// streams identical across shard counts.
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError`] exactly as the classic engine does.
    pub fn set_fault_plan(&mut self, plan: NetFaultPlan) -> Result<(), FaultPlanError> {
        if self.plan_installed {
            return Err(FaultPlanError::AlreadyInstalled);
        }
        for entry in plan.timeline() {
            for asn in entry.event.actors() {
                if self.topo.index_of(asn).is_none() {
                    return Err(FaultPlanError::UnknownAs(asn));
                }
            }
            if let FaultEvent::FailLink(a, b)
            | FaultEvent::RestoreLink(a, b)
            | FaultEvent::ResetSession(a, b) = entry.event
            {
                self.topo.directed_edges(a, b)?;
            }
        }
        let mut models = BTreeMap::new();
        for (&(a, b), &model) in plan.link_models() {
            let (ab, ba) = self.topo.directed_edges(a, b)?;
            models.insert(ab, model);
            models.insert(ba, model);
        }
        let timeline: Vec<TimelineEntry<FaultEvent>> = plan.timeline().to_vec();
        let remaining: Vec<Option<u64>> = timeline.iter().map(|e| e.count).collect();
        let edges = self.topo.peer_idx.len();
        for shard in &mut self.shards {
            for (i, entry) in timeline.iter().enumerate() {
                if entry.count == Some(0) {
                    continue;
                }
                let at = SimTime::from_ticks(entry.at).max(shard.now);
                shard.queue.push(Reverse(Scheduled {
                    time: at,
                    key: (2, i as u64, 0),
                    event: ShardEvent::Fault { entry: i as u32 },
                }));
            }
            shard.faults = Some(Box::new(ShardFaults {
                seed: plan.seed(),
                rngs: BTreeMap::new(),
                models: models.clone(),
                stats: vec![FaultStats::default(); edges],
                timeline: timeline.clone(),
                remaining: remaining.clone(),
            }));
        }
        self.plan_installed = true;
        Ok(())
    }

    /// Tears down the link between `a` and `b` on every shard; mirrors
    /// [`Network::fail_link`](crate::Network::fail_link).
    pub fn fail_link(&mut self, a: Asn, b: Asn) {
        for shard in &mut self.shards {
            shard.fail_link(a, b);
        }
    }

    /// Restores a previously failed link on every shard.
    pub fn restore_link(&mut self, a: Asn, b: Asn) {
        for shard in &mut self.shards {
            shard.restore_link(a, b);
        }
    }

    /// Resets the BGP session between two peers on every shard.
    pub fn reset_session(&mut self, a: Asn, b: Asn) {
        for shard in &mut self.shards {
            shard.reset_session(a, b);
        }
    }

    /// Returns `true` while the link between `a` and `b` is failed.
    #[must_use]
    pub fn link_is_down(&self, a: Asn, b: Asn) -> bool {
        self.shards.first().is_some_and(|s| s.link_is_down(a, b))
    }

    /// Message counters, merged across shards. Each field is written by
    /// exactly one owner (sender- or receiver-side), so the merge is a plain
    /// sum; `converged_at` comes from the coordinator clock.
    #[must_use]
    pub fn stats(&self) -> NetworkStats {
        let mut total = NetworkStats::default();
        for shard in &self.shards {
            total.announcements += shard.stats.announcements;
            total.withdrawals += shard.stats.withdrawals;
            total.mrai_coalesced += shard.stats.mrai_coalesced;
            total.mrai_deferred += shard.stats.mrai_deferred;
            total.dropped_on_failed_links += shard.stats.dropped_on_failed_links;
            total.corrupted_dropped += shard.stats.corrupted_dropped;
        }
        total.converged_at = self.converged_at;
        total
    }

    /// Per-session update counters, merged field-wise across shards (sent-
    /// side fields live on the sender's owner, received-side fields on the
    /// receiver's), keyed `(from, to)` ascending by global edge id.
    #[must_use]
    pub fn session_counters(&self) -> Vec<((Asn, Asn), SessionCounters)> {
        let edges = self.topo.peer_idx.len();
        let mut out = Vec::new();
        for e in 0..edges {
            let mut c = SessionCounters::default();
            for shard in &self.shards {
                let s = &shard.sessions[e];
                c.sent_announcements += s.sent_announcements;
                c.sent_withdrawals += s.sent_withdrawals;
                c.recv_announcements += s.recv_announcements;
                c.recv_withdrawals += s.recv_withdrawals;
            }
            if !c.is_empty() {
                out.push((self.topo.edge_endpoints(e), c));
            }
        }
        out
    }

    /// Per-link fault statistics, merged field-wise across shards. Empty when
    /// no fault plan is installed.
    #[must_use]
    pub fn fault_stats(&self) -> Vec<((Asn, Asn), FaultStats)> {
        if !self.plan_installed {
            return Vec::new();
        }
        let edges = self.topo.peer_idx.len();
        let mut out = Vec::new();
        for e in 0..edges {
            let mut total = FaultStats::default();
            for shard in &self.shards {
                if let Some(f) = shard.faults.as_deref() {
                    total.merge(&f.stats[e]);
                }
            }
            if total != FaultStats::default() {
                out.push((self.topo.edge_endpoints(e), total));
            }
        }
        out
    }

    /// All per-link fault statistics merged into one block.
    #[must_use]
    pub fn fault_stats_total(&self) -> FaultStats {
        let mut total = FaultStats::default();
        for (_, s) in self.fault_stats() {
            total.merge(&s);
        }
        total
    }

    /// Order-independent fingerprint of the global routing state: the
    /// wrapping sum of per-node FNV hashes over every shard's owned routers.
    /// Identical for every shard count; used by the watchdog and the
    /// differential tests.
    #[must_use]
    pub fn routing_fingerprint(&self) -> u64 {
        self.shards
            .iter()
            .fold(0u64, |acc, s| acc.wrapping_add(s.fingerprint()))
    }

    /// Emits the shard-count-invariant slice of the network's observations:
    /// `sim.events.fired` / `sim.time.final_ticks`, the `net.*` aggregates,
    /// the Adj-RIB-In histogram, and per-session / per-link counters in
    /// global edge order. Queue-shape metrics (`sim.events.scheduled`,
    /// `sim.queue.depth_high_water`) are deliberately omitted — they depend
    /// on the shard layout, and exporting them would break the bit-identical
    /// snapshot guarantee.
    pub fn export_metrics<S: MetricsSink>(&self, sink: &mut S) {
        if !S::ENABLED {
            return;
        }
        sink.counter_add("sim.events.fired", self.fired_lifetime);
        sink.gauge_set("sim.time.final_ticks", self.now.ticks());
        let stats = self.stats();
        sink.counter_add("net.messages.announcements", stats.announcements);
        sink.counter_add("net.messages.withdrawals", stats.withdrawals);
        sink.counter_add("net.messages.mrai_coalesced", stats.mrai_coalesced);
        sink.counter_add("net.messages.mrai_deferred", stats.mrai_deferred);
        sink.counter_add(
            "net.messages.dropped_in_flight",
            stats.dropped_on_failed_links,
        );
        sink.counter_add("net.messages.corrupted_dropped", stats.corrupted_dropped);
        sink.gauge_set("net.converged_at_ticks", stats.converged_at.ticks());
        let mut decisions = 0u64;
        // Walk routers in global node order, reading each from its owner, so
        // the histogram observation sequence is layout-independent too. One
        // token resolution keeps the per-router loop free of key hashing.
        let rib_size = sink.record_token("net.adj_rib_in.size");
        for (idx, &owner) in self.topo.assignment.iter().enumerate() {
            let router = &self.shards[owner as usize].routers[idx];
            decisions += router.decision_count();
            sink.record_by(rib_size, router.adj_rib_in_size() as u64);
        }
        sink.counter_add("net.decision_process.invocations", decisions);
        let mut key = String::with_capacity(64);
        for ((a, b), c) in self.session_counters() {
            key.clear();
            write!(key, "session.{a}->{b}.").expect("write to String cannot fail");
            let stem = key.len();
            for (suffix, value) in [
                ("sent_announcements", c.sent_announcements),
                ("sent_withdrawals", c.sent_withdrawals),
                ("recv_announcements", c.recv_announcements),
                ("recv_withdrawals", c.recv_withdrawals),
            ] {
                key.truncate(stem);
                key.push_str(suffix);
                sink.counter_add(&key, value);
            }
        }
        for ((a, b), s) in self.fault_stats() {
            key.clear();
            write!(key, "link.{a}->{b}.").expect("write to String cannot fail");
            let stem = key.len();
            for (suffix, value) in [
                ("delivered", s.delivered),
                ("dropped", s.dropped),
                ("duplicated", s.duplicated),
                ("reordered", s.reordered),
                ("corrupted", s.corrupted),
                ("dropped_link_down", s.dropped_link_down),
            ] {
                key.truncate(stem);
                key.push_str(suffix);
                sink.counter_add(&key, value);
            }
        }
    }
}

impl<M: RouteMonitor + Send + 'static> ShardedNetwork<M> {
    /// Runs the simulation until no messages remain in flight anywhere.
    ///
    /// # Errors
    ///
    /// Returns [`ConvergenceError`] exactly as the classic engine does.
    pub fn run(&mut self) -> Result<SimTime, ConvergenceError> {
        self.run_with_limit(DEFAULT_EVENT_LIMIT)
    }

    /// Runs until global quiescence or until `max_events` events have been
    /// processed (budget checks happen at round boundaries, so slightly more
    /// than `max_events` may be processed before the error is raised —
    /// deterministically so, for any shard count).
    ///
    /// # Errors
    ///
    /// Returns [`ConvergenceError::BudgetExhausted`] or
    /// [`ConvergenceError::Oscillating`].
    pub fn run_with_limit(&mut self, max_events: u64) -> Result<SimTime, ConvergenceError> {
        // Setup calls (originate, fault application between runs) may have
        // produced cross-shard messages; pull them into the pending pool.
        for shard in &mut self.shards {
            self.pending.append(&mut shard.outbox);
        }
        let next_times: Vec<Option<SimTime>> = self.shards.iter().map(Shard::peek_time).collect();
        let queue_lens: Vec<usize> = self.shards.iter().map(|s| s.queue.len()).collect();
        let shards = std::mem::take(&mut self.shards);
        let use_pool = self.jobs > 1 && shards.len() > 1;
        let mut driver = if use_pool {
            Driver::Pool(minipool::Crew::spawn(shards, |shard, cmd| {
                shard.execute(cmd)
            }))
        } else {
            Driver::Inline(shards)
        };
        let result = self.drive(&mut driver, max_events, next_times, queue_lens);
        self.shards = driver.into_shards();
        result
    }

    /// The coordinator loop: one barrier round per distinct event timestamp.
    ///
    /// `T_next` is the minimum of every shard's next local event time and
    /// every pending cross-shard message's delivery time; since `T_next` is
    /// that minimum, every pending message satisfies `deliver_at >= T_next`
    /// and can safely be forwarded each round — no message from the past can
    /// ever reach a shard.
    fn drive(
        &mut self,
        driver: &mut Driver<M>,
        max_events: u64,
        mut next_times: Vec<Option<SimTime>>,
        mut queue_lens: Vec<usize>,
    ) -> Result<SimTime, ConvergenceError> {
        let n = next_times.len();
        let mut fired_run = 0u64;
        let mut seen: BTreeMap<u64, (u64, u32)> = BTreeMap::new();
        let mut next_check = self.watchdog;
        loop {
            let mut t: Option<SimTime> = next_times.iter().flatten().copied().min();
            if let Some(p) = self.pending.iter().map(|(_, s)| s.time).min() {
                t = Some(t.map_or(p, |x| x.min(p)));
            }
            let Some(t) = t else {
                break;
            };
            let mut inboxes: Vec<Vec<Scheduled>> = vec![Vec::new(); n];
            for (dest, msg) in self.pending.drain(..) {
                inboxes[dest as usize].push(msg);
            }
            let cmds: Vec<Cmd> = inboxes
                .into_iter()
                .map(|inbox| Cmd::Step { time: t, inbox })
                .collect();
            for (i, reply) in driver.round(cmds).into_iter().enumerate() {
                let RoundReply::Step(r) = reply else {
                    unreachable!("Step command returns a Step reply");
                };
                fired_run += r.fired;
                self.fired_lifetime += r.fired;
                if i == 0 {
                    fired_run += r.fault_fired;
                    self.fired_lifetime += r.fault_fired;
                }
                next_times[i] = r.next_time;
                queue_lens[i] = r.queue_len;
                self.pending.extend(r.outbox);
            }
            self.now = t;
            if fired_run > max_events {
                return Err(ConvergenceError::BudgetExhausted {
                    processed: fired_run,
                    pending: queue_lens.iter().sum::<usize>() + self.pending.len(),
                });
            }
            let work_left = next_times.iter().any(Option::is_some) || !self.pending.is_empty();
            if self.watchdog > 0 && fired_run >= next_check && work_left {
                let fp =
                    driver
                        .round(vec![Cmd::Fingerprint; n])
                        .into_iter()
                        .fold(0u64, |acc, r| {
                            let RoundReply::Fingerprint(h) = r else {
                                unreachable!("Fingerprint command returns a hash");
                            };
                            acc.wrapping_add(h)
                        });
                match seen.get_mut(&fp) {
                    None => {
                        seen.insert(fp, (fired_run, 1));
                    }
                    Some((last, hits)) => {
                        let cycle_len = fired_run - *last;
                        *last = fired_run;
                        *hits += 1;
                        if *hits >= WATCHDOG_STRIKES {
                            return Err(ConvergenceError::Oscillating { cycle_len });
                        }
                    }
                }
                // One check per boundary even if a busy round crossed several
                // watchdog intervals at once.
                next_check = (fired_run / self.watchdog + 1) * self.watchdog;
            }
        }
        self.converged_at = self.now;
        Ok(self.now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Network;
    use as_topology::{AsRole, InternetModel};
    use sim_engine::fault::FaultPlan;

    fn figure1_graph() -> AsGraph {
        let mut g = AsGraph::new();
        g.add_as(Asn(4), AsRole::Stub);
        for t in [1, 2, 3] {
            g.add_as(Asn(t), AsRole::Transit);
        }
        g.add_link(Asn(4), Asn(2));
        g.add_link(Asn(4), Asn(3));
        g.add_link(Asn(2), Asn(1));
        g.add_link(Asn(3), Asn(1));
        g
    }

    fn p() -> Ipv4Prefix {
        "208.8.0.0/16".parse().unwrap()
    }

    /// Everything a trial observes, collected from one sharded run.
    fn observe(
        graph: &AsGraph,
        shards: usize,
        jobs: usize,
    ) -> (Vec<Option<Asn>>, NetworkStats, u64, u64) {
        let victim = graph.stub_asns()[0];
        let attacker = *graph.stub_asns().last().unwrap();
        let prefix = as_topology::prefix_for_asn(victim);
        let mut net =
            ShardedNetwork::with_monitor_and_jitter(graph, shards, jobs, 11, 4, || NoopMonitor);
        net.set_mrai(6);
        net.originate(victim, prefix, None);
        net.run().unwrap();
        net.originate(attacker, prefix, None);
        net.run().unwrap();
        let origins = graph.asns().map(|a| net.best_origin(a, prefix)).collect();
        (
            origins,
            net.stats(),
            net.routing_fingerprint(),
            net.events_fired(),
        )
    }

    #[test]
    fn figure1_converges_on_two_shards() {
        let mut net = ShardedNetwork::new(&figure1_graph(), 2);
        net.originate(Asn(4), p(), None);
        net.run().unwrap();
        for asn in [1, 2, 3, 4] {
            assert_eq!(net.best_origin(Asn(asn), p()), Some(Asn(4)), "AS {asn}");
        }
        assert!(net.stats().total_messages() > 0);
        assert!(net.cut_links() <= 4);
    }

    #[test]
    fn shard_counts_agree_bit_for_bit() {
        let graph = InternetModel::new()
            .transit_count(8)
            .stub_count(40)
            .build(2);
        let reference = observe(&graph, 1, 1);
        for shards in [2, 3, 4] {
            assert_eq!(observe(&graph, shards, 1), reference, "shards={shards}");
        }
    }

    #[test]
    fn pooled_execution_matches_inline() {
        let graph = InternetModel::new()
            .transit_count(8)
            .stub_count(40)
            .build(5);
        assert_eq!(observe(&graph, 4, 1), observe(&graph, 4, 4));
    }

    #[test]
    fn fault_plans_are_shard_count_invariant() {
        let graph = InternetModel::new()
            .transit_count(8)
            .stub_count(30)
            .build(9);
        let victim = graph.stub_asns()[0];
        let hub = graph.transit_asns()[0];
        let hub_peer = graph.neighbors(hub).next().unwrap();
        let prefix = as_topology::prefix_for_asn(victim);
        let run = |shards: usize| {
            let mut net =
                ShardedNetwork::with_monitor_and_jitter(&graph, shards, 1, 3, 4, || NoopMonitor);
            let mut plan = FaultPlan::new(77);
            plan.set_link_model(
                (hub, hub_peer),
                LinkFaultModel {
                    drop: 0.2,
                    corrupt: 0.1,
                    duplicate: 0.1,
                    reorder: 0.2,
                    max_extra_delay: 3,
                },
            );
            plan.at(5, FaultEvent::FailLink(hub, hub_peer));
            plan.at(20, FaultEvent::RestoreLink(hub, hub_peer));
            plan.at(30, FaultEvent::ResetSession(hub, hub_peer));
            net.set_fault_plan(plan).unwrap();
            net.originate(victim, prefix, None);
            net.run().unwrap();
            let origins: Vec<Option<Asn>> =
                graph.asns().map(|a| net.best_origin(a, prefix)).collect();
            (
                origins,
                net.stats(),
                net.fault_stats(),
                net.session_counters(),
                net.routing_fingerprint(),
                net.events_fired(),
            )
        };
        let reference = run(1);
        for shards in [2, 4] {
            assert_eq!(run(shards), reference, "shards={shards}");
        }
    }

    #[test]
    fn metrics_snapshots_are_identical_across_shard_counts() {
        use minimetrics::RecordingSink;
        let graph = InternetModel::new()
            .transit_count(6)
            .stub_count(24)
            .build(4);
        let victim = graph.stub_asns()[0];
        let prefix = as_topology::prefix_for_asn(victim);
        let snapshot = |shards: usize| {
            let mut net =
                ShardedNetwork::with_monitor_and_jitter(&graph, shards, 1, 8, 4, || NoopMonitor);
            net.set_mrai(5);
            net.originate(victim, prefix, None);
            net.run().unwrap();
            let mut sink = RecordingSink::new();
            net.export_metrics(&mut sink);
            sink.into_snapshot()
        };
        let reference = snapshot(1);
        assert!(reference.counters["sim.events.fired"] > 0);
        assert_eq!(snapshot(2), reference);
        assert_eq!(snapshot(4), reference);
    }

    #[test]
    fn single_shard_agrees_with_classic_engine_semantics() {
        // The sharded engine orders same-timestamp events intrinsically, the
        // classic engine by arrival; outcomes that don't hinge on same-tick
        // tie-breaks (reachability, message conservation) must agree.
        let graph = InternetModel::new()
            .transit_count(6)
            .stub_count(24)
            .build(8);
        let victim = graph.stub_asns()[1];
        let prefix = as_topology::prefix_for_asn(victim);
        let mut classic = Network::with_monitor_and_jitter(&graph, NoopMonitor, 8, 4);
        classic.originate(victim, prefix, None);
        classic.run().unwrap();
        let mut sharded =
            ShardedNetwork::with_monitor_and_jitter(&graph, 1, 1, 8, 4, || NoopMonitor);
        sharded.originate(victim, prefix, None);
        sharded.run().unwrap();
        for asn in graph.asns() {
            assert_eq!(
                classic.best_origin(asn, prefix),
                sharded.best_origin(asn, prefix),
                "{asn}"
            );
        }
        assert_eq!(classic.stats().converged_at, sharded.stats().converged_at);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let graph = InternetModel::new()
            .transit_count(10)
            .stub_count(50)
            .build(1);
        let victim = graph.stub_asns()[0];
        let mut net = ShardedNetwork::new(&graph, 2);
        net.originate(victim, as_topology::prefix_for_asn(victim), None);
        match net.run_with_limit(3).unwrap_err() {
            ConvergenceError::BudgetExhausted { processed, .. } => assert!(processed > 3),
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_catches_oscillation_identically_per_shard_count() {
        // An unbounded origin flap with no MRAI never converges; the watchdog
        // must catch it with the same verdict for every shard count.
        let graph = InternetModel::new()
            .transit_count(6)
            .stub_count(20)
            .build(6);
        let victim = graph.stub_asns()[0];
        let prefix = as_topology::prefix_for_asn(victim);
        let verdict = |shards: usize| {
            let mut net =
                ShardedNetwork::with_monitor_and_jitter(&graph, shards, 1, 2, 3, || NoopMonitor);
            net.set_watchdog(64);
            let mut plan = FaultPlan::new(5);
            plan.every(
                4,
                8,
                None,
                FaultEvent::ToggleOrigin {
                    asn: victim,
                    route: Route::new(prefix, AsPath::new()),
                },
            );
            net.set_fault_plan(plan).unwrap();
            net.originate(victim, prefix, None);
            net.run_with_limit(2_000_000).unwrap_err()
        };
        let reference = verdict(1);
        assert!(
            matches!(
                reference,
                ConvergenceError::Oscillating { .. } | ConvergenceError::BudgetExhausted { .. }
            ),
            "flap must not converge: {reference:?}"
        );
        assert_eq!(verdict(2), reference);
        assert_eq!(verdict(4), reference);
    }

    #[test]
    fn link_failure_between_runs_reroutes() {
        let mut net = ShardedNetwork::new(&figure1_graph(), 3);
        net.originate(Asn(4), p(), None);
        net.run().unwrap();
        net.fail_link(Asn(1), Asn(2));
        net.run().unwrap();
        assert_eq!(
            net.best_route(Asn(1), p()).unwrap().as_path().to_string(),
            "3 4"
        );
        assert!(net.link_is_down(Asn(2), Asn(1)));
        net.restore_link(Asn(1), Asn(2));
        net.run().unwrap();
        assert!(net.best_route(Asn(1), p()).is_some());
    }

    #[test]
    fn empty_graph_runs_to_nothing() {
        let mut net = ShardedNetwork::new(&AsGraph::new(), 4);
        assert_eq!(net.run().unwrap(), SimTime::ZERO);
        assert_eq!(net.events_fired(), 0);
    }
}
