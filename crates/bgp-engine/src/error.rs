//! Engine error types.

use std::error::Error;
use std::fmt;

/// The simulation failed to reach quiescence within the event budget.
///
/// BGP with loop suppression and a stable decision process always converges,
/// so hitting this limit indicates either a pathological configuration or a
/// deliberately tiny budget passed to
/// [`Network::run_with_limit`](crate::Network::run_with_limit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvergenceError {
    pub(crate) processed: u64,
    pub(crate) pending: usize,
}

impl ConvergenceError {
    /// Number of events processed before giving up.
    #[must_use]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still queued when the budget ran out.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending
    }
}

impl fmt::Display for ConvergenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulation did not converge: {} events processed, {} still pending",
            self.processed, self.pending
        )
    }
}

impl Error for ConvergenceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_accessors() {
        let e = ConvergenceError {
            processed: 10,
            pending: 3,
        };
        assert_eq!(e.processed(), 10);
        assert_eq!(e.pending(), 3);
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('3'));
    }
}
