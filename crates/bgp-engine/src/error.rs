//! Engine error types.

use std::error::Error;
use std::fmt;

use bgp_types::Asn;

/// The simulation failed to reach quiescence.
///
/// BGP with loop suppression and a stable decision process always converges
/// on a *static* configuration, so both variants point at something unusual:
/// a deliberately tiny budget, or a fault plan that keeps the network
/// churning forever (e.g. an unbounded origin flap with MRAI disabled).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConvergenceError {
    /// The event budget ran out before the queue drained.
    BudgetExhausted {
        /// Number of events processed before giving up.
        processed: u64,
        /// Number of events still queued when the budget ran out.
        pending: usize,
    },
    /// The convergence watchdog caught the network revisiting the same
    /// global routing state: it is oscillating, not converging, and would
    /// otherwise spin until the event budget ran out.
    Oscillating {
        /// Events between two sightings of the repeated routing state — the
        /// period of the oscillation, measured in delivered events.
        cycle_len: u64,
    },
}

impl ConvergenceError {
    /// Number of events processed before the budget ran out, when this is a
    /// [`ConvergenceError::BudgetExhausted`].
    #[must_use]
    pub fn processed(&self) -> Option<u64> {
        match self {
            ConvergenceError::BudgetExhausted { processed, .. } => Some(*processed),
            ConvergenceError::Oscillating { .. } => None,
        }
    }

    /// Returns `true` for the watchdog's oscillation verdict.
    #[must_use]
    pub fn is_oscillating(&self) -> bool {
        matches!(self, ConvergenceError::Oscillating { .. })
    }
}

impl fmt::Display for ConvergenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvergenceError::BudgetExhausted { processed, pending } => write!(
                f,
                "simulation did not converge: {processed} events processed, {pending} still pending"
            ),
            ConvergenceError::Oscillating { cycle_len } => write!(
                f,
                "simulation is oscillating: routing state repeats every {cycle_len} events"
            ),
        }
    }
}

impl Error for ConvergenceError {}

/// An operation named an AS the network does not contain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownAsError {
    /// The AS that was named but not found.
    pub asn: Asn,
}

impl fmt::Display for UnknownAsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} is not in the network", self.asn)
    }
}

impl Error for UnknownAsError {}

/// A fault plan referenced actors the network cannot satisfy. Raised by
/// [`Network::set_fault_plan`](crate::Network::set_fault_plan) at install
/// time, so the event loop never has to deal with a dangling reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPlanError {
    /// A timeline event named an AS outside the network.
    UnknownAs(Asn),
    /// A link fault model was attached to a pair of ASes that do not peer.
    NotALink(Asn, Asn),
    /// The network already has a fault plan; plans cannot be stacked.
    AlreadyInstalled,
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::UnknownAs(asn) => {
                write!(f, "fault plan names {asn}, which is not in the network")
            }
            FaultPlanError::NotALink(a, b) => {
                write!(f, "fault plan names link {a} <-> {b}, but they do not peer")
            }
            FaultPlanError::AlreadyInstalled => {
                write!(f, "the network already has a fault plan installed")
            }
        }
    }
}

impl Error for FaultPlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_display_and_accessors() {
        let e = ConvergenceError::BudgetExhausted {
            processed: 10,
            pending: 3,
        };
        assert_eq!(e.processed(), Some(10));
        assert!(!e.is_oscillating());
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn oscillating_display_and_accessors() {
        let e = ConvergenceError::Oscillating { cycle_len: 48 };
        assert_eq!(e.processed(), None);
        assert!(e.is_oscillating());
        assert!(e.to_string().contains("48"));
        assert!(e.to_string().contains("oscillating"));
    }

    #[test]
    fn unknown_as_display() {
        let e = UnknownAsError { asn: Asn(999) };
        assert!(e.to_string().contains("AS999"));
    }

    #[test]
    fn fault_plan_errors_display_parties() {
        assert!(FaultPlanError::UnknownAs(Asn(7))
            .to_string()
            .contains("AS7"));
        let e = FaultPlanError::NotALink(Asn(1), Asn(2)).to_string();
        assert!(e.contains("AS1") && e.contains("AS2"));
        assert!(FaultPlanError::AlreadyInstalled
            .to_string()
            .contains("already"));
    }
}
