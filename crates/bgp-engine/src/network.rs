//! The event-driven BGP network.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use as_topology::AsGraph;
use bgp_types::{AsPath, Asn, Ipv4Prefix, MoasList, Route};
use minimetrics::MetricsSink;
use rand::rngs::SmallRng;
use rand::Rng;
use sim_engine::fault::{FaultAction, FaultStats, LinkFaultModel, TimelineEntry};
use sim_engine::{EventQueue, SimTime};

use crate::error::{ConvergenceError, FaultPlanError, UnknownAsError};
use crate::fault::{FaultEvent, NetFaultPlan};
use crate::monitor::{NoopMonitor, RouteMonitor};
use crate::router::Router;
use crate::update::SharedUpdate;

/// An event in the network's discrete-event queue.
///
/// Endpoints are dense node indices (see [`Network`]'s interner), so the hot
/// loop never touches an ASN map; announce payloads are reference-counted,
/// so a fan-out of `k` messages shares one route allocation.
#[derive(Debug, Clone)]
enum NetEvent {
    /// A message in flight between two peering routers. `epoch` is the
    /// sending session's epoch at transmission time: if the session fails or
    /// resets while the message is in flight, the epoch moves on and the
    /// stale message is discarded on delivery — even if the link has since
    /// come back up.
    Deliver {
        /// Flat id of the directed edge `from -> to`, stamped at send time
        /// so delivery never repeats the adjacency binary search.
        edge: u32,
        from: u32,
        to: u32,
        epoch: u32,
        /// The link's fault model damaged this message in flight; the
        /// receiver detects the damage, discards it, and counts it.
        corrupt: bool,
        update: SharedUpdate,
    },
    /// An MRAI window for a directed session expired: flush pending updates.
    MraiFlush { from: u32, to: u32 },
    /// A fault-plan timeline entry fires (index into the installed plan).
    Fault { entry: u32 },
}

/// Counters accumulated while the simulation runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Announcement messages delivered.
    pub announcements: u64,
    /// Withdrawal messages delivered.
    pub withdrawals: u64,
    /// Updates superseded inside an MRAI window before ever being sent.
    pub mrai_coalesced: u64,
    /// Updates held back (deferred) by a closed MRAI window; a deferral that
    /// is later superseded also counts toward `mrai_coalesced`.
    pub mrai_deferred: u64,
    /// Messages dropped because their link failed — or their session was
    /// reset — while they were in flight.
    pub dropped_on_failed_links: u64,
    /// Messages that arrived corrupted and were discarded by the receiver.
    pub corrupted_dropped: u64,
    /// Simulated time when the network last went quiescent.
    pub converged_at: SimTime,
}

impl NetworkStats {
    /// Total update messages delivered.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.announcements + self.withdrawals
    }
}

/// Update counters for one directed BGP session.
///
/// "Sent" counts messages handed to the link (before the fault model decides
/// their fate); "received" counts messages actually delivered to the peer's
/// decision process, so `sent - received` on a session is the traffic lost
/// to drops, corruption, failures and stale epochs on that link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionCounters {
    /// Announcements handed to the link by the sending router.
    pub sent_announcements: u64,
    /// Withdrawals handed to the link by the sending router.
    pub sent_withdrawals: u64,
    /// Announcements delivered to the receiving router.
    pub recv_announcements: u64,
    /// Withdrawals delivered to the receiving router.
    pub recv_withdrawals: u64,
}

impl SessionCounters {
    /// `true` when the session never carried a message.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == SessionCounters::default()
    }
}

/// The installed fault scenario: the network-side state behind a
/// [`NetFaultPlan`].
#[derive(Debug, Clone)]
struct FaultState {
    /// The dedicated fault RNG, seeded from the plan. Message-fate decisions
    /// draw from it in deterministic event order, so runs are bit-identical.
    rng: SmallRng,
    /// Per directed edge id: the link's fault model (both directions of a
    /// planned link get the same model).
    models: BTreeMap<usize, LinkFaultModel>,
    /// Per directed edge id: what the faults actually did.
    stats: Vec<FaultStats>,
    /// The scripted events, indexed by [`NetEvent::Fault`]'s `entry`.
    timeline: Vec<TimelineEntry<FaultEvent>>,
    /// Remaining firings per periodic entry (`None` = unbounded).
    remaining: Vec<Option<u64>>,
}

/// An AS-level BGP network over an [`AsGraph`], driven to quiescence by a
/// deterministic discrete-event queue.
///
/// The monitor type parameter injects route validation: [`NoopMonitor`] for
/// the "Normal BGP" baseline, or the MOAS monitor from `moas-core` for the
/// paper's mechanism.
///
/// # Layout
///
/// At construction every ASN is interned into a dense index `0..n` (the
/// sorted `asn_index` table), and the adjacency is flattened into a CSR
/// layout: `peer_start[i]..peer_start[i + 1]` spans node `i`'s directed
/// edges, each identified by one flat edge id. Per-session state — link
/// delays, MRAI gates, MRAI pending batches, session epochs — lives in plain
/// `Vec`s indexed by edge id, so the event loop does array arithmetic
/// instead of walking `BTreeMap<(Asn, Asn), _>` trees. ASNs appear only at
/// the public API boundary; all inspection signatures are unchanged.
///
/// # Fault injection
///
/// [`Network::set_fault_plan`] installs a [`NetFaultPlan`]: per-link message
/// perturbation (drop / duplicate / extra delay / corrupt) plus a scripted
/// timeline of [`FaultEvent`]s, all driven from the plan's seed. The
/// convergence watchdog ([`Network::set_watchdog`]) turns livelock — e.g. an
/// unbounded origin flap with MRAI disabled — into a typed
/// [`ConvergenceError::Oscillating`] instead of an exhausted event budget.
///
/// # Example
///
/// ```
/// use as_topology::InternetModel;
/// use bgp_engine::Network;
/// use bgp_types::Asn;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = InternetModel::new().transit_count(5).stub_count(20).build(1);
/// let victim = graph.stub_asns()[0];
/// let prefix = as_topology::prefix_for_asn(victim);
///
/// let mut net = Network::new(&graph);
/// net.originate(victim, prefix, None);
/// net.run()?;
///
/// // Every AS converged on the true origin.
/// assert!(graph.asns().all(|asn| net.best_origin(asn, prefix) == Some(victim)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Network<M = NoopMonitor> {
    /// Sorted ASNs; position = dense node index.
    asn_index: Vec<Asn>,
    /// Routers, indexed by node.
    routers: Vec<Router>,
    /// CSR row starts into `peer_idx`/`delays`/MRAI tables; len `n + 1`.
    peer_start: Vec<usize>,
    /// CSR column data: neighbor node index per directed edge, each row
    /// ascending (routers keep their peer lists sorted).
    peer_idx: Vec<u32>,
    queue: EventQueue<NetEvent>,
    /// Per directed edge: link delay in ticks.
    delays: Vec<u64>,
    /// Per directed edge: sent/received update counters.
    sessions: Vec<SessionCounters>,
    monitor: M,
    stats: NetworkStats,
    /// Minimum route advertisement interval per directed session; 0 = off.
    mrai: u64,
    /// Per directed edge: the earliest time the next batch may be sent.
    mrai_gate: Vec<SimTime>,
    /// Per directed edge: updates held back by an open MRAI window, newest
    /// per prefix.
    mrai_pending: Vec<BTreeMap<Ipv4Prefix, SharedUpdate>>,
    /// Per directed edge: the session epoch. Bumped when the link fails or
    /// the session resets; in-flight messages stamped with an older epoch
    /// are discarded on delivery.
    epochs: Vec<u32>,
    /// `true` once any epoch has been bumped — gates the per-delivery epoch
    /// lookup so fault-free runs keep the original hot path.
    epochs_active: bool,
    /// Links currently failed (stored with endpoints ordered low-high).
    /// Failure injection may name ASes outside the graph, so this stays
    /// keyed by ASN; the hot path short-circuits on `is_empty`.
    failed_links: BTreeSet<(Asn, Asn)>,
    /// Convergence watchdog period in events; 0 = off.
    watchdog: u64,
    /// Installed fault plan state, if any. Boxed so fault-free networks pay
    /// one pointer.
    faults: Option<Box<FaultState>>,
}

/// Default event budget for [`Network::run`]: far beyond what any experiment
/// in the reproduction needs, while still catching runaway configurations.
const DEFAULT_EVENT_LIMIT: u64 = 50_000_000;

/// Repeated-fingerprint sightings before the watchdog declares oscillation.
/// Two sightings can happen transiently while churn settles; three of the
/// same global routing state with work still queued means a cycle.
const WATCHDOG_STRIKES: u32 = 3;

impl Network<NoopMonitor> {
    /// Builds a plain BGP network (no validation) with unit link delays.
    #[must_use]
    pub fn new(graph: &AsGraph) -> Self {
        Network::with_monitor(graph, NoopMonitor)
    }
}

impl<M: RouteMonitor> Network<M> {
    /// Builds a network whose routers consult `monitor` on every import and
    /// export. All links have unit delay.
    #[must_use]
    pub fn with_monitor(graph: &AsGraph, monitor: M) -> Self {
        let asn_index: Vec<Asn> = graph.asns().collect();
        debug_assert!(asn_index.windows(2).all(|w| w[0] < w[1]));
        let routers: Vec<Router> = asn_index
            .iter()
            .map(|&asn| Router::new(asn, graph.neighbors(asn).collect()))
            .collect();
        let mut peer_start = Vec::with_capacity(asn_index.len() + 1);
        peer_start.push(0);
        let mut peer_idx = Vec::new();
        for router in &routers {
            for &peer in router.peers() {
                let idx = asn_index
                    .binary_search(&peer)
                    .expect("graph links only name graph ASes");
                peer_idx.push(idx as u32);
            }
            peer_start.push(peer_idx.len());
        }
        let edges = peer_idx.len();
        Network {
            asn_index,
            routers,
            peer_start,
            peer_idx,
            queue: EventQueue::new(),
            delays: vec![1; edges],
            sessions: vec![SessionCounters::default(); edges],
            monitor,
            stats: NetworkStats::default(),
            mrai: 0,
            mrai_gate: vec![SimTime::ZERO; edges],
            mrai_pending: vec![BTreeMap::new(); edges],
            epochs: vec![0; edges],
            epochs_active: false,
            failed_links: BTreeSet::new(),
            watchdog: 0,
            faults: None,
        }
    }

    /// Like [`Network::with_monitor`], but each directed link gets an
    /// independent delay drawn uniformly from `1..=max_delay`, seeded so the
    /// timing pattern is reproducible. Varying delays explore different
    /// propagation races, which is what makes Monte Carlo runs meaningful.
    #[must_use]
    pub fn with_monitor_and_jitter(graph: &AsGraph, monitor: M, seed: u64, max_delay: u64) -> Self {
        let mut net = Network::with_monitor(graph, monitor);
        let max_delay = max_delay.max(1);
        let mut rng = sim_engine::rng::from_seed(seed);
        for (a, b) in graph.links() {
            let ia = net.index_of(a).expect("link endpoint in graph");
            let ib = net.index_of(b).expect("link endpoint in graph");
            let ab = net.edge_between(ia, ib).expect("link endpoints adjacent");
            net.delays[ab] = rng.gen_range(1..=max_delay);
            let ba = net.edge_between(ib, ia).expect("link endpoints adjacent");
            net.delays[ba] = rng.gen_range(1..=max_delay);
        }
        net
    }

    /// The monitor, for reading alarms and other accumulated state.
    #[must_use]
    pub fn monitor(&self) -> &M {
        &self.monitor
    }

    /// Mutable access to the monitor (e.g. to reconfigure between phases).
    #[must_use]
    pub fn monitor_mut(&mut self) -> &mut M {
        &mut self.monitor
    }

    /// Message counters.
    #[must_use]
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// The current simulated time (the timestamp of the most recently
    /// processed event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// The ASes in the network, ascending.
    pub fn asns(&self) -> impl Iterator<Item = Asn> + '_ {
        self.asn_index.iter().copied()
    }

    /// Read access to a router.
    #[must_use]
    pub fn router(&self, asn: Asn) -> Option<&Router> {
        self.index_of(asn).map(|i| &self.routers[i])
    }

    /// The best route an AS holds for `prefix`.
    #[must_use]
    pub fn best_route(&self, asn: Asn, prefix: Ipv4Prefix) -> Option<&Route> {
        self.router(asn)?.best_route(prefix)
    }

    /// The origin AS of the best route an AS holds for `prefix`.
    #[must_use]
    pub fn best_origin(&self, asn: Asn, prefix: Ipv4Prefix) -> Option<Asn> {
        self.router(asn)?.best_origin(prefix)
    }

    /// Makes `asn` originate `prefix`, optionally attaching a MOAS list to
    /// its announcements (§4.2: origins of a multi-homed prefix attach the
    /// full list; `None` models pre-deployment behaviour — receivers then
    /// apply the implicit `{origin}` rule).
    ///
    /// Events are queued; call [`Network::run`] to propagate.
    ///
    /// # Panics
    ///
    /// Panics if `asn` is not in the network.
    pub fn originate(&mut self, asn: Asn, prefix: Ipv4Prefix, moas_list: Option<MoasList>) {
        let mut route = Route::new(prefix, AsPath::new());
        if let Some(list) = moas_list {
            route = route.with_moas_list(list);
        }
        self.originate_route(asn, route);
    }

    /// Makes `asn` originate an arbitrary pre-built route (the path should be
    /// empty; the router prepends its own ASN on export). Used by attacker
    /// models that forge attributes.
    ///
    /// # Panics
    ///
    /// Panics if `asn` is not in the network; use
    /// [`Network::try_originate_route`] for a fallible variant.
    pub fn originate_route(&mut self, asn: Asn, route: Route) {
        self.try_originate_route(asn, route)
            .expect("originating AS not in network");
    }

    /// Fallible [`Network::originate_route`]: reports an unknown AS as a
    /// typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownAsError`] when `asn` is not in the network.
    pub fn try_originate_route(&mut self, asn: Asn, route: Route) -> Result<(), UnknownAsError> {
        let idx = self.index_of(asn).ok_or(UnknownAsError { asn })?;
        let updates = self.routers[idx].originate(route, &mut self.monitor);
        self.enqueue(idx, updates);
        Ok(())
    }

    /// Makes `asn` stop originating `prefix`.
    ///
    /// # Panics
    ///
    /// Panics if `asn` is not in the network; use [`Network::try_withdraw`]
    /// for a fallible variant.
    pub fn withdraw(&mut self, asn: Asn, prefix: Ipv4Prefix) {
        self.try_withdraw(asn, prefix)
            .expect("withdrawing AS not in network");
    }

    /// Fallible [`Network::withdraw`]: reports an unknown AS as a typed
    /// error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownAsError`] when `asn` is not in the network.
    pub fn try_withdraw(&mut self, asn: Asn, prefix: Ipv4Prefix) -> Result<(), UnknownAsError> {
        let idx = self.index_of(asn).ok_or(UnknownAsError { asn })?;
        let updates = self.routers[idx].withdraw_origin(prefix, &mut self.monitor);
        self.enqueue(idx, updates);
        Ok(())
    }

    /// Runs the simulation until no messages remain in flight.
    ///
    /// # Errors
    ///
    /// Returns [`ConvergenceError::BudgetExhausted`] if the default event
    /// budget runs out, or [`ConvergenceError::Oscillating`] if the watchdog
    /// (see [`Network::set_watchdog`]) catches the network cycling through
    /// the same routing states.
    pub fn run(&mut self) -> Result<SimTime, ConvergenceError> {
        self.run_with_limit(DEFAULT_EVENT_LIMIT)
    }

    /// Runs until quiescence or until `max_events` messages have been
    /// delivered.
    ///
    /// # Errors
    ///
    /// Returns [`ConvergenceError`] when the budget runs out first or the
    /// watchdog detects oscillation.
    pub fn run_with_limit(&mut self, max_events: u64) -> Result<SimTime, ConvergenceError> {
        let mut processed = 0u64;
        // Watchdog state is per-run: fingerprint -> (last sighting, hits).
        let mut seen: BTreeMap<u64, (u64, u32)> = BTreeMap::new();
        let mut clock = self.queue.now();
        while let Some((time, event)) = self.queue.pop() {
            processed += 1;
            if processed > max_events {
                return Err(ConvergenceError::BudgetExhausted {
                    processed,
                    pending: self.queue.len(),
                });
            }
            if time != clock {
                clock = time;
                self.monitor.on_clock(clock);
            }
            match event {
                NetEvent::Deliver {
                    edge,
                    from,
                    to,
                    epoch,
                    corrupt,
                    update,
                } => {
                    let (edge, from, to) = (edge as usize, from as usize, to as usize);
                    if !self.failed_links.is_empty()
                        && self.link_is_down(self.asn_index[from], self.asn_index[to])
                    {
                        self.drop_in_flight(edge);
                        continue;
                    }
                    // A stale epoch means the session failed or reset after
                    // this message was sent: it is lost even if the link has
                    // since come back up.
                    if self.epochs_active && self.epochs[edge] != epoch {
                        self.drop_in_flight(edge);
                        continue;
                    }
                    if corrupt {
                        // The receiver detects the damage and discards the
                        // update; the session survives (we do not model the
                        // RFC 4271 NOTIFICATION teardown for single bad
                        // messages — see DESIGN.md "Fault model").
                        self.stats.corrupted_dropped += 1;
                        if let Some(f) = self.faults.as_deref_mut() {
                            f.stats[edge].corrupted += 1;
                        }
                        continue;
                    }
                    match &update {
                        SharedUpdate::Announce(_) => {
                            self.stats.announcements += 1;
                            self.sessions[edge].recv_announcements += 1;
                        }
                        SharedUpdate::Withdraw(_) => {
                            self.stats.withdrawals += 1;
                            self.sessions[edge].recv_withdrawals += 1;
                        }
                    }
                    let from_asn = self.asn_index[from];
                    let updates =
                        self.routers[to].handle_update(from_asn, update, &mut self.monitor);
                    self.enqueue(to, updates);
                }
                NetEvent::MraiFlush { from, to } => {
                    let (from, to) = (from as usize, to as usize);
                    let edge = self
                        .edge_between(from, to)
                        .expect("MRAI state only exists on real sessions");
                    let pending = std::mem::take(&mut self.mrai_pending[edge]);
                    if pending.is_empty() {
                        continue;
                    }
                    self.mrai_gate[edge] = self.queue.now() + self.mrai;
                    for (_, update) in pending {
                        self.schedule_delivery(edge, from as u32, to as u32, update);
                    }
                }
                NetEvent::Fault { entry } => {
                    let idx = entry as usize;
                    let Some(faults) = self.faults.as_deref_mut() else {
                        continue;
                    };
                    let mut reschedule = None;
                    if let Some(period) = faults.timeline[idx].period {
                        let fire_again = match &mut faults.remaining[idx] {
                            None => true,
                            Some(n) if *n > 1 => {
                                *n -= 1;
                                true
                            }
                            Some(n) => {
                                *n = 0;
                                false
                            }
                        };
                        if fire_again {
                            reschedule = Some(period);
                        }
                    }
                    let event = faults.timeline[idx].event.clone();
                    if let Some(period) = reschedule {
                        self.queue.schedule_after(period, NetEvent::Fault { entry });
                    }
                    self.apply_fault_event(event);
                }
            }
            if self.watchdog > 0
                && processed.is_multiple_of(self.watchdog)
                && !self.queue.is_empty()
            {
                let fp = self.routing_fingerprint();
                match seen.get_mut(&fp) {
                    None => {
                        seen.insert(fp, (processed, 1));
                    }
                    Some((last, hits)) => {
                        let cycle_len = processed - *last;
                        *last = processed;
                        *hits += 1;
                        if *hits >= WATCHDOG_STRIKES {
                            return Err(ConvergenceError::Oscillating { cycle_len });
                        }
                    }
                }
            }
        }
        self.stats.converged_at = self.queue.now();
        Ok(self.queue.now())
    }

    // ------------------------------------------------------------------
    // MRAI, failure injection, and fault plans
    // ------------------------------------------------------------------

    /// Enables the minimum route advertisement interval: after a router sends
    /// an update to a peer, further updates for that peer are held and
    /// coalesced (newest per prefix wins) until `ticks` have elapsed
    /// (RFC 4271 §9.2.1.1; SSFnet enables a 30s MRAI by default). Pass 0 to
    /// disable. Takes effect for updates emitted after the call.
    pub fn set_mrai(&mut self, ticks: u64) {
        self.mrai = ticks;
    }

    /// Arms the convergence watchdog: every `interval_events` delivered
    /// events, the watchdog fingerprints the global routing state (every
    /// router's best table). Seeing the same fingerprint three times while
    /// work is still queued means the network is cycling, and
    /// [`Network::run`] returns [`ConvergenceError::Oscillating`] instead of
    /// burning the rest of the event budget. Pass 0 to disable (the
    /// default).
    ///
    /// Pick an interval comfortably larger than one convergence wave (a few
    /// thousand events) so transient states are not sampled often enough to
    /// trip the three-strike rule.
    pub fn set_watchdog(&mut self, interval_events: u64) {
        self.watchdog = interval_events;
    }

    /// Installs a fault plan: per-link perturbation models and a scripted
    /// event timeline, validated eagerly so the event loop never meets a
    /// dangling AS or link.
    ///
    /// Timeline entries are scheduled at their absolute tick (or immediately
    /// if that tick already passed); the fault RNG is seeded from the plan,
    /// so a run is bit-reproducible from `(network seed, plan)`.
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError`] when the plan names an AS outside the
    /// network, attaches a model or link event to a non-peering pair, or a
    /// plan is already installed.
    pub fn set_fault_plan(&mut self, plan: NetFaultPlan) -> Result<(), FaultPlanError> {
        if self.faults.is_some() {
            return Err(FaultPlanError::AlreadyInstalled);
        }
        // Validate everything before touching the queue.
        for entry in plan.timeline() {
            for asn in entry.event.actors() {
                if self.index_of(asn).is_none() {
                    return Err(FaultPlanError::UnknownAs(asn));
                }
            }
            if let FaultEvent::FailLink(a, b)
            | FaultEvent::RestoreLink(a, b)
            | FaultEvent::ResetSession(a, b) = entry.event
            {
                self.directed_edges(a, b)?;
            }
        }
        let mut models = BTreeMap::new();
        for (&(a, b), &model) in plan.link_models() {
            let (ab, ba) = self.directed_edges(a, b)?;
            models.insert(ab, model);
            models.insert(ba, model);
        }

        let timeline: Vec<TimelineEntry<FaultEvent>> = plan.timeline().to_vec();
        let remaining: Vec<Option<u64>> = timeline.iter().map(|e| e.count).collect();
        for (i, entry) in timeline.iter().enumerate() {
            if entry.count == Some(0) {
                continue;
            }
            let at = SimTime::from_ticks(entry.at).max(self.queue.now());
            self.queue.schedule(at, NetEvent::Fault { entry: i as u32 });
        }
        self.faults = Some(Box::new(FaultState {
            rng: sim_engine::rng::from_seed(plan.seed()),
            models,
            stats: vec![FaultStats::default(); self.peer_idx.len()],
            timeline,
            remaining,
        }));
        Ok(())
    }

    /// Per-link fault statistics, one entry per directed edge that saw any
    /// fault activity, keyed `(from, to)` and ascending. Empty when no fault
    /// plan is installed.
    #[must_use]
    pub fn fault_stats(&self) -> Vec<((Asn, Asn), FaultStats)> {
        let Some(faults) = self.faults.as_deref() else {
            return Vec::new();
        };
        faults
            .stats
            .iter()
            .enumerate()
            .filter(|(_, s)| **s != FaultStats::default())
            .map(|(e, s)| (self.edge_endpoints(e), *s))
            .collect()
    }

    /// Per-session update counters, one entry per directed edge that carried
    /// any traffic, keyed `(from, to)` and ascending by edge id.
    #[must_use]
    pub fn session_counters(&self) -> Vec<((Asn, Asn), SessionCounters)> {
        self.sessions
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_empty())
            .map(|(e, c)| (self.edge_endpoints(e), *c))
            .collect()
    }

    /// Lifetime counters of the underlying event queue.
    #[must_use]
    pub fn queue_stats(&self) -> sim_engine::QueueStats {
        self.queue.stats()
    }

    /// Emits everything the network observed into `sink`:
    ///
    /// * the event-queue counters (`sim.*`, see
    ///   [`EventQueue::export_metrics`](sim_engine::EventQueue));
    /// * aggregate message counters under `net.messages.*`, decision-process
    ///   invocations, and the convergence time in virtual ticks;
    /// * an `net.adj_rib_in.size` histogram with one observation per router;
    /// * per-session counters under `session.{from}->{to}.*` and per-link
    ///   fault stats under `link.{from}->{to}.*` (only sessions/links with
    ///   activity, so snapshots stay sparse).
    ///
    /// Every exported quantity is derived from the deterministic event
    /// stream (counts and virtual time, never wall-clock), so snapshots are
    /// byte-identical across runs and worker counts.
    pub fn export_metrics<S: MetricsSink>(&self, sink: &mut S) {
        if !S::ENABLED {
            return;
        }
        self.queue.export_metrics(sink);
        sink.counter_add("net.messages.announcements", self.stats.announcements);
        sink.counter_add("net.messages.withdrawals", self.stats.withdrawals);
        sink.counter_add("net.messages.mrai_coalesced", self.stats.mrai_coalesced);
        sink.counter_add("net.messages.mrai_deferred", self.stats.mrai_deferred);
        sink.counter_add(
            "net.messages.dropped_in_flight",
            self.stats.dropped_on_failed_links,
        );
        sink.counter_add(
            "net.messages.corrupted_dropped",
            self.stats.corrupted_dropped,
        );
        sink.gauge_set("net.converged_at_ticks", self.stats.converged_at.ticks());
        let mut decisions = 0u64;
        // One histogram observation per router: resolve the key to a token
        // once so the loop pays no per-observation hashing.
        let rib_size = sink.record_token("net.adj_rib_in.size");
        for router in &self.routers {
            decisions += router.decision_count();
            sink.record_by(rib_size, router.adj_rib_in_size() as u64);
        }
        sink.counter_add("net.decision_process.invocations", decisions);
        // One reusable key buffer for the dynamic per-session/per-link keys:
        // the `{prefix}.{a}->{b}.` stem is formatted once per pair and each
        // suffix is appended after truncating back to the stem.
        let mut key = String::with_capacity(64);
        for ((a, b), c) in self.session_counters() {
            key.clear();
            write!(key, "session.{a}->{b}.").expect("write to String cannot fail");
            let stem = key.len();
            for (suffix, value) in [
                ("sent_announcements", c.sent_announcements),
                ("sent_withdrawals", c.sent_withdrawals),
                ("recv_announcements", c.recv_announcements),
                ("recv_withdrawals", c.recv_withdrawals),
            ] {
                key.truncate(stem);
                key.push_str(suffix);
                sink.counter_add(&key, value);
            }
        }
        for ((a, b), s) in self.fault_stats() {
            key.clear();
            write!(key, "link.{a}->{b}.").expect("write to String cannot fail");
            let stem = key.len();
            for (suffix, value) in [
                ("delivered", s.delivered),
                ("dropped", s.dropped),
                ("duplicated", s.duplicated),
                ("reordered", s.reordered),
                ("corrupted", s.corrupted),
                ("dropped_link_down", s.dropped_link_down),
            ] {
                key.truncate(stem);
                key.push_str(suffix);
                sink.counter_add(&key, value);
            }
        }
    }

    /// All per-link fault statistics merged into one block.
    #[must_use]
    pub fn fault_stats_total(&self) -> FaultStats {
        let mut total = FaultStats::default();
        if let Some(faults) = self.faults.as_deref() {
            for stats in &faults.stats {
                total.merge(stats);
            }
        }
        total
    }

    /// Tears down the link between `a` and `b`: both routers treat every
    /// route learned over it as withdrawn and reconverge. Messages already
    /// in flight on the link are lost — the session epoch moves on, so they
    /// stay lost even if the link is restored before their delivery time.
    /// No-op for unknown or already-failed links.
    pub fn fail_link(&mut self, a: Asn, b: Asn) {
        if !self.failed_links.insert(Self::link_key(a, b)) {
            return;
        }
        if let (Some(ia), Some(ib)) = (self.index_of(a), self.index_of(b)) {
            for (x, y) in [(ia, ib), (ib, ia)] {
                if let Some(e) = self.edge_between(x, y) {
                    self.mrai_pending[e].clear();
                    self.mrai_gate[e] = SimTime::ZERO;
                    self.epochs[e] = self.epochs[e].wrapping_add(1);
                    self.epochs_active = true;
                }
            }
        }
        for (local, peer) in [(a, b), (b, a)] {
            if let Some(idx) = self.index_of(local) {
                let updates = self.routers[idx].peer_down(peer, &mut self.monitor);
                self.enqueue(idx, updates);
            }
        }
    }

    /// Restores a previously failed link: both routers re-advertise their
    /// current best routes to each other, as a fresh BGP session
    /// establishment would. Messages that were in flight when the link
    /// failed remain lost (their epoch is stale). No-op if the link is up.
    pub fn restore_link(&mut self, a: Asn, b: Asn) {
        if !self.failed_links.remove(&Self::link_key(a, b)) {
            return;
        }
        for (local, peer) in [(a, b), (b, a)] {
            if let Some(idx) = self.index_of(local) {
                let updates = self.routers[idx].refresh_peer(peer, &mut self.monitor);
                self.enqueue(idx, updates);
            }
        }
    }

    /// Resets the BGP session between two peers, as a TCP reset or a
    /// NOTIFICATION would: both sides implicitly withdraw every route
    /// learned over the peering and flood the resulting withdrawals, then
    /// the session re-establishes immediately and both sides re-announce
    /// their current best routes. In-flight messages on the session are
    /// lost (epoch bump); MRAI state for the session is cleared. No-op when
    /// the pair does not peer or the link is currently failed.
    pub fn reset_session(&mut self, a: Asn, b: Asn) {
        if self.link_is_down(a, b) {
            return;
        }
        let (Some(ia), Some(ib)) = (self.index_of(a), self.index_of(b)) else {
            return;
        };
        let (Some(ab), Some(ba)) = (self.edge_between(ia, ib), self.edge_between(ib, ia)) else {
            return;
        };
        for e in [ab, ba] {
            self.mrai_pending[e].clear();
            self.mrai_gate[e] = SimTime::ZERO;
            self.epochs[e] = self.epochs[e].wrapping_add(1);
        }
        self.epochs_active = true;
        // Teardown: each side drops what it learned from the other.
        for (idx, peer) in [(ia, b), (ib, a)] {
            let updates = self.routers[idx].peer_down(peer, &mut self.monitor);
            self.enqueue(idx, updates);
        }
        // Re-establishment: each side re-advertises its current best routes.
        for (idx, peer) in [(ia, b), (ib, a)] {
            let updates = self.routers[idx].refresh_peer(peer, &mut self.monitor);
            self.enqueue(idx, updates);
        }
    }

    /// Returns `true` while the link between `a` and `b` is failed.
    #[must_use]
    pub fn link_is_down(&self, a: Asn, b: Asn) -> bool {
        !self.failed_links.is_empty() && self.failed_links.contains(&Self::link_key(a, b))
    }

    fn link_key(a: Asn, b: Asn) -> (Asn, Asn) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Dense node index of an ASN, if it is in the network.
    fn index_of(&self, asn: Asn) -> Option<usize> {
        self.asn_index.binary_search(&asn).ok()
    }

    /// ASN endpoints `(from, to)` of a flat directed edge id.
    fn edge_endpoints(&self, e: usize) -> (Asn, Asn) {
        let from = self.peer_start.partition_point(|&start| start <= e) - 1;
        let to = self.peer_idx[e] as usize;
        (self.asn_index[from], self.asn_index[to])
    }

    /// Flat edge id of the directed session `from -> to`, if the nodes peer.
    fn edge_between(&self, from: usize, to: usize) -> Option<usize> {
        let row = &self.peer_idx[self.peer_start[from]..self.peer_start[from + 1]];
        row.binary_search(&(to as u32))
            .ok()
            .map(|k| self.peer_start[from] + k)
    }

    /// Both directed edge ids of a peering, or a typed error for the fault
    /// planner.
    fn directed_edges(&self, a: Asn, b: Asn) -> Result<(usize, usize), FaultPlanError> {
        let ia = self.index_of(a).ok_or(FaultPlanError::UnknownAs(a))?;
        let ib = self.index_of(b).ok_or(FaultPlanError::UnknownAs(b))?;
        let ab = self
            .edge_between(ia, ib)
            .ok_or(FaultPlanError::NotALink(a, b))?;
        let ba = self
            .edge_between(ib, ia)
            .ok_or(FaultPlanError::NotALink(a, b))?;
        Ok((ab, ba))
    }

    /// Counts a message lost in flight (link down or session epoch moved
    /// on), attributing it to the per-edge fault stats when a plan is
    /// installed.
    fn drop_in_flight(&mut self, edge: usize) {
        self.stats.dropped_on_failed_links += 1;
        if let Some(f) = self.faults.as_deref_mut() {
            f.stats[edge].dropped_link_down += 1;
        }
    }

    /// Executes one scripted fault event. The plan was validated at install
    /// time, so the unknown-AS paths are unreachable; the `try_` variants
    /// make that a silent no-op rather than a panic.
    fn apply_fault_event(&mut self, event: FaultEvent) {
        match event {
            FaultEvent::FailLink(a, b) => self.fail_link(a, b),
            FaultEvent::RestoreLink(a, b) => self.restore_link(a, b),
            FaultEvent::ResetSession(a, b) => self.reset_session(a, b),
            FaultEvent::Announce { asn, route } => {
                let _ = self.try_originate_route(asn, route);
            }
            FaultEvent::Withdraw { asn, prefix } => {
                let _ = self.try_withdraw(asn, prefix);
            }
            FaultEvent::ToggleOrigin { asn, route } => {
                let Some(idx) = self.index_of(asn) else {
                    return;
                };
                let prefix = route.prefix();
                let updates = if self.routers[idx].originates(prefix) {
                    self.routers[idx].withdraw_origin(prefix, &mut self.monitor)
                } else {
                    self.routers[idx].originate(route, &mut self.monitor)
                };
                self.enqueue(idx, updates);
            }
        }
    }

    /// Schedules one message on a directed edge, stamping the session epoch
    /// and applying the link's fault model (if any): the single choke point
    /// through which every delivery — direct or MRAI-flushed — passes.
    fn schedule_delivery(&mut self, edge: usize, from: u32, to: u32, update: SharedUpdate) {
        match &update {
            SharedUpdate::Announce(_) => self.sessions[edge].sent_announcements += 1,
            SharedUpdate::Withdraw(_) => self.sessions[edge].sent_withdrawals += 1,
        }
        let epoch = self.epochs[edge];
        let mut delay = self.delays[edge];
        let mut corrupt = false;
        let mut copies = 1u8;
        if let Some(faults) = self.faults.as_deref_mut() {
            if let Some(model) = faults.models.get(&edge) {
                match model.decide(&mut faults.rng) {
                    FaultAction::Deliver => faults.stats[edge].delivered += 1,
                    FaultAction::Drop => {
                        faults.stats[edge].dropped += 1;
                        return;
                    }
                    FaultAction::Duplicate => {
                        faults.stats[edge].duplicated += 1;
                        copies = 2;
                    }
                    FaultAction::Delay(extra) => {
                        faults.stats[edge].reordered += 1;
                        delay += extra;
                    }
                    FaultAction::Corrupt => corrupt = true,
                }
            }
        }
        for _ in 0..copies {
            self.queue.schedule_after(
                delay,
                NetEvent::Deliver {
                    edge: edge as u32,
                    from,
                    to,
                    epoch,
                    corrupt,
                    update: update.clone(),
                },
            );
        }
    }

    /// FNV-1a over every router's best table: node, prefix, learned-from
    /// peer, and the full AS path. Deterministic across platforms and
    /// toolchains (unlike `DefaultHasher`), and independent of monotonic
    /// counters like stats or age stamps, so a network cycling through the
    /// same routing states produces the same fingerprints.
    fn routing_fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        fn mix(h: u64, word: u64) -> u64 {
            (h ^ word).wrapping_mul(PRIME)
        }
        let mut h = OFFSET;
        for (node, router) in self.routers.iter().enumerate() {
            for prefix in router.prefixes() {
                h = mix(h, node as u64);
                h = mix(
                    h,
                    (u64::from(prefix.network()) << 8) | u64::from(prefix.len()),
                );
                h = match router.best_learned_from(prefix) {
                    Some(peer) => mix(h, u64::from(peer.0) | (1 << 40)),
                    None => mix(h, 1 << 41),
                };
                if let Some(route) = router.best_route(prefix) {
                    for asn in route.as_path().iter() {
                        h = mix(h, u64::from(asn.0));
                    }
                }
                h = mix(h, u64::MAX);
            }
        }
        h
    }

    fn enqueue(&mut self, from: usize, updates: Vec<(Asn, SharedUpdate)>) {
        let from_asn = self.asn_index[from];
        for (to_asn, update) in updates {
            if self.link_is_down(from_asn, to_asn) {
                continue;
            }
            // Routers only address their own peers, so the edge must exist.
            let k = self.routers[from]
                .peers()
                .binary_search(&to_asn)
                .expect("router update targets a peer");
            let edge = self.peer_start[from] + k;
            let to = self.peer_idx[edge];
            if self.mrai == 0 {
                self.schedule_delivery(edge, from as u32, to, update);
                continue;
            }
            let now = self.queue.now();
            let gate = self.mrai_gate[edge];
            if now >= gate && self.mrai_pending[edge].is_empty() {
                // Window open: send immediately and start a new window.
                self.mrai_gate[edge] = now + self.mrai;
                self.schedule_delivery(edge, from as u32, to, update);
            } else {
                // Window closed: coalesce, newest update per prefix wins.
                self.stats.mrai_deferred += 1;
                let pending = &mut self.mrai_pending[edge];
                if pending.insert(update.prefix(), update).is_some() {
                    self.stats.mrai_coalesced += 1;
                }
                // Schedule the flush the first time the batch forms.
                if pending.len() == 1 {
                    let wait = gate.ticks().saturating_sub(now.ticks()).max(1);
                    self.queue.schedule_after(
                        wait,
                        NetEvent::MraiFlush {
                            from: from as u32,
                            to,
                        },
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_topology::{AsRole, InternetModel};
    use sim_engine::fault::LinkFaultModel;

    fn figure1_graph() -> AsGraph {
        // AS 4 originates; AS Y (=2) and AS Z (=3) transit to AS X (=1).
        let mut g = AsGraph::new();
        g.add_as(Asn(4), AsRole::Stub);
        for t in [1, 2, 3] {
            g.add_as(Asn(t), AsRole::Transit);
        }
        g.add_link(Asn(4), Asn(2));
        g.add_link(Asn(4), Asn(3));
        g.add_link(Asn(2), Asn(1));
        g.add_link(Asn(3), Asn(1));
        g
    }

    fn p() -> Ipv4Prefix {
        "208.8.0.0/16".parse().unwrap()
    }

    #[test]
    fn figure1_all_ases_reach_origin() {
        let mut net = Network::new(&figure1_graph());
        net.originate(Asn(4), p(), None);
        net.run().unwrap();
        for asn in [1, 2, 3, 4] {
            assert_eq!(net.best_origin(Asn(asn), p()), Some(Asn(4)), "AS {asn}");
        }
        // AS X learned via the lower-numbered peer on the tie.
        assert_eq!(
            net.best_route(Asn(1), p()).unwrap().as_path().to_string(),
            "2 4"
        );
    }

    #[test]
    fn convergence_on_generated_internet() {
        let graph = InternetModel::new()
            .transit_count(10)
            .stub_count(50)
            .build(7);
        let victim = graph.stub_asns()[3];
        let prefix = as_topology::prefix_for_asn(victim);
        let mut net = Network::with_monitor_and_jitter(&graph, NoopMonitor, 7, 5);
        net.originate(victim, prefix, None);
        net.run().unwrap();
        for asn in graph.asns() {
            assert_eq!(net.best_origin(asn, prefix), Some(victim), "{asn}");
            let best = net.best_route(asn, prefix).unwrap();
            if asn != victim {
                // The path must be loop-free and end at the victim.
                assert_eq!(best.origin_as(), Some(victim));
                let hops: Vec<Asn> = best.as_path().iter().collect();
                let unique: std::collections::BTreeSet<Asn> = hops.iter().copied().collect();
                assert_eq!(hops.len(), unique.len(), "loop in path of {asn}");
            }
        }
        assert!(net.stats().total_messages() > 0);
    }

    #[test]
    fn withdrawal_clears_the_network() {
        let graph = figure1_graph();
        let mut net = Network::new(&graph);
        net.originate(Asn(4), p(), None);
        net.run().unwrap();
        net.withdraw(Asn(4), p());
        net.run().unwrap();
        for asn in [1, 2, 3, 4] {
            assert!(net.best_route(Asn(asn), p()).is_none(), "AS {asn}");
        }
        assert!(net.stats().withdrawals > 0);
    }

    #[test]
    fn export_metrics_reports_sessions_decisions_and_queue() {
        use minimetrics::RecordingSink;

        let mut net = Network::new(&figure1_graph());
        net.originate(Asn(4), p(), None);
        net.run().unwrap();

        let sessions = net.session_counters();
        assert!(!sessions.is_empty());
        let sent: u64 = sessions
            .iter()
            .map(|(_, c)| c.sent_announcements + c.sent_withdrawals)
            .sum();
        let recv: u64 = sessions
            .iter()
            .map(|(_, c)| c.recv_announcements + c.recv_withdrawals)
            .sum();
        // Nothing faulted, so everything sent was delivered.
        assert_eq!(sent, recv);
        assert_eq!(recv, net.stats().total_messages());

        let mut sink = RecordingSink::new();
        net.export_metrics(&mut sink);
        let snap = sink.into_snapshot();
        assert_eq!(
            snap.counters["net.messages.announcements"],
            net.stats().announcements
        );
        assert_eq!(snap.counters["sim.events.fired"], net.queue_stats().fired);
        assert!(snap.counters["net.decision_process.invocations"] > 0);
        // One Adj-RIB-In size observation per router.
        assert_eq!(
            snap.histograms["net.adj_rib_in.size"].count(),
            4,
            "figure-1 graph has four routers"
        );
        // AS 4 announced toward AS 2 exactly once.
        assert_eq!(snap.counters["session.AS4->AS2.sent_announcements"], 1);

        // A no-op export leaves no trace and costs nothing.
        net.export_metrics(&mut minimetrics::NoopSink);
    }

    #[test]
    fn mrai_deferrals_are_counted() {
        let graph = InternetModel::new()
            .transit_count(6)
            .stub_count(20)
            .build(5);
        let victim = graph.stub_asns()[0];
        let prefix = as_topology::prefix_for_asn(victim);
        let mut net = Network::with_monitor_and_jitter(&graph, NoopMonitor, 5, 4);
        net.set_mrai(10);
        net.originate(victim, prefix, None);
        net.run().unwrap();
        assert!(
            net.stats().mrai_deferred >= net.stats().mrai_coalesced,
            "every coalesced update was first deferred"
        );
        assert!(net.stats().mrai_deferred > 0);
    }

    #[test]
    fn two_valid_origins_split_the_network() {
        // Figure 2: prefix originated by AS 4 and AS 226 (multi-homing).
        let mut g = figure1_graph();
        g.add_as(Asn(226), AsRole::Stub);
        g.add_link(Asn(226), Asn(3));
        let mut net = Network::new(&g);
        let list: MoasList = [Asn(4), Asn(226)].into_iter().collect();
        net.originate(Asn(4), p(), Some(list.clone()));
        net.originate(Asn(226), p(), Some(list));
        net.run().unwrap();
        // Every AS reaches one of the two legitimate origins.
        for asn in [1, 2, 3, 4, 226] {
            let origin = net.best_origin(Asn(asn), p()).unwrap();
            assert!(
                origin == Asn(4) || origin == Asn(226),
                "AS {asn} -> {origin}"
            );
        }
        // AS 3 peers with both origins directly; the deterministic tiebreak
        // picks the lower peer ASN. AS 226 itself keeps its local route.
        assert_eq!(net.best_origin(Asn(3), p()), Some(Asn(4)));
        assert_eq!(net.best_origin(Asn(226), p()), Some(Asn(226)));
    }

    #[test]
    fn attacker_hijacks_shorter_path_under_normal_bgp() {
        // Figure 3: AS 52 (attacker) peers directly with AS X (=1); the
        // legitimate origin AS 4 is two hops away. Normal BGP adopts the
        // attacker's shorter route.
        let mut g = figure1_graph();
        g.add_as(Asn(52), AsRole::Stub);
        g.add_link(Asn(52), Asn(1));
        let mut net = Network::new(&g);
        net.originate(Asn(4), p(), None);
        net.originate(Asn(52), p(), None);
        net.run().unwrap();
        assert_eq!(net.best_origin(Asn(1), p()), Some(Asn(52)), "AS X hijacked");
        // ASes adjacent to the true origin keep the true route.
        assert_eq!(net.best_origin(Asn(2), p()), Some(Asn(4)));
        assert_eq!(net.best_origin(Asn(3), p()), Some(Asn(4)));
    }

    #[test]
    fn run_is_deterministic() {
        let graph = InternetModel::new()
            .transit_count(8)
            .stub_count(30)
            .build(3);
        let victim = graph.stub_asns()[0];
        let prefix = as_topology::prefix_for_asn(victim);
        let run = |seed| {
            let mut net = Network::with_monitor_and_jitter(&graph, NoopMonitor, seed, 4);
            net.originate(victim, prefix, None);
            net.run().unwrap();
            let origins: Vec<Option<Asn>> =
                graph.asns().map(|a| net.best_origin(a, prefix)).collect();
            (origins, *net.stats())
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn event_budget_is_enforced() {
        let graph = InternetModel::new()
            .transit_count(10)
            .stub_count(50)
            .build(1);
        let victim = graph.stub_asns()[0];
        let mut net = Network::new(&graph);
        net.originate(victim, as_topology::prefix_for_asn(victim), None);
        let err = net.run_with_limit(3).unwrap_err();
        match err {
            ConvergenceError::BudgetExhausted { processed, .. } => assert!(processed >= 3),
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn stats_track_announcements() {
        let mut net = Network::new(&figure1_graph());
        net.originate(Asn(4), p(), None);
        net.run().unwrap();
        assert!(net.stats().announcements >= 4);
        assert_eq!(net.stats().withdrawals, 0);
        assert!(net.stats().converged_at > SimTime::ZERO);
    }

    #[test]
    fn moas_list_travels_with_routes() {
        let mut net = Network::new(&figure1_graph());
        let list: MoasList = [Asn(4), Asn(226)].into_iter().collect();
        net.originate(Asn(4), p(), Some(list.clone()));
        net.run().unwrap();
        let at_x = net.best_route(Asn(1), p()).unwrap();
        assert_eq!(at_x.moas_list(), Some(list));
    }

    #[test]
    fn link_failure_reroutes_to_alternate_path() {
        let mut net = Network::new(&figure1_graph());
        net.originate(Asn(4), p(), None);
        net.run().unwrap();
        assert_eq!(
            net.best_route(Asn(1), p()).unwrap().as_path().to_string(),
            "2 4"
        );
        net.fail_link(Asn(1), Asn(2));
        net.run().unwrap();
        // AS 1 falls back to the path via AS 3.
        assert_eq!(
            net.best_route(Asn(1), p()).unwrap().as_path().to_string(),
            "3 4"
        );
        assert!(net.link_is_down(Asn(2), Asn(1)));
    }

    #[test]
    fn partitioning_the_origin_withdraws_everywhere() {
        let mut net = Network::new(&figure1_graph());
        net.originate(Asn(4), p(), None);
        net.run().unwrap();
        net.fail_link(Asn(4), Asn(2));
        net.fail_link(Asn(4), Asn(3));
        net.run().unwrap();
        for asn in [1, 2, 3] {
            assert!(net.best_route(Asn(asn), p()).is_none(), "AS {asn}");
        }
        // The origin keeps its own local route.
        assert_eq!(net.best_origin(Asn(4), p()), Some(Asn(4)));
    }

    #[test]
    fn restore_link_reconverges_to_original_state() {
        let mut reference = Network::new(&figure1_graph());
        reference.originate(Asn(4), p(), None);
        reference.run().unwrap();

        let mut net = Network::new(&figure1_graph());
        net.originate(Asn(4), p(), None);
        net.run().unwrap();
        net.fail_link(Asn(1), Asn(2));
        net.run().unwrap();
        net.restore_link(Asn(1), Asn(2));
        net.run().unwrap();
        for asn in [1, 2, 3, 4] {
            assert_eq!(
                net.best_origin(Asn(asn), p()),
                reference.best_origin(Asn(asn), p()),
                "AS {asn}"
            );
        }
        // The restored session carries a route again (either direction may
        // win the tie at AS 1 depending on arrival order, but reachability
        // is identical).
        assert!(net.best_route(Asn(1), p()).is_some());
    }

    #[test]
    fn failing_unknown_or_failed_link_is_a_noop() {
        let mut net = Network::new(&figure1_graph());
        net.fail_link(Asn(1), Asn(2));
        net.fail_link(Asn(2), Asn(1)); // already down
        net.restore_link(Asn(1), Asn(2));
        net.restore_link(Asn(1), Asn(2)); // already up
        net.fail_link(Asn(77), Asn(88)); // not a link at all: only marks state
        assert!(net.run().is_ok());
    }

    #[test]
    fn in_flight_messages_are_lost_on_failed_links() {
        let mut net = Network::new(&figure1_graph());
        net.originate(Asn(4), p(), None);
        // Fail the 4-2 link while the origination is still in flight.
        net.fail_link(Asn(4), Asn(2));
        net.run().unwrap();
        assert!(net.stats().dropped_on_failed_links > 0);
        // Reachability via AS 3 only.
        assert_eq!(
            net.best_route(Asn(1), p()).unwrap().as_path().to_string(),
            "3 4"
        );
    }

    #[test]
    fn in_flight_messages_stay_lost_across_a_fail_restore_bounce() {
        // A message is in flight on 4->2 when the link fails; the link is
        // restored *before* the message's delivery time. The session epoch
        // moved on, so the stale message must still be discarded — the
        // restored session re-advertises instead.
        let mut net = Network::new(&figure1_graph());
        net.originate(Asn(4), p(), None);
        net.fail_link(Asn(4), Asn(2));
        net.restore_link(Asn(4), Asn(2));
        net.run().unwrap();
        assert!(net.stats().dropped_on_failed_links > 0);
        // The re-establishment re-advertised, so reachability is intact.
        for asn in [1, 2, 3] {
            assert_eq!(net.best_origin(Asn(asn), p()), Some(Asn(4)), "AS {asn}");
        }
    }

    #[test]
    fn session_reset_withdraws_then_reconverges() {
        let mut net = Network::new(&figure1_graph());
        net.originate(Asn(4), p(), None);
        net.run().unwrap();
        let withdrawals_before = net.stats().withdrawals;
        net.reset_session(Asn(4), Asn(2));
        net.run().unwrap();
        // The teardown flooded real withdrawals...
        assert!(net.stats().withdrawals > withdrawals_before);
        // ...and the re-establishment restored every route.
        for asn in [1, 2, 3] {
            assert_eq!(net.best_origin(Asn(asn), p()), Some(Asn(4)), "AS {asn}");
        }
    }

    #[test]
    fn session_reset_on_unknown_pair_or_down_link_is_a_noop() {
        let mut net = Network::new(&figure1_graph());
        net.originate(Asn(4), p(), None);
        net.run().unwrap();
        net.reset_session(Asn(1), Asn(4)); // not adjacent
        net.reset_session(Asn(77), Asn(88)); // not in graph
        net.fail_link(Asn(4), Asn(2));
        net.reset_session(Asn(4), Asn(2)); // link is down
        assert!(net.run().is_ok());
    }

    #[test]
    fn mrai_preserves_outcome_and_coalesces_churn() {
        let graph = InternetModel::new()
            .transit_count(10)
            .stub_count(40)
            .build(21);
        let victim = graph.stub_asns()[0];
        let prefix = as_topology::prefix_for_asn(victim);

        let run = |mrai: u64| {
            let mut net = Network::new(&graph);
            net.set_mrai(mrai);
            // Flap twice to generate churn, then settle.
            net.originate(victim, prefix, None);
            net.run().unwrap();
            net.withdraw(victim, prefix);
            net.run().unwrap();
            net.originate(victim, prefix, None);
            net.run().unwrap();
            let origins: Vec<Option<Asn>> =
                graph.asns().map(|a| net.best_origin(a, prefix)).collect();
            (origins, *net.stats())
        };

        let (plain_origins, plain_stats) = run(0);
        let (mrai_origins, mrai_stats) = run(50);
        assert_eq!(
            plain_origins, mrai_origins,
            "MRAI must not change the outcome"
        );
        assert_eq!(plain_stats.mrai_coalesced, 0);
        assert!(
            mrai_stats.total_messages() <= plain_stats.total_messages(),
            "MRAI should not increase message count ({} > {})",
            mrai_stats.total_messages(),
            plain_stats.total_messages()
        );
    }

    #[test]
    fn mrai_delays_but_delivers() {
        let mut net = Network::new(&figure1_graph());
        net.set_mrai(100);
        net.originate(Asn(4), p(), None);
        let converged = net.run().unwrap();
        for asn in [1, 2, 3] {
            assert_eq!(net.best_origin(Asn(asn), p()), Some(Asn(4)), "AS {asn}");
        }
        assert!(converged >= SimTime::from_ticks(2));
    }

    #[test]
    #[should_panic(expected = "not in network")]
    fn originating_from_unknown_as_panics() {
        let mut net = Network::new(&figure1_graph());
        net.originate(Asn(999), p(), None);
    }

    #[test]
    fn try_variants_report_unknown_ases() {
        let mut net = Network::new(&figure1_graph());
        let err = net
            .try_originate_route(Asn(999), Route::new(p(), AsPath::new()))
            .unwrap_err();
        assert_eq!(err.asn, Asn(999));
        assert!(net.try_withdraw(Asn(999), p()).is_err());
        assert!(net
            .try_originate_route(Asn(4), Route::new(p(), AsPath::new()))
            .is_ok());
        assert!(net.try_withdraw(Asn(4), p()).is_ok());
    }

    // --------------------------------------------------------------
    // Fault plans
    // --------------------------------------------------------------

    #[test]
    fn fault_plan_validates_actors_and_links() {
        let mut net = Network::new(&figure1_graph());
        let mut plan = NetFaultPlan::new(1);
        plan.at(5, FaultEvent::FailLink(Asn(1), Asn(999)));
        assert_eq!(
            net.set_fault_plan(plan),
            Err(FaultPlanError::UnknownAs(Asn(999)))
        );

        let mut plan = NetFaultPlan::new(1);
        plan.at(5, FaultEvent::ResetSession(Asn(1), Asn(4))); // not adjacent
        assert_eq!(
            net.set_fault_plan(plan),
            Err(FaultPlanError::NotALink(Asn(1), Asn(4)))
        );

        let mut plan = NetFaultPlan::new(1);
        plan.lossy_link((Asn(1), Asn(4)), 0.5);
        assert_eq!(
            net.set_fault_plan(plan),
            Err(FaultPlanError::NotALink(Asn(1), Asn(4)))
        );

        assert!(net.set_fault_plan(NetFaultPlan::new(1)).is_ok());
        assert_eq!(
            net.set_fault_plan(NetFaultPlan::new(2)),
            Err(FaultPlanError::AlreadyInstalled)
        );
    }

    #[test]
    fn scripted_fail_and_restore_follow_the_timeline() {
        let mut net = Network::new(&figure1_graph());
        let mut plan = NetFaultPlan::new(7);
        plan.at(10, FaultEvent::FailLink(Asn(1), Asn(2)));
        plan.at(40, FaultEvent::RestoreLink(Asn(1), Asn(2)));
        net.set_fault_plan(plan).unwrap();
        net.originate(Asn(4), p(), None);
        net.run().unwrap();
        // Timeline ran to completion: the link ends restored and AS 1 holds
        // a route again.
        assert!(!net.link_is_down(Asn(1), Asn(2)));
        assert_eq!(net.best_origin(Asn(1), p()), Some(Asn(4)));
    }

    #[test]
    fn certainly_lossy_link_starves_one_path() {
        // Everything 4 sends toward 2 is dropped by the fault model, so the
        // network behaves as if only the 4-3 path existed.
        let mut net = Network::new(&figure1_graph());
        let mut plan = NetFaultPlan::new(3);
        plan.lossy_link((Asn(4), Asn(2)), 1.0);
        net.set_fault_plan(plan).unwrap();
        net.originate(Asn(4), p(), None);
        net.run().unwrap();
        assert_eq!(
            net.best_route(Asn(1), p()).unwrap().as_path().to_string(),
            "3 4"
        );
        let total = net.fault_stats_total();
        assert!(total.dropped > 0);
        // Both directions got the model; the stats name the directed edges.
        for ((a, b), stats) in net.fault_stats() {
            assert!([Asn(2), Asn(4)].contains(&a) && [Asn(2), Asn(4)].contains(&b));
            assert!(stats.dropped > 0 || stats.delivered > 0);
        }
    }

    #[test]
    fn corrupt_messages_are_dropped_and_counted_never_panic() {
        let mut net = Network::new(&figure1_graph());
        let mut plan = NetFaultPlan::new(5);
        plan.set_link_model(
            (Asn(4), Asn(2)),
            LinkFaultModel {
                corrupt: 1.0,
                ..LinkFaultModel::default()
            },
        );
        net.set_fault_plan(plan).unwrap();
        net.originate(Asn(4), p(), None);
        net.run().unwrap();
        assert!(net.stats().corrupted_dropped > 0);
        assert_eq!(
            net.fault_stats_total().corrupted,
            net.stats().corrupted_dropped
        );
        // The clean path still delivered.
        assert_eq!(net.best_origin(Asn(1), p()), Some(Asn(4)));
    }

    #[test]
    fn duplicates_and_delays_do_not_change_the_outcome() {
        let graph = InternetModel::new()
            .transit_count(6)
            .stub_count(20)
            .build(11);
        let victim = graph.stub_asns()[0];
        let prefix = as_topology::prefix_for_asn(victim);
        let clean = {
            let mut net = Network::new(&graph);
            net.originate(victim, prefix, None);
            net.run().unwrap();
            graph
                .asns()
                .map(|a| net.best_origin(a, prefix))
                .collect::<Vec<_>>()
        };
        let mut net = Network::new(&graph);
        let mut plan = NetFaultPlan::new(13);
        for (a, b) in graph.links() {
            plan.set_link_model(
                (a, b),
                LinkFaultModel {
                    duplicate: 0.3,
                    reorder: 0.3,
                    max_extra_delay: 4,
                    ..LinkFaultModel::default()
                },
            );
        }
        net.set_fault_plan(plan).unwrap();
        net.originate(victim, prefix, None);
        net.run().unwrap();
        let faulty: Vec<Option<Asn>> = graph.asns().map(|a| net.best_origin(a, prefix)).collect();
        assert_eq!(clean, faulty, "duplication/reordering must not partition");
        let total = net.fault_stats_total();
        assert!(total.duplicated > 0 && total.reordered > 0);
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let graph = InternetModel::new()
            .transit_count(6)
            .stub_count(20)
            .build(2);
        let victim = graph.stub_asns()[1];
        let prefix = as_topology::prefix_for_asn(victim);
        let run = || {
            let mut net = Network::new(&graph);
            let mut plan = NetFaultPlan::new(99);
            for (a, b) in graph.links() {
                plan.set_link_model(
                    (a, b),
                    LinkFaultModel {
                        drop: 0.1,
                        duplicate: 0.1,
                        reorder: 0.2,
                        corrupt: 0.05,
                        max_extra_delay: 3,
                    },
                );
            }
            net.set_fault_plan(plan).unwrap();
            net.originate(victim, prefix, None);
            net.run().unwrap();
            let origins: Vec<Option<Asn>> =
                graph.asns().map(|a| net.best_origin(a, prefix)).collect();
            (origins, *net.stats(), net.fault_stats_total())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn periodic_flap_with_bound_terminates_on_its_own() {
        let mut net = Network::new(&figure1_graph());
        let mut plan = NetFaultPlan::new(1);
        plan.every(
            10,
            20,
            Some(4),
            FaultEvent::ToggleOrigin {
                asn: Asn(4),
                route: Route::new(p(), AsPath::new()),
            },
        );
        net.set_fault_plan(plan).unwrap();
        net.run().unwrap();
        // Four toggles: originate, withdraw, originate, withdraw.
        assert!(net.best_route(Asn(1), p()).is_none());
        assert!(net.stats().withdrawals > 0);
    }

    #[test]
    fn watchdog_reports_oscillation_on_unbounded_flap_storm() {
        let mut net = Network::new(&figure1_graph());
        net.set_watchdog(64);
        let mut plan = NetFaultPlan::new(1);
        plan.every(
            5,
            10,
            None, // forever: only the watchdog can end this
            FaultEvent::ToggleOrigin {
                asn: Asn(4),
                route: Route::new(p(), AsPath::new()),
            },
        );
        net.set_fault_plan(plan).unwrap();
        let err = net.run().unwrap_err();
        match err {
            ConvergenceError::Oscillating { cycle_len } => assert!(cycle_len > 0),
            other => panic!("expected oscillation, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_stays_quiet_on_converging_runs() {
        let graph = InternetModel::new()
            .transit_count(10)
            .stub_count(50)
            .build(7);
        let victim = graph.stub_asns()[3];
        let prefix = as_topology::prefix_for_asn(victim);
        let mut net = Network::with_monitor_and_jitter(&graph, NoopMonitor, 7, 5);
        net.set_watchdog(32); // aggressively small on purpose
        net.originate(victim, prefix, None);
        assert!(net.run().is_ok());
    }

    #[test]
    fn scripted_announce_and_withdraw_fire_at_their_ticks() {
        let mut net = Network::new(&figure1_graph());
        let mut plan = NetFaultPlan::new(0);
        plan.at(
            10,
            FaultEvent::Announce {
                asn: Asn(4),
                route: Route::new(p(), AsPath::new()),
            },
        );
        plan.at(
            50,
            FaultEvent::Withdraw {
                asn: Asn(4),
                prefix: p(),
            },
        );
        net.set_fault_plan(plan).unwrap();
        net.run().unwrap();
        assert!(net.best_route(Asn(1), p()).is_none());
        assert!(net.stats().announcements > 0);
        assert!(net.stats().withdrawals > 0);
        assert!(net.now() >= SimTime::from_ticks(50));
    }
}
