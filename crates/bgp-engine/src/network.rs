//! The event-driven BGP network.

use std::collections::BTreeSet;

use as_topology::AsGraph;
use bgp_types::{AsPath, Asn, Ipv4Prefix, MoasList, Route};
use rand::Rng;
use sim_engine::{EventQueue, SimTime};

use crate::error::ConvergenceError;
use crate::monitor::{NoopMonitor, RouteMonitor};
use crate::router::Router;
use crate::update::SharedUpdate;

/// An event in the network's discrete-event queue.
///
/// Endpoints are dense node indices (see [`Network`]'s interner), so the hot
/// loop never touches an ASN map; announce payloads are reference-counted,
/// so a fan-out of `k` messages shares one route allocation.
#[derive(Debug, Clone)]
enum NetEvent {
    /// A message in flight between two peering routers.
    Deliver {
        from: u32,
        to: u32,
        update: SharedUpdate,
    },
    /// An MRAI window for a directed session expired: flush pending updates.
    MraiFlush { from: u32, to: u32 },
}

/// Counters accumulated while the simulation runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Announcement messages delivered.
    pub announcements: u64,
    /// Withdrawal messages delivered.
    pub withdrawals: u64,
    /// Updates superseded inside an MRAI window before ever being sent.
    pub mrai_coalesced: u64,
    /// Messages dropped because their link failed while they were in flight.
    pub dropped_on_failed_links: u64,
    /// Simulated time when the network last went quiescent.
    pub converged_at: SimTime,
}

impl NetworkStats {
    /// Total update messages delivered.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.announcements + self.withdrawals
    }
}

/// An AS-level BGP network over an [`AsGraph`], driven to quiescence by a
/// deterministic discrete-event queue.
///
/// The monitor type parameter injects route validation: [`NoopMonitor`] for
/// the "Normal BGP" baseline, or the MOAS monitor from `moas-core` for the
/// paper's mechanism.
///
/// # Layout
///
/// At construction every ASN is interned into a dense index `0..n` (the
/// sorted `asn_index` table), and the adjacency is flattened into a CSR
/// layout: `peer_start[i]..peer_start[i + 1]` spans node `i`'s directed
/// edges, each identified by one flat edge id. Per-session state — link
/// delays, MRAI gates, MRAI pending batches — lives in plain `Vec`s indexed
/// by edge id, so the event loop does array arithmetic instead of walking
/// `BTreeMap<(Asn, Asn), _>` trees. ASNs appear only at the public API
/// boundary; all inspection signatures are unchanged.
///
/// # Example
///
/// ```
/// use as_topology::InternetModel;
/// use bgp_engine::Network;
/// use bgp_types::Asn;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = InternetModel::new().transit_count(5).stub_count(20).build(1);
/// let victim = graph.stub_asns()[0];
/// let prefix = as_topology::prefix_for_asn(victim);
///
/// let mut net = Network::new(&graph);
/// net.originate(victim, prefix, None);
/// net.run()?;
///
/// // Every AS converged on the true origin.
/// assert!(graph.asns().all(|asn| net.best_origin(asn, prefix) == Some(victim)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Network<M = NoopMonitor> {
    /// Sorted ASNs; position = dense node index.
    asn_index: Vec<Asn>,
    /// Routers, indexed by node.
    routers: Vec<Router>,
    /// CSR row starts into `peer_idx`/`delays`/MRAI tables; len `n + 1`.
    peer_start: Vec<usize>,
    /// CSR column data: neighbor node index per directed edge, each row
    /// ascending (routers keep their peer lists sorted).
    peer_idx: Vec<u32>,
    queue: EventQueue<NetEvent>,
    /// Per directed edge: link delay in ticks.
    delays: Vec<u64>,
    monitor: M,
    stats: NetworkStats,
    /// Minimum route advertisement interval per directed session; 0 = off.
    mrai: u64,
    /// Per directed edge: the earliest time the next batch may be sent.
    mrai_gate: Vec<SimTime>,
    /// Per directed edge: updates held back by an open MRAI window, newest
    /// per prefix.
    mrai_pending: Vec<std::collections::BTreeMap<Ipv4Prefix, SharedUpdate>>,
    /// Links currently failed (stored with endpoints ordered low-high).
    /// Failure injection may name ASes outside the graph, so this stays
    /// keyed by ASN; the hot path short-circuits on `is_empty`.
    failed_links: BTreeSet<(Asn, Asn)>,
}

/// Default event budget for [`Network::run`]: far beyond what any experiment
/// in the reproduction needs, while still catching runaway configurations.
const DEFAULT_EVENT_LIMIT: u64 = 50_000_000;

impl Network<NoopMonitor> {
    /// Builds a plain BGP network (no validation) with unit link delays.
    #[must_use]
    pub fn new(graph: &AsGraph) -> Self {
        Network::with_monitor(graph, NoopMonitor)
    }
}

impl<M: RouteMonitor> Network<M> {
    /// Builds a network whose routers consult `monitor` on every import and
    /// export. All links have unit delay.
    #[must_use]
    pub fn with_monitor(graph: &AsGraph, monitor: M) -> Self {
        let asn_index: Vec<Asn> = graph.asns().collect();
        debug_assert!(asn_index.windows(2).all(|w| w[0] < w[1]));
        let routers: Vec<Router> = asn_index
            .iter()
            .map(|&asn| Router::new(asn, graph.neighbors(asn).collect()))
            .collect();
        let mut peer_start = Vec::with_capacity(asn_index.len() + 1);
        peer_start.push(0);
        let mut peer_idx = Vec::new();
        for router in &routers {
            for &peer in router.peers() {
                let idx = asn_index
                    .binary_search(&peer)
                    .expect("graph links only name graph ASes");
                peer_idx.push(idx as u32);
            }
            peer_start.push(peer_idx.len());
        }
        let edges = peer_idx.len();
        Network {
            asn_index,
            routers,
            peer_start,
            peer_idx,
            queue: EventQueue::new(),
            delays: vec![1; edges],
            monitor,
            stats: NetworkStats::default(),
            mrai: 0,
            mrai_gate: vec![SimTime::ZERO; edges],
            mrai_pending: vec![std::collections::BTreeMap::new(); edges],
            failed_links: BTreeSet::new(),
        }
    }

    /// Like [`Network::with_monitor`], but each directed link gets an
    /// independent delay drawn uniformly from `1..=max_delay`, seeded so the
    /// timing pattern is reproducible. Varying delays explore different
    /// propagation races, which is what makes Monte Carlo runs meaningful.
    #[must_use]
    pub fn with_monitor_and_jitter(graph: &AsGraph, monitor: M, seed: u64, max_delay: u64) -> Self {
        let mut net = Network::with_monitor(graph, monitor);
        let max_delay = max_delay.max(1);
        let mut rng = sim_engine::rng::from_seed(seed);
        for (a, b) in graph.links() {
            let ia = net.index_of(a).expect("link endpoint in graph");
            let ib = net.index_of(b).expect("link endpoint in graph");
            let ab = net.edge_between(ia, ib).expect("link endpoints adjacent");
            net.delays[ab] = rng.gen_range(1..=max_delay);
            let ba = net.edge_between(ib, ia).expect("link endpoints adjacent");
            net.delays[ba] = rng.gen_range(1..=max_delay);
        }
        net
    }

    /// The monitor, for reading alarms and other accumulated state.
    #[must_use]
    pub fn monitor(&self) -> &M {
        &self.monitor
    }

    /// Mutable access to the monitor (e.g. to reconfigure between phases).
    #[must_use]
    pub fn monitor_mut(&mut self) -> &mut M {
        &mut self.monitor
    }

    /// Message counters.
    #[must_use]
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// The ASes in the network, ascending.
    pub fn asns(&self) -> impl Iterator<Item = Asn> + '_ {
        self.asn_index.iter().copied()
    }

    /// Read access to a router.
    #[must_use]
    pub fn router(&self, asn: Asn) -> Option<&Router> {
        self.index_of(asn).map(|i| &self.routers[i])
    }

    /// The best route an AS holds for `prefix`.
    #[must_use]
    pub fn best_route(&self, asn: Asn, prefix: Ipv4Prefix) -> Option<&Route> {
        self.router(asn)?.best_route(prefix)
    }

    /// The origin AS of the best route an AS holds for `prefix`.
    #[must_use]
    pub fn best_origin(&self, asn: Asn, prefix: Ipv4Prefix) -> Option<Asn> {
        self.router(asn)?.best_origin(prefix)
    }

    /// Makes `asn` originate `prefix`, optionally attaching a MOAS list to
    /// its announcements (§4.2: origins of a multi-homed prefix attach the
    /// full list; `None` models pre-deployment behaviour — receivers then
    /// apply the implicit `{origin}` rule).
    ///
    /// Events are queued; call [`Network::run`] to propagate.
    ///
    /// # Panics
    ///
    /// Panics if `asn` is not in the network.
    pub fn originate(&mut self, asn: Asn, prefix: Ipv4Prefix, moas_list: Option<MoasList>) {
        let mut route = Route::new(prefix, AsPath::new());
        if let Some(list) = moas_list {
            route = route.with_moas_list(list);
        }
        self.originate_route(asn, route);
    }

    /// Makes `asn` originate an arbitrary pre-built route (the path should be
    /// empty; the router prepends its own ASN on export). Used by attacker
    /// models that forge attributes.
    ///
    /// # Panics
    ///
    /// Panics if `asn` is not in the network.
    pub fn originate_route(&mut self, asn: Asn, route: Route) {
        let idx = self.index_of(asn).expect("originating AS not in network");
        let updates = self.routers[idx].originate(route, &mut self.monitor);
        self.enqueue(idx, updates);
    }

    /// Makes `asn` stop originating `prefix`.
    ///
    /// # Panics
    ///
    /// Panics if `asn` is not in the network.
    pub fn withdraw(&mut self, asn: Asn, prefix: Ipv4Prefix) {
        let idx = self.index_of(asn).expect("withdrawing AS not in network");
        let updates = self.routers[idx].withdraw_origin(prefix, &mut self.monitor);
        self.enqueue(idx, updates);
    }

    /// Runs the simulation until no messages remain in flight.
    ///
    /// # Errors
    ///
    /// Returns [`ConvergenceError`] if the default event budget is exhausted,
    /// which indicates a pathological configuration.
    pub fn run(&mut self) -> Result<SimTime, ConvergenceError> {
        self.run_with_limit(DEFAULT_EVENT_LIMIT)
    }

    /// Runs until quiescence or until `max_events` messages have been
    /// delivered.
    ///
    /// # Errors
    ///
    /// Returns [`ConvergenceError`] when the budget runs out first.
    pub fn run_with_limit(&mut self, max_events: u64) -> Result<SimTime, ConvergenceError> {
        let mut processed = 0u64;
        while let Some((_, event)) = self.queue.pop() {
            processed += 1;
            if processed > max_events {
                return Err(ConvergenceError {
                    processed,
                    pending: self.queue.len(),
                });
            }
            match event {
                NetEvent::Deliver { from, to, update } => {
                    let (from, to) = (from as usize, to as usize);
                    if !self.failed_links.is_empty()
                        && self.link_is_down(self.asn_index[from], self.asn_index[to])
                    {
                        self.stats.dropped_on_failed_links += 1;
                        continue;
                    }
                    match &update {
                        SharedUpdate::Announce(_) => self.stats.announcements += 1,
                        SharedUpdate::Withdraw(_) => self.stats.withdrawals += 1,
                    }
                    let from_asn = self.asn_index[from];
                    let updates =
                        self.routers[to].handle_update(from_asn, update, &mut self.monitor);
                    self.enqueue(to, updates);
                }
                NetEvent::MraiFlush { from, to } => {
                    let (from, to) = (from as usize, to as usize);
                    let edge = self
                        .edge_between(from, to)
                        .expect("MRAI state only exists on real sessions");
                    let pending = std::mem::take(&mut self.mrai_pending[edge]);
                    if pending.is_empty() {
                        continue;
                    }
                    self.mrai_gate[edge] = self.queue.now() + self.mrai;
                    let delay = self.delays[edge];
                    for (_, update) in pending {
                        self.queue.schedule_after(
                            delay,
                            NetEvent::Deliver {
                                from: from as u32,
                                to: to as u32,
                                update,
                            },
                        );
                    }
                }
            }
        }
        self.stats.converged_at = self.queue.now();
        Ok(self.queue.now())
    }

    // ------------------------------------------------------------------
    // MRAI and failure injection
    // ------------------------------------------------------------------

    /// Enables the minimum route advertisement interval: after a router sends
    /// an update to a peer, further updates for that peer are held and
    /// coalesced (newest per prefix wins) until `ticks` have elapsed
    /// (RFC 4271 §9.2.1.1; SSFnet enables a 30s MRAI by default). Pass 0 to
    /// disable. Takes effect for updates emitted after the call.
    pub fn set_mrai(&mut self, ticks: u64) {
        self.mrai = ticks;
    }

    /// Tears down the link between `a` and `b`: both routers treat every
    /// route learned over it as withdrawn and reconverge; messages already in
    /// flight on the link are lost. No-op for unknown or already-failed
    /// links.
    pub fn fail_link(&mut self, a: Asn, b: Asn) {
        if !self.failed_links.insert(Self::link_key(a, b)) {
            return;
        }
        if let (Some(ia), Some(ib)) = (self.index_of(a), self.index_of(b)) {
            if let Some(e) = self.edge_between(ia, ib) {
                self.mrai_pending[e].clear();
            }
            if let Some(e) = self.edge_between(ib, ia) {
                self.mrai_pending[e].clear();
            }
        }
        for (local, peer) in [(a, b), (b, a)] {
            if let Some(idx) = self.index_of(local) {
                let updates = self.routers[idx].peer_down(peer, &mut self.monitor);
                self.enqueue(idx, updates);
            }
        }
    }

    /// Restores a previously failed link: both routers re-advertise their
    /// current best routes to each other. No-op if the link is up.
    pub fn restore_link(&mut self, a: Asn, b: Asn) {
        if !self.failed_links.remove(&Self::link_key(a, b)) {
            return;
        }
        for (local, peer) in [(a, b), (b, a)] {
            if let Some(idx) = self.index_of(local) {
                let updates = self.routers[idx].refresh_peer(peer, &mut self.monitor);
                self.enqueue(idx, updates);
            }
        }
    }

    /// Returns `true` while the link between `a` and `b` is failed.
    #[must_use]
    pub fn link_is_down(&self, a: Asn, b: Asn) -> bool {
        !self.failed_links.is_empty() && self.failed_links.contains(&Self::link_key(a, b))
    }

    fn link_key(a: Asn, b: Asn) -> (Asn, Asn) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Dense node index of an ASN, if it is in the network.
    fn index_of(&self, asn: Asn) -> Option<usize> {
        self.asn_index.binary_search(&asn).ok()
    }

    /// Flat edge id of the directed session `from -> to`, if the nodes peer.
    fn edge_between(&self, from: usize, to: usize) -> Option<usize> {
        let row = &self.peer_idx[self.peer_start[from]..self.peer_start[from + 1]];
        row.binary_search(&(to as u32))
            .ok()
            .map(|k| self.peer_start[from] + k)
    }

    fn enqueue(&mut self, from: usize, updates: Vec<(Asn, SharedUpdate)>) {
        let from_asn = self.asn_index[from];
        for (to_asn, update) in updates {
            if self.link_is_down(from_asn, to_asn) {
                continue;
            }
            // Routers only address their own peers, so the edge must exist.
            let k = self.routers[from]
                .peers()
                .binary_search(&to_asn)
                .expect("router update targets a peer");
            let edge = self.peer_start[from] + k;
            let to = self.peer_idx[edge];
            if self.mrai == 0 {
                self.queue.schedule_after(
                    self.delays[edge],
                    NetEvent::Deliver {
                        from: from as u32,
                        to,
                        update,
                    },
                );
                continue;
            }
            let now = self.queue.now();
            let gate = self.mrai_gate[edge];
            if now >= gate && self.mrai_pending[edge].is_empty() {
                // Window open: send immediately and start a new window.
                self.mrai_gate[edge] = now + self.mrai;
                self.queue.schedule_after(
                    self.delays[edge],
                    NetEvent::Deliver {
                        from: from as u32,
                        to,
                        update,
                    },
                );
            } else {
                // Window closed: coalesce, newest update per prefix wins.
                let pending = &mut self.mrai_pending[edge];
                if pending.insert(update.prefix(), update).is_some() {
                    self.stats.mrai_coalesced += 1;
                }
                // Schedule the flush the first time the batch forms.
                if pending.len() == 1 {
                    let wait = gate.ticks().saturating_sub(now.ticks()).max(1);
                    self.queue.schedule_after(
                        wait,
                        NetEvent::MraiFlush {
                            from: from as u32,
                            to,
                        },
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_topology::{AsRole, InternetModel};

    fn figure1_graph() -> AsGraph {
        // AS 4 originates; AS Y (=2) and AS Z (=3) transit to AS X (=1).
        let mut g = AsGraph::new();
        g.add_as(Asn(4), AsRole::Stub);
        for t in [1, 2, 3] {
            g.add_as(Asn(t), AsRole::Transit);
        }
        g.add_link(Asn(4), Asn(2));
        g.add_link(Asn(4), Asn(3));
        g.add_link(Asn(2), Asn(1));
        g.add_link(Asn(3), Asn(1));
        g
    }

    fn p() -> Ipv4Prefix {
        "208.8.0.0/16".parse().unwrap()
    }

    #[test]
    fn figure1_all_ases_reach_origin() {
        let mut net = Network::new(&figure1_graph());
        net.originate(Asn(4), p(), None);
        net.run().unwrap();
        for asn in [1, 2, 3, 4] {
            assert_eq!(net.best_origin(Asn(asn), p()), Some(Asn(4)), "AS {asn}");
        }
        // AS X learned via the lower-numbered peer on the tie.
        assert_eq!(
            net.best_route(Asn(1), p()).unwrap().as_path().to_string(),
            "2 4"
        );
    }

    #[test]
    fn convergence_on_generated_internet() {
        let graph = InternetModel::new()
            .transit_count(10)
            .stub_count(50)
            .build(7);
        let victim = graph.stub_asns()[3];
        let prefix = as_topology::prefix_for_asn(victim);
        let mut net = Network::with_monitor_and_jitter(&graph, NoopMonitor, 7, 5);
        net.originate(victim, prefix, None);
        net.run().unwrap();
        for asn in graph.asns() {
            assert_eq!(net.best_origin(asn, prefix), Some(victim), "{asn}");
            let best = net.best_route(asn, prefix).unwrap();
            if asn != victim {
                // The path must be loop-free and end at the victim.
                assert_eq!(best.origin_as(), Some(victim));
                let hops: Vec<Asn> = best.as_path().iter().collect();
                let unique: std::collections::BTreeSet<Asn> = hops.iter().copied().collect();
                assert_eq!(hops.len(), unique.len(), "loop in path of {asn}");
            }
        }
        assert!(net.stats().total_messages() > 0);
    }

    #[test]
    fn withdrawal_clears_the_network() {
        let graph = figure1_graph();
        let mut net = Network::new(&graph);
        net.originate(Asn(4), p(), None);
        net.run().unwrap();
        net.withdraw(Asn(4), p());
        net.run().unwrap();
        for asn in [1, 2, 3, 4] {
            assert!(net.best_route(Asn(asn), p()).is_none(), "AS {asn}");
        }
        assert!(net.stats().withdrawals > 0);
    }

    #[test]
    fn two_valid_origins_split_the_network() {
        // Figure 2: prefix originated by AS 4 and AS 226 (multi-homing).
        let mut g = figure1_graph();
        g.add_as(Asn(226), AsRole::Stub);
        g.add_link(Asn(226), Asn(3));
        let mut net = Network::new(&g);
        let list: MoasList = [Asn(4), Asn(226)].into_iter().collect();
        net.originate(Asn(4), p(), Some(list.clone()));
        net.originate(Asn(226), p(), Some(list));
        net.run().unwrap();
        // Every AS reaches one of the two legitimate origins.
        for asn in [1, 2, 3, 4, 226] {
            let origin = net.best_origin(Asn(asn), p()).unwrap();
            assert!(
                origin == Asn(4) || origin == Asn(226),
                "AS {asn} -> {origin}"
            );
        }
        // AS 3 peers with both origins directly; the deterministic tiebreak
        // picks the lower peer ASN. AS 226 itself keeps its local route.
        assert_eq!(net.best_origin(Asn(3), p()), Some(Asn(4)));
        assert_eq!(net.best_origin(Asn(226), p()), Some(Asn(226)));
    }

    #[test]
    fn attacker_hijacks_shorter_path_under_normal_bgp() {
        // Figure 3: AS 52 (attacker) peers directly with AS X (=1); the
        // legitimate origin AS 4 is two hops away. Normal BGP adopts the
        // attacker's shorter route.
        let mut g = figure1_graph();
        g.add_as(Asn(52), AsRole::Stub);
        g.add_link(Asn(52), Asn(1));
        let mut net = Network::new(&g);
        net.originate(Asn(4), p(), None);
        net.originate(Asn(52), p(), None);
        net.run().unwrap();
        assert_eq!(net.best_origin(Asn(1), p()), Some(Asn(52)), "AS X hijacked");
        // ASes adjacent to the true origin keep the true route.
        assert_eq!(net.best_origin(Asn(2), p()), Some(Asn(4)));
        assert_eq!(net.best_origin(Asn(3), p()), Some(Asn(4)));
    }

    #[test]
    fn run_is_deterministic() {
        let graph = InternetModel::new()
            .transit_count(8)
            .stub_count(30)
            .build(3);
        let victim = graph.stub_asns()[0];
        let prefix = as_topology::prefix_for_asn(victim);
        let run = |seed| {
            let mut net = Network::with_monitor_and_jitter(&graph, NoopMonitor, seed, 4);
            net.originate(victim, prefix, None);
            net.run().unwrap();
            let origins: Vec<Option<Asn>> =
                graph.asns().map(|a| net.best_origin(a, prefix)).collect();
            (origins, *net.stats())
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn event_budget_is_enforced() {
        let graph = InternetModel::new()
            .transit_count(10)
            .stub_count(50)
            .build(1);
        let victim = graph.stub_asns()[0];
        let mut net = Network::new(&graph);
        net.originate(victim, as_topology::prefix_for_asn(victim), None);
        let err = net.run_with_limit(3).unwrap_err();
        assert!(err.processed() >= 3);
    }

    #[test]
    fn stats_track_announcements() {
        let mut net = Network::new(&figure1_graph());
        net.originate(Asn(4), p(), None);
        net.run().unwrap();
        assert!(net.stats().announcements >= 4);
        assert_eq!(net.stats().withdrawals, 0);
        assert!(net.stats().converged_at > SimTime::ZERO);
    }

    #[test]
    fn moas_list_travels_with_routes() {
        let mut net = Network::new(&figure1_graph());
        let list: MoasList = [Asn(4), Asn(226)].into_iter().collect();
        net.originate(Asn(4), p(), Some(list.clone()));
        net.run().unwrap();
        let at_x = net.best_route(Asn(1), p()).unwrap();
        assert_eq!(at_x.moas_list(), Some(list));
    }

    #[test]
    fn link_failure_reroutes_to_alternate_path() {
        let mut net = Network::new(&figure1_graph());
        net.originate(Asn(4), p(), None);
        net.run().unwrap();
        assert_eq!(
            net.best_route(Asn(1), p()).unwrap().as_path().to_string(),
            "2 4"
        );
        net.fail_link(Asn(1), Asn(2));
        net.run().unwrap();
        // AS 1 falls back to the path via AS 3.
        assert_eq!(
            net.best_route(Asn(1), p()).unwrap().as_path().to_string(),
            "3 4"
        );
        assert!(net.link_is_down(Asn(2), Asn(1)));
    }

    #[test]
    fn partitioning_the_origin_withdraws_everywhere() {
        let mut net = Network::new(&figure1_graph());
        net.originate(Asn(4), p(), None);
        net.run().unwrap();
        net.fail_link(Asn(4), Asn(2));
        net.fail_link(Asn(4), Asn(3));
        net.run().unwrap();
        for asn in [1, 2, 3] {
            assert!(net.best_route(Asn(asn), p()).is_none(), "AS {asn}");
        }
        // The origin keeps its own local route.
        assert_eq!(net.best_origin(Asn(4), p()), Some(Asn(4)));
    }

    #[test]
    fn restore_link_reconverges_to_original_state() {
        let mut reference = Network::new(&figure1_graph());
        reference.originate(Asn(4), p(), None);
        reference.run().unwrap();

        let mut net = Network::new(&figure1_graph());
        net.originate(Asn(4), p(), None);
        net.run().unwrap();
        net.fail_link(Asn(1), Asn(2));
        net.run().unwrap();
        net.restore_link(Asn(1), Asn(2));
        net.run().unwrap();
        for asn in [1, 2, 3, 4] {
            assert_eq!(
                net.best_origin(Asn(asn), p()),
                reference.best_origin(Asn(asn), p()),
                "AS {asn}"
            );
        }
        // The restored session carries a route again (either direction may
        // win the tie at AS 1 depending on arrival order, but reachability
        // is identical).
        assert!(net.best_route(Asn(1), p()).is_some());
    }

    #[test]
    fn failing_unknown_or_failed_link_is_a_noop() {
        let mut net = Network::new(&figure1_graph());
        net.fail_link(Asn(1), Asn(2));
        net.fail_link(Asn(2), Asn(1)); // already down
        net.restore_link(Asn(1), Asn(2));
        net.restore_link(Asn(1), Asn(2)); // already up
        net.fail_link(Asn(77), Asn(88)); // not a link at all: only marks state
        assert!(net.run().is_ok());
    }

    #[test]
    fn in_flight_messages_are_lost_on_failed_links() {
        let mut net = Network::new(&figure1_graph());
        net.originate(Asn(4), p(), None);
        // Fail the 4-2 link while the origination is still in flight.
        net.fail_link(Asn(4), Asn(2));
        net.run().unwrap();
        assert!(net.stats().dropped_on_failed_links > 0);
        // Reachability via AS 3 only.
        assert_eq!(
            net.best_route(Asn(1), p()).unwrap().as_path().to_string(),
            "3 4"
        );
    }

    #[test]
    fn mrai_preserves_outcome_and_coalesces_churn() {
        let graph = InternetModel::new()
            .transit_count(10)
            .stub_count(40)
            .build(21);
        let victim = graph.stub_asns()[0];
        let prefix = as_topology::prefix_for_asn(victim);

        let run = |mrai: u64| {
            let mut net = Network::new(&graph);
            net.set_mrai(mrai);
            // Flap twice to generate churn, then settle.
            net.originate(victim, prefix, None);
            net.run().unwrap();
            net.withdraw(victim, prefix);
            net.run().unwrap();
            net.originate(victim, prefix, None);
            net.run().unwrap();
            let origins: Vec<Option<Asn>> =
                graph.asns().map(|a| net.best_origin(a, prefix)).collect();
            (origins, *net.stats())
        };

        let (plain_origins, plain_stats) = run(0);
        let (mrai_origins, mrai_stats) = run(50);
        assert_eq!(
            plain_origins, mrai_origins,
            "MRAI must not change the outcome"
        );
        assert_eq!(plain_stats.mrai_coalesced, 0);
        assert!(
            mrai_stats.total_messages() <= plain_stats.total_messages(),
            "MRAI should not increase message count ({} > {})",
            mrai_stats.total_messages(),
            plain_stats.total_messages()
        );
    }

    #[test]
    fn mrai_delays_but_delivers() {
        let mut net = Network::new(&figure1_graph());
        net.set_mrai(100);
        net.originate(Asn(4), p(), None);
        let converged = net.run().unwrap();
        for asn in [1, 2, 3] {
            assert_eq!(net.best_origin(Asn(asn), p()), Some(Asn(4)), "AS {asn}");
        }
        assert!(converged >= SimTime::from_ticks(2));
    }

    #[test]
    #[should_panic(expected = "not in network")]
    fn originating_from_unknown_as_panics() {
        let mut net = Network::new(&figure1_graph());
        net.originate(Asn(999), p(), None);
    }
}
