//! The data plane: longest-match forwarding over converged Loc-RIBs.
//!
//! The control-plane census ("who adopted a false route for prefix p") misses
//! the §4.3 sub-prefix hijack entirely: the victim's route for `p` is intact
//! everywhere, yet packets to addresses inside the hijacked more-specific
//! still flow to the attacker. Tracing actual packets over per-router FIBs
//! exposes that, and also detects forwarding loops caused by transient or
//! inconsistent control-plane state.

use std::collections::BTreeSet;
use std::fmt;

use bgp_types::{Asn, Ipv4Prefix, PrefixTrie};

use crate::monitor::RouteMonitor;
use crate::network::Network;

/// Where a traced packet ended up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForwardOutcome {
    /// The packet reached an AS that originates the longest-matching prefix.
    Delivered {
        /// The full AS-level path, source first, destination last.
        path: Vec<Asn>,
    },
    /// An AS on the way had no route for the destination.
    Blackholed {
        /// The path walked before the packet was dropped.
        path: Vec<Asn>,
    },
    /// Forwarding revisited an AS: a loop.
    Looped {
        /// The path up to and including the repeated AS.
        path: Vec<Asn>,
    },
}

impl ForwardOutcome {
    /// The AS the packet finally landed at.
    #[must_use]
    pub fn last_hop(&self) -> Option<Asn> {
        match self {
            ForwardOutcome::Delivered { path }
            | ForwardOutcome::Blackholed { path }
            | ForwardOutcome::Looped { path } => path.last().copied(),
        }
    }

    /// Returns `true` if the packet was delivered to `asn`.
    #[must_use]
    pub fn delivered_to(&self, asn: Asn) -> bool {
        matches!(self, ForwardOutcome::Delivered { path } if path.last() == Some(&asn))
    }
}

impl fmt::Display for ForwardOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (kind, path) = match self {
            ForwardOutcome::Delivered { path } => ("delivered", path),
            ForwardOutcome::Blackholed { path } => ("blackholed", path),
            ForwardOutcome::Looped { path } => ("looped", path),
        };
        write!(f, "{kind} via ")?;
        for (i, asn) in path.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{asn}")?;
        }
        Ok(())
    }
}

/// A snapshot of every router's FIB, for packet tracing.
///
/// Build it once after convergence; each trace is then a pure lookup walk.
///
/// # Example
///
/// ```
/// use as_topology::{AsGraph, AsRole};
/// use bgp_engine::{ForwardingPlane, Network};
/// use bgp_types::Asn;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut g = AsGraph::new();
/// g.add_as(Asn(4), AsRole::Stub);
/// g.add_as(Asn(1), AsRole::Transit);
/// g.add_link(Asn(4), Asn(1));
///
/// let prefix = "208.8.0.0/16".parse()?;
/// let mut net = Network::new(&g);
/// net.originate(Asn(4), prefix, None);
/// net.run()?;
///
/// let plane = ForwardingPlane::snapshot(&net);
/// let outcome = plane.trace(Asn(1), prefix.network());
/// assert!(outcome.delivered_to(Asn(4)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ForwardingPlane {
    /// Per-AS FIB: longest-match prefix → (next-hop peer, or `None` when the
    /// AS originates the prefix itself).
    fibs: std::collections::BTreeMap<Asn, PrefixTrie<Option<Asn>>>,
}

impl ForwardingPlane {
    /// Captures the FIB of every router in the network.
    #[must_use]
    pub fn snapshot<M: RouteMonitor>(net: &Network<M>) -> Self {
        let mut fibs = std::collections::BTreeMap::new();
        for asn in net.asns() {
            let router = net.router(asn).expect("asns() yields live routers");
            let mut fib = PrefixTrie::new();
            for prefix in router.prefixes() {
                fib.insert(prefix, router.best_learned_from(prefix));
            }
            fibs.insert(asn, fib);
        }
        ForwardingPlane { fibs }
    }

    /// The FIB entry an AS uses for a destination address.
    #[must_use]
    pub fn lookup(&self, asn: Asn, addr: u32) -> Option<(Ipv4Prefix, Option<Asn>)> {
        self.fibs
            .get(&asn)?
            .longest_match(addr)
            .map(|(prefix, next)| (prefix, *next))
    }

    /// Traces a packet from `src` toward the 32-bit address `addr`, hop by
    /// hop, each AS applying its own longest-match FIB.
    #[must_use]
    pub fn trace(&self, src: Asn, addr: u32) -> ForwardOutcome {
        let mut path = vec![src];
        let mut seen: BTreeSet<Asn> = BTreeSet::new();
        seen.insert(src);
        let mut current = src;
        loop {
            match self.lookup(current, addr) {
                None => return ForwardOutcome::Blackholed { path },
                Some((_, None)) => return ForwardOutcome::Delivered { path },
                Some((_, Some(next))) => {
                    path.push(next);
                    if !seen.insert(next) {
                        return ForwardOutcome::Looped { path };
                    }
                    current = next;
                }
            }
        }
    }

    /// Counts, over all ASes except `exclude`, where traffic to `addr` lands:
    /// `(delivered_to_target, delivered_elsewhere, blackholed_or_looped)`.
    #[must_use]
    pub fn capture_census(
        &self,
        addr: u32,
        target: Asn,
        exclude: &BTreeSet<Asn>,
    ) -> (usize, usize, usize) {
        let mut to_target = 0;
        let mut elsewhere = 0;
        let mut lost = 0;
        for &asn in self.fibs.keys() {
            if exclude.contains(&asn) {
                continue;
            }
            match self.trace(asn, addr) {
                ForwardOutcome::Delivered { path } if path.last() == Some(&target) => {
                    to_target += 1;
                }
                ForwardOutcome::Delivered { .. } => elsewhere += 1,
                _ => lost += 1,
            }
        }
        (to_target, elsewhere, lost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_topology::{AsGraph, AsRole};
    use bgp_types::Ipv4Prefix;

    fn diamond() -> AsGraph {
        let mut g = AsGraph::new();
        g.add_as(Asn(4), AsRole::Stub);
        g.add_as(Asn(52), AsRole::Stub);
        for t in [1, 2, 3] {
            g.add_as(Asn(t), AsRole::Transit);
        }
        for (a, b) in [(4, 2), (4, 3), (2, 1), (3, 1), (52, 1)] {
            g.add_link(Asn(a), Asn(b));
        }
        g
    }

    fn p() -> Ipv4Prefix {
        "208.8.0.0/16".parse().unwrap()
    }

    #[test]
    fn packets_follow_best_paths_to_the_origin() {
        let mut net = Network::new(&diamond());
        net.originate(Asn(4), p(), None);
        net.run().unwrap();
        let plane = ForwardingPlane::snapshot(&net);
        for src in [1u32, 2, 3, 52] {
            let outcome = plane.trace(Asn(src), p().network());
            assert!(outcome.delivered_to(Asn(4)), "AS {src}: {outcome}");
        }
    }

    #[test]
    fn unrouted_destination_blackholes_at_source() {
        let mut net = Network::new(&diamond());
        net.originate(Asn(4), p(), None);
        net.run().unwrap();
        let plane = ForwardingPlane::snapshot(&net);
        let outcome = plane.trace(
            Asn(1),
            "9.9.9.9/32".parse::<Ipv4Prefix>().unwrap().network(),
        );
        assert_eq!(outcome, ForwardOutcome::Blackholed { path: vec![Asn(1)] });
    }

    #[test]
    fn subprefix_hijack_steals_traffic_despite_intact_covering_route() {
        let mut net = Network::new(&diamond());
        net.originate(Asn(4), p(), None);
        net.run().unwrap();
        // Attacker announces the lower more-specific half.
        let (sub, _) = p().split().unwrap();
        net.originate(Asn(52), sub, None);
        net.run().unwrap();

        let plane = ForwardingPlane::snapshot(&net);
        // An address inside the hijacked half flows to the attacker...
        let outcome = plane.trace(Asn(1), sub.network());
        assert!(outcome.delivered_to(Asn(52)), "{outcome}");
        // ...while an address in the other half still reaches the victim.
        let safe_addr = p().split().unwrap().1.network();
        assert!(plane.trace(Asn(1), safe_addr).delivered_to(Asn(4)));
    }

    #[test]
    fn capture_census_counts_victim_and_attacker_deliveries() {
        let mut net = Network::new(&diamond());
        net.originate(Asn(4), p(), None);
        net.originate(Asn(52), p(), None);
        net.run().unwrap();
        let plane = ForwardingPlane::snapshot(&net);
        let exclude: BTreeSet<Asn> = [Asn(52)].into_iter().collect();
        let (to_victim, elsewhere, lost) = plane.capture_census(p().network(), Asn(4), &exclude);
        // Five ASes total, one excluded.
        assert_eq!(to_victim + elsewhere + lost, 4);
        assert!(elsewhere > 0, "the attacker captures AS 1's traffic");
        assert_eq!(lost, 0);
    }

    #[test]
    fn display_formats_paths() {
        let outcome = ForwardOutcome::Delivered {
            path: vec![Asn(1), Asn(2)],
        };
        assert_eq!(outcome.to_string(), "delivered via AS1 -> AS2");
        assert_eq!(outcome.last_hop(), Some(Asn(2)));
    }
}
