//! The route-monitor extension point.

use bgp_types::{Asn, Ipv4Prefix, Route};
use sim_engine::SimTime;

/// Everything a monitor can see when a router imports a route.
#[derive(Debug)]
pub struct ImportContext<'a> {
    /// The AS doing the importing.
    pub local: Asn,
    /// The peer the route arrived from.
    pub from_peer: Asn,
    /// The arriving route (AS path already includes `from_peer`).
    pub route: &'a Route,
    /// Routes currently held for the same prefix: the locally originated
    /// route (peer `None`) and Adj-RIB-In entries from *other* peers
    /// (peer `Some`). The previous route from `from_peer`, if any, is being
    /// replaced and is not included. Entries borrow the router's RIB
    /// directly — building this context allocates one small `Vec` of
    /// references, never a clone of the routes themselves.
    pub existing: &'a [(Option<Asn>, &'a Route)],
}

/// What a monitor decided about an import.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ImportDecision {
    /// Reject the arriving route instead of installing it.
    pub reject: bool,
    /// Evict these peers' existing Adj-RIB-In entries for the prefix —
    /// used when a conflict reveals a previously installed route as false.
    pub evict_peers: Vec<Asn>,
}

impl ImportDecision {
    /// Accept the route, touch nothing else. This is plain BGP behaviour.
    #[must_use]
    pub fn accept() -> Self {
        ImportDecision::default()
    }

    /// Reject the arriving route.
    #[must_use]
    pub fn reject() -> Self {
        ImportDecision {
            reject: true,
            evict_peers: Vec::new(),
        }
    }

    /// Also evict the existing entry learned from `peer`.
    #[must_use]
    pub fn with_eviction(mut self, peer: Asn) -> Self {
        self.evict_peers.push(peer);
        self
    }
}

/// What a monitor decided about one peer's export.
///
/// `Forward` is the common case and costs nothing: the router shares one
/// reference-counted payload across every peer that forwards the route
/// unchanged. Only `Replace` pays for a fresh route allocation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ExportAction {
    /// Send the route exactly as proposed.
    #[default]
    Forward,
    /// Send this modified route instead (e.g. with communities stripped).
    Replace(Route),
    /// Do not advertise to this peer at all.
    Suppress,
}

/// Observes and filters route imports and exports on every router.
///
/// One monitor instance serves the whole network; the `local` AS is passed to
/// every hook, so per-AS behaviour (e.g. which ASes deployed MOAS checking)
/// lives inside the monitor. The MOAS-list validator in `moas-core`
/// implements this trait; adversarial behaviours (community-stripping
/// transits) do too.
pub trait RouteMonitor {
    /// Called before a received route is installed in the Adj-RIB-In.
    ///
    /// The default accepts everything, which together with the default
    /// `on_export` reproduces unmodified BGP-4.
    fn on_import(&mut self, ctx: &ImportContext<'_>) -> ImportDecision {
        let _ = ctx;
        ImportDecision::accept()
    }

    /// Called for each peer a route is exported to, after AS-path prepending.
    /// `learned_from` is the peer the route was learned from (`None` for a
    /// locally originated route) — policy monitors such as
    /// [`ValleyFree`](crate::ValleyFree) use it to apply export rules.
    ///
    /// Return [`ExportAction::Forward`] to send `route` untouched (the
    /// zero-copy fast path), [`ExportAction::Replace`] to substitute a
    /// modified route, or [`ExportAction::Suppress`] to skip this peer.
    fn on_export(
        &mut self,
        local: Asn,
        to_peer: Asn,
        learned_from: Option<Asn>,
        route: &Route,
    ) -> ExportAction {
        let _ = (local, to_peer, learned_from, route);
        ExportAction::Forward
    }

    /// Called after a peer's route for `prefix` is removed from the
    /// Adj-RIB-In by an explicit WITHDRAW. Observational only — the removal
    /// has already happened. Route-history detectors (RFC 2439 flap damping)
    /// need withdrawal visibility; the default ignores it.
    fn on_withdraw(&mut self, local: Asn, from_peer: Asn, prefix: Ipv4Prefix) {
        let _ = (local, from_peer, prefix);
    }

    /// Called whenever simulated time advances (once per distinct event
    /// timestamp, before that timestamp's first event is processed). Lets
    /// monitors timestamp what they observe — the MOAS monitor stamps its
    /// alarms with this clock so experiments can measure detection latency.
    fn on_clock(&mut self, now: SimTime) {
        let _ = now;
    }
}

/// The identity monitor: unmodified BGP-4, the paper's "Normal BGP" baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopMonitor;

impl RouteMonitor for NoopMonitor {}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::{AsPath, Ipv4Prefix};

    #[test]
    fn default_decision_accepts() {
        let d = ImportDecision::accept();
        assert!(!d.reject);
        assert!(d.evict_peers.is_empty());
    }

    #[test]
    fn reject_and_evict_builders() {
        let d = ImportDecision::reject()
            .with_eviction(Asn(9))
            .with_eviction(Asn(7));
        assert!(d.reject);
        assert_eq!(d.evict_peers, vec![Asn(9), Asn(7)]);
    }

    #[test]
    fn noop_monitor_accepts_and_forwards() {
        let mut m = NoopMonitor;
        let prefix: Ipv4Prefix = "10.0.0.0/16".parse().unwrap();
        let route = Route::new(prefix, AsPath::origination(Asn(4)));
        let ctx = ImportContext {
            local: Asn(1),
            from_peer: Asn(2),
            route: &route,
            existing: &[],
        };
        assert_eq!(m.on_import(&ctx), ImportDecision::accept());
        assert_eq!(
            m.on_export(Asn(1), Asn(2), None, &route),
            ExportAction::Forward
        );
    }
}
