//! BGP-level fault events and the network fault plan.
//!
//! [`sim_engine::fault`] provides the generic machinery (per-link
//! [`LinkFaultModel`]s, a scripted timeline, one seed); this module
//! instantiates it for the BGP engine: links are undirected `(Asn, Asn)`
//! pairs and the timeline carries [`FaultEvent`]s — link failures and
//! restorations, session resets, and scripted originations/withdrawals
//! (including periodic origin flaps).
//!
//! Install a plan with [`Network::set_fault_plan`](crate::Network::set_fault_plan);
//! the network validates every referenced AS and link up front and then
//! executes the plan during [`run`](crate::Network::run), interleaved
//! deterministically with BGP message delivery.

use bgp_types::{Asn, Ipv4Prefix, Route};
use sim_engine::fault::FaultPlan;

/// A scripted network event on a fault timeline.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// Tear down the link between two ASes (see
    /// [`Network::fail_link`](crate::Network::fail_link)).
    FailLink(Asn, Asn),
    /// Restore a previously failed link (see
    /// [`Network::restore_link`](crate::Network::restore_link)).
    RestoreLink(Asn, Asn),
    /// Reset the BGP session between two peers: both sides implicitly
    /// withdraw what they learned over it, then re-establish and re-announce
    /// (see [`Network::reset_session`](crate::Network::reset_session)).
    ResetSession(Asn, Asn),
    /// Make an AS originate a route (the path should be empty; the router
    /// prepends its own ASN on export). Models scripted originations such as
    /// a backup origin coming online or an attacker injecting a forged route
    /// mid-churn.
    Announce {
        /// The originating AS.
        asn: Asn,
        /// The route to originate.
        route: Route,
    },
    /// Make an AS stop originating a prefix.
    Withdraw {
        /// The withdrawing AS.
        asn: Asn,
        /// The prefix to withdraw.
        prefix: Ipv4Prefix,
    },
    /// Flap an origination: withdraw the route's prefix if `asn` currently
    /// originates it, otherwise originate the route. Scheduled periodically,
    /// this is a route flap; with MRAI disabled and no firing bound it is a
    /// flap storm that only the convergence watchdog terminates.
    ToggleOrigin {
        /// The flapping AS.
        asn: Asn,
        /// The route toggled on and off.
        route: Route,
    },
}

impl FaultEvent {
    /// Every AS this event references, for install-time validation.
    pub(crate) fn actors(&self) -> impl Iterator<Item = Asn> + '_ {
        let (a, b) = match self {
            FaultEvent::FailLink(a, b)
            | FaultEvent::RestoreLink(a, b)
            | FaultEvent::ResetSession(a, b) => (*a, Some(*b)),
            FaultEvent::Announce { asn, .. }
            | FaultEvent::Withdraw { asn, .. }
            | FaultEvent::ToggleOrigin { asn, .. } => (*asn, None),
        };
        std::iter::once(a).chain(b)
    }
}

/// A fault plan over BGP links: [`sim_engine::fault::FaultPlan`] keyed by
/// undirected `(Asn, Asn)` pairs (order does not matter — the network
/// normalizes and applies the model to both directions) and carrying
/// [`FaultEvent`] timelines.
pub type NetFaultPlan = FaultPlan<(Asn, Asn), FaultEvent>;

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::AsPath;

    fn route() -> Route {
        Route::new("10.0.0.0/16".parse().unwrap(), AsPath::new())
    }

    #[test]
    fn actors_cover_both_link_endpoints() {
        let actors: Vec<Asn> = FaultEvent::FailLink(Asn(1), Asn(2)).actors().collect();
        assert_eq!(actors, vec![Asn(1), Asn(2)]);
        let actors: Vec<Asn> = FaultEvent::ResetSession(Asn(3), Asn(4)).actors().collect();
        assert_eq!(actors, vec![Asn(3), Asn(4)]);
    }

    #[test]
    fn actors_cover_single_as_events() {
        let announce = FaultEvent::Announce {
            asn: Asn(5),
            route: route(),
        };
        assert_eq!(announce.actors().collect::<Vec<_>>(), vec![Asn(5)]);
        let toggle = FaultEvent::ToggleOrigin {
            asn: Asn(6),
            route: route(),
        };
        assert_eq!(toggle.actors().collect::<Vec<_>>(), vec![Asn(6)]);
        let withdraw = FaultEvent::Withdraw {
            asn: Asn(7),
            prefix: "10.0.0.0/16".parse().unwrap(),
        };
        assert_eq!(withdraw.actors().collect::<Vec<_>>(), vec![Asn(7)]);
    }

    #[test]
    fn net_fault_plan_builds() {
        let mut plan = NetFaultPlan::new(9);
        plan.lossy_link((Asn(1), Asn(2)), 0.2);
        plan.at(10, FaultEvent::FailLink(Asn(1), Asn(2)));
        plan.every(
            20,
            5,
            Some(4),
            FaultEvent::ToggleOrigin {
                asn: Asn(3),
                route: route(),
            },
        );
        assert_eq!(plan.timeline().len(), 2);
        assert!(plan.link_model(&(Asn(1), Asn(2))).is_some());
    }
}
