//! A single AS-level BGP speaker.
//!
//! No `unwrap`/`expect` on data-dependent paths: routers are driven entirely
//! by the network, and every lookup is restructured so the key provably
//! exists or the miss is handled.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use bgp_types::{Asn, Ipv4Prefix, Route};

use crate::monitor::{ExportAction, ImportContext, ImportDecision, RouteMonitor};
use crate::update::SharedUpdate;

/// The chosen best route for a prefix and where it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BestEntry {
    route: Arc<Route>,
    /// `None` when the best route is locally originated.
    learned_from: Option<Asn>,
}

/// One AS-level BGP router: per-peer Adj-RIB-In, locally originated routes,
/// a Loc-RIB of best routes, and split-horizon advertisement state.
///
/// Routers are driven by [`Network`](crate::Network); the public surface
/// here is read-only inspection, which the experiment harness uses to census
/// which ASes adopted a false route.
///
/// Routes are held behind [`Arc`] throughout: an update installed from the
/// event queue, the Adj-RIB-In entry, the Loc-RIB best entry, and every
/// outbound fan-out copy all share one allocation. The decision process and
/// export path therefore move pointers, not AS-path vectors.
#[derive(Debug, Clone)]
pub struct Router {
    asn: Asn,
    peers: Vec<Asn>,
    originated: BTreeMap<Ipv4Prefix, Arc<Route>>,
    adj_in: BTreeMap<Ipv4Prefix, BTreeMap<Asn, RibEntry>>,
    best: BTreeMap<Ipv4Prefix, BestEntry>,
    advertised: BTreeMap<Ipv4Prefix, BTreeSet<Asn>>,
    /// Monotonic counter stamping Adj-RIB-In installations, for the
    /// oldest-route tiebreak.
    age_clock: u64,
    /// Times the decision process ran (one per [`Router::reselect`]).
    decisions: u64,
}

/// An Adj-RIB-In entry: the route plus its installation stamp. A peer's
/// re-announcement of the *identical* route keeps the original stamp; a
/// changed route counts as a fresh installation.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RibEntry {
    route: Arc<Route>,
    installed_at: u64,
}

impl Router {
    pub(crate) fn new(asn: Asn, mut peers: Vec<Asn>) -> Self {
        peers.sort_unstable();
        peers.dedup();
        Router {
            asn,
            peers,
            originated: BTreeMap::new(),
            adj_in: BTreeMap::new(),
            best: BTreeMap::new(),
            advertised: BTreeMap::new(),
            age_clock: 0,
            decisions: 0,
        }
    }

    /// This router's AS number.
    #[must_use]
    pub fn asn(&self) -> Asn {
        self.asn
    }

    /// The router's BGP peers, ascending.
    #[must_use]
    pub fn peers(&self) -> &[Asn] {
        &self.peers
    }

    /// The best (Loc-RIB) route for a prefix, if any.
    #[must_use]
    pub fn best_route(&self, prefix: Ipv4Prefix) -> Option<&Route> {
        self.best.get(&prefix).map(|e| e.route.as_ref())
    }

    /// The peer the best route was learned from (`None` when locally
    /// originated or when there is no route).
    #[must_use]
    pub fn best_learned_from(&self, prefix: Ipv4Prefix) -> Option<Asn> {
        self.best.get(&prefix).and_then(|e| e.learned_from)
    }

    /// The origin AS of the best route: the AS-path origin, or this router's
    /// own ASN for a locally originated route.
    #[must_use]
    pub fn best_origin(&self, prefix: Ipv4Prefix) -> Option<Asn> {
        let entry = self.best.get(&prefix)?;
        match entry.learned_from {
            None => Some(self.asn),
            Some(_) => entry.route.origin_as(),
        }
    }

    /// Returns `true` if this router originates `prefix` itself.
    #[must_use]
    pub fn originates(&self, prefix: Ipv4Prefix) -> bool {
        self.originated.contains_key(&prefix)
    }

    /// All prefixes with a best route.
    pub fn prefixes(&self) -> impl Iterator<Item = Ipv4Prefix> + '_ {
        self.best.keys().copied()
    }

    /// Times the BGP decision process ran on this router.
    #[must_use]
    pub fn decision_count(&self) -> u64 {
        self.decisions
    }

    /// Total routes currently held in the Adj-RIB-In, across all prefixes
    /// and peers.
    #[must_use]
    pub fn adj_rib_in_size(&self) -> usize {
        self.adj_in.values().map(BTreeMap::len).sum()
    }

    /// The Adj-RIB-In entries for a prefix, as `(peer, route)` pairs.
    pub fn adj_rib_in(&self, prefix: Ipv4Prefix) -> impl Iterator<Item = (Asn, &Route)> + '_ {
        self.adj_in
            .get(&prefix)
            .into_iter()
            .flat_map(|m| m.iter().map(|(&peer, entry)| (peer, entry.route.as_ref())))
    }

    // ------------------------------------------------------------------
    // Mutation (crate-internal, driven by Network)
    // ------------------------------------------------------------------

    /// Starts originating a route; returns the updates to send.
    pub(crate) fn originate<M: RouteMonitor>(
        &mut self,
        route: Route,
        monitor: &mut M,
    ) -> Vec<(Asn, SharedUpdate)> {
        let prefix = route.prefix();
        self.originated.insert(prefix, Arc::new(route));
        self.reselect(prefix, monitor)
    }

    /// Stops originating a prefix; returns the updates to send.
    pub(crate) fn withdraw_origin<M: RouteMonitor>(
        &mut self,
        prefix: Ipv4Prefix,
        monitor: &mut M,
    ) -> Vec<(Asn, SharedUpdate)> {
        if self.originated.remove(&prefix).is_none() {
            return Vec::new();
        }
        self.reselect(prefix, monitor)
    }

    /// The peering session to `peer` went down: every route learned from it
    /// is implicitly withdrawn, and our advertisement state toward it is
    /// forgotten. Returns the updates to send to the *other* peers.
    pub(crate) fn peer_down<M: RouteMonitor>(
        &mut self,
        peer: Asn,
        monitor: &mut M,
    ) -> Vec<(Asn, SharedUpdate)> {
        let mut affected: Vec<Ipv4Prefix> = Vec::new();
        for (&prefix, rib) in &mut self.adj_in {
            if rib.remove(&peer).is_some() {
                affected.push(prefix);
            }
        }
        for advertised in self.advertised.values_mut() {
            advertised.remove(&peer);
        }
        let mut out = Vec::new();
        for prefix in affected {
            out.extend(
                self.reselect(prefix, monitor)
                    .into_iter()
                    .filter(|(to, _)| *to != peer),
            );
        }
        out
    }

    /// The peering session to `peer` came (back) up: re-advertise every
    /// current best route to it, as a BGP session establishment would.
    pub(crate) fn refresh_peer<M: RouteMonitor>(
        &mut self,
        peer: Asn,
        monitor: &mut M,
    ) -> Vec<(Asn, SharedUpdate)> {
        if !self.peers.contains(&peer) {
            return Vec::new();
        }
        // Snapshot the best table up front: `on_export` needs `&mut self`
        // state untouched, and cloning the entries clones `Arc`s, not routes.
        let entries: Vec<(Ipv4Prefix, BestEntry)> = self
            .best
            .iter()
            .map(|(&prefix, entry)| (prefix, entry.clone()))
            .collect();
        let mut out = Vec::new();
        for (prefix, entry) in entries {
            if entry.learned_from == Some(peer) {
                continue; // split horizon
            }
            let outbound = Arc::new(entry.route.propagated_by(self.asn));
            match monitor.on_export(self.asn, peer, entry.learned_from, &outbound) {
                ExportAction::Forward => {
                    self.advertised.entry(prefix).or_default().insert(peer);
                    out.push((peer, SharedUpdate::Announce(outbound)));
                }
                ExportAction::Replace(route) => {
                    self.advertised.entry(prefix).or_default().insert(peer);
                    out.push((peer, SharedUpdate::announce(route)));
                }
                ExportAction::Suppress => {}
            }
        }
        out
    }

    /// Processes an update from a peer; returns the updates to send onward.
    pub(crate) fn handle_update<M: RouteMonitor>(
        &mut self,
        from: Asn,
        update: SharedUpdate,
        monitor: &mut M,
    ) -> Vec<(Asn, SharedUpdate)> {
        let prefix = update.prefix();
        match update {
            SharedUpdate::Withdraw(_) => {
                let removed = self
                    .adj_in
                    .get_mut(&prefix)
                    .and_then(|m| m.remove(&from))
                    .is_some();
                if !removed {
                    return Vec::new();
                }
                monitor.on_withdraw(self.asn, from, prefix);
            }
            SharedUpdate::Announce(route) => {
                // Loop suppression: never accept a path containing ourselves.
                // The announcement still supersedes the peer's previous route
                // (treat-as-withdraw), otherwise two routers can hold stale
                // routes through each other forever.
                if route.as_path().contains(self.asn) {
                    let removed = self
                        .adj_in
                        .get_mut(&prefix)
                        .and_then(|m| m.remove(&from))
                        .is_some();
                    if !removed {
                        return Vec::new();
                    }
                    return self.reselect(prefix, monitor);
                }
                let decision = self.consult_monitor(from, &route, monitor);
                self.apply_evictions(prefix, from, &decision);
                self.age_clock += 1;
                let stamp = self.age_clock;
                let rib = self.adj_in.entry(prefix).or_default();
                if decision.reject {
                    // The newest word from this peer supersedes its previous
                    // announcement even when we refuse to install it.
                    rib.remove(&from);
                } else {
                    match rib.get_mut(&from) {
                        // Identical re-announcement: keep the original age.
                        Some(entry) if entry.route == route => {}
                        Some(entry) => {
                            entry.route = route;
                            entry.installed_at = stamp;
                        }
                        None => {
                            rib.insert(
                                from,
                                RibEntry {
                                    route,
                                    installed_at: stamp,
                                },
                            );
                        }
                    }
                }
            }
        }
        self.reselect(prefix, monitor)
    }

    fn consult_monitor<M: RouteMonitor>(
        &self,
        from: Asn,
        route: &Route,
        monitor: &mut M,
    ) -> ImportDecision {
        // Borrow the RIB directly: the context is a Vec of references, so no
        // route is cloned just to be looked at.
        let mut existing: Vec<(Option<Asn>, &Route)> = Vec::new();
        if let Some(own) = self.originated.get(&route.prefix()) {
            existing.push((None, own.as_ref()));
        }
        if let Some(rib) = self.adj_in.get(&route.prefix()) {
            for (&peer, held) in rib {
                if peer != from {
                    existing.push((Some(peer), held.route.as_ref()));
                }
            }
        }
        monitor.on_import(&ImportContext {
            local: self.asn,
            from_peer: from,
            route,
            existing: &existing,
        })
    }

    fn apply_evictions(&mut self, prefix: Ipv4Prefix, from: Asn, decision: &ImportDecision) {
        if decision.evict_peers.is_empty() {
            return;
        }
        if let Some(rib) = self.adj_in.get_mut(&prefix) {
            for &peer in &decision.evict_peers {
                if peer != from {
                    rib.remove(&peer);
                }
            }
        }
    }

    /// Re-runs the decision process for a prefix and computes the updates to
    /// send to peers if the best route changed.
    fn reselect<M: RouteMonitor>(
        &mut self,
        prefix: Ipv4Prefix,
        monitor: &mut M,
    ) -> Vec<(Asn, SharedUpdate)> {
        self.decisions += 1;
        let new_best = self.decide(prefix);
        let old_best = self.best.get(&prefix);
        if old_best == new_best.as_ref() {
            return Vec::new();
        }
        match new_best {
            Some(entry) => {
                self.best.insert(prefix, entry.clone());
                self.export(prefix, &entry, monitor)
            }
            None => {
                self.best.remove(&prefix);
                let previously = self.advertised.remove(&prefix).unwrap_or_default();
                previously
                    .into_iter()
                    .map(|peer| (peer, SharedUpdate::withdraw(prefix)))
                    .collect()
            }
        }
    }

    /// The BGP decision process: highest `LOCAL_PREF`, then shortest AS path
    /// (locally originated routes have an empty path and win). Exact ties
    /// keep the currently selected route ("prefer oldest", the stability
    /// practice SSFnet and most deployed implementations follow); a tie with
    /// no incumbent breaks deterministically toward the lowest peer ASN.
    ///
    /// The prefer-current rule matters for the experiments: an attacker's
    /// equally-long route must not displace a valid route that is already
    /// installed, exactly as in the paper's converged-network attack model.
    ///
    /// Candidates are streamed straight out of the RIB — the only allocation
    /// on a selection is the `Arc` bump for the winner. `min_by_key` keeps the
    /// *first* minimum, so the iteration order (own route, then learned
    /// routes by ascending peer ASN) is part of the tiebreak contract.
    fn decide(&self, prefix: Ipv4Prefix) -> Option<BestEntry> {
        let own = self
            .originated
            .get(&prefix)
            .map(|route| (route, None, 0u64));
        let learned = self.adj_in.get(&prefix).into_iter().flat_map(|rib| {
            rib.iter()
                .map(|(&peer, entry)| (&entry.route, Some(peer), entry.installed_at))
        });
        own.into_iter()
            .chain(learned)
            .min_by_key(|(route, learned_from, installed_at)| {
                (
                    Reverse(route.local_pref()),
                    route.as_path().selection_len(),
                    learned_from.is_some(),
                    *installed_at,
                    *learned_from,
                )
            })
            .map(|(route, learned_from, _)| BestEntry {
                route: Arc::clone(route),
                learned_from,
            })
    }

    /// Builds the per-peer announcements for a newly selected best route,
    /// plus withdrawals for peers that previously heard from us but are now
    /// excluded (split horizon toward the route's source).
    ///
    /// The prepended outbound route is built **once** and shared by every
    /// peer the monitor lets through unmodified; only an
    /// [`ExportAction::Replace`] costs a fresh allocation.
    fn export<M: RouteMonitor>(
        &mut self,
        prefix: Ipv4Prefix,
        entry: &BestEntry,
        monitor: &mut M,
    ) -> Vec<(Asn, SharedUpdate)> {
        let outbound = Arc::new(entry.route.propagated_by(self.asn));
        let mut sent_to: BTreeSet<Asn> = BTreeSet::new();
        let mut updates = Vec::with_capacity(self.peers.len());
        for &peer in &self.peers {
            if Some(peer) == entry.learned_from {
                continue;
            }
            match monitor.on_export(self.asn, peer, entry.learned_from, &outbound) {
                ExportAction::Forward => {
                    sent_to.insert(peer);
                    updates.push((peer, SharedUpdate::Announce(Arc::clone(&outbound))));
                }
                ExportAction::Replace(route) => {
                    sent_to.insert(peer);
                    updates.push((peer, SharedUpdate::announce(route)));
                }
                ExportAction::Suppress => {}
            }
        }
        let previously = self
            .advertised
            .insert(prefix, sent_to.clone())
            .unwrap_or_default();
        for peer in previously.difference(&sent_to) {
            updates.push((*peer, SharedUpdate::withdraw(prefix)));
        }
        updates
    }
}

// AS-path sanity helper shared by tests.
#[cfg(test)]
pub(crate) fn announced(origin: Asn, prefix: Ipv4Prefix) -> Route {
    Route::new(prefix, bgp_types::AsPath::origination(origin))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::NoopMonitor;
    use bgp_types::AsPath;

    fn prefix() -> Ipv4Prefix {
        "10.0.0.0/16".parse().unwrap()
    }

    fn router() -> Router {
        Router::new(Asn(1), vec![Asn(2), Asn(3), Asn(4)])
    }

    #[test]
    fn origination_exports_to_all_peers() {
        let mut r = router();
        let updates = r.originate(Route::new(prefix(), AsPath::new()), &mut NoopMonitor);
        assert_eq!(updates.len(), 3);
        for (_, update) in &updates {
            let route = update.route().unwrap();
            assert_eq!(route.as_path().to_string(), "1");
            assert_eq!(route.origin_as(), Some(Asn(1)));
        }
        assert_eq!(r.best_origin(prefix()), Some(Asn(1)));
        assert!(r.originates(prefix()));
    }

    #[test]
    fn fanout_announcements_share_one_route_allocation() {
        let mut r = router();
        let updates = r.originate(Route::new(prefix(), AsPath::new()), &mut NoopMonitor);
        let rcs: Vec<&Arc<Route>> = updates
            .iter()
            .filter_map(|(_, u)| match u {
                SharedUpdate::Announce(rc) => Some(rc),
                SharedUpdate::Withdraw(_) => None,
            })
            .collect();
        assert_eq!(rcs.len(), 3);
        assert!(Arc::ptr_eq(rcs[0], rcs[1]));
        assert!(Arc::ptr_eq(rcs[1], rcs[2]));
    }

    #[test]
    fn received_route_is_installed_and_propagated_with_split_horizon() {
        let mut r = router();
        let incoming = announced(Asn(9), prefix()).propagated_by(Asn(2));
        let updates = r.handle_update(Asn(2), SharedUpdate::announce(incoming), &mut NoopMonitor);
        // Sent to peers 3 and 4, not back to 2.
        let targets: Vec<Asn> = updates.iter().map(|(p, _)| *p).collect();
        assert_eq!(targets, vec![Asn(3), Asn(4)]);
        let route = updates[0].1.route().unwrap();
        assert_eq!(route.as_path().to_string(), "1 2 9");
        assert_eq!(r.best_origin(prefix()), Some(Asn(9)));
        assert_eq!(r.best_learned_from(prefix()), Some(Asn(2)));
    }

    #[test]
    fn looped_path_is_dropped() {
        let mut r = router();
        let mut looped = announced(Asn(9), prefix());
        looped = looped.propagated_by(Asn(1)).propagated_by(Asn(2));
        let updates = r.handle_update(Asn(2), SharedUpdate::announce(looped), &mut NoopMonitor);
        assert!(updates.is_empty());
        assert!(r.best_route(prefix()).is_none());
    }

    #[test]
    fn shorter_path_wins() {
        let mut r = router();
        let long = announced(Asn(9), prefix())
            .propagated_by(Asn(7))
            .propagated_by(Asn(2));
        let short = announced(Asn(9), prefix()).propagated_by(Asn(3));
        r.handle_update(Asn(2), SharedUpdate::announce(long), &mut NoopMonitor);
        let updates = r.handle_update(Asn(3), SharedUpdate::announce(short), &mut NoopMonitor);
        assert_eq!(r.best_learned_from(prefix()), Some(Asn(3)));
        assert!(!updates.is_empty());
    }

    #[test]
    fn equal_paths_keep_the_incumbent() {
        // "Prefer current" stability: an equally good route from another
        // peer must not displace the installed one.
        let mut r = router();
        let via4 = announced(Asn(9), prefix()).propagated_by(Asn(4));
        let via3 = announced(Asn(9), prefix()).propagated_by(Asn(3));
        r.handle_update(Asn(4), SharedUpdate::announce(via4), &mut NoopMonitor);
        let updates = r.handle_update(Asn(3), SharedUpdate::announce(via3), &mut NoopMonitor);
        assert_eq!(r.best_learned_from(prefix()), Some(Asn(4)));
        assert!(updates.is_empty(), "no churn on an ignored tie");
    }

    #[test]
    fn tie_without_incumbent_breaks_to_lowest_peer() {
        // When the incumbent disappears and two equal routes remain, the
        // deterministic tiebreak picks the lowest peer ASN.
        let mut r = router();
        let via2 = announced(Asn(9), prefix()).propagated_by(Asn(2));
        let via3 = announced(Asn(8), prefix())
            .propagated_by(Asn(7))
            .propagated_by(Asn(3));
        let via4 = announced(Asn(8), prefix())
            .propagated_by(Asn(7))
            .propagated_by(Asn(4));
        r.handle_update(Asn(2), SharedUpdate::announce(via2), &mut NoopMonitor);
        r.handle_update(Asn(3), SharedUpdate::announce(via3), &mut NoopMonitor);
        r.handle_update(Asn(4), SharedUpdate::announce(via4), &mut NoopMonitor);
        assert_eq!(r.best_learned_from(prefix()), Some(Asn(2)));
        r.handle_update(Asn(2), SharedUpdate::withdraw(prefix()), &mut NoopMonitor);
        assert_eq!(r.best_learned_from(prefix()), Some(Asn(3)));
    }

    #[test]
    fn local_origination_beats_learned_routes() {
        let mut r = router();
        let learned = announced(Asn(9), prefix()).propagated_by(Asn(2));
        r.handle_update(Asn(2), SharedUpdate::announce(learned), &mut NoopMonitor);
        r.originate(Route::new(prefix(), AsPath::new()), &mut NoopMonitor);
        assert_eq!(r.best_origin(prefix()), Some(Asn(1)));
        assert_eq!(r.best_learned_from(prefix()), None);
    }

    #[test]
    fn higher_local_pref_wins_over_shorter_path() {
        let mut r = router();
        let short = announced(Asn(9), prefix()).propagated_by(Asn(2));
        let long_preferred = announced(Asn(9), prefix())
            .propagated_by(Asn(7))
            .propagated_by(Asn(3))
            .with_local_pref(200);
        r.handle_update(Asn(2), SharedUpdate::announce(short), &mut NoopMonitor);
        r.handle_update(
            Asn(3),
            SharedUpdate::announce(long_preferred),
            &mut NoopMonitor,
        );
        assert_eq!(r.best_learned_from(prefix()), Some(Asn(3)));
    }

    #[test]
    fn withdrawal_falls_back_to_next_best() {
        let mut r = router();
        let via2 = announced(Asn(9), prefix()).propagated_by(Asn(2));
        let via3 = announced(Asn(8), prefix())
            .propagated_by(Asn(7))
            .propagated_by(Asn(3));
        r.handle_update(Asn(2), SharedUpdate::announce(via2), &mut NoopMonitor);
        r.handle_update(Asn(3), SharedUpdate::announce(via3), &mut NoopMonitor);
        assert_eq!(r.best_origin(prefix()), Some(Asn(9)));
        let updates = r.handle_update(Asn(2), SharedUpdate::withdraw(prefix()), &mut NoopMonitor);
        assert_eq!(r.best_origin(prefix()), Some(Asn(8)));
        assert!(!updates.is_empty());
    }

    #[test]
    fn last_withdrawal_sends_withdraw_to_advertised_peers() {
        let mut r = router();
        let via2 = announced(Asn(9), prefix()).propagated_by(Asn(2));
        r.handle_update(Asn(2), SharedUpdate::announce(via2), &mut NoopMonitor);
        let updates = r.handle_update(Asn(2), SharedUpdate::withdraw(prefix()), &mut NoopMonitor);
        assert!(r.best_route(prefix()).is_none());
        let withdraw_targets: BTreeSet<Asn> = updates
            .iter()
            .filter(|(_, u)| u.is_withdrawal())
            .map(|(p, _)| *p)
            .collect();
        assert_eq!(withdraw_targets, BTreeSet::from([Asn(3), Asn(4)]));
    }

    #[test]
    fn duplicate_announcement_is_silent() {
        let mut r = router();
        let via2 = announced(Asn(9), prefix()).propagated_by(Asn(2));
        r.handle_update(
            Asn(2),
            SharedUpdate::announce(via2.clone()),
            &mut NoopMonitor,
        );
        let updates = r.handle_update(Asn(2), SharedUpdate::announce(via2), &mut NoopMonitor);
        assert!(
            updates.is_empty(),
            "implicit replacement with identical route must not re-export"
        );
    }

    #[test]
    fn spurious_withdrawal_is_silent() {
        let mut r = router();
        let updates = r.handle_update(Asn(2), SharedUpdate::withdraw(prefix()), &mut NoopMonitor);
        assert!(updates.is_empty());
    }

    #[test]
    fn best_switch_to_new_peer_sends_withdraw_to_that_peer() {
        // When the best route moves to peer 3, split horizon excludes 3 from
        // the announcement; 3 previously got our announcement, so it must
        // receive a withdraw.
        let mut r = router();
        let via2 = announced(Asn(9), prefix())
            .propagated_by(Asn(7))
            .propagated_by(Asn(2));
        r.handle_update(Asn(2), SharedUpdate::announce(via2), &mut NoopMonitor);
        let via3 = announced(Asn(9), prefix()).propagated_by(Asn(3));
        let updates = r.handle_update(Asn(3), SharedUpdate::announce(via3), &mut NoopMonitor);
        let to3: Vec<&SharedUpdate> = updates
            .iter()
            .filter(|(p, _)| *p == Asn(3))
            .map(|(_, u)| u)
            .collect();
        assert_eq!(to3.len(), 1);
        assert!(to3[0].is_withdrawal());
    }

    #[test]
    fn rejecting_monitor_blocks_installation() {
        struct RejectAll;
        impl RouteMonitor for RejectAll {
            fn on_import(&mut self, _ctx: &ImportContext<'_>) -> ImportDecision {
                ImportDecision::reject()
            }
        }
        let mut r = router();
        let via2 = announced(Asn(9), prefix()).propagated_by(Asn(2));
        let updates = r.handle_update(Asn(2), SharedUpdate::announce(via2), &mut RejectAll);
        assert!(updates.is_empty());
        assert!(r.best_route(prefix()).is_none());
    }

    #[test]
    fn eviction_removes_previously_installed_route() {
        struct EvictTwo;
        impl RouteMonitor for EvictTwo {
            fn on_import(&mut self, ctx: &ImportContext<'_>) -> ImportDecision {
                if ctx.from_peer == Asn(3) {
                    ImportDecision::accept().with_eviction(Asn(2))
                } else {
                    ImportDecision::accept()
                }
            }
        }
        let mut r = router();
        let false_route = announced(Asn(66), prefix()).propagated_by(Asn(2));
        r.handle_update(Asn(2), SharedUpdate::announce(false_route), &mut EvictTwo);
        assert_eq!(r.best_origin(prefix()), Some(Asn(66)));
        let valid = announced(Asn(9), prefix())
            .propagated_by(Asn(7))
            .propagated_by(Asn(3));
        r.handle_update(Asn(3), SharedUpdate::announce(valid), &mut EvictTwo);
        assert_eq!(r.best_origin(prefix()), Some(Asn(9)));
        assert_eq!(r.adj_rib_in(prefix()).count(), 1);
    }

    #[test]
    fn suppressing_export_monitor_sends_nothing() {
        struct Mute;
        impl RouteMonitor for Mute {
            fn on_export(
                &mut self,
                _local: Asn,
                _to: Asn,
                _learned_from: Option<Asn>,
                _route: &Route,
            ) -> ExportAction {
                ExportAction::Suppress
            }
        }
        let mut r = router();
        let updates = r.originate(Route::new(prefix(), AsPath::new()), &mut Mute);
        assert!(updates.is_empty());
    }

    #[test]
    fn replacing_export_monitor_substitutes_the_route() {
        struct Downgrade;
        impl RouteMonitor for Downgrade {
            fn on_export(
                &mut self,
                _local: Asn,
                to: Asn,
                _learned_from: Option<Asn>,
                route: &Route,
            ) -> ExportAction {
                if to == Asn(3) {
                    ExportAction::Replace(route.clone().with_local_pref(7))
                } else {
                    ExportAction::Forward
                }
            }
        }
        let mut r = router();
        let updates = r.originate(Route::new(prefix(), AsPath::new()), &mut Downgrade);
        assert_eq!(updates.len(), 3);
        for (peer, update) in &updates {
            let route = update.route().unwrap();
            if *peer == Asn(3) {
                assert_eq!(route.local_pref(), 7);
            } else {
                assert_ne!(route.local_pref(), 7);
            }
        }
    }

    #[test]
    fn monitor_sees_existing_routes_except_replaced_peer() {
        struct Census(Vec<usize>);
        impl RouteMonitor for Census {
            fn on_import(&mut self, ctx: &ImportContext<'_>) -> ImportDecision {
                self.0.push(ctx.existing.len());
                ImportDecision::accept()
            }
        }
        let mut monitor = Census(Vec::new());
        let mut r = router();
        r.originate(Route::new(prefix(), AsPath::new()), &mut monitor);
        let via2 = announced(Asn(9), prefix()).propagated_by(Asn(2));
        r.handle_update(Asn(2), SharedUpdate::announce(via2.clone()), &mut monitor);
        // Re-announcement from the same peer: its own old entry excluded.
        r.handle_update(Asn(2), SharedUpdate::announce(via2), &mut monitor);
        assert_eq!(monitor.0, vec![1, 1]);
    }
}
