//! In-flight updates with reference-counted announce payloads.

use std::sync::Arc;

use bgp_types::{Ipv4Prefix, Route, Update};

/// A BGP update as it travels through the simulator's event queue.
///
/// Announce payloads sit behind an [`Arc`], so a router fanning one new best
/// route out to `k` peers enqueues `k` pointer copies of a single [`Route`]
/// instead of `k` deep clones (AS path, communities and all). The receiving
/// router installs the same shared payload straight into its Adj-RIB-In;
/// copy-on-write only happens if somebody actually mutates a route, which
/// the simulator never does after export.
///
/// Conversion to the wire-level [`Update`] (owned payload) is explicit via
/// [`SharedUpdate::into_update`], used only at the simulator's edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SharedUpdate {
    /// Announce a (shared) route.
    Announce(Arc<Route>),
    /// Withdraw any previously announced route for the prefix.
    Withdraw(Ipv4Prefix),
}

impl SharedUpdate {
    /// Wraps an owned route as a shareable announcement.
    #[must_use]
    pub fn announce(route: Route) -> Self {
        SharedUpdate::Announce(Arc::new(route))
    }

    /// A withdrawal for `prefix`.
    #[must_use]
    pub fn withdraw(prefix: Ipv4Prefix) -> Self {
        SharedUpdate::Withdraw(prefix)
    }

    /// The prefix this update concerns.
    #[must_use]
    pub fn prefix(&self) -> Ipv4Prefix {
        match self {
            SharedUpdate::Announce(route) => route.prefix(),
            SharedUpdate::Withdraw(prefix) => *prefix,
        }
    }

    /// The announced route, if this is an announcement.
    #[must_use]
    pub fn route(&self) -> Option<&Route> {
        match self {
            SharedUpdate::Announce(route) => Some(route),
            SharedUpdate::Withdraw(_) => None,
        }
    }

    /// Returns `true` for withdrawals.
    #[must_use]
    pub fn is_withdrawal(&self) -> bool {
        matches!(self, SharedUpdate::Withdraw(_))
    }

    /// Converts to the owned wire-level [`Update`], cloning the route only
    /// when the payload is still shared with another in-flight message.
    #[must_use]
    pub fn into_update(self) -> Update {
        match self {
            SharedUpdate::Announce(route) => {
                Update::Announce(Arc::try_unwrap(route).unwrap_or_else(|rc| (*rc).clone()))
            }
            SharedUpdate::Withdraw(prefix) => Update::Withdraw(prefix),
        }
    }
}

impl From<Update> for SharedUpdate {
    fn from(update: Update) -> Self {
        match update {
            Update::Announce(route) => SharedUpdate::announce(route),
            Update::Withdraw(prefix) => SharedUpdate::Withdraw(prefix),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::{AsPath, Asn};

    fn p() -> Ipv4Prefix {
        "10.0.0.0/16".parse().unwrap()
    }

    #[test]
    fn accessors_match_update_semantics() {
        let route = Route::new(p(), AsPath::origination(Asn(4)));
        let a = SharedUpdate::announce(route.clone());
        assert_eq!(a.prefix(), p());
        assert_eq!(a.route(), Some(&route));
        assert!(!a.is_withdrawal());
        let w = SharedUpdate::withdraw(p());
        assert_eq!(w.prefix(), p());
        assert!(w.route().is_none());
        assert!(w.is_withdrawal());
    }

    #[test]
    fn sharing_is_pointer_level() {
        let a = SharedUpdate::announce(Route::new(p(), AsPath::origination(Asn(4))));
        let b = a.clone();
        match (&a, &b) {
            (SharedUpdate::Announce(x), SharedUpdate::Announce(y)) => {
                assert!(Arc::ptr_eq(x, y));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn round_trips_through_update() {
        let owned = Update::announce(Route::new(p(), AsPath::origination(Asn(4))));
        let shared: SharedUpdate = owned.clone().into();
        assert_eq!(shared.into_update(), owned);
        let shared = SharedUpdate::withdraw(p());
        assert_eq!(shared.into_update(), Update::withdraw(p()));
    }
}
