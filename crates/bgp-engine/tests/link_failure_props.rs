//! Property tests for link failure and recovery semantics.
//!
//! Two invariants the fault subsystem promises:
//!
//! 1. After `fail_link(a, b)` and reconvergence, no router's best path uses
//!    the dead edge — neither inside the recorded AS path nor as the first
//!    hop out of the router itself.
//! 2. `restore_link` is a true inverse: failing a link, reconverging, then
//!    restoring it and reconverging again leaves every router agreeing with
//!    a network in which the link never failed. Routers may hold different
//!    *paths* (the prefer-oldest tiebreak is history-dependent), so the
//!    comparison is on what each AS can reach and through which origin.

use as_topology::{AsGraph, InternetModel};
use bgp_engine::Network;
use bgp_types::{Asn, Ipv4Prefix};
use proptest::prelude::*;

/// A small multihomed internet: enough alternate paths that failing one
/// link usually reroutes rather than partitions, but partitions do occur
/// (single-homed stubs exist) and the properties must hold then too.
fn build_graph(seed: u64) -> AsGraph {
    InternetModel::new()
        .transit_count(5)
        .stub_count(14)
        .multihome_prob(0.7)
        .build(seed)
}

fn prefix() -> Ipv4Prefix {
    "208.8.0.0/16".parse().expect("static prefix literal")
}

/// Maps the raw selector draws onto a concrete (edge, origin) choice for the
/// generated graph. Selecting by modulo keeps the strategy independent of
/// the graph's size, so one set of draws works for every seed.
fn pick(graph: &AsGraph, link_sel: u64, origin_sel: u64) -> ((Asn, Asn), Asn) {
    let links = graph.links();
    let edge = links[(link_sel % links.len() as u64) as usize];
    let stubs = graph.stub_asns();
    let origin = stubs[(origin_sel % stubs.len() as u64) as usize];
    (edge, origin)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn no_best_path_traverses_a_failed_edge(
        seed in 0u64..4096,
        link_sel in any::<u64>(),
        origin_sel in any::<u64>(),
    ) {
        let graph = build_graph(seed);
        let ((a, b), origin) = pick(&graph, link_sel, origin_sel);
        let prefix = prefix();

        let mut net = Network::new(&graph);
        net.originate(origin, prefix, None);
        net.run().expect("initial convergence");
        net.fail_link(a, b);
        net.run().expect("post-failure convergence");

        for asn in graph.asns() {
            let Some(route) = net.best_route(asn, prefix) else {
                continue;
            };
            // The recorded path must not step across the dead edge...
            for (x, y) in route.as_path().adjacent_pairs() {
                prop_assert!(
                    !((x == a && y == b) || (x == b && y == a)),
                    "AS {} best path {} traverses failed edge {}-{}",
                    asn, route.as_path(), a, b
                );
            }
            // ...and neither must the hop from the router to its neighbor
            // (the stored path starts at the advertising neighbor, so that
            // first edge is not in adjacent_pairs).
            if let Some(first_hop) = route.as_path().first() {
                prop_assert!(
                    !((asn == a && first_hop == b) || (asn == b && first_hop == a)),
                    "AS {} still uses dead session to {}", asn, first_hop
                );
            }
        }
    }

    #[test]
    fn restore_link_recovers_the_never_failed_outcome(
        seed in 0u64..4096,
        link_sel in any::<u64>(),
        origin_sel in any::<u64>(),
    ) {
        let graph = build_graph(seed);
        let ((a, b), origin) = pick(&graph, link_sel, origin_sel);
        let prefix = prefix();

        let mut bounced = Network::new(&graph);
        bounced.originate(origin, prefix, None);
        bounced.run().expect("initial convergence");
        bounced.fail_link(a, b);
        bounced.run().expect("post-failure convergence");
        bounced.restore_link(a, b);
        bounced.run().expect("post-restore convergence");

        let mut pristine = Network::new(&graph);
        pristine.originate(origin, prefix, None);
        pristine.run().expect("pristine convergence");

        for asn in graph.asns() {
            prop_assert_eq!(
                bounced.best_origin(asn, prefix),
                pristine.best_origin(asn, prefix),
                "AS {} disagrees with the never-failed network after restore",
                asn
            );
        }
    }
}
