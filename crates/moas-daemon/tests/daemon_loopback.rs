//! The acceptance lifecycle over real loopback sockets, deterministic
//! end-to-end: initial full sync at serial N → incremental diff after a
//! table update → cache reset once the client's serial ages out of the
//! delta ring → exception-file reload flipping a verdict — with `/validity`
//! and `/metrics` responses asserted exactly.

use std::collections::BTreeSet;
use std::time::Duration;

use bgp_types::{Asn, Ipv4Prefix, MoasList};
use moas_daemon::client::{FeedClient, HttpClient, SyncOutcome};
use moas_daemon::{Daemon, DaemonConfig, ExceptionSet, OriginTable, TableUpdate};

fn p(s: &str) -> Ipv4Prefix {
    s.parse().unwrap()
}

fn fixture_table() -> OriginTable {
    let mut table = OriginTable::new(42);
    table.insert(
        p("10.1.0.0/16"),
        [Asn(64512), Asn(64513)].into_iter().collect::<MoasList>(),
    );
    table.insert(
        p("192.0.2.0/24"),
        [Asn(64496)].into_iter().collect::<MoasList>(),
    );
    table
}

fn small_ring_config() -> DaemonConfig {
    DaemonConfig {
        // Two retained deltas, so a third update evicts the serial a lagging
        // client still holds.
        delta_ring_capacity: 2,
        io_timeout: Duration::from_secs(10),
        ..DaemonConfig::loopback()
    }
}

#[test]
fn full_lifecycle_over_loopback() {
    let daemon = Daemon::start(small_ring_config(), fixture_table()).unwrap();
    let mut http = HttpClient::connect(daemon.http_addr()).unwrap();
    let mut feed = FeedClient::connect(daemon.feed_addr()).unwrap();

    // --- Initial full sync at serial 0 -----------------------------------
    let entries = feed.reset_sync().unwrap();
    assert_eq!(entries, 3);
    assert_eq!(feed.session(), Some(42));
    assert_eq!(feed.serial(), 0);
    let expected: BTreeSet<(Ipv4Prefix, Asn)> = [
        (p("10.1.0.0/16"), Asn(64512)),
        (p("10.1.0.0/16"), Asn(64513)),
        (p("192.0.2.0/24"), Asn(64496)),
    ]
    .into_iter()
    .collect();
    assert_eq!(feed.entries(), &expected);

    // --- Query the initial table, exact bodies ---------------------------
    let (status, body) = http.get("/validity?prefix=10.1.0.0/16&asn=64512").unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        body,
        "{\"prefix\":\"10.1.0.0/16\",\"asn\":64512,\"state\":\"valid\",\
         \"matchedPrefix\":\"10.1.0.0/16\",\"origins\":[64512,64513]}"
    );
    let (status, body) = http.get("/validity?prefix=10.1.0.0/16&asn=64666").unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        body,
        "{\"prefix\":\"10.1.0.0/16\",\"asn\":64666,\"state\":\"invalid\",\
         \"matchedPrefix\":\"10.1.0.0/16\",\"origins\":[64512,64513]}"
    );
    let (status, body) = http
        .get("/validity?prefix=203.0.113.0/24&asn=64512")
        .unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        body,
        "{\"prefix\":\"203.0.113.0/24\",\"asn\":64512,\"state\":\"not-found\"}"
    );

    // --- Live update over HTTP ingest → push notify → incremental diff ---
    let (status, body) = http
        .post(
            "/ingest",
            r#"{"updates":[
                {"prefix": "198.51.100.0/24", "asn": 64497},
                {"announce": false, "prefix": "10.1.0.0/16", "asn": 64513}
            ]}"#,
        )
        .unwrap();
    assert_eq!(status, 200);
    assert_eq!(body, "{\"serial\":1,\"announced\":1,\"withdrawn\":1}");

    // The daemon pushes a serial notify to the synced feed client.
    assert_eq!(feed.wait_notify().unwrap(), 1);
    match feed.serial_sync().unwrap() {
        SyncOutcome::Diff {
            announced,
            withdrawn,
            serial,
        } => {
            assert_eq!((announced, withdrawn, serial), (1, 1, 1));
        }
        SyncOutcome::CacheReset => panic!("diff expected at serial 0 with a 2-deep ring"),
    }
    let expected: BTreeSet<(Ipv4Prefix, Asn)> = [
        (p("10.1.0.0/16"), Asn(64512)),
        (p("192.0.2.0/24"), Asn(64496)),
        (p("198.51.100.0/24"), Asn(64497)),
    ]
    .into_iter()
    .collect();
    assert_eq!(feed.entries(), &expected);
    // The withdrawn origin is now judged invalid.
    let (_, body) = http.get("/validity?prefix=10.1.0.0/16&asn=64513").unwrap();
    assert_eq!(
        body,
        "{\"prefix\":\"10.1.0.0/16\",\"asn\":64513,\"state\":\"invalid\",\
         \"matchedPrefix\":\"10.1.0.0/16\",\"origins\":[64512]}"
    );

    // --- Age the client's serial out of the 2-deep ring → cache reset ----
    for i in 0..3u32 {
        let (status, _) = http
            .post(
                "/ingest",
                &format!(r#"{{"updates":[{{"prefix": "172.16.{i}.0/24", "asn": 65000}}]}}"#),
            )
            .unwrap();
        assert_eq!(status, 200);
    }
    // Serials now run to 4; the ring retains only 3→4 and 2→3. The client
    // holds serial 1, so the daemon must answer with a cache reset...
    assert_eq!(feed.serial_sync().unwrap(), SyncOutcome::CacheReset);
    // ...and a fresh reset sync recovers the full table (6 entries).
    assert_eq!(feed.reset_sync().unwrap(), 6);
    assert_eq!(feed.serial(), 4);

    // A session mismatch likewise forces a reset, whatever the serial.
    assert_eq!(feed.sync_from(41, 4).unwrap(), SyncOutcome::CacheReset);

    // --- Exception reload flips a verdict --------------------------------
    let (_, before) = http.get("/validity?prefix=10.1.0.0/16&asn=64999").unwrap();
    assert_eq!(
        before,
        "{\"prefix\":\"10.1.0.0/16\",\"asn\":64999,\"state\":\"invalid\",\
         \"matchedPrefix\":\"10.1.0.0/16\",\"origins\":[64512]}"
    );
    let slurm = r#"{
        "slurmVersion": 1,
        "locallyAddedAssertions": {
            "prefixAssertions": [ { "prefix": "10.1.0.0/16", "asn": 64999 } ]
        }
    }"#;
    let (status, body) = http.post("/reload-exceptions", slurm).unwrap();
    assert_eq!(status, 200);
    assert_eq!(body, "{\"rules\":1,\"changed\":true}");
    let (_, after) = http.get("/validity?prefix=10.1.0.0/16&asn=64999").unwrap();
    assert_eq!(
        after,
        "{\"prefix\":\"10.1.0.0/16\",\"asn\":64999,\"state\":\"valid\",\
         \"matchedPrefix\":\"10.1.0.0/16\",\"origins\":[64512,64999]}"
    );

    // --- Metrics reflect everything above, in parseable form -------------
    let (status, metrics) = http.get("/metrics").unwrap();
    assert_eq!(status, 200);
    let parsed: Vec<(&str, u64)> = metrics
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .map(|l| {
            let (name, value) = l.split_once(' ').expect("metric line shape");
            (name, value.parse::<u64>().expect("metric value"))
        })
        .collect();
    let metric = |name: &str| {
        parsed
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("missing metric {name}"))
            .1
    };
    assert_eq!(metric("daemon_queries_valid_total"), 2);
    assert_eq!(metric("daemon_queries_invalid_total"), 3);
    assert_eq!(metric("daemon_queries_not_found_total"), 1);
    assert_eq!(metric("daemon_ingest_batches_total"), 4);
    assert_eq!(metric("daemon_ingest_updates_total"), 5);
    assert_eq!(metric("daemon_exception_reloads_total"), 1);
    assert_eq!(
        metric("daemon_exception_reloads_verdict_affecting_total"),
        1
    );
    assert_eq!(metric("feed_reset_syncs_total"), 2);
    assert_eq!(metric("feed_diff_syncs_total"), 1);
    assert_eq!(metric("feed_cache_resets_total"), 2);
    assert_eq!(metric("table_serial"), 4);
    assert_eq!(metric("table_entries"), 6);
    assert_eq!(metric("feed_connections_open"), 1);
    assert!(metric("feed_notifies_total") >= 1);

    // --- Clean shutdown --------------------------------------------------
    let (status, body) = http.post("/shutdown", "").unwrap();
    assert_eq!(status, 200);
    assert_eq!(body, "{\"ok\":true}");
    assert!(daemon.shutdown_requested());
    let http_stats = daemon.http_stats();
    assert_eq!(http_stats.accepted, 1);
    assert_eq!(http_stats.refused, 0);
    daemon.shutdown();
}

#[test]
fn exceptions_active_from_startup() {
    let slurm = r#"{
        "validationOutputFilters": {
            "prefixFilters": [ { "prefix": "10.1.0.0/16" } ]
        }
    }"#;
    let config = DaemonConfig {
        exceptions: ExceptionSet::from_json(slurm).unwrap(),
        ..DaemonConfig::loopback()
    };
    let daemon = Daemon::start(config, fixture_table()).unwrap();
    let mut http = HttpClient::connect(daemon.http_addr()).unwrap();
    // Everything derived at the /16 is filtered and nothing covers it.
    let (_, body) = http.get("/validity?prefix=10.1.0.0/16&asn=64512").unwrap();
    assert_eq!(
        body,
        "{\"prefix\":\"10.1.0.0/16\",\"asn\":64512,\"state\":\"not-found\"}"
    );
    daemon.shutdown();
}

#[test]
fn in_process_apply_feeds_the_ring_like_ingest() {
    let daemon = Daemon::start(DaemonConfig::loopback(), fixture_table()).unwrap();
    let mut feed = FeedClient::connect(daemon.feed_addr()).unwrap();
    feed.reset_sync().unwrap();
    let serial = daemon.apply(&[TableUpdate::announce(p("203.0.113.0/24"), Asn(64511))]);
    assert_eq!(serial, 1);
    assert_eq!(feed.wait_notify().unwrap(), 1);
    match feed.serial_sync().unwrap() {
        SyncOutcome::Diff { announced, .. } => assert_eq!(announced, 1),
        SyncOutcome::CacheReset => panic!("expected a diff"),
    }
    assert!(feed.entries().contains(&(p("203.0.113.0/24"), Asn(64511))));
    daemon.shutdown();
}

#[test]
fn two_feed_clients_both_get_notified() {
    let daemon = Daemon::start(DaemonConfig::loopback(), fixture_table()).unwrap();
    let mut a = FeedClient::connect(daemon.feed_addr()).unwrap();
    let mut b = FeedClient::connect(daemon.feed_addr()).unwrap();
    a.reset_sync().unwrap();
    b.reset_sync().unwrap();
    daemon.apply(&[TableUpdate::announce(p("203.0.113.0/24"), Asn(64511))]);
    assert_eq!(a.wait_notify().unwrap(), 1);
    assert_eq!(b.wait_notify().unwrap(), 1);
    daemon.shutdown();
}

#[test]
fn malformed_http_gets_400_and_close() {
    use std::io::{Read, Write};
    let daemon = Daemon::start(DaemonConfig::loopback(), fixture_table()).unwrap();
    let mut raw = std::net::TcpStream::connect(daemon.http_addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    raw.write_all(b"GET / HTTP/2.0\r\n\r\n").unwrap();
    let mut response = String::new();
    raw.read_to_string(&mut response).unwrap(); // server closes after 400
    assert!(
        response.starts_with("HTTP/1.1 400 Bad Request\r\n"),
        "{response}"
    );
    daemon.shutdown();
}

#[test]
fn malformed_feed_bytes_get_error_pdu_and_close() {
    use std::io::{Read, Write};
    let daemon = Daemon::start(DaemonConfig::loopback(), fixture_table()).unwrap();
    let mut raw = std::net::TcpStream::connect(daemon.feed_addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    raw.write_all(&[9u8; 8]).unwrap(); // bad version byte
    let mut response = Vec::new();
    raw.read_to_end(&mut response).unwrap(); // server closes after the error
    let (pdu, _) = moas_daemon::Pdu::decode(&response).unwrap().unwrap();
    match pdu {
        moas_daemon::Pdu::Error { code, message } => {
            assert_eq!(code, 0);
            assert!(message.contains("version"), "{message}");
        }
        other => panic!("expected an error PDU, got {other:?}"),
    }
    daemon.shutdown();
}

#[test]
fn slowloris_gets_408_without_stalling_other_queries() {
    use std::io::{Read, Write};
    let config = DaemonConfig {
        request_deadline: Duration::from_millis(300),
        ..DaemonConfig::loopback()
    };
    let daemon = Daemon::start(config, fixture_table()).unwrap();

    // The attacker: trickle a request one byte at a time, far slower than
    // the deadline allows.
    let mut slow = std::net::TcpStream::connect(daemon.http_addr()).unwrap();
    slow.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    slow.write_all(b"G").unwrap();

    // While the slow request dribbles in, a well-behaved client must be
    // served normally.
    let started = std::time::Instant::now();
    for chunk in [b"E".as_slice(), b"T", b" ", b"/"] {
        std::thread::sleep(Duration::from_millis(50));
        // Ignore write errors: the server may close us mid-loop.
        let _ = slow.write_all(chunk);
        let mut http = HttpClient::connect(daemon.http_addr()).unwrap();
        let (status, _) = http.get("/status").unwrap();
        assert_eq!(status, 200);
    }

    // The slow connection is answered 408 and closed once the deadline
    // passes; read_to_string returns after the server's close.
    let mut response = String::new();
    slow.read_to_string(&mut response).unwrap();
    assert!(
        response.starts_with("HTTP/1.1 408 Request Timeout\r\n"),
        "{response}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(8),
        "408 took {:?}",
        started.elapsed()
    );

    // And the listener keeps serving afterwards.
    let mut http = HttpClient::connect(daemon.http_addr()).unwrap();
    assert_eq!(http.get("/status").unwrap().0, 200);
    daemon.shutdown();
}

#[test]
fn oversized_head_gets_431_and_close() {
    use std::io::{Read, Write};
    let daemon = Daemon::start(DaemonConfig::loopback(), fixture_table()).unwrap();
    let mut raw = std::net::TcpStream::connect(daemon.http_addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // 9 KiB of header without a terminator blows the 8 KiB head cap.
    let mut req = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
    req.extend(std::iter::repeat_n(b'a', 9 * 1024));
    raw.write_all(&req).unwrap();
    let mut response = String::new();
    raw.read_to_string(&mut response).unwrap();
    assert!(
        response.starts_with("HTTP/1.1 431 Request Header Fields Too Large\r\n"),
        "{response}"
    );
    daemon.shutdown();
}

#[test]
fn live_bgp_session_feeds_the_table() {
    use bgp_session::{replay_updates, ReplayConfig, SessionConfig};
    use bgp_types::{AsPath, RouteOrigin};
    use bgp_wire::bgp::{PathAttributes, UpdateMessage};

    fn update(withdrawn: &[&str], origin: Option<u32>, nlri: &[&str]) -> UpdateMessage {
        let attrs = origin.map(|asn| {
            let as_path = AsPath::from_sequence([Asn(64_900), Asn(asn)]);
            PathAttributes {
                origin: RouteOrigin::Igp,
                next_hop: PathAttributes::synthetic_next_hop(as_path.first()),
                as_path,
                local_pref: None,
                communities: Vec::new(),
                mp_reach: None,
                mp_unreach: None,
            }
        });
        UpdateMessage {
            withdrawn: withdrawn.iter().map(|s| p(s)).collect(),
            attrs,
            nlri: nlri.iter().map(|s| p(s)).collect(),
        }
    }

    let config = DaemonConfig {
        bgp_addr: Some("127.0.0.1:0".to_string()),
        ..DaemonConfig::loopback()
    };
    let daemon = Daemon::start(config, fixture_table()).unwrap();
    let bgp_addr = daemon.bgp_addr().expect("bgp listener configured");

    // One live session announces a new origin for a fixture prefix plus a
    // brand-new prefix, and withdraws 192.0.2.0/24 (all origins).
    let mut session = SessionConfig::new(Asn(70_000), 0x7F00_0002);
    session.retry_base_ms = 20;
    let mut stream = [
        update(&[], Some(65_001), &["10.1.0.0/16", "203.0.113.0/24"]),
        update(&["192.0.2.0/24"], None, &[]),
    ]
    .into_iter();
    let report = replay_updates(bgp_addr, &ReplayConfig::new(session), &mut stream).unwrap();
    assert_eq!(report.updates_sent, 2);
    assert_eq!(report.stats.established, 1);

    // The writes land asynchronously (reactor thread); poll the serial.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while daemon.serial() < 2 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(daemon.serial(), 2, "BGP batches never applied");

    let mut http = HttpClient::connect(daemon.http_addr()).unwrap();
    let (status, body) = http.get("/validity?prefix=10.1.0.0/16&asn=65001").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"state\":\"valid\""), "{body}");
    let (_, body) = http
        .get("/validity?prefix=203.0.113.0/24&asn=65001")
        .unwrap();
    assert!(body.contains("\"state\":\"valid\""), "{body}");
    let (_, body) = http.get("/validity?prefix=192.0.2.0/24&asn=64496").unwrap();
    assert!(body.contains("\"state\":\"not-found\""), "{body}");

    let (_, metrics) = http.get("/metrics").unwrap();
    assert!(
        metrics.contains("bgp_sessions_established_total 1\n"),
        "{metrics}"
    );
    assert!(metrics.contains("bgp_updates_total 2\n"), "{metrics}");
    assert!(metrics.contains("bgp_table_changes_total 3\n"), "{metrics}");
    daemon.shutdown();
}
