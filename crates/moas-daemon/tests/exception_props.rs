//! Property-based tests for SLURM-style exception files: serialization
//! round-trips, precedence rules, and table lookups under overrides.

use bgp_types::{Asn, Ipv4Prefix, MoasList};
use moas_daemon::{validate, ExceptionSet, OriginTable, PrefixAssertion, PrefixFilter, Verdict};
use proptest::prelude::*;
use proptest::strategy::Just;

fn arb_asn() -> impl Strategy<Value = Asn> {
    (64_000u32..64_100).prop_map(Asn)
}

/// Prefixes drawn from a handful of /8s with varied lengths, so containment
/// relations (the interesting part of filter/assertion semantics) actually
/// occur instead of everything being disjoint.
fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (0u32..4, 0u32..16, 8u8..=24)
        .prop_map(|(net, sub, len)| Ipv4Prefix::new(((10 + net) << 24) | (sub << 16), len))
}

fn arb_comment() -> impl Strategy<Value = Option<String>> {
    prop_oneof![
        Just(None),
        Just(Some("customer".to_string())),
        Just(Some("ops override — see ticket #7".to_string())),
    ]
}

fn arb_filter() -> impl Strategy<Value = PrefixFilter> {
    // At least one selector must be present: generate the three legal shapes.
    (arb_prefix(), arb_asn(), arb_comment(), 0u32..3).prop_map(|(prefix, asn, comment, shape)| {
        PrefixFilter {
            prefix: (shape != 1).then_some(prefix),
            asn: (shape != 0).then_some(asn),
            comment,
        }
    })
}

fn arb_assertion() -> impl Strategy<Value = PrefixAssertion> {
    (arb_prefix(), arb_asn(), arb_comment()).prop_map(|(prefix, asn, comment)| PrefixAssertion {
        prefix,
        asn,
        comment,
    })
}

fn arb_exceptions() -> impl Strategy<Value = ExceptionSet> {
    (
        prop::collection::vec(arb_filter(), 0..4),
        prop::collection::vec(arb_assertion(), 0..4),
    )
        .prop_map(|(filters, assertions)| ExceptionSet {
            filters,
            assertions,
        })
}

/// A small derived table over the same prefix pool the rules draw from.
fn arb_table() -> impl Strategy<Value = OriginTable> {
    prop::collection::vec(
        (arb_prefix(), prop::collection::btree_set(arb_asn(), 1..4)),
        0..6,
    )
    .prop_map(|entries| {
        let mut table = OriginTable::new(1);
        for (prefix, origins) in entries {
            table.insert(prefix, origins.into_iter().collect::<MoasList>());
        }
        table
    })
}

proptest! {
    #[test]
    fn exception_files_round_trip(set in arb_exceptions()) {
        let text = set.to_json_string();
        let back = ExceptionSet::from_json(&text).unwrap();
        prop_assert_eq!(back, set);
    }

    #[test]
    fn serialized_files_always_reparse_under_rule_growth(
        a in arb_exceptions(),
        b in arb_exceptions(),
    ) {
        // Concatenating two rule sets is still a valid file (rules are
        // independent), and the round-trip preserves file order.
        let merged = ExceptionSet {
            filters: a.filters.iter().chain(&b.filters).cloned().collect(),
            assertions: a.assertions.iter().chain(&b.assertions).cloned().collect(),
        };
        let back = ExceptionSet::from_json(&merged.to_json_string()).unwrap();
        prop_assert_eq!(back.len(), a.len() + b.len());
        prop_assert_eq!(back, merged);
    }

    #[test]
    fn filters_out_matches_rule_semantics(
        set in arb_exceptions(),
        prefix in arb_prefix(),
        asn in arb_asn(),
    ) {
        let expected = set.filters.iter().any(|f| {
            f.prefix.is_none_or(|p| p.contains(prefix))
                && f.asn.is_none_or(|a| a == asn)
        });
        prop_assert_eq!(set.filters_out(prefix, asn), expected);
    }

    #[test]
    fn asserted_pairs_always_validate(
        table in arb_table(),
        set in arb_exceptions(),
        assertion in arb_assertion(),
    ) {
        // Assertions outrank filters and derived data: the asserted pair is
        // valid at its own prefix no matter what else the file says.
        let mut set = set;
        set.assertions.push(assertion.clone());
        prop_assert_eq!(
            validate(&table, &set, assertion.prefix, assertion.asn),
            Verdict::Valid
        );
    }

    #[test]
    fn filters_only_remove(
        table in arb_table(),
        filters in prop::collection::vec(arb_filter(), 0..4),
        prefix in arb_prefix(),
        asn in arb_asn(),
    ) {
        // With no assertions, a filter can never manufacture coverage: a
        // query that found nothing in the derived table still finds nothing.
        let unfiltered = validate(&table, &ExceptionSet::empty(), prefix, asn);
        let set = ExceptionSet { filters, assertions: Vec::new() };
        let filtered = validate(&table, &set, prefix, asn);
        if unfiltered == Verdict::NotFound {
            prop_assert_eq!(filtered, Verdict::NotFound);
        }
    }

    #[test]
    fn filter_everything_blanks_the_table(
        table in arb_table(),
        prefix in arb_prefix(),
        asn in arb_asn(),
    ) {
        // An ASN-wildcard filter covering the whole pool removes every
        // derived entry, so every lookup is NotFound.
        let set = ExceptionSet {
            filters: vec![PrefixFilter {
                prefix: Some(Ipv4Prefix::new(0, 0)),
                asn: None,
                comment: None,
            }],
            assertions: Vec::new(),
        };
        prop_assert_eq!(validate(&table, &set, prefix, asn), Verdict::NotFound);
    }

    #[test]
    fn lookups_agree_with_naive_model(
        table in arb_table(),
        set in arb_exceptions(),
        prefix in arb_prefix(),
        asn in arb_asn(),
    ) {
        // Reference model: collect surviving derived entries and assertions
        // per covering prefix, then let the most-specific non-empty origin
        // set decide.
        let mut levels: std::collections::BTreeMap<Ipv4Prefix, std::collections::BTreeSet<Asn>> =
            std::collections::BTreeMap::new();
        for (entry_prefix, list) in table.covering(prefix) {
            let survivors: std::collections::BTreeSet<Asn> = list
                .iter()
                .filter(|&origin| !set.filters_out(entry_prefix, origin))
                .collect();
            levels.insert(entry_prefix, survivors);
        }
        for assertion in set.assertions_covering(prefix) {
            levels.entry(assertion.prefix).or_default().insert(assertion.asn);
        }
        let expected = levels
            .iter()
            .filter(|(_, origins)| !origins.is_empty())
            .max_by_key(|(p, _)| p.len())
            .map_or(Verdict::NotFound, |(_, origins)| {
                if origins.contains(&asn) { Verdict::Valid } else { Verdict::Invalid }
            });
        prop_assert_eq!(validate(&table, &set, prefix, asn), expected);
    }
}
