//! The daemon: shared table state served over loopback TCP listeners
//! (HTTP query/control, binary push feed, optional live BGP ingest), each
//! driven by a vendored [`minisock`] reactor on its own worker thread.

use std::collections::BTreeMap;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use bgp_session::{BgpListener, PeerInfo, SessionConfig, SessionHandler};
use bgp_types::{Asn, Ipv4Prefix};
use bgp_wire::bgp::UpdateMessage;
use experiments::json::Json;
use minisock::{Action, Config, ConnId, Server, ServerStats, Service};

use crate::exceptions::ExceptionSet;
use crate::feed::{Pdu, PrefixEntry};
use crate::http::{json_response, text_response, HttpError, Request};
use crate::table::{DeltaRing, OriginTable, TableUpdate};
use crate::validity::{validate_detailed, Verdict};

/// Counters the daemon exposes through `/metrics`, all monotonic. Query-path
/// counters live separately in [`QueryCounters`] so `/validity` never needs
/// the shared mutex.
#[derive(Debug, Default, Clone, Copy)]
struct DaemonMetrics {
    ingest_batches: u64,
    ingest_updates: u64,
    exception_reloads: u64,
    exception_reloads_verdict_affecting: u64,
    feed_reset_syncs: u64,
    feed_diff_syncs: u64,
    feed_cache_resets: u64,
    feed_notifies: u64,
    bgp_sessions_established: u64,
    bgp_sessions_closed: u64,
    bgp_updates: u64,
    bgp_table_changes: u64,
}

/// Lock-free counters for the read-mostly query path.
#[derive(Debug, Default)]
struct QueryCounters {
    http_requests: AtomicU64,
    queries: AtomicU64,
    queries_valid: AtomicU64,
    queries_invalid: AtomicU64,
    queries_not_found: AtomicU64,
}

/// Everything a `/validity` query reads, bundled so the whole verdict input
/// can be published atomically as one `Arc` snapshot.
#[derive(Debug, Clone)]
struct QueryState {
    table: OriginTable,
    exceptions: ExceptionSet,
}

/// Everything both listeners share, behind one mutex. Handlers hold the
/// lock only while computing a response — never across I/O.
///
/// The table and exception rules sit inside an `Arc<QueryState>`: writers
/// mutate through [`Arc::make_mut`] (swap-on-apply — the state is cloned
/// only when a concurrent `/validity` reader still holds the previous
/// snapshot), and readers clone the `Arc` under a brief lock, then validate
/// against the snapshot with the mutex released.
struct Shared {
    query: Arc<QueryState>,
    ring: DeltaRing,
    metrics: DaemonMetrics,
    counters: Arc<QueryCounters>,
    shutdown_requested: bool,
    feed_conns_open: u64,
}

impl Shared {
    fn table(&self) -> &OriginTable {
        &self.query.table
    }

    fn apply(&mut self, updates: &[TableUpdate]) -> (u32, usize, usize) {
        let delta = Arc::make_mut(&mut self.query).table.apply(updates);
        let (announced, withdrawn) = (delta.announced.len(), delta.withdrawn.len());
        let serial = delta.serial;
        if !delta.is_empty() {
            self.ring.push(delta);
        }
        (serial, announced, withdrawn)
    }
}

/// Daemon start-up parameters.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Bind address of the HTTP listener (`127.0.0.1:0` for ephemeral).
    pub http_addr: String,
    /// Bind address of the feed listener.
    pub feed_addr: String,
    /// How many per-serial deltas the feed retains; clients whose serial
    /// ages out of this ring get a cache reset.
    pub delta_ring_capacity: usize,
    /// Per-listener cap on simultaneously open connections.
    pub max_connections: usize,
    /// Per-connection read/write timeout on both listeners.
    pub io_timeout: Duration,
    /// Slow-client guard on the HTTP listener: once the first byte of a
    /// request has arrived, the whole head and body must follow within
    /// this budget or the daemon answers 408 and closes. A slowloris peer
    /// trickling one byte at a time would otherwise hold its connection
    /// (and its slot under [`max_connections`](Self::max_connections))
    /// indefinitely, because every byte resets the reactor's idle timeout.
    pub request_deadline: Duration,
    /// Bind address of the live BGP ingest listener, or `None` to run
    /// without one. Peers that establish a session here feed decoded
    /// UPDATEs straight into the origin table (see [`crate::bgp`]).
    pub bgp_addr: Option<String>,
    /// Local ASN the BGP listener announces in its OPEN.
    pub bgp_asn: Asn,
    /// Local exception rules active at start-up.
    pub exceptions: ExceptionSet,
}

impl DaemonConfig {
    /// Ephemeral loopback ports, 64-deep delta ring, 30 s timeouts.
    #[must_use]
    pub fn loopback() -> Self {
        DaemonConfig {
            http_addr: "127.0.0.1:0".to_string(),
            feed_addr: "127.0.0.1:0".to_string(),
            delta_ring_capacity: 64,
            max_connections: 64,
            io_timeout: Duration::from_secs(30),
            request_deadline: Duration::from_secs(10),
            bgp_addr: None,
            bgp_asn: Asn(64512),
            exceptions: ExceptionSet::empty(),
        }
    }
}

/// A running daemon: both listeners live until [`shutdown`](Self::shutdown)
/// (or drop).
pub struct Daemon {
    shared: Arc<Mutex<Shared>>,
    http_server: Server,
    feed_server: Server,
    bgp_server: Option<Server>,
}

impl Daemon {
    /// Binds both listeners and starts serving `table`.
    ///
    /// # Errors
    ///
    /// Returns any socket bind/spawn error.
    pub fn start(config: DaemonConfig, table: OriginTable) -> io::Result<Daemon> {
        let shared = Arc::new(Mutex::new(Shared {
            query: Arc::new(QueryState {
                table,
                exceptions: config.exceptions.clone(),
            }),
            ring: DeltaRing::new(config.delta_ring_capacity),
            metrics: DaemonMetrics::default(),
            counters: Arc::new(QueryCounters::default()),
            shutdown_requested: false,
            feed_conns_open: 0,
        }));
        let sock_config = Config {
            max_connections: config.max_connections,
            read_timeout: config.io_timeout,
            write_timeout: config.io_timeout,
            ..Config::default()
        };
        let http_server = Server::bind(
            config.http_addr.as_str(),
            HttpService {
                shared: Arc::clone(&shared),
                request_deadline: config.request_deadline,
                pending_since: BTreeMap::new(),
            },
            sock_config.clone(),
        )?;
        let feed_server = Server::bind(
            config.feed_addr.as_str(),
            FeedService {
                shared: Arc::clone(&shared),
                synced: BTreeMap::new(),
            },
            sock_config.clone(),
        )?;
        let bgp_server = match &config.bgp_addr {
            Some(addr) => {
                // The BGP identifier is cosmetic for a loopback listener;
                // 127.0.0.1 keeps it recognisable in packet dumps.
                let template = SessionConfig::new(config.bgp_asn, 0x7F00_0001);
                let handler = BgpHandler {
                    shared: Arc::clone(&shared),
                };
                Some(Server::bind(
                    addr.as_str(),
                    BgpListener::new(template, handler),
                    sock_config,
                )?)
            }
            None => None,
        };
        Ok(Daemon {
            shared,
            http_server,
            feed_server,
            bgp_server,
        })
    }

    fn lock(&self) -> MutexGuard<'_, Shared> {
        // A poisoned mutex means a handler panicked; the state itself is
        // plain data, so continue with it rather than cascading the panic.
        match self.shared.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The HTTP listener's bound address.
    #[must_use]
    pub fn http_addr(&self) -> SocketAddr {
        self.http_server.local_addr()
    }

    /// The feed listener's bound address.
    #[must_use]
    pub fn feed_addr(&self) -> SocketAddr {
        self.feed_server.local_addr()
    }

    /// The BGP ingest listener's bound address, when one was configured.
    #[must_use]
    pub fn bgp_addr(&self) -> Option<SocketAddr> {
        self.bgp_server.as_ref().map(Server::local_addr)
    }

    /// The table's current serial.
    #[must_use]
    pub fn serial(&self) -> u32 {
        self.lock().table().serial()
    }

    /// Applies updates in-process, exactly as `POST /ingest` would, and
    /// returns the resulting serial. Used by tests and benchmarks.
    pub fn apply(&self, updates: &[TableUpdate]) -> u32 {
        let mut shared = self.lock();
        shared.metrics.ingest_batches += 1;
        shared.metrics.ingest_updates += updates.len() as u64;
        shared.apply(updates).0
    }

    /// `true` once a client has called `POST /shutdown`; the process
    /// embedding the daemon polls this to decide when to exit.
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.lock().shutdown_requested
    }

    /// Socket-level counters of the HTTP listener.
    #[must_use]
    pub fn http_stats(&self) -> ServerStats {
        self.http_server.stats()
    }

    /// Socket-level counters of the feed listener.
    #[must_use]
    pub fn feed_stats(&self) -> ServerStats {
        self.feed_server.stats()
    }

    /// Socket-level counters of the BGP listener, when one was configured.
    #[must_use]
    pub fn bgp_stats(&self) -> Option<ServerStats> {
        self.bgp_server.as_ref().map(Server::stats)
    }

    /// Stops all listeners gracefully (pending output drains first).
    pub fn shutdown(self) {
        self.http_server.shutdown();
        self.feed_server.shutdown();
        if let Some(bgp) = self.bgp_server {
            bgp.shutdown();
        }
    }
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("http_addr", &self.http_addr())
            .field("feed_addr", &self.feed_addr())
            .field("bgp_addr", &self.bgp_addr())
            .finish_non_exhaustive()
    }
}

fn lock_shared<'a>(shared: &'a Arc<Mutex<Shared>>) -> MutexGuard<'a, Shared> {
    match shared.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn json_escape(text: &str) -> String {
    Json::Str(text.to_string()).pretty()
}

// ---------------------------------------------------------------------------
// HTTP side
// ---------------------------------------------------------------------------

struct HttpService {
    shared: Arc<Mutex<Shared>>,
    /// Budget for a started request to arrive completely.
    request_deadline: Duration,
    /// When each connection's currently-buffered partial request began
    /// arriving. Present only while a request is incomplete; the sweep
    /// hook answers 408 and closes once the deadline passes.
    pending_since: BTreeMap<ConnId, std::time::Instant>,
}

impl HttpService {
    /// Routes one parsed request; returns `(status, body)`. The body is
    /// JSON except for `/metrics`.
    fn handle(shared: &mut Shared, req: &Request) -> (u16, String) {
        shared
            .counters
            .http_requests
            .fetch_add(1, Ordering::Relaxed);
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/validity") => {
                let state = Arc::clone(&shared.query);
                let counters = Arc::clone(&shared.counters);
                handle_validity(&state, &counters, req)
            }
            ("GET", "/metrics") => (200, render_metrics(shared)),
            ("GET", "/status") => (200, render_status(shared)),
            ("POST", "/ingest") => handle_ingest(shared, req),
            ("POST", "/reload-exceptions") => handle_reload(shared, req),
            ("POST", "/shutdown") => {
                shared.shutdown_requested = true;
                (200, "{\"ok\":true}".to_string())
            }
            ("GET" | "POST", _) => (404, "{\"error\":\"not found\"}".to_string()),
            _ => (405, "{\"error\":\"method not allowed\"}".to_string()),
        }
    }
}

impl Service for HttpService {
    fn on_data(&mut self, conn: ConnId, inbuf: &mut Vec<u8>, out: &mut Vec<u8>) -> Action {
        let mut consumed = 0;
        loop {
            match Request::parse(&inbuf[consumed..]) {
                Ok(Some((req, used))) => {
                    consumed += used;
                    // A complete request landed; the slow-client clock
                    // restarts with the next partial one.
                    self.pending_since.remove(&conn);
                    // The hot read path: grab the current query snapshot
                    // under the lock, then parse, validate and render the
                    // response with the lock released — concurrent queries
                    // only contend for two Arc clones, not for the verdict
                    // computation.
                    let (status, body) = if req.method == "GET" && req.path == "/validity" {
                        let (state, counters) = {
                            let shared = lock_shared(&self.shared);
                            (Arc::clone(&shared.query), Arc::clone(&shared.counters))
                        };
                        counters.http_requests.fetch_add(1, Ordering::Relaxed);
                        handle_validity(&state, &counters, &req)
                    } else {
                        let mut shared = lock_shared(&self.shared);
                        Self::handle(&mut shared, &req)
                    };
                    let bytes = if req.path == "/metrics" {
                        text_response(status, &body, req.keep_alive)
                    } else {
                        json_response(status, &body, req.keep_alive)
                    };
                    out.extend_from_slice(&bytes);
                    if !req.keep_alive {
                        inbuf.drain(..consumed);
                        return Action::CloseAfterFlush;
                    }
                }
                Ok(None) => break,
                Err(HttpError { status, message }) => {
                    let body = format!("{{\"error\":{}}}", json_escape(&message));
                    out.extend_from_slice(&json_response(status, &body, false));
                    inbuf.clear();
                    self.pending_since.remove(&conn);
                    return Action::CloseAfterFlush;
                }
            }
        }
        inbuf.drain(..consumed);
        if inbuf.is_empty() {
            self.pending_since.remove(&conn);
        } else {
            // A request has started but not finished; remember when its
            // first byte arrived (kept across later trickled bytes).
            self.pending_since
                .entry(conn)
                .or_insert_with(std::time::Instant::now);
        }
        Action::Continue
    }

    fn on_sweep(&mut self, conn: ConnId, out: &mut Vec<u8>) -> Action {
        let expired = self
            .pending_since
            .get(&conn)
            .is_some_and(|since| since.elapsed() > self.request_deadline);
        if !expired {
            return Action::Continue;
        }
        self.pending_since.remove(&conn);
        let err = crate::http::timeout_error();
        let body = format!("{{\"error\":{}}}", json_escape(&err.message));
        out.extend_from_slice(&json_response(err.status, &body, false));
        Action::CloseAfterFlush
    }

    fn on_close(&mut self, conn: ConnId) {
        self.pending_since.remove(&conn);
    }
}

fn handle_validity(state: &QueryState, counters: &QueryCounters, req: &Request) -> (u16, String) {
    let (Some(prefix_text), Some(asn_text)) = (req.query_param("prefix"), req.query_param("asn"))
    else {
        return (
            400,
            "{\"error\":\"required query parameters: prefix, asn\"}".to_string(),
        );
    };
    let Ok(prefix) = prefix_text.parse::<Ipv4Prefix>() else {
        return (
            400,
            format!(
                "{{\"error\":{}}}",
                json_escape(&format!("bad prefix '{prefix_text}'"))
            ),
        );
    };
    let asn_number = asn_text.strip_prefix("AS").unwrap_or(asn_text);
    let Ok(asn) = asn_number.parse::<u32>().map(Asn) else {
        return (
            400,
            format!(
                "{{\"error\":{}}}",
                json_escape(&format!("bad asn '{asn_text}'"))
            ),
        );
    };
    let validation = validate_detailed(&state.table, &state.exceptions, prefix, asn);
    counters.queries.fetch_add(1, Ordering::Relaxed);
    match validation.verdict {
        Verdict::Valid => &counters.queries_valid,
        Verdict::Invalid => &counters.queries_invalid,
        Verdict::NotFound => &counters.queries_not_found,
    }
    .fetch_add(1, Ordering::Relaxed);
    let mut body = format!(
        "{{\"prefix\":\"{prefix}\",\"asn\":{},\"state\":\"{}\"",
        asn.0,
        validation.verdict.as_str()
    );
    if let Some(matched) = validation.matched_prefix {
        let origins: Vec<String> = validation.origins.iter().map(|a| a.0.to_string()).collect();
        body.push_str(&format!(
            ",\"matchedPrefix\":\"{matched}\",\"origins\":[{}]",
            origins.join(",")
        ));
    }
    body.push('}');
    (200, body)
}

fn handle_ingest(shared: &mut Shared, req: &Request) -> (u16, String) {
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return (400, "{\"error\":\"body is not UTF-8\"}".to_string());
    };
    let updates = match parse_ingest(text) {
        Ok(updates) => updates,
        Err(message) => return (400, format!("{{\"error\":{}}}", json_escape(&message))),
    };
    shared.metrics.ingest_batches += 1;
    shared.metrics.ingest_updates += updates.len() as u64;
    let (serial, announced, withdrawn) = shared.apply(&updates);
    (
        200,
        format!("{{\"serial\":{serial},\"announced\":{announced},\"withdrawn\":{withdrawn}}}"),
    )
}

/// Parses an ingest body: `{"updates": [{"announce": true, "prefix":
/// "10.0.0.0/8", "asn": 64512}, ...]}`. `announce` defaults to `true`.
fn parse_ingest(text: &str) -> Result<Vec<TableUpdate>, String> {
    let doc = Json::parse(text).map_err(|e| format!("bad JSON: {}", e.message))?;
    let Some(Json::Arr(items)) = doc.get("updates") else {
        return Err("missing 'updates' array".to_string());
    };
    let mut updates = Vec::with_capacity(items.len());
    for item in items {
        let announce = match item.get("announce") {
            Some(Json::Bool(b)) => *b,
            None => true,
            Some(_) => return Err("'announce' must be a boolean".to_string()),
        };
        let prefix = match item.get("prefix") {
            Some(Json::Str(s)) => s
                .parse::<Ipv4Prefix>()
                .map_err(|e| format!("bad prefix '{s}': {e}"))?,
            _ => return Err("update missing string 'prefix'".to_string()),
        };
        let asn = match item.get("asn") {
            Some(Json::Num(n)) if *n >= 0.0 && *n <= f64::from(u32::MAX) && n.fract() == 0.0 => {
                Asn(*n as u32)
            }
            _ => return Err("update missing 32-bit 'asn'".to_string()),
        };
        updates.push(TableUpdate {
            announce,
            prefix,
            asn,
        });
    }
    Ok(updates)
}

fn handle_reload(shared: &mut Shared, req: &Request) -> (u16, String) {
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return (400, "{\"error\":\"body is not UTF-8\"}".to_string());
    };
    match ExceptionSet::from_json(text) {
        Ok(set) => {
            let changed = set != shared.query.exceptions;
            shared.metrics.exception_reloads += 1;
            if changed {
                shared.metrics.exception_reloads_verdict_affecting += 1;
            }
            let rules = set.len();
            if changed {
                Arc::make_mut(&mut shared.query).exceptions = set;
            }
            (200, format!("{{\"rules\":{rules},\"changed\":{changed}}}"))
        }
        Err(e) => (400, format!("{{\"error\":{}}}", json_escape(&e.message))),
    }
}

fn render_status(shared: &Shared) -> String {
    format!(
        concat!(
            "{{\"sessionId\":{},\"serial\":{},\"prefixes\":{},\"entries\":{},",
            "\"deltasRetained\":{},\"exceptionRules\":{},\"shutdownRequested\":{}}}"
        ),
        shared.table().session_id(),
        shared.table().serial(),
        shared.table().prefix_count(),
        shared.table().entry_count(),
        shared.ring.len(),
        shared.query.exceptions.len(),
        shared.shutdown_requested,
    )
}

fn render_metrics(shared: &Shared) -> String {
    let m = &shared.metrics;
    let c = &shared.counters;
    let mut out = String::with_capacity(768);
    out.push_str("# moas-labd metrics: one 'name value' pair per line\n");
    for (name, value) in [
        (
            "daemon_http_requests_total",
            c.http_requests.load(Ordering::Relaxed),
        ),
        ("daemon_queries_total", c.queries.load(Ordering::Relaxed)),
        (
            "daemon_queries_valid_total",
            c.queries_valid.load(Ordering::Relaxed),
        ),
        (
            "daemon_queries_invalid_total",
            c.queries_invalid.load(Ordering::Relaxed),
        ),
        (
            "daemon_queries_not_found_total",
            c.queries_not_found.load(Ordering::Relaxed),
        ),
        ("daemon_ingest_batches_total", m.ingest_batches),
        ("daemon_ingest_updates_total", m.ingest_updates),
        ("daemon_exception_reloads_total", m.exception_reloads),
        (
            "daemon_exception_reloads_verdict_affecting_total",
            m.exception_reloads_verdict_affecting,
        ),
        ("feed_reset_syncs_total", m.feed_reset_syncs),
        ("feed_diff_syncs_total", m.feed_diff_syncs),
        ("feed_cache_resets_total", m.feed_cache_resets),
        ("feed_notifies_total", m.feed_notifies),
        ("feed_connections_open", shared.feed_conns_open),
        ("bgp_sessions_established_total", m.bgp_sessions_established),
        ("bgp_sessions_closed_total", m.bgp_sessions_closed),
        ("bgp_updates_total", m.bgp_updates),
        ("bgp_table_changes_total", m.bgp_table_changes),
        ("table_serial", u64::from(shared.table().serial())),
        ("table_prefixes", shared.table().prefix_count() as u64),
        ("table_entries", shared.table().entry_count() as u64),
        ("exception_rules", shared.query.exceptions.len() as u64),
    ] {
        out.push_str(name);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// Feed side
// ---------------------------------------------------------------------------

struct FeedService {
    shared: Arc<Mutex<Shared>>,
    /// Serial each synced connection last saw (synced or notified); only
    /// connections that completed a sync receive notifies.
    synced: BTreeMap<ConnId, u32>,
}

impl FeedService {
    fn transfer(out: &mut Vec<u8>, session: u16, serial: u32, entries: &[(bool, Ipv4Prefix, Asn)]) {
        Pdu::CacheResponse { session }.encode(out);
        for &(announce, prefix, asn) in entries {
            Pdu::Prefix(PrefixEntry {
                announce,
                prefix,
                asn,
            })
            .encode(out);
        }
        Pdu::EndOfData { session, serial }.encode(out);
    }
}

impl Service for FeedService {
    fn on_data(&mut self, conn: ConnId, inbuf: &mut Vec<u8>, out: &mut Vec<u8>) -> Action {
        let mut consumed = 0;
        loop {
            match Pdu::decode(&inbuf[consumed..]) {
                Ok(Some((pdu, used))) => {
                    consumed += used;
                    match pdu {
                        Pdu::ResetQuery => {
                            let mut shared = lock_shared(&self.shared);
                            let session = shared.table().session_id();
                            let serial = shared.table().serial();
                            let entries: Vec<(bool, Ipv4Prefix, Asn)> = shared
                                .table()
                                .snapshot()
                                .into_iter()
                                .map(|(p, a)| (true, p, a))
                                .collect();
                            shared.metrics.feed_reset_syncs += 1;
                            drop(shared);
                            Self::transfer(out, session, serial, &entries);
                            self.synced.insert(conn, serial);
                        }
                        Pdu::SerialQuery { session, serial } => {
                            let mut shared = lock_shared(&self.shared);
                            let current = shared.table().serial();
                            let diff = if session == shared.table().session_id() {
                                shared.ring.diff_since(serial, current)
                            } else {
                                None
                            };
                            match diff {
                                Some(delta) => {
                                    let session = shared.table().session_id();
                                    let mut entries: Vec<(bool, Ipv4Prefix, Asn)> = delta
                                        .announced
                                        .iter()
                                        .map(|&(p, a)| (true, p, a))
                                        .collect();
                                    entries.extend(
                                        delta.withdrawn.iter().map(|&(p, a)| (false, p, a)),
                                    );
                                    shared.metrics.feed_diff_syncs += 1;
                                    drop(shared);
                                    Self::transfer(out, session, current, &entries);
                                    self.synced.insert(conn, current);
                                }
                                None => {
                                    shared.metrics.feed_cache_resets += 1;
                                    drop(shared);
                                    Pdu::CacheReset.encode(out);
                                    self.synced.remove(&conn);
                                }
                            }
                        }
                        Pdu::Error { .. } => {
                            inbuf.clear();
                            return Action::CloseAfterFlush;
                        }
                        unexpected => {
                            Pdu::Error {
                                code: 3,
                                message: format!("unexpected client PDU {unexpected:?}"),
                            }
                            .encode(out);
                            inbuf.clear();
                            return Action::CloseAfterFlush;
                        }
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    Pdu::Error {
                        code: 0,
                        message: e.to_string(),
                    }
                    .encode(out);
                    inbuf.clear();
                    return Action::CloseAfterFlush;
                }
            }
        }
        inbuf.drain(..consumed);
        Action::Continue
    }

    fn on_open(&mut self, _conn: ConnId, _out: &mut Vec<u8>) {
        lock_shared(&self.shared).feed_conns_open += 1;
    }

    fn on_tick(&mut self, push: &mut dyn FnMut(ConnId, &[u8])) {
        if self.synced.is_empty() {
            return;
        }
        let mut shared = lock_shared(&self.shared);
        let session = shared.table().session_id();
        let serial = shared.table().serial();
        let mut notified = 0u64;
        for (&conn, last) in &mut self.synced {
            if *last != serial {
                *last = serial;
                notified += 1;
                push(conn, &Pdu::SerialNotify { session, serial }.to_bytes());
            }
        }
        shared.metrics.feed_notifies += notified;
    }

    fn on_close(&mut self, conn: ConnId) {
        self.synced.remove(&conn);
        let mut shared = lock_shared(&self.shared);
        shared.feed_conns_open = shared.feed_conns_open.saturating_sub(1);
    }
}

// ---------------------------------------------------------------------------
// BGP ingest side
// ---------------------------------------------------------------------------

/// Routes decoded UPDATEs from established BGP sessions into the table.
/// One handler instance serves every session on the listener; sessions on
/// the same listener interleave their batches, which is fine because each
/// UPDATE applies atomically under the shared lock.
struct BgpHandler {
    shared: Arc<Mutex<Shared>>,
}

impl SessionHandler for BgpHandler {
    fn on_update(&mut self, _peer: &PeerInfo, update: UpdateMessage) {
        let mut shared = lock_shared(&self.shared);
        let updates = crate::bgp::table_updates(shared.table(), &update);
        shared.metrics.bgp_updates += 1;
        shared.metrics.bgp_table_changes += updates.len() as u64;
        if !updates.is_empty() {
            shared.apply(&updates);
        }
    }

    fn on_established(&mut self, _peer: &PeerInfo) {
        lock_shared(&self.shared).metrics.bgp_sessions_established += 1;
    }

    fn on_session_closed(&mut self) {
        lock_shared(&self.shared).metrics.bgp_sessions_closed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::MoasList;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn shared_with_table() -> Shared {
        let mut table = OriginTable::new(7);
        table.insert(
            p("10.1.0.0/16"),
            [Asn(64512)].into_iter().collect::<MoasList>(),
        );
        Shared {
            query: Arc::new(QueryState {
                table,
                exceptions: ExceptionSet::empty(),
            }),
            ring: DeltaRing::new(8),
            metrics: DaemonMetrics::default(),
            counters: Arc::new(QueryCounters::default()),
            shutdown_requested: false,
            feed_conns_open: 0,
        }
    }

    fn get(path: &str) -> Request {
        let raw = format!("GET {path} HTTP/1.1\r\n\r\n");
        Request::parse(raw.as_bytes()).unwrap().unwrap().0
    }

    fn post(path: &str, body: &str) -> Request {
        let raw = format!(
            "POST {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        Request::parse(raw.as_bytes()).unwrap().unwrap().0
    }

    #[test]
    fn validity_routes_and_exact_bodies() {
        let mut shared = shared_with_table();
        let (status, body) =
            HttpService::handle(&mut shared, &get("/validity?prefix=10.1.0.0/16&asn=64512"));
        assert_eq!(status, 200);
        assert_eq!(
            body,
            "{\"prefix\":\"10.1.0.0/16\",\"asn\":64512,\"state\":\"valid\",\
             \"matchedPrefix\":\"10.1.0.0/16\",\"origins\":[64512]}"
        );
        let (status, body) =
            HttpService::handle(&mut shared, &get("/validity?prefix=10.1.0.0/16&asn=64666"));
        assert_eq!(status, 200);
        assert!(body.contains("\"state\":\"invalid\""));
        let (status, body) =
            HttpService::handle(&mut shared, &get("/validity?prefix=192.0.2.0/24&asn=1"));
        assert_eq!(status, 200);
        assert_eq!(
            body,
            "{\"prefix\":\"192.0.2.0/24\",\"asn\":1,\"state\":\"not-found\"}"
        );
        // AS-prefixed ASNs parse too.
        let (status, _) = HttpService::handle(
            &mut shared,
            &get("/validity?prefix=10.1.0.0/16&asn=AS64512"),
        );
        assert_eq!(status, 200);
        let c = &shared.counters;
        assert_eq!(c.queries.load(Ordering::Relaxed), 4);
        assert_eq!(c.queries_valid.load(Ordering::Relaxed), 2);
        assert_eq!(c.queries_invalid.load(Ordering::Relaxed), 1);
        assert_eq!(c.queries_not_found.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn validity_rejects_bad_parameters() {
        let mut shared = shared_with_table();
        assert_eq!(HttpService::handle(&mut shared, &get("/validity")).0, 400);
        assert_eq!(
            HttpService::handle(&mut shared, &get("/validity?prefix=zap&asn=1")).0,
            400
        );
        assert_eq!(
            HttpService::handle(&mut shared, &get("/validity?prefix=10.0.0.0/8&asn=zap")).0,
            400
        );
        assert_eq!(shared.counters.queries.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn ingest_applies_and_reports_serial() {
        let mut shared = shared_with_table();
        let (status, body) = HttpService::handle(
            &mut shared,
            &post(
                "/ingest",
                r#"{"updates":[
                    {"prefix": "10.2.0.0/16", "asn": 64513},
                    {"announce": false, "prefix": "10.1.0.0/16", "asn": 64512}
                ]}"#,
            ),
        );
        assert_eq!(status, 200);
        assert_eq!(body, "{\"serial\":1,\"announced\":1,\"withdrawn\":1}");
        assert_eq!(shared.table().serial(), 1);
        assert_eq!(shared.ring.len(), 1);
        // A no-op batch reports the unchanged serial and stays out of the ring.
        let (_, body) = HttpService::handle(
            &mut shared,
            &post(
                "/ingest",
                r#"{"updates":[{"prefix": "10.2.0.0/16", "asn": 64513}]}"#,
            ),
        );
        assert_eq!(body, "{\"serial\":1,\"announced\":0,\"withdrawn\":0}");
        assert_eq!(shared.ring.len(), 1);
        assert_eq!(shared.metrics.ingest_batches, 2);
        assert_eq!(shared.metrics.ingest_updates, 3);
    }

    #[test]
    fn ingest_rejects_malformed_bodies() {
        let mut shared = shared_with_table();
        assert_eq!(
            HttpService::handle(&mut shared, &post("/ingest", "nope")).0,
            400
        );
        assert_eq!(
            HttpService::handle(&mut shared, &post("/ingest", "{}")).0,
            400
        );
        assert_eq!(
            HttpService::handle(&mut shared, &post("/ingest", r#"{"updates":[{"asn":1}]}"#)).0,
            400
        );
        assert_eq!(shared.table().serial(), 0);
    }

    #[test]
    fn reload_counts_verdict_affecting_loads() {
        let mut shared = shared_with_table();
        let slurm = r#"{"locallyAddedAssertions":{"prefixAssertions":[
            {"prefix": "10.9.0.0/16", "asn": 64999}
        ]}}"#;
        let (status, body) = HttpService::handle(&mut shared, &post("/reload-exceptions", slurm));
        assert_eq!(status, 200);
        assert_eq!(body, "{\"rules\":1,\"changed\":true}");
        // Reloading the identical file is not verdict-affecting.
        let (_, body) = HttpService::handle(&mut shared, &post("/reload-exceptions", slurm));
        assert_eq!(body, "{\"rules\":1,\"changed\":false}");
        assert_eq!(shared.metrics.exception_reloads, 2);
        assert_eq!(shared.metrics.exception_reloads_verdict_affecting, 1);
        // A malformed file keeps the old rules.
        let (status, _) = HttpService::handle(&mut shared, &post("/reload-exceptions", "zap"));
        assert_eq!(status, 400);
        assert_eq!(shared.query.exceptions.len(), 1);
        // And the loaded assertion now answers queries.
        let (_, body) =
            HttpService::handle(&mut shared, &get("/validity?prefix=10.9.0.0/16&asn=64999"));
        assert!(body.contains("\"state\":\"valid\""));
    }

    #[test]
    fn metrics_and_status_render() {
        let mut shared = shared_with_table();
        let (status, body) = HttpService::handle(&mut shared, &get("/metrics"));
        assert_eq!(status, 200);
        for line in body.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split(' ');
            let name = parts.next().unwrap();
            let value = parts.next().unwrap();
            assert!(!name.is_empty());
            value
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("unparseable metric line '{line}'"));
            assert_eq!(parts.next(), None);
        }
        assert!(body.contains("table_prefixes 1\n"));
        let (status, body) = HttpService::handle(&mut shared, &get("/status"));
        assert_eq!(status, 200);
        let doc = Json::parse(&body).unwrap();
        assert_eq!(doc.get("sessionId"), Some(&Json::Num(7.0)));
        assert_eq!(doc.get("shutdownRequested"), Some(&Json::Bool(false)));
    }

    #[test]
    fn unknown_routes_and_methods() {
        let mut shared = shared_with_table();
        assert_eq!(HttpService::handle(&mut shared, &get("/nope")).0, 404);
        assert_eq!(
            HttpService::handle(&mut shared, &post("/validity", "")).0,
            404
        );
        let raw = b"DELETE /validity HTTP/1.1\r\n\r\n";
        let req = Request::parse(raw).unwrap().unwrap().0;
        assert_eq!(HttpService::handle(&mut shared, &req).0, 405);
    }

    #[test]
    fn shutdown_endpoint_sets_the_flag() {
        let mut shared = shared_with_table();
        let (status, body) = HttpService::handle(&mut shared, &post("/shutdown", ""));
        assert_eq!(status, 200);
        assert_eq!(body, "{\"ok\":true}");
        assert!(shared.shutdown_requested);
    }
}
