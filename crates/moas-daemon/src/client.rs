//! Blocking in-process clients for both daemon interfaces, used by the
//! integration tests and by `moas-lab daemon-probe`. Both speak over plain
//! `TcpStream`s with read timeouts, so a wedged daemon turns into an error
//! instead of a hang.

use std::collections::BTreeSet;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use bgp_session::Backoff;
use bgp_types::{Asn, Ipv4Prefix};

use crate::feed::Pdu;

fn invalid_data(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

// ---------------------------------------------------------------------------
// Connection policy
// ---------------------------------------------------------------------------

/// How aggressively a client chases a daemon that is down or wedged.
#[derive(Debug, Clone)]
pub struct ConnectOptions {
    /// Per-attempt TCP connect budget.
    pub connect_timeout: Duration,
    /// Read/write timeout applied to the established stream.
    pub io_timeout: Duration,
    /// Total connect attempts before giving up (≥ 1).
    pub max_attempts: u32,
    /// First retry delay; later retries grow exponentially with jitter
    /// (same [`Backoff`] the BGP FSM uses for session retries).
    pub retry_base_ms: u64,
    /// Retry delay ceiling.
    pub retry_max_ms: u64,
    /// Seed for the jitter stream (deterministic tests pin it).
    pub seed: u64,
}

impl Default for ConnectOptions {
    fn default() -> Self {
        ConnectOptions {
            connect_timeout: Duration::from_secs(3),
            io_timeout: Duration::from_secs(10),
            max_attempts: 3,
            retry_base_ms: 100,
            retry_max_ms: 2_000,
            seed: 0,
        }
    }
}

/// All connect attempts to the daemon failed.
#[derive(Debug)]
pub struct ConnectError {
    /// The address every attempt targeted.
    pub addr: SocketAddr,
    /// Attempts made before giving up.
    pub attempts: u32,
    /// The error from the final attempt.
    pub last: io::Error,
}

impl std::fmt::Display for ConnectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "could not reach daemon at {} after {} attempt(s): {}",
            self.addr, self.attempts, self.last
        )
    }
}

impl std::error::Error for ConnectError {}

impl From<ConnectError> for io::Error {
    fn from(e: ConnectError) -> io::Error {
        io::Error::new(e.last.kind(), e.to_string())
    }
}

/// Bounded, jitter-backed connect loop shared by both clients.
fn connect_stream(addr: SocketAddr, opts: &ConnectOptions) -> Result<TcpStream, ConnectError> {
    let attempts = opts.max_attempts.max(1);
    let mut backoff = Backoff::new(opts.retry_base_ms, opts.retry_max_ms, opts.seed);
    let mut last: Option<io::Error> = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(Duration::from_millis(backoff.next_delay_ms()));
        }
        match TcpStream::connect_timeout(&addr, opts.connect_timeout) {
            Ok(stream) => {
                let configure = stream
                    .set_read_timeout(Some(opts.io_timeout))
                    .and_then(|()| stream.set_write_timeout(Some(opts.io_timeout)))
                    .and_then(|()| stream.set_nodelay(true));
                match configure {
                    Ok(()) => return Ok(stream),
                    Err(e) => last = Some(e),
                }
            }
            Err(e) => last = Some(e),
        }
    }
    Err(ConnectError {
        addr,
        attempts,
        last: last.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::TimedOut, "no attempt recorded an error")
        }),
    })
}

// ---------------------------------------------------------------------------
// HTTP
// ---------------------------------------------------------------------------

/// A persistent HTTP/1.1 connection to the daemon's query endpoint.
#[derive(Debug)]
pub struct HttpClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl HttpClient {
    /// Connects with the default [`ConnectOptions`] (bounded connect
    /// timeout, 10-second I/O timeout, up to 3 attempts).
    ///
    /// # Errors
    ///
    /// Returns the flattened [`ConnectError`].
    pub fn connect(addr: SocketAddr) -> io::Result<HttpClient> {
        Ok(Self::connect_with_retry(addr, &ConnectOptions::default())?)
    }

    /// Connects with an explicit per-read timeout (single attempt).
    ///
    /// # Errors
    ///
    /// Returns the flattened [`ConnectError`].
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<HttpClient> {
        let opts = ConnectOptions {
            io_timeout: timeout,
            max_attempts: 1,
            ..ConnectOptions::default()
        };
        Ok(Self::connect_with_retry(addr, &opts)?)
    }

    /// Connects under an explicit retry policy, keeping the typed error.
    ///
    /// # Errors
    ///
    /// Returns [`ConnectError`] once every attempt has failed.
    pub fn connect_with_retry(
        addr: SocketAddr,
        opts: &ConnectOptions,
    ) -> Result<HttpClient, ConnectError> {
        let stream = connect_stream(addr, opts)?;
        Ok(HttpClient {
            stream,
            buf: Vec::new(),
        })
    }

    /// Issues a `GET` and returns `(status, body)`.
    ///
    /// # Errors
    ///
    /// Returns I/O errors and malformed-response errors.
    pub fn get(&mut self, path_and_query: &str) -> io::Result<(u16, String)> {
        self.request("GET", path_and_query, None)
    }

    /// Issues a `POST` with a body and returns `(status, body)`.
    ///
    /// # Errors
    ///
    /// Returns I/O errors and malformed-response errors.
    pub fn post(&mut self, path: &str, body: &str) -> io::Result<(u16, String)> {
        self.request("POST", path, Some(body))
    }

    fn request(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&str>,
    ) -> io::Result<(u16, String)> {
        let mut req = format!("{method} {target} HTTP/1.1\r\nHost: moas-labd\r\n");
        if let Some(body) = body {
            req.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        req.push_str("\r\n");
        if let Some(body) = body {
            req.push_str(body);
        }
        self.stream.write_all(req.as_bytes())?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<(u16, String)> {
        loop {
            if let Some(head_end) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = std::str::from_utf8(&self.buf[..head_end])
                    .map_err(|_| invalid_data("response head is not UTF-8"))?;
                let mut lines = head.split("\r\n");
                let status_line = lines.next().unwrap_or_default();
                let status: u16 = status_line
                    .split(' ')
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| invalid_data(format!("bad status line '{status_line}'")))?;
                let mut content_length = 0usize;
                for line in lines {
                    if let Some((name, value)) = line.split_once(':') {
                        if name.trim().eq_ignore_ascii_case("content-length") {
                            content_length = value
                                .trim()
                                .parse()
                                .map_err(|_| invalid_data("bad Content-Length"))?;
                        }
                    }
                }
                let total = head_end + 4 + content_length;
                while self.buf.len() < total {
                    self.fill()?;
                }
                let body = String::from_utf8(self.buf[head_end + 4..total].to_vec())
                    .map_err(|_| invalid_data("response body is not UTF-8"))?;
                self.buf.drain(..total);
                return Ok((status, body));
            }
            self.fill()?;
        }
    }

    fn fill(&mut self) -> io::Result<()> {
        let mut chunk = [0u8; 16 * 1024];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Feed
// ---------------------------------------------------------------------------

/// How a [`FeedClient::serial_sync`] attempt ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncOutcome {
    /// The server sent a diff; the client applied `announced` adds and
    /// `withdrawn` removals and now holds `serial`.
    Diff {
        /// Entries added by the diff.
        announced: usize,
        /// Entries removed by the diff.
        withdrawn: usize,
        /// The serial the client holds after applying.
        serial: u32,
    },
    /// The server cannot diff from the client's serial (evicted from the
    /// delta ring, or a session mismatch); the client must
    /// [`reset_sync`](FeedClient::reset_sync).
    CacheReset,
}

/// What the server answered to one query, before the client applies it.
enum Reply {
    Transfer {
        session: u16,
        serial: u32,
        entries: Vec<(bool, Ipv4Prefix, Asn)>,
    },
    CacheReset,
}

/// A blocking feed-protocol client mirroring the daemon's table.
#[derive(Debug)]
pub struct FeedClient {
    stream: TcpStream,
    buf: Vec<u8>,
    session: Option<u16>,
    serial: u32,
    entries: BTreeSet<(Ipv4Prefix, Asn)>,
}

impl FeedClient {
    /// Connects with the default [`ConnectOptions`]. The client holds no
    /// state until the first [`reset_sync`](Self::reset_sync).
    ///
    /// # Errors
    ///
    /// Returns the flattened [`ConnectError`].
    pub fn connect(addr: SocketAddr) -> io::Result<FeedClient> {
        Ok(Self::connect_with_retry(addr, &ConnectOptions::default())?)
    }

    /// Connects with an explicit per-read timeout (single attempt).
    ///
    /// # Errors
    ///
    /// Returns the flattened [`ConnectError`].
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<FeedClient> {
        let opts = ConnectOptions {
            io_timeout: timeout,
            max_attempts: 1,
            ..ConnectOptions::default()
        };
        Ok(Self::connect_with_retry(addr, &opts)?)
    }

    /// Connects under an explicit retry policy, keeping the typed error.
    ///
    /// # Errors
    ///
    /// Returns [`ConnectError`] once every attempt has failed.
    pub fn connect_with_retry(
        addr: SocketAddr,
        opts: &ConnectOptions,
    ) -> Result<FeedClient, ConnectError> {
        let stream = connect_stream(addr, opts)?;
        Ok(FeedClient {
            stream,
            buf: Vec::new(),
            session: None,
            serial: 0,
            entries: BTreeSet::new(),
        })
    }

    /// The session id learned from the last completed sync.
    #[must_use]
    pub fn session(&self) -> Option<u16> {
        self.session
    }

    /// The serial the client currently holds.
    #[must_use]
    pub fn serial(&self) -> u32 {
        self.serial
    }

    /// The mirrored `(prefix, origin)` entries.
    #[must_use]
    pub fn entries(&self) -> &BTreeSet<(Ipv4Prefix, Asn)> {
        &self.entries
    }

    /// Full resynchronization: sends a reset query and replaces the local
    /// mirror with the server's table. Returns the number of entries.
    ///
    /// # Errors
    ///
    /// Returns I/O errors and protocol violations (including a cache reset
    /// in answer to a reset query, which the protocol forbids).
    pub fn reset_sync(&mut self) -> io::Result<usize> {
        self.send(&Pdu::ResetQuery)?;
        match self.read_reply()? {
            Reply::Transfer {
                session,
                serial,
                entries,
            } => {
                let mut fresh = BTreeSet::new();
                for (announce, prefix, asn) in entries {
                    if announce {
                        fresh.insert((prefix, asn));
                    } else {
                        fresh.remove(&(prefix, asn));
                    }
                }
                self.session = Some(session);
                self.serial = serial;
                self.entries = fresh;
                Ok(self.entries.len())
            }
            Reply::CacheReset => Err(invalid_data("cache reset in answer to a reset query")),
        }
    }

    /// Incremental sync from the client's current `(session, serial)`.
    ///
    /// # Errors
    ///
    /// Returns I/O errors, protocol violations, and an error when called
    /// before any [`reset_sync`](Self::reset_sync).
    pub fn serial_sync(&mut self) -> io::Result<SyncOutcome> {
        let session = self
            .session
            .ok_or_else(|| invalid_data("serial_sync before reset_sync"))?;
        self.sync_from(session, self.serial)
    }

    /// Incremental sync from an explicit `(session, serial)` — the probe
    /// uses a deliberately wrong session to exercise the cache-reset path.
    ///
    /// # Errors
    ///
    /// Returns I/O errors and protocol violations.
    pub fn sync_from(&mut self, session: u16, serial: u32) -> io::Result<SyncOutcome> {
        self.send(&Pdu::SerialQuery { session, serial })?;
        match self.read_reply()? {
            Reply::Transfer {
                session,
                serial,
                entries,
            } => {
                let mut announced = 0usize;
                let mut withdrawn = 0usize;
                for (announce, prefix, asn) in entries {
                    if announce {
                        announced += 1;
                        self.entries.insert((prefix, asn));
                    } else {
                        withdrawn += 1;
                        self.entries.remove(&(prefix, asn));
                    }
                }
                self.session = Some(session);
                self.serial = serial;
                Ok(SyncOutcome::Diff {
                    announced,
                    withdrawn,
                    serial,
                })
            }
            Reply::CacheReset => Ok(SyncOutcome::CacheReset),
        }
    }

    /// Blocks until the server pushes a serial notify (or the read times
    /// out), returning the notified serial.
    ///
    /// # Errors
    ///
    /// Returns `WouldBlock`/`TimedOut` if nothing arrives within the
    /// connection's read timeout, and protocol violations otherwise.
    pub fn wait_notify(&mut self) -> io::Result<u32> {
        match self.read_pdu()? {
            Pdu::SerialNotify { serial, .. } => Ok(serial),
            Pdu::Error { code, message } => {
                Err(invalid_data(format!("server error {code}: {message}")))
            }
            other => Err(invalid_data(format!("unexpected PDU {other:?}"))),
        }
    }

    fn send(&mut self, pdu: &Pdu) -> io::Result<()> {
        self.stream.write_all(&pdu.to_bytes())
    }

    /// Reads the full answer to one query: either a `CacheResponse …
    /// EndOfData` transfer or a `CacheReset`. Serial notifies racing with
    /// the query are skipped.
    fn read_reply(&mut self) -> io::Result<Reply> {
        let session = loop {
            match self.read_pdu()? {
                Pdu::SerialNotify { .. } => continue,
                Pdu::CacheReset => return Ok(Reply::CacheReset),
                Pdu::CacheResponse { session } => break session,
                Pdu::Error { code, message } => {
                    return Err(invalid_data(format!("server error {code}: {message}")))
                }
                other => return Err(invalid_data(format!("unexpected PDU {other:?}"))),
            }
        };
        let mut entries = Vec::new();
        loop {
            match self.read_pdu()? {
                Pdu::Prefix(entry) => entries.push((entry.announce, entry.prefix, entry.asn)),
                Pdu::EndOfData {
                    session: end_session,
                    serial,
                } => {
                    if end_session != session {
                        return Err(invalid_data("session changed mid-transfer"));
                    }
                    return Ok(Reply::Transfer {
                        session,
                        serial,
                        entries,
                    });
                }
                Pdu::Error { code, message } => {
                    return Err(invalid_data(format!("server error {code}: {message}")))
                }
                other => return Err(invalid_data(format!("unexpected PDU {other:?}"))),
            }
        }
    }

    fn read_pdu(&mut self) -> io::Result<Pdu> {
        loop {
            match Pdu::decode(&self.buf) {
                Ok(Some((pdu, used))) => {
                    self.buf.drain(..used);
                    return Ok(pdu);
                }
                Ok(None) => {
                    let mut chunk = [0u8; 16 * 1024];
                    let n = self.stream.read(&mut chunk)?;
                    if n == 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "feed closed by daemon",
                        ));
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                Err(e) => return Err(invalid_data(e.to_string())),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    /// A port with nothing listening: bind then drop so the OS refuses
    /// connections there for the moment the test needs.
    fn dead_addr() -> SocketAddr {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    }

    #[test]
    fn connect_gives_up_after_bounded_attempts() {
        let addr = dead_addr();
        let opts = ConnectOptions {
            connect_timeout: Duration::from_millis(500),
            max_attempts: 3,
            retry_base_ms: 5,
            retry_max_ms: 20,
            ..ConnectOptions::default()
        };
        let started = Instant::now();
        let err = HttpClient::connect_with_retry(addr, &opts).expect_err("must fail");
        assert_eq!(err.attempts, 3);
        assert_eq!(err.addr, addr);
        // Refused connections fail instantly; three attempts plus two
        // jittered delays must stay well under a second.
        assert!(started.elapsed() < Duration::from_secs(5));
        let rendered = err.to_string();
        assert!(rendered.contains("3 attempt(s)"), "message: {rendered}");
    }

    #[test]
    fn feed_connect_error_flattens_to_io_error() {
        let addr = dead_addr();
        let opts = ConnectOptions {
            connect_timeout: Duration::from_millis(500),
            max_attempts: 1,
            ..ConnectOptions::default()
        };
        let err = FeedClient::connect_with_retry(addr, &opts).expect_err("must fail");
        let io_err: io::Error = err.into();
        assert!(io_err.to_string().contains("could not reach daemon"));
    }
}
