//! Blocking in-process clients for both daemon interfaces, used by the
//! integration tests and by `moas-lab daemon-probe`. Both speak over plain
//! `TcpStream`s with read timeouts, so a wedged daemon turns into an error
//! instead of a hang.

use std::collections::BTreeSet;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use bgp_types::{Asn, Ipv4Prefix};

use crate::feed::Pdu;

fn invalid_data(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

// ---------------------------------------------------------------------------
// HTTP
// ---------------------------------------------------------------------------

/// A persistent HTTP/1.1 connection to the daemon's query endpoint.
#[derive(Debug)]
pub struct HttpClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl HttpClient {
    /// Connects with a 10-second I/O timeout.
    ///
    /// # Errors
    ///
    /// Returns the underlying connect error.
    pub fn connect(addr: SocketAddr) -> io::Result<HttpClient> {
        Self::connect_with_timeout(addr, Duration::from_secs(10))
    }

    /// Connects with an explicit per-read timeout.
    ///
    /// # Errors
    ///
    /// Returns the underlying connect error.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(HttpClient {
            stream,
            buf: Vec::new(),
        })
    }

    /// Issues a `GET` and returns `(status, body)`.
    ///
    /// # Errors
    ///
    /// Returns I/O errors and malformed-response errors.
    pub fn get(&mut self, path_and_query: &str) -> io::Result<(u16, String)> {
        self.request("GET", path_and_query, None)
    }

    /// Issues a `POST` with a body and returns `(status, body)`.
    ///
    /// # Errors
    ///
    /// Returns I/O errors and malformed-response errors.
    pub fn post(&mut self, path: &str, body: &str) -> io::Result<(u16, String)> {
        self.request("POST", path, Some(body))
    }

    fn request(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&str>,
    ) -> io::Result<(u16, String)> {
        let mut req = format!("{method} {target} HTTP/1.1\r\nHost: moas-labd\r\n");
        if let Some(body) = body {
            req.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        req.push_str("\r\n");
        if let Some(body) = body {
            req.push_str(body);
        }
        self.stream.write_all(req.as_bytes())?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<(u16, String)> {
        loop {
            if let Some(head_end) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = std::str::from_utf8(&self.buf[..head_end])
                    .map_err(|_| invalid_data("response head is not UTF-8"))?;
                let mut lines = head.split("\r\n");
                let status_line = lines.next().unwrap_or_default();
                let status: u16 = status_line
                    .split(' ')
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| invalid_data(format!("bad status line '{status_line}'")))?;
                let mut content_length = 0usize;
                for line in lines {
                    if let Some((name, value)) = line.split_once(':') {
                        if name.trim().eq_ignore_ascii_case("content-length") {
                            content_length = value
                                .trim()
                                .parse()
                                .map_err(|_| invalid_data("bad Content-Length"))?;
                        }
                    }
                }
                let total = head_end + 4 + content_length;
                while self.buf.len() < total {
                    self.fill()?;
                }
                let body = String::from_utf8(self.buf[head_end + 4..total].to_vec())
                    .map_err(|_| invalid_data("response body is not UTF-8"))?;
                self.buf.drain(..total);
                return Ok((status, body));
            }
            self.fill()?;
        }
    }

    fn fill(&mut self) -> io::Result<()> {
        let mut chunk = [0u8; 16 * 1024];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Feed
// ---------------------------------------------------------------------------

/// How a [`FeedClient::serial_sync`] attempt ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncOutcome {
    /// The server sent a diff; the client applied `announced` adds and
    /// `withdrawn` removals and now holds `serial`.
    Diff {
        /// Entries added by the diff.
        announced: usize,
        /// Entries removed by the diff.
        withdrawn: usize,
        /// The serial the client holds after applying.
        serial: u32,
    },
    /// The server cannot diff from the client's serial (evicted from the
    /// delta ring, or a session mismatch); the client must
    /// [`reset_sync`](FeedClient::reset_sync).
    CacheReset,
}

/// What the server answered to one query, before the client applies it.
enum Reply {
    Transfer {
        session: u16,
        serial: u32,
        entries: Vec<(bool, Ipv4Prefix, Asn)>,
    },
    CacheReset,
}

/// A blocking feed-protocol client mirroring the daemon's table.
#[derive(Debug)]
pub struct FeedClient {
    stream: TcpStream,
    buf: Vec<u8>,
    session: Option<u16>,
    serial: u32,
    entries: BTreeSet<(Ipv4Prefix, Asn)>,
}

impl FeedClient {
    /// Connects with a 10-second I/O timeout. The client holds no state
    /// until the first [`reset_sync`](Self::reset_sync).
    ///
    /// # Errors
    ///
    /// Returns the underlying connect error.
    pub fn connect(addr: SocketAddr) -> io::Result<FeedClient> {
        Self::connect_with_timeout(addr, Duration::from_secs(10))
    }

    /// Connects with an explicit per-read timeout.
    ///
    /// # Errors
    ///
    /// Returns the underlying connect error.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<FeedClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(FeedClient {
            stream,
            buf: Vec::new(),
            session: None,
            serial: 0,
            entries: BTreeSet::new(),
        })
    }

    /// The session id learned from the last completed sync.
    #[must_use]
    pub fn session(&self) -> Option<u16> {
        self.session
    }

    /// The serial the client currently holds.
    #[must_use]
    pub fn serial(&self) -> u32 {
        self.serial
    }

    /// The mirrored `(prefix, origin)` entries.
    #[must_use]
    pub fn entries(&self) -> &BTreeSet<(Ipv4Prefix, Asn)> {
        &self.entries
    }

    /// Full resynchronization: sends a reset query and replaces the local
    /// mirror with the server's table. Returns the number of entries.
    ///
    /// # Errors
    ///
    /// Returns I/O errors and protocol violations (including a cache reset
    /// in answer to a reset query, which the protocol forbids).
    pub fn reset_sync(&mut self) -> io::Result<usize> {
        self.send(&Pdu::ResetQuery)?;
        match self.read_reply()? {
            Reply::Transfer {
                session,
                serial,
                entries,
            } => {
                let mut fresh = BTreeSet::new();
                for (announce, prefix, asn) in entries {
                    if announce {
                        fresh.insert((prefix, asn));
                    } else {
                        fresh.remove(&(prefix, asn));
                    }
                }
                self.session = Some(session);
                self.serial = serial;
                self.entries = fresh;
                Ok(self.entries.len())
            }
            Reply::CacheReset => Err(invalid_data("cache reset in answer to a reset query")),
        }
    }

    /// Incremental sync from the client's current `(session, serial)`.
    ///
    /// # Errors
    ///
    /// Returns I/O errors, protocol violations, and an error when called
    /// before any [`reset_sync`](Self::reset_sync).
    pub fn serial_sync(&mut self) -> io::Result<SyncOutcome> {
        let session = self
            .session
            .ok_or_else(|| invalid_data("serial_sync before reset_sync"))?;
        self.sync_from(session, self.serial)
    }

    /// Incremental sync from an explicit `(session, serial)` — the probe
    /// uses a deliberately wrong session to exercise the cache-reset path.
    ///
    /// # Errors
    ///
    /// Returns I/O errors and protocol violations.
    pub fn sync_from(&mut self, session: u16, serial: u32) -> io::Result<SyncOutcome> {
        self.send(&Pdu::SerialQuery { session, serial })?;
        match self.read_reply()? {
            Reply::Transfer {
                session,
                serial,
                entries,
            } => {
                let mut announced = 0usize;
                let mut withdrawn = 0usize;
                for (announce, prefix, asn) in entries {
                    if announce {
                        announced += 1;
                        self.entries.insert((prefix, asn));
                    } else {
                        withdrawn += 1;
                        self.entries.remove(&(prefix, asn));
                    }
                }
                self.session = Some(session);
                self.serial = serial;
                Ok(SyncOutcome::Diff {
                    announced,
                    withdrawn,
                    serial,
                })
            }
            Reply::CacheReset => Ok(SyncOutcome::CacheReset),
        }
    }

    /// Blocks until the server pushes a serial notify (or the read times
    /// out), returning the notified serial.
    ///
    /// # Errors
    ///
    /// Returns `WouldBlock`/`TimedOut` if nothing arrives within the
    /// connection's read timeout, and protocol violations otherwise.
    pub fn wait_notify(&mut self) -> io::Result<u32> {
        match self.read_pdu()? {
            Pdu::SerialNotify { serial, .. } => Ok(serial),
            Pdu::Error { code, message } => {
                Err(invalid_data(format!("server error {code}: {message}")))
            }
            other => Err(invalid_data(format!("unexpected PDU {other:?}"))),
        }
    }

    fn send(&mut self, pdu: &Pdu) -> io::Result<()> {
        self.stream.write_all(&pdu.to_bytes())
    }

    /// Reads the full answer to one query: either a `CacheResponse …
    /// EndOfData` transfer or a `CacheReset`. Serial notifies racing with
    /// the query are skipped.
    fn read_reply(&mut self) -> io::Result<Reply> {
        let session = loop {
            match self.read_pdu()? {
                Pdu::SerialNotify { .. } => continue,
                Pdu::CacheReset => return Ok(Reply::CacheReset),
                Pdu::CacheResponse { session } => break session,
                Pdu::Error { code, message } => {
                    return Err(invalid_data(format!("server error {code}: {message}")))
                }
                other => return Err(invalid_data(format!("unexpected PDU {other:?}"))),
            }
        };
        let mut entries = Vec::new();
        loop {
            match self.read_pdu()? {
                Pdu::Prefix(entry) => entries.push((entry.announce, entry.prefix, entry.asn)),
                Pdu::EndOfData {
                    session: end_session,
                    serial,
                } => {
                    if end_session != session {
                        return Err(invalid_data("session changed mid-transfer"));
                    }
                    return Ok(Reply::Transfer {
                        session,
                        serial,
                        entries,
                    });
                }
                Pdu::Error { code, message } => {
                    return Err(invalid_data(format!("server error {code}: {message}")))
                }
                other => return Err(invalid_data(format!("unexpected PDU {other:?}"))),
            }
        }
    }

    fn read_pdu(&mut self) -> io::Result<Pdu> {
        loop {
            match Pdu::decode(&self.buf) {
                Ok(Some((pdu, used))) => {
                    self.buf.drain(..used);
                    return Ok(pdu);
                }
                Ok(None) => {
                    let mut chunk = [0u8; 16 * 1024];
                    let n = self.stream.read(&mut chunk)?;
                    if n == 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "feed closed by daemon",
                        ));
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                Err(e) => return Err(invalid_data(e.to_string())),
            }
        }
    }
}
