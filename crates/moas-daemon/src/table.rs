//! The versioned prefix → origin-set table behind the daemon, plus the
//! bounded ring of per-serial deltas that makes incremental feed sync cheap.

use std::collections::{BTreeMap, VecDeque};
use std::io;

use bgp_types::{Asn, Ipv4Prefix, MoasList, PrefixTrie};
use bgp_wire::DailyDumpStream;
use experiments::json::{Json, JsonError};
use route_measurement::DailyDump;

/// One `(prefix, origin)` change to apply to the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableUpdate {
    /// `true` adds the origin to the prefix's MOAS list, `false` removes it.
    pub announce: bool,
    /// The prefix whose origin set changes.
    pub prefix: Ipv4Prefix,
    /// The origin AS being added or removed.
    pub asn: Asn,
}

impl TableUpdate {
    /// An announce update.
    #[must_use]
    pub fn announce(prefix: Ipv4Prefix, asn: Asn) -> Self {
        TableUpdate {
            announce: true,
            prefix,
            asn,
        }
    }

    /// A withdraw update.
    #[must_use]
    pub fn withdraw(prefix: Ipv4Prefix, asn: Asn) -> Self {
        TableUpdate {
            announce: false,
            prefix,
            asn,
        }
    }
}

/// The net effect of one applied update batch: the change set a client at
/// `serial - 1` must apply to reach `serial`.
///
/// Only *effective* changes are recorded — announcing an origin already in
/// the list, or withdrawing one that was never there, contributes nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TableDelta {
    /// The serial this delta produces.
    pub serial: u32,
    /// `(prefix, origin)` pairs added.
    pub announced: Vec<(Ipv4Prefix, Asn)>,
    /// `(prefix, origin)` pairs removed.
    pub withdrawn: Vec<(Ipv4Prefix, Asn)>,
}

impl TableDelta {
    /// `true` when the batch changed nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.announced.is_empty() && self.withdrawn.is_empty()
    }
}

/// The daemon's origin-validation table: MOAS lists in a prefix trie,
/// versioned by a monotonically increasing serial.
///
/// The serial identifies a table *state*; every [`apply`](Self::apply) call
/// that changes something increments it by one. Pre-serving bulk loads go
/// through [`insert`](Self::insert), which leaves the serial alone — the
/// loaded table **is** the current serial's state.
#[derive(Debug, Clone)]
pub struct OriginTable {
    trie: PrefixTrie<MoasList>,
    serial: u32,
    session_id: u16,
}

impl OriginTable {
    /// An empty table at serial 0 under the given feed session id.
    #[must_use]
    pub fn new(session_id: u16) -> Self {
        OriginTable {
            trie: PrefixTrie::new(),
            serial: 0,
            session_id,
        }
    }

    /// The current serial.
    #[must_use]
    pub fn serial(&self) -> u32 {
        self.serial
    }

    /// The feed session id; a client holding serials from a different
    /// session must reset.
    #[must_use]
    pub fn session_id(&self) -> u16 {
        self.session_id
    }

    /// Number of prefixes with a non-empty origin set.
    #[must_use]
    pub fn prefix_count(&self) -> usize {
        self.trie.len()
    }

    /// Number of `(prefix, origin)` pairs — the feed's unit of transfer.
    #[must_use]
    pub fn entry_count(&self) -> usize {
        self.trie.iter().map(|(_, list)| list.len()).sum()
    }

    /// Replaces the origin set of `prefix` without touching the serial
    /// (bulk loading). An empty list removes the prefix.
    pub fn insert(&mut self, prefix: Ipv4Prefix, origins: MoasList) {
        if origins.is_empty() {
            self.trie.remove(prefix);
        } else {
            self.trie.insert(prefix, origins);
        }
    }

    /// The origin set stored for exactly `prefix`.
    #[must_use]
    pub fn origins(&self, prefix: Ipv4Prefix) -> Option<&MoasList> {
        self.trie.get(prefix)
    }

    /// Every stored entry covering `prefix` (including `prefix` itself),
    /// least-specific first.
    #[must_use]
    pub fn covering(&self, prefix: Ipv4Prefix) -> Vec<(Ipv4Prefix, &MoasList)> {
        self.trie.covering_matches(prefix)
    }

    /// The full `(prefix, origin)` snapshot in deterministic order
    /// (ascending prefix, then ASN) — what a feed reset sync transfers.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(Ipv4Prefix, Asn)> {
        let mut out = Vec::with_capacity(self.trie.len());
        for (prefix, list) in self.trie.iter() {
            for asn in list {
                out.push((prefix, asn));
            }
        }
        out
    }

    /// Applies an update batch atomically, returning the effective delta.
    /// The serial increments only when the batch changed something.
    pub fn apply(&mut self, updates: &[TableUpdate]) -> TableDelta {
        let mut delta = TableDelta::default();
        for update in updates {
            if update.announce {
                let added = if let Some(list) = self.trie.get(update.prefix) {
                    let mut list = list.clone();
                    let added = list.insert(update.asn);
                    if added {
                        self.trie.insert(update.prefix, list);
                    }
                    added
                } else {
                    self.trie
                        .insert(update.prefix, MoasList::implicit(update.asn));
                    true
                };
                if added {
                    delta.announced.push((update.prefix, update.asn));
                }
            } else if let Some(list) = self.trie.get(update.prefix) {
                let mut list = list.clone();
                if list.remove(update.asn) {
                    delta.withdrawn.push((update.prefix, update.asn));
                    if list.is_empty() {
                        self.trie.remove(update.prefix);
                    } else {
                        self.trie.insert(update.prefix, list);
                    }
                }
            }
        }
        if !delta.is_empty() {
            self.serial += 1;
        }
        delta.serial = self.serial;
        delta
    }

    /// Loads a table from a JSON MOAS-list file:
    ///
    /// ```json
    /// { "moasLists": [ { "prefix": "10.1.0.0/16", "origins": [64512, 64513] } ] }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] for malformed JSON or entries missing
    /// `prefix`/`origins`.
    pub fn from_json(text: &str, session_id: u16) -> Result<Self, JsonError> {
        let doc = Json::parse(text)?;
        let lists = doc.get("moasLists").ok_or_else(|| JsonError {
            message: "missing 'moasLists' array".to_string(),
            offset: 0,
        })?;
        let Json::Arr(items) = lists else {
            return Err(JsonError {
                message: "'moasLists' must be an array".to_string(),
                offset: 0,
            });
        };
        let mut table = OriginTable::new(session_id);
        for item in items {
            let prefix = parse_prefix_field(item, "prefix")?;
            let origins = item.get("origins").ok_or_else(|| JsonError {
                message: "entry missing 'origins'".to_string(),
                offset: 0,
            })?;
            let Json::Arr(asns) = origins else {
                return Err(JsonError {
                    message: "'origins' must be an array of AS numbers".to_string(),
                    offset: 0,
                });
            };
            let mut list = MoasList::new();
            for asn in asns {
                match asn {
                    Json::Num(n) if *n >= 0.0 && *n <= f64::from(u32::MAX) && n.fract() == 0.0 => {
                        list.insert(Asn(*n as u32));
                    }
                    _ => {
                        return Err(JsonError {
                            message: "origins must be 32-bit AS numbers".to_string(),
                            offset: 0,
                        })
                    }
                }
            }
            table.insert(prefix, list);
        }
        Ok(table)
    }

    /// Serializes the table back to the [`from_json`](Self::from_json)
    /// format, in snapshot order.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let items: Vec<Json> = self
            .trie
            .iter()
            .map(|(prefix, list)| {
                Json::Obj(vec![
                    ("prefix".to_string(), Json::Str(prefix.to_string())),
                    (
                        "origins".to_string(),
                        Json::Arr(list.iter().map(|a| Json::Num(f64::from(a.0))).collect()),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![("moasLists".to_string(), Json::Arr(items))]).pretty()
    }

    /// Derives a table from an MRT table-dump archive: every day group is
    /// streamed through [`DailyDumpStream`] and merged, so a prefix's MOAS
    /// list is the union of origins observed across the whole archive (the
    /// paper's derivation of MOAS lists from route collectors, applied
    /// archive-wide).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O or wire-decoding error.
    pub fn from_mrt<R: io::Read>(reader: R, session_id: u16) -> Result<Self, bgp_wire::WireError> {
        let mut stream = DailyDumpStream::new(reader);
        let mut merged = DailyDump::new(0);
        while let Some(day) = stream.next_day()? {
            merged.merge(&day.dump);
        }
        let mut table = OriginTable::new(session_id);
        for (prefix, origins) in merged.iter() {
            table.insert(prefix, origins.iter().copied().collect());
        }
        Ok(table)
    }
}

fn parse_prefix_field(item: &Json, field: &str) -> Result<Ipv4Prefix, JsonError> {
    match item.get(field) {
        Some(Json::Str(s)) => s.parse().map_err(|e| JsonError {
            message: format!("bad {field} '{s}': {e}"),
            offset: 0,
        }),
        _ => Err(JsonError {
            message: format!("entry missing string '{field}'"),
            offset: 0,
        }),
    }
}

/// A bounded ring of the most recent [`TableDelta`]s, keyed by the serial
/// each one produces.
///
/// A client at serial `s` asking for the changes up to the current serial
/// gets the merged deltas `s+1 ..= current` if the ring still holds them
/// all; once `s+1` has aged out the only answer is a cache reset. This is
/// the RTR cache model: bounded server memory, cheap diffs for live
/// clients, full resync for stragglers.
#[derive(Debug, Clone)]
pub struct DeltaRing {
    capacity: usize,
    deltas: VecDeque<TableDelta>,
}

impl DeltaRing {
    /// A ring retaining at most `capacity` deltas (at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        DeltaRing {
            capacity: capacity.max(1),
            deltas: VecDeque::new(),
        }
    }

    /// Number of deltas currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// `true` when no delta is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// The oldest serial a diff can still start *from* (i.e. the serial a
    /// client must at least hold), if any deltas are retained.
    #[must_use]
    pub fn oldest_reachable_serial(&self) -> Option<u32> {
        self.deltas.front().map(|d| d.serial - 1)
    }

    /// Retains an applied delta. Callers skip no-op deltas.
    pub fn push(&mut self, delta: TableDelta) {
        if self.deltas.len() == self.capacity {
            self.deltas.pop_front();
        }
        self.deltas.push_back(delta);
    }

    /// The merged change set taking a client from `from_serial` to
    /// `current_serial`, or `None` if the ring no longer covers that span
    /// (→ cache reset).
    ///
    /// Changes cancel pairwise: an origin announced and later withdrawn
    /// within the span disappears from the diff entirely, so clients apply
    /// the minimal set, in deterministic (prefix, ASN) order.
    #[must_use]
    pub fn diff_since(&self, from_serial: u32, current_serial: u32) -> Option<TableDelta> {
        if from_serial == current_serial {
            return Some(TableDelta {
                serial: current_serial,
                ..TableDelta::default()
            });
        }
        if from_serial > current_serial {
            return None;
        }
        // The span must be fully covered by retained deltas.
        match self.oldest_reachable_serial() {
            Some(oldest) if oldest <= from_serial => {}
            _ => return None,
        }
        let mut net: BTreeMap<(Ipv4Prefix, Asn), bool> = BTreeMap::new();
        for delta in &self.deltas {
            if delta.serial <= from_serial || delta.serial > current_serial {
                continue;
            }
            for &(prefix, asn) in &delta.announced {
                match net.remove(&(prefix, asn)) {
                    // withdraw then announce within the span: net nothing
                    Some(false) => {}
                    _ => {
                        net.insert((prefix, asn), true);
                    }
                }
            }
            for &(prefix, asn) in &delta.withdrawn {
                match net.remove(&(prefix, asn)) {
                    // announce then withdraw within the span: net nothing
                    Some(true) => {}
                    _ => {
                        net.insert((prefix, asn), false);
                    }
                }
            }
        }
        let mut merged = TableDelta {
            serial: current_serial,
            ..TableDelta::default()
        };
        for ((prefix, asn), announce) in net {
            if announce {
                merged.announced.push((prefix, asn));
            } else {
                merged.withdrawn.push((prefix, asn));
            }
        }
        Some(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn apply_tracks_effective_changes_only() {
        let mut table = OriginTable::new(1);
        let delta = table.apply(&[
            TableUpdate::announce(p("10.0.0.0/8"), Asn(1)),
            TableUpdate::announce(p("10.0.0.0/8"), Asn(1)), // duplicate: no-op
            TableUpdate::withdraw(p("11.0.0.0/8"), Asn(2)), // absent: no-op
        ]);
        assert_eq!(delta.serial, 1);
        assert_eq!(delta.announced, vec![(p("10.0.0.0/8"), Asn(1))]);
        assert!(delta.withdrawn.is_empty());
        assert_eq!(table.serial(), 1);

        // A batch with no effect leaves the serial alone.
        let delta = table.apply(&[TableUpdate::announce(p("10.0.0.0/8"), Asn(1))]);
        assert!(delta.is_empty());
        assert_eq!(delta.serial, 1);
        assert_eq!(table.serial(), 1);
    }

    #[test]
    fn withdraw_last_origin_removes_the_prefix() {
        let mut table = OriginTable::new(1);
        table.apply(&[TableUpdate::announce(p("10.0.0.0/8"), Asn(1))]);
        table.apply(&[TableUpdate::withdraw(p("10.0.0.0/8"), Asn(1))]);
        assert_eq!(table.prefix_count(), 0);
        assert_eq!(table.serial(), 2);
        assert!(table.origins(p("10.0.0.0/8")).is_none());
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let mut table = OriginTable::new(1);
        table.insert(p("192.168.0.0/16"), [Asn(9), Asn(3)].into_iter().collect());
        table.insert(p("10.0.0.0/8"), [Asn(7)].into_iter().collect());
        assert_eq!(
            table.snapshot(),
            vec![
                (p("10.0.0.0/8"), Asn(7)),
                (p("192.168.0.0/16"), Asn(3)),
                (p("192.168.0.0/16"), Asn(9)),
            ]
        );
        assert_eq!(table.entry_count(), 3);
        assert_eq!(table.prefix_count(), 2);
    }

    #[test]
    fn json_round_trip() {
        let mut table = OriginTable::new(5);
        table.insert(
            p("10.1.0.0/16"),
            [Asn(64512), Asn(64513)].into_iter().collect(),
        );
        table.insert(p("10.2.0.0/16"), [Asn(64514)].into_iter().collect());
        let text = table.to_json_string();
        let back = OriginTable::from_json(&text, 5).unwrap();
        assert_eq!(back.snapshot(), table.snapshot());
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        assert!(OriginTable::from_json("{}", 1).is_err());
        assert!(OriginTable::from_json(r#"{"moasLists": 3}"#, 1).is_err());
        assert!(
            OriginTable::from_json(r#"{"moasLists": [{"prefix": "nope", "origins": []}]}"#, 1)
                .is_err()
        );
        assert!(OriginTable::from_json(
            r#"{"moasLists": [{"prefix": "10.0.0.0/8", "origins": [-1]}]}"#,
            1
        )
        .is_err());
    }

    #[test]
    fn ring_diffs_within_capacity() {
        let mut table = OriginTable::new(1);
        let mut ring = DeltaRing::new(4);
        for i in 0..3u32 {
            let delta = table.apply(&[TableUpdate::announce(p("10.0.0.0/8"), Asn(i))]);
            ring.push(delta);
        }
        // 0 -> 3: all three announcements.
        let diff = ring.diff_since(0, table.serial()).unwrap();
        assert_eq!(diff.announced.len(), 3);
        assert_eq!(diff.serial, 3);
        // 2 -> 3: just the last one.
        let diff = ring.diff_since(2, table.serial()).unwrap();
        assert_eq!(diff.announced, vec![(p("10.0.0.0/8"), Asn(2))]);
        // 3 -> 3: empty.
        assert!(ring.diff_since(3, 3).unwrap().is_empty());
    }

    #[test]
    fn ring_eviction_forces_reset() {
        let mut table = OriginTable::new(1);
        let mut ring = DeltaRing::new(2);
        for i in 0..4u32 {
            let delta = table.apply(&[TableUpdate::announce(p("10.0.0.0/8"), Asn(i))]);
            ring.push(delta);
        }
        // Serials 1 and 2 have aged out of the 2-slot ring.
        assert_eq!(ring.oldest_reachable_serial(), Some(2));
        assert!(ring.diff_since(0, 4).is_none());
        assert!(ring.diff_since(1, 4).is_none());
        assert!(ring.diff_since(2, 4).is_some());
        // A serial from the future is never diffable.
        assert!(ring.diff_since(9, 4).is_none());
    }

    #[test]
    fn diff_cancels_announce_withdraw_pairs() {
        let mut table = OriginTable::new(1);
        let mut ring = DeltaRing::new(8);
        ring.push(table.apply(&[TableUpdate::announce(p("10.0.0.0/8"), Asn(1))]));
        ring.push(table.apply(&[TableUpdate::withdraw(p("10.0.0.0/8"), Asn(1))]));
        let diff = ring.diff_since(0, table.serial()).unwrap();
        assert!(diff.is_empty(), "announce+withdraw must cancel: {diff:?}");

        // And from serial 1 (after the announce), the net effect by now is a
        // re-announce.
        ring.push(table.apply(&[TableUpdate::announce(p("10.0.0.0/8"), Asn(1))]));
        let diff = ring.diff_since(1, table.serial()).unwrap();
        assert_eq!(diff.withdrawn, Vec::new());
        assert_eq!(diff.announced, Vec::new());
    }
}
