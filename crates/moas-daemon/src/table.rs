//! The versioned prefix → origin-set table behind the daemon, plus the
//! bounded ring of per-serial deltas that makes incremental feed sync cheap.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io;

use bgp_types::{Asn, Ipv4Prefix, MoasList, PrefixTrie};
use bgp_wire::mrt::{MrtBody, MrtReader, PeerIndexTable};
use bgp_wire::{MrtBodyView, MrtViewReader, WireError, WireErrorKind};
use experiments::json::{Json, JsonError};

/// One `(prefix, origin)` change to apply to the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableUpdate {
    /// `true` adds the origin to the prefix's MOAS list, `false` removes it.
    pub announce: bool,
    /// The prefix whose origin set changes.
    pub prefix: Ipv4Prefix,
    /// The origin AS being added or removed.
    pub asn: Asn,
}

impl TableUpdate {
    /// An announce update.
    #[must_use]
    pub fn announce(prefix: Ipv4Prefix, asn: Asn) -> Self {
        TableUpdate {
            announce: true,
            prefix,
            asn,
        }
    }

    /// A withdraw update.
    #[must_use]
    pub fn withdraw(prefix: Ipv4Prefix, asn: Asn) -> Self {
        TableUpdate {
            announce: false,
            prefix,
            asn,
        }
    }
}

/// The net effect of one applied update batch: the change set a client at
/// `serial - 1` must apply to reach `serial`.
///
/// Only *effective* changes are recorded — announcing an origin already in
/// the list, or withdrawing one that was never there, contributes nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TableDelta {
    /// The serial this delta produces.
    pub serial: u32,
    /// `(prefix, origin)` pairs added.
    pub announced: Vec<(Ipv4Prefix, Asn)>,
    /// `(prefix, origin)` pairs removed.
    pub withdrawn: Vec<(Ipv4Prefix, Asn)>,
}

impl TableDelta {
    /// `true` when the batch changed nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.announced.is_empty() && self.withdrawn.is_empty()
    }
}

/// Half the 32-bit serial space. Spans larger than this are treated as the
/// client being *ahead* of the server (RFC 1982 serial-number arithmetic),
/// which is only answerable with a cache reset.
const SERIAL_HALF: u32 = u32::MAX / 2;

/// The number of forward applies separating serial `from` from serial `to`
/// in the wrapping 32-bit serial space (RFC 1982 arithmetic: the serial
/// after `u32::MAX` is `0`).
#[must_use]
pub fn serial_distance(from: u32, to: u32) -> u32 {
    to.wrapping_sub(from)
}

/// RFC 1982 ordering: `true` when `b` lies strictly ahead of `a` by fewer
/// than half the serial space — i.e. a client at `a` can catch up to `b`
/// with forward deltas. Distances of half the space or more are
/// indeterminate and answered with a cache reset, never a diff.
#[must_use]
pub fn serial_less(a: u32, b: u32) -> bool {
    let d = serial_distance(a, b);
    d != 0 && d <= SERIAL_HALF
}

/// The daemon's origin-validation table: MOAS lists in a prefix trie,
/// versioned by a serial that advances one step per effective apply.
///
/// The serial identifies a table *state*; every [`apply`](Self::apply) call
/// that changes something advances it by one, wrapping from `u32::MAX` to
/// `0` under RFC 1982 serial arithmetic ([`serial_less`] /
/// [`serial_distance`] — the feed keeps diffing straight across the wrap).
/// Pre-serving bulk loads go through [`insert`](Self::insert), which leaves
/// the serial alone — the loaded table **is** the current serial's state.
#[derive(Debug, Clone)]
pub struct OriginTable {
    trie: PrefixTrie<MoasList>,
    serial: u32,
    session_id: u16,
}

impl OriginTable {
    /// An empty table at serial 0 under the given feed session id.
    #[must_use]
    pub fn new(session_id: u16) -> Self {
        Self::with_serial(session_id, 0)
    }

    /// An empty table starting at an arbitrary serial — for restoring a
    /// persisted table at the serial it was saved under, and for exercising
    /// behavior near the `u32::MAX` wrap boundary.
    #[must_use]
    pub fn with_serial(session_id: u16, serial: u32) -> Self {
        OriginTable {
            trie: PrefixTrie::new(),
            serial,
            session_id,
        }
    }

    /// The current serial.
    #[must_use]
    pub fn serial(&self) -> u32 {
        self.serial
    }

    /// The feed session id; a client holding serials from a different
    /// session must reset.
    #[must_use]
    pub fn session_id(&self) -> u16 {
        self.session_id
    }

    /// Number of prefixes with a non-empty origin set.
    #[must_use]
    pub fn prefix_count(&self) -> usize {
        self.trie.len()
    }

    /// Number of `(prefix, origin)` pairs — the feed's unit of transfer.
    #[must_use]
    pub fn entry_count(&self) -> usize {
        self.trie.iter().map(|(_, list)| list.len()).sum()
    }

    /// Replaces the origin set of `prefix` without touching the serial
    /// (bulk loading). An empty list removes the prefix.
    pub fn insert(&mut self, prefix: Ipv4Prefix, origins: MoasList) {
        if origins.is_empty() {
            self.trie.remove(prefix);
        } else {
            self.trie.insert(prefix, origins);
        }
    }

    /// The origin set stored for exactly `prefix`.
    #[must_use]
    pub fn origins(&self, prefix: Ipv4Prefix) -> Option<&MoasList> {
        self.trie.get(prefix)
    }

    /// Every stored entry covering `prefix` (including `prefix` itself),
    /// least-specific first.
    #[must_use]
    pub fn covering(&self, prefix: Ipv4Prefix) -> Vec<(Ipv4Prefix, &MoasList)> {
        self.trie.covering_matches(prefix)
    }

    /// The full `(prefix, origin)` snapshot in deterministic order
    /// (ascending prefix, then ASN) — what a feed reset sync transfers.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(Ipv4Prefix, Asn)> {
        let mut out = Vec::with_capacity(self.trie.len());
        for (prefix, list) in self.trie.iter() {
            for asn in list {
                out.push((prefix, asn));
            }
        }
        out
    }

    /// Applies an update batch atomically, returning the effective delta.
    /// The serial increments only when the batch changed something.
    pub fn apply(&mut self, updates: &[TableUpdate]) -> TableDelta {
        let mut delta = TableDelta::default();
        for update in updates {
            if update.announce {
                let added = if let Some(list) = self.trie.get(update.prefix) {
                    let mut list = list.clone();
                    let added = list.insert(update.asn);
                    if added {
                        self.trie.insert(update.prefix, list);
                    }
                    added
                } else {
                    self.trie
                        .insert(update.prefix, MoasList::implicit(update.asn));
                    true
                };
                if added {
                    delta.announced.push((update.prefix, update.asn));
                }
            } else if let Some(list) = self.trie.get(update.prefix) {
                let mut list = list.clone();
                if list.remove(update.asn) {
                    delta.withdrawn.push((update.prefix, update.asn));
                    if list.is_empty() {
                        self.trie.remove(update.prefix);
                    } else {
                        self.trie.insert(update.prefix, list);
                    }
                }
            }
        }
        if !delta.is_empty() {
            // RFC 1982 wrapping: the serial after u32::MAX is 0. `+= 1`
            // here would panic in debug builds after 2^32 applies and leave
            // release builds with a serial the ring could not diff from.
            self.serial = self.serial.wrapping_add(1);
        }
        delta.serial = self.serial;
        delta
    }

    /// Loads a table from a JSON MOAS-list file:
    ///
    /// ```json
    /// { "moasLists": [ { "prefix": "10.1.0.0/16", "origins": [64512, 64513] } ] }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] for malformed JSON or entries missing
    /// `prefix`/`origins`.
    pub fn from_json(text: &str, session_id: u16) -> Result<Self, JsonError> {
        let doc = Json::parse(text)?;
        let lists = doc.get("moasLists").ok_or_else(|| JsonError {
            message: "missing 'moasLists' array".to_string(),
            offset: 0,
        })?;
        let Json::Arr(items) = lists else {
            return Err(JsonError {
                message: "'moasLists' must be an array".to_string(),
                offset: 0,
            });
        };
        let mut table = OriginTable::new(session_id);
        for item in items {
            let prefix = parse_prefix_field(item, "prefix")?;
            let origins = item.get("origins").ok_or_else(|| JsonError {
                message: "entry missing 'origins'".to_string(),
                offset: 0,
            })?;
            let Json::Arr(asns) = origins else {
                return Err(JsonError {
                    message: "'origins' must be an array of AS numbers".to_string(),
                    offset: 0,
                });
            };
            let mut list = MoasList::new();
            for asn in asns {
                match asn {
                    Json::Num(n) if *n >= 0.0 && *n <= f64::from(u32::MAX) && n.fract() == 0.0 => {
                        list.insert(Asn(*n as u32));
                    }
                    _ => {
                        return Err(JsonError {
                            message: "origins must be 32-bit AS numbers".to_string(),
                            offset: 0,
                        })
                    }
                }
            }
            table.insert(prefix, list);
        }
        Ok(table)
    }

    /// Serializes the table back to the [`from_json`](Self::from_json)
    /// format, in snapshot order.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let items: Vec<Json> = self
            .trie
            .iter()
            .map(|(prefix, list)| {
                Json::Obj(vec![
                    ("prefix".to_string(), Json::Str(prefix.to_string())),
                    (
                        "origins".to_string(),
                        Json::Arr(list.iter().map(|a| Json::Num(f64::from(a.0))).collect()),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![("moasLists".to_string(), Json::Arr(items))]).pretty()
    }

    /// Derives a table from an MRT table-dump archive: a prefix's MOAS list
    /// is the union of origins observed across the whole archive (the
    /// paper's derivation of MOAS lists from route collectors, applied
    /// archive-wide).
    ///
    /// Runs on the allocation-free ingest path: records stream through one
    /// reusable buffer ([`MrtViewReader`]), each RIB entry's origin is read
    /// straight off the wire, and the `(prefix, origin)` pairs are sorted
    /// and bulk-loaded into the trie in one pass
    /// ([`PrefixTrie::extend_sorted`]). [`from_mrt_owned`](Self::from_mrt_owned)
    /// is the per-record owned-decode equivalent kept as the differential
    /// baseline; both produce identical tables.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O or wire-decoding error.
    pub fn from_mrt<R: io::Read>(reader: R, session_id: u16) -> Result<Self, WireError> {
        let mut mrt = MrtViewReader::new(reader);
        let mut peer_table: Option<PeerIndexTable> = None;
        let mut pairs: Vec<(Ipv4Prefix, Asn)> = Vec::new();
        while mrt.advance()? {
            let view = mrt.view()?;
            match view.body {
                MrtBodyView::PeerIndexTable(table) => peer_table = Some(table.to_table()),
                MrtBodyView::RibIpv4Unicast(rib) => {
                    let table = peer_table.as_ref().ok_or(WireError {
                        kind: WireErrorKind::MissingPeerIndexTable,
                        offset: 0,
                    })?;
                    for entry in rib.entries() {
                        let peer =
                            table
                                .peers
                                .get(usize::from(entry.peer_index))
                                .ok_or(WireError {
                                    kind: WireErrorKind::BadPeerIndex(entry.peer_index),
                                    offset: 0,
                                })?;
                        let origin = entry.attrs.origin_asn().unwrap_or(peer.asn);
                        pairs.push((rib.prefix(), origin));
                    }
                }
                // The daemon serves the paper's IPv4 MOAS lists; IPv6 RIB
                // records are validated but not tabulated.
                MrtBodyView::RibIpv6Unicast(_) => {}
                MrtBodyView::Bgp4mpMessage(_) => {}
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        let mut groups: Vec<(Ipv4Prefix, MoasList)> = Vec::new();
        for (prefix, asn) in pairs {
            match groups.last_mut() {
                Some((last, list)) if *last == prefix => {
                    list.insert(asn);
                }
                _ => groups.push((prefix, MoasList::implicit(asn))),
            }
        }
        let mut table = OriginTable::new(session_id);
        table.trie.extend_sorted(groups);
        Ok(table)
    }

    /// [`from_mrt`](Self::from_mrt) on the owned decode path: every record
    /// is materialised by [`MrtReader`], origins accumulate in a
    /// `BTreeMap`, and prefixes load one at a time. Kept as the
    /// differential-testing and benchmarking baseline for the zero-copy
    /// path — the two must return identical tables for any archive.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O or wire-decoding error.
    pub fn from_mrt_owned<R: io::Read>(reader: R, session_id: u16) -> Result<Self, WireError> {
        let mut mrt = MrtReader::new(reader);
        let mut peer_table: Option<PeerIndexTable> = None;
        let mut origins: BTreeMap<Ipv4Prefix, BTreeSet<Asn>> = BTreeMap::new();
        while let Some(record) = mrt.next_record()? {
            match record.body {
                MrtBody::PeerIndexTable(table) => peer_table = Some(table),
                MrtBody::RibIpv4Unicast(rib) => {
                    let table = peer_table.as_ref().ok_or(WireError {
                        kind: WireErrorKind::MissingPeerIndexTable,
                        offset: 0,
                    })?;
                    for entry in rib.entries {
                        let peer =
                            table
                                .peers
                                .get(usize::from(entry.peer_index))
                                .ok_or(WireError {
                                    kind: WireErrorKind::BadPeerIndex(entry.peer_index),
                                    offset: 0,
                                })?;
                        let route = entry.attrs.to_route(rib.prefix);
                        let origin = route.origin_as().unwrap_or(peer.asn);
                        origins.entry(rib.prefix).or_default().insert(origin);
                    }
                }
                MrtBody::RibIpv6Unicast(_) => {}
                MrtBody::Bgp4mpMessage(_) => {}
            }
        }
        let mut table = OriginTable::new(session_id);
        for (prefix, set) in origins {
            table.insert(prefix, set.into_iter().collect());
        }
        Ok(table)
    }
}

fn parse_prefix_field(item: &Json, field: &str) -> Result<Ipv4Prefix, JsonError> {
    match item.get(field) {
        Some(Json::Str(s)) => s.parse().map_err(|e| JsonError {
            message: format!("bad {field} '{s}': {e}"),
            offset: 0,
        }),
        _ => Err(JsonError {
            message: format!("entry missing string '{field}'"),
            offset: 0,
        }),
    }
}

/// A bounded ring of the most recent [`TableDelta`]s, keyed by the serial
/// each one produces.
///
/// A client at serial `s` asking for the changes up to the current serial
/// gets the merged deltas `s+1 ..= current` if the ring still holds them
/// all; once `s+1` has aged out the only answer is a cache reset. This is
/// the RTR cache model: bounded server memory, cheap diffs for live
/// clients, full resync for stragglers.
#[derive(Debug, Clone)]
pub struct DeltaRing {
    capacity: usize,
    deltas: VecDeque<TableDelta>,
}

impl DeltaRing {
    /// A ring retaining at most `capacity` deltas (at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        DeltaRing {
            capacity: capacity.max(1),
            deltas: VecDeque::new(),
        }
    }

    /// Number of deltas currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// `true` when no delta is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// The oldest serial a diff can still start *from* (i.e. the serial a
    /// client must at least hold), if any deltas are retained. Wrapping:
    /// when the oldest retained delta produced serial 0, the serial to hold
    /// is `u32::MAX`.
    #[must_use]
    pub fn oldest_reachable_serial(&self) -> Option<u32> {
        self.deltas.front().map(|d| d.serial.wrapping_sub(1))
    }

    /// Retains an applied delta. Callers skip no-op deltas.
    pub fn push(&mut self, delta: TableDelta) {
        if self.deltas.len() == self.capacity {
            self.deltas.pop_front();
        }
        self.deltas.push_back(delta);
    }

    /// The merged change set taking a client from `from_serial` to
    /// `current_serial`, or `None` if the ring no longer covers that span
    /// (→ cache reset).
    ///
    /// Serial comparisons use RFC 1982 wrapping arithmetic
    /// ([`serial_less`]), so spans crossing the `u32::MAX → 0` wrap diff
    /// normally; a `from_serial` *ahead* of `current_serial` (or more than
    /// half the serial space behind) is never diffable.
    ///
    /// Changes cancel pairwise: an origin announced and later withdrawn
    /// within the span disappears from the diff entirely, so clients apply
    /// the minimal set, in deterministic (prefix, ASN) order.
    #[must_use]
    pub fn diff_since(&self, from_serial: u32, current_serial: u32) -> Option<TableDelta> {
        if from_serial == current_serial {
            return Some(TableDelta {
                serial: current_serial,
                ..TableDelta::default()
            });
        }
        if !serial_less(from_serial, current_serial) {
            return None;
        }
        let span = serial_distance(from_serial, current_serial);
        // The span must be fully covered by retained deltas: the oldest
        // reachable serial must be at or behind `from_serial` on the walk
        // back from `current_serial`.
        match self.oldest_reachable_serial() {
            Some(oldest) if serial_distance(oldest, current_serial) >= span => {}
            _ => return None,
        }
        let mut net: BTreeMap<(Ipv4Prefix, Asn), bool> = BTreeMap::new();
        for delta in &self.deltas {
            let step = serial_distance(from_serial, delta.serial);
            if step == 0 || step > span {
                continue;
            }
            for &(prefix, asn) in &delta.announced {
                match net.remove(&(prefix, asn)) {
                    // withdraw then announce within the span: net nothing
                    Some(false) => {}
                    _ => {
                        net.insert((prefix, asn), true);
                    }
                }
            }
            for &(prefix, asn) in &delta.withdrawn {
                match net.remove(&(prefix, asn)) {
                    // announce then withdraw within the span: net nothing
                    Some(true) => {}
                    _ => {
                        net.insert((prefix, asn), false);
                    }
                }
            }
        }
        let mut merged = TableDelta {
            serial: current_serial,
            ..TableDelta::default()
        };
        for ((prefix, asn), announce) in net {
            if announce {
                merged.announced.push((prefix, asn));
            } else {
                merged.withdrawn.push((prefix, asn));
            }
        }
        Some(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn apply_tracks_effective_changes_only() {
        let mut table = OriginTable::new(1);
        let delta = table.apply(&[
            TableUpdate::announce(p("10.0.0.0/8"), Asn(1)),
            TableUpdate::announce(p("10.0.0.0/8"), Asn(1)), // duplicate: no-op
            TableUpdate::withdraw(p("11.0.0.0/8"), Asn(2)), // absent: no-op
        ]);
        assert_eq!(delta.serial, 1);
        assert_eq!(delta.announced, vec![(p("10.0.0.0/8"), Asn(1))]);
        assert!(delta.withdrawn.is_empty());
        assert_eq!(table.serial(), 1);

        // A batch with no effect leaves the serial alone.
        let delta = table.apply(&[TableUpdate::announce(p("10.0.0.0/8"), Asn(1))]);
        assert!(delta.is_empty());
        assert_eq!(delta.serial, 1);
        assert_eq!(table.serial(), 1);
    }

    #[test]
    fn withdraw_last_origin_removes_the_prefix() {
        let mut table = OriginTable::new(1);
        table.apply(&[TableUpdate::announce(p("10.0.0.0/8"), Asn(1))]);
        table.apply(&[TableUpdate::withdraw(p("10.0.0.0/8"), Asn(1))]);
        assert_eq!(table.prefix_count(), 0);
        assert_eq!(table.serial(), 2);
        assert!(table.origins(p("10.0.0.0/8")).is_none());
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let mut table = OriginTable::new(1);
        table.insert(p("192.168.0.0/16"), [Asn(9), Asn(3)].into_iter().collect());
        table.insert(p("10.0.0.0/8"), [Asn(7)].into_iter().collect());
        assert_eq!(
            table.snapshot(),
            vec![
                (p("10.0.0.0/8"), Asn(7)),
                (p("192.168.0.0/16"), Asn(3)),
                (p("192.168.0.0/16"), Asn(9)),
            ]
        );
        assert_eq!(table.entry_count(), 3);
        assert_eq!(table.prefix_count(), 2);
    }

    #[test]
    fn json_round_trip() {
        let mut table = OriginTable::new(5);
        table.insert(
            p("10.1.0.0/16"),
            [Asn(64512), Asn(64513)].into_iter().collect(),
        );
        table.insert(p("10.2.0.0/16"), [Asn(64514)].into_iter().collect());
        let text = table.to_json_string();
        let back = OriginTable::from_json(&text, 5).unwrap();
        assert_eq!(back.snapshot(), table.snapshot());
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        assert!(OriginTable::from_json("{}", 1).is_err());
        assert!(OriginTable::from_json(r#"{"moasLists": 3}"#, 1).is_err());
        assert!(
            OriginTable::from_json(r#"{"moasLists": [{"prefix": "nope", "origins": []}]}"#, 1)
                .is_err()
        );
        assert!(OriginTable::from_json(
            r#"{"moasLists": [{"prefix": "10.0.0.0/8", "origins": [-1]}]}"#,
            1
        )
        .is_err());
    }

    #[test]
    fn ring_diffs_within_capacity() {
        let mut table = OriginTable::new(1);
        let mut ring = DeltaRing::new(4);
        for i in 0..3u32 {
            let delta = table.apply(&[TableUpdate::announce(p("10.0.0.0/8"), Asn(i))]);
            ring.push(delta);
        }
        // 0 -> 3: all three announcements.
        let diff = ring.diff_since(0, table.serial()).unwrap();
        assert_eq!(diff.announced.len(), 3);
        assert_eq!(diff.serial, 3);
        // 2 -> 3: just the last one.
        let diff = ring.diff_since(2, table.serial()).unwrap();
        assert_eq!(diff.announced, vec![(p("10.0.0.0/8"), Asn(2))]);
        // 3 -> 3: empty.
        assert!(ring.diff_since(3, 3).unwrap().is_empty());
    }

    #[test]
    fn ring_eviction_forces_reset() {
        let mut table = OriginTable::new(1);
        let mut ring = DeltaRing::new(2);
        for i in 0..4u32 {
            let delta = table.apply(&[TableUpdate::announce(p("10.0.0.0/8"), Asn(i))]);
            ring.push(delta);
        }
        // Serials 1 and 2 have aged out of the 2-slot ring.
        assert_eq!(ring.oldest_reachable_serial(), Some(2));
        assert!(ring.diff_since(0, 4).is_none());
        assert!(ring.diff_since(1, 4).is_none());
        assert!(ring.diff_since(2, 4).is_some());
        // A serial from the future is never diffable.
        assert!(ring.diff_since(9, 4).is_none());
    }

    #[test]
    fn serial_wrap_apply_crosses_u32_max() {
        let mut table = OriginTable::with_serial(1, u32::MAX - 1);
        let mut ring = DeltaRing::new(8);
        let d1 = table.apply(&[TableUpdate::announce(p("10.0.0.0/8"), Asn(1))]);
        assert_eq!(d1.serial, u32::MAX);
        ring.push(d1);
        let d2 = table.apply(&[TableUpdate::announce(p("10.0.0.0/8"), Asn(2))]);
        assert_eq!(d2.serial, 0, "the serial after u32::MAX is 0");
        ring.push(d2);
        let d3 = table.apply(&[TableUpdate::announce(p("10.0.0.0/8"), Asn(3))]);
        assert_eq!(d3.serial, 1);
        ring.push(d3);
        assert_eq!(table.serial(), 1);

        assert_eq!(ring.oldest_reachable_serial(), Some(u32::MAX - 1));
        // The full span straddling the wrap merges all three deltas.
        let diff = ring.diff_since(u32::MAX - 1, 1).unwrap();
        assert_eq!(diff.announced.len(), 3);
        assert_eq!(diff.serial, 1);
        // Partial spans crossing the boundary.
        assert_eq!(ring.diff_since(u32::MAX, 1).unwrap().announced.len(), 2);
        assert_eq!(
            ring.diff_since(0, 1).unwrap().announced,
            vec![(p("10.0.0.0/8"), Asn(3))]
        );
        // A client claiming a serial ahead of the server still resets.
        assert!(ring.diff_since(2, 1).is_none());
    }

    #[test]
    fn serial_wrap_oldest_reachable_does_not_underflow_at_zero() {
        // The ring holding exactly the delta that produced serial 0 (the
        // apply that wrapped) must name u32::MAX as the serial to hold —
        // the old `serial - 1` underflowed here.
        let mut table = OriginTable::with_serial(1, u32::MAX);
        let mut ring = DeltaRing::new(2);
        ring.push(table.apply(&[TableUpdate::announce(p("10.0.0.0/8"), Asn(1))]));
        assert_eq!(table.serial(), 0);
        assert_eq!(ring.oldest_reachable_serial(), Some(u32::MAX));
        let diff = ring.diff_since(u32::MAX, 0).unwrap();
        assert_eq!(diff.announced.len(), 1);
        assert_eq!(diff.serial, 0);
    }

    #[test]
    fn serial_wrap_ordering_helpers() {
        assert!(serial_less(u32::MAX, 0));
        assert!(serial_less(u32::MAX - 1, 1));
        assert!(
            !serial_less(0, u32::MAX),
            "0 is ahead of u32::MAX, not behind"
        );
        assert!(!serial_less(5, 5));
        // Distances beyond half the space are indeterminate: not less.
        assert!(!serial_less(0, SERIAL_HALF + 1));
        assert!(serial_less(0, SERIAL_HALF));
        assert_eq!(serial_distance(u32::MAX, 1), 2);
    }

    #[test]
    fn diff_cancels_announce_withdraw_pairs() {
        let mut table = OriginTable::new(1);
        let mut ring = DeltaRing::new(8);
        ring.push(table.apply(&[TableUpdate::announce(p("10.0.0.0/8"), Asn(1))]));
        ring.push(table.apply(&[TableUpdate::withdraw(p("10.0.0.0/8"), Asn(1))]));
        let diff = ring.diff_since(0, table.serial()).unwrap();
        assert!(diff.is_empty(), "announce+withdraw must cancel: {diff:?}");

        // And from serial 1 (after the announce), the net effect by now is a
        // re-announce.
        ring.push(table.apply(&[TableUpdate::announce(p("10.0.0.0/8"), Asn(1))]));
        let diff = ring.diff_since(1, table.serial()).unwrap();
        assert_eq!(diff.withdrawn, Vec::new());
        assert_eq!(diff.announced, Vec::new());
    }
}
