//! Origin validation against the table plus local exceptions.

use std::collections::BTreeSet;
use std::fmt;

use bgp_types::{Asn, Ipv4Prefix};

use crate::exceptions::ExceptionSet;
use crate::table::OriginTable;

/// The answer to "may AS *x* originate prefix *p*?".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// A covering MOAS list exists and names the queried origin.
    Valid,
    /// A covering MOAS list exists but does not name the queried origin —
    /// the paper's alarm condition.
    Invalid,
    /// No covering list: the table says nothing about this prefix.
    NotFound,
}

impl Verdict {
    /// The wire spelling used in `/validity` JSON responses.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Valid => "valid",
            Verdict::Invalid => "invalid",
            Verdict::NotFound => "not-found",
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A verdict plus the evidence that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Validation {
    /// The verdict.
    pub verdict: Verdict,
    /// The covering prefix whose effective origin set decided the verdict
    /// (`None` for [`Verdict::NotFound`]).
    pub matched_prefix: Option<Ipv4Prefix>,
    /// That prefix's effective origin set (empty for `NotFound`).
    pub origins: Vec<Asn>,
}

/// Validates `(prefix, asn)` and reports the deciding evidence.
///
/// The walk considers every table entry covering the queried prefix (never
/// one *below* it — a /24 announcement is not legitimized by a stored /25),
/// with local exceptions applied per entry:
///
/// 1. each covering entry's *effective* origin set is its MOAS list minus
///    origins removed by matching filters;
/// 2. each covering assertion adds its origin at its own prefix, immune to
///    filters;
/// 3. the most-specific covering prefix with a non-empty effective set
///    decides: `valid` if it names the queried origin, `invalid` otherwise;
/// 4. if no covering prefix has a non-empty effective set, the answer is
///    `not-found`.
///
/// Step 3 mirrors longest-match routing semantics: a more-specific MOAS
/// list overrides a less-specific one, exactly as the covering announcement
/// it was derived from would.
#[must_use]
pub fn validate_detailed(
    table: &OriginTable,
    exceptions: &ExceptionSet,
    prefix: Ipv4Prefix,
    asn: Asn,
) -> Validation {
    // (covering prefix, effective origins), least-specific first. Distinct
    // covering prefixes have distinct lengths, so the chain is already
    // sorted by specificity.
    let mut levels: Vec<(Ipv4Prefix, BTreeSet<Asn>)> = Vec::new();
    for (entry_prefix, list) in table.covering(prefix) {
        let effective: BTreeSet<Asn> = list
            .iter()
            .filter(|&origin| !exceptions.filters_out(entry_prefix, origin))
            .collect();
        levels.push((entry_prefix, effective));
    }
    for assertion in exceptions.assertions_covering(prefix) {
        match levels.iter_mut().find(|(p, _)| *p == assertion.prefix) {
            Some((_, set)) => {
                set.insert(assertion.asn);
            }
            None => {
                let at = levels
                    .iter()
                    .position(|(p, _)| p.len() > assertion.prefix.len())
                    .unwrap_or(levels.len());
                levels.insert(at, (assertion.prefix, [assertion.asn].into()));
            }
        }
    }
    for (entry_prefix, origins) in levels.into_iter().rev() {
        if origins.is_empty() {
            continue;
        }
        let verdict = if origins.contains(&asn) {
            Verdict::Valid
        } else {
            Verdict::Invalid
        };
        return Validation {
            verdict,
            matched_prefix: Some(entry_prefix),
            origins: origins.into_iter().collect(),
        };
    }
    Validation {
        verdict: Verdict::NotFound,
        matched_prefix: None,
        origins: Vec::new(),
    }
}

/// Validates `(prefix, asn)` — see [`validate_detailed`] for the rules.
#[must_use]
pub fn validate(
    table: &OriginTable,
    exceptions: &ExceptionSet,
    prefix: Ipv4Prefix,
    asn: Asn,
) -> Verdict {
    validate_detailed(table, exceptions, prefix, asn).verdict
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exceptions::{PrefixAssertion, PrefixFilter};

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn table() -> OriginTable {
        let mut t = OriginTable::new(1);
        t.insert(p("10.0.0.0/8"), [Asn(100)].into_iter().collect());
        t.insert(p("10.1.0.0/16"), [Asn(200), Asn(201)].into_iter().collect());
        t
    }

    #[test]
    fn plain_lookup_without_exceptions() {
        let t = table();
        let none = ExceptionSet::empty();
        assert_eq!(
            validate(&t, &none, p("10.1.0.0/16"), Asn(200)),
            Verdict::Valid
        );
        assert_eq!(
            validate(&t, &none, p("10.1.0.0/16"), Asn(100)),
            Verdict::Invalid
        );
        // A query below the /16 is still judged by the /16 (most-specific cover).
        assert_eq!(
            validate(&t, &none, p("10.1.2.0/24"), Asn(201)),
            Verdict::Valid
        );
        // Outside the /16 but inside the /8, the /8 decides.
        assert_eq!(
            validate(&t, &none, p("10.2.0.0/16"), Asn(100)),
            Verdict::Valid
        );
        assert_eq!(
            validate(&t, &none, p("10.2.0.0/16"), Asn(200)),
            Verdict::Invalid
        );
        // Uncovered space is not-found.
        assert_eq!(
            validate(&t, &none, p("11.0.0.0/8"), Asn(100)),
            Verdict::NotFound
        );
    }

    #[test]
    fn detailed_reports_the_deciding_level() {
        let t = table();
        let none = ExceptionSet::empty();
        let v = validate_detailed(&t, &none, p("10.1.2.0/24"), Asn(999));
        assert_eq!(v.verdict, Verdict::Invalid);
        assert_eq!(v.matched_prefix, Some(p("10.1.0.0/16")));
        assert_eq!(v.origins, vec![Asn(200), Asn(201)]);
        let v = validate_detailed(&t, &none, p("172.16.0.0/12"), Asn(1));
        assert_eq!(v.verdict, Verdict::NotFound);
        assert_eq!(v.matched_prefix, None);
    }

    #[test]
    fn filter_removes_a_level_and_exposes_the_parent() {
        let t = table();
        let mut ex = ExceptionSet::empty();
        ex.filters.push(PrefixFilter {
            prefix: Some(p("10.1.0.0/16")),
            asn: None,
            comment: None,
        });
        // The /16's whole list is filtered, so the /8 now decides.
        assert_eq!(
            validate(&t, &ex, p("10.1.0.0/16"), Asn(200)),
            Verdict::Invalid
        );
        assert_eq!(
            validate(&t, &ex, p("10.1.0.0/16"), Asn(100)),
            Verdict::Valid
        );
    }

    #[test]
    fn filtering_every_cover_yields_not_found() {
        let t = table();
        let mut ex = ExceptionSet::empty();
        ex.filters.push(PrefixFilter {
            prefix: Some(p("10.0.0.0/8")),
            asn: None,
            comment: None,
        });
        assert_eq!(
            validate(&t, &ex, p("10.1.0.0/16"), Asn(200)),
            Verdict::NotFound
        );
    }

    #[test]
    fn asn_filter_removes_one_origin_only() {
        let t = table();
        let mut ex = ExceptionSet::empty();
        ex.filters.push(PrefixFilter {
            prefix: None,
            asn: Some(Asn(200)),
            comment: None,
        });
        assert_eq!(
            validate(&t, &ex, p("10.1.0.0/16"), Asn(200)),
            Verdict::Invalid
        );
        assert_eq!(
            validate(&t, &ex, p("10.1.0.0/16"), Asn(201)),
            Verdict::Valid
        );
    }

    #[test]
    fn assertion_adds_an_origin_at_an_existing_level() {
        let t = table();
        let mut ex = ExceptionSet::empty();
        ex.assertions.push(PrefixAssertion {
            prefix: p("10.1.0.0/16"),
            asn: Asn(300),
            comment: None,
        });
        assert_eq!(
            validate(&t, &ex, p("10.1.0.0/16"), Asn(300)),
            Verdict::Valid
        );
        let v = validate_detailed(&t, &ex, p("10.1.0.0/16"), Asn(300));
        assert_eq!(v.origins, vec![Asn(200), Asn(201), Asn(300)]);
    }

    #[test]
    fn assertion_creates_a_more_specific_level() {
        let t = table();
        let mut ex = ExceptionSet::empty();
        ex.assertions.push(PrefixAssertion {
            prefix: p("10.1.2.0/24"),
            asn: Asn(400),
            comment: None,
        });
        // The asserted /24 now outranks the derived /16 for queries at /24
        // and below.
        assert_eq!(
            validate(&t, &ex, p("10.1.2.0/24"), Asn(400)),
            Verdict::Valid
        );
        assert_eq!(
            validate(&t, &ex, p("10.1.2.0/24"), Asn(200)),
            Verdict::Invalid
        );
        // Queries at the /16 are untouched.
        assert_eq!(
            validate(&t, &ex, p("10.1.0.0/16"), Asn(200)),
            Verdict::Valid
        );
    }

    #[test]
    fn assertion_beats_filter() {
        let t = table();
        let mut ex = ExceptionSet::empty();
        ex.filters.push(PrefixFilter {
            prefix: Some(p("10.0.0.0/8")),
            asn: None,
            comment: None,
        });
        ex.assertions.push(PrefixAssertion {
            prefix: p("10.1.0.0/16"),
            asn: Asn(201),
            comment: None,
        });
        // Everything derived under 10/8 is filtered, but the assertion
        // survives: precedence assertion > filter > derived.
        assert_eq!(
            validate(&t, &ex, p("10.1.0.0/16"), Asn(201)),
            Verdict::Valid
        );
        assert_eq!(
            validate(&t, &ex, p("10.1.0.0/16"), Asn(200)),
            Verdict::Invalid
        );
        assert_eq!(
            validate(&t, &ex, p("10.2.0.0/16"), Asn(100)),
            Verdict::NotFound
        );
    }
}
