//! `moas-daemon` — the MOAS-list detector as a long-running service.
//!
//! The paper's detector runs here as batch experiments; its premise, though,
//! is an *online* service: routers consult MOAS lists to judge origin
//! validity as announcements arrive. This crate is that service, shaped like
//! RPKI relying-party software (Routinator et al.):
//!
//! * [`OriginTable`] — the prefix → origin-set table in the [`bgp_types`]
//!   trie, versioned by a monotonically increasing **serial**, with a
//!   bounded [`DeltaRing`] of per-serial change sets so clients sync cheaply
//!   via diffs;
//! * [`feed`] — an RTR-style binary push feed (session-id / serial-query /
//!   cache-response / cache-reset semantics, RFC 8210's shape on a
//!   MOAS-list payload);
//! * [`http`] — a minimal hand-rolled HTTP/1.1 endpoint:
//!   `/validity?prefix=…&asn=…`, `/metrics`, `/status`, plus control
//!   endpoints (`/ingest`, `/reload-exceptions`, `/shutdown`);
//! * [`exceptions`] — SLURM-style local exception files (RFC 8416's shape):
//!   operator assertions and filters that override derived verdicts, hot
//!   reloadable through the control endpoint;
//! * [`Daemon`] — both wire interfaces served over loopback TCP by the
//!   vendored [`minisock`] reactor, one worker thread per listener;
//! * [`client`] — a blocking in-process client library
//!   ([`client::FeedClient`], [`client::HttpClient`]) used by the
//!   integration tests and
//!   `moas-lab daemon-probe`.
//!
//! Everything is deterministic given the sequence of applied updates: serial
//! numbers, feed bytes, and `/validity` responses are asserted byte-for-byte
//! in `tests/daemon_loopback.rs`.
//!
//! # Example
//!
//! ```
//! use moas_daemon::{Daemon, DaemonConfig, OriginTable, Verdict};
//! use moas_daemon::client::HttpClient;
//! use bgp_types::{Asn, MoasList};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut table = OriginTable::new(7); // session id 7
//! table.insert("10.1.0.0/16".parse()?, [Asn(64512)].into_iter().collect());
//!
//! let daemon = Daemon::start(DaemonConfig::loopback(), table)?;
//! let mut http = HttpClient::connect(daemon.http_addr())?;
//! let (status, body) = http.get("/validity?prefix=10.1.0.0/16&asn=64512")?;
//! assert_eq!(status, 200);
//! assert!(body.contains("\"valid\""));
//! daemon.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod bgp;
pub mod client;
mod daemon;
pub mod exceptions;
pub mod feed;
pub mod http;
mod table;
mod validity;

pub use daemon::{Daemon, DaemonConfig};
pub use exceptions::{ExceptionError, ExceptionSet, PrefixAssertion, PrefixFilter};
pub use feed::{FeedError, Pdu, PrefixEntry};
pub use table::{serial_distance, serial_less, DeltaRing, OriginTable, TableDelta, TableUpdate};
pub use validity::{validate, validate_detailed, Validation, Verdict};
