//! SLURM-style local exception files (the shape of RFC 8416).
//!
//! Operators override the derived MOAS table with a JSON exception file:
//!
//! ```json
//! {
//!   "slurmVersion": 1,
//!   "validationOutputFilters": {
//!     "prefixFilters": [
//!       { "prefix": "10.0.0.0/8", "comment": "drop everything derived here" },
//!       { "asn": 64666, "comment": "drop this origin everywhere" }
//!     ]
//!   },
//!   "locallyAddedAssertions": {
//!     "prefixAssertions": [
//!       { "prefix": "10.1.0.0/16", "asn": 64512, "comment": "our customer" }
//!     ]
//!   }
//! }
//! ```
//!
//! * A **filter** removes matching *derived* table entries from
//!   consideration: it matches an entry when its prefix (if given) covers or
//!   equals the entry's prefix and its ASN (if given) equals the entry's
//!   origin. At least one of `prefix`/`asn` must be present.
//! * An **assertion** unconditionally adds `(prefix, asn)` as if it were a
//!   derived entry. Assertions are *not* subject to filters — operator adds
//!   outrank operator removes outrank derived data.

use std::error::Error;
use std::fmt;

use bgp_types::{Asn, Ipv4Prefix};
use experiments::json::{Json, JsonError};

/// A malformed exception file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExceptionError {
    /// What went wrong, including the JSON parser's message when parsing
    /// failed.
    pub message: String,
}

impl fmt::Display for ExceptionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid exception file: {}", self.message)
    }
}

impl Error for ExceptionError {}

impl From<JsonError> for ExceptionError {
    fn from(e: JsonError) -> Self {
        ExceptionError {
            message: format!("{} at byte {}", e.message, e.offset),
        }
    }
}

fn schema_err(message: impl Into<String>) -> ExceptionError {
    ExceptionError {
        message: message.into(),
    }
}

/// Removes derived `(prefix, origin)` entries from validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixFilter {
    /// Entries under this prefix (inclusive) match; `None` matches any
    /// prefix.
    pub prefix: Option<Ipv4Prefix>,
    /// Entries with this origin match; `None` matches any origin.
    pub asn: Option<Asn>,
    /// Free-form operator note, carried through serialization.
    pub comment: Option<String>,
}

impl PrefixFilter {
    /// `true` when the filter removes the derived entry
    /// `(entry_prefix, origin)`.
    #[must_use]
    pub fn matches(&self, entry_prefix: Ipv4Prefix, origin: Asn) -> bool {
        self.prefix.is_none_or(|p| p.contains(entry_prefix)) && self.asn.is_none_or(|a| a == origin)
    }
}

/// Unconditionally adds `(prefix, asn)` as an authorized origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixAssertion {
    /// The asserted prefix.
    pub prefix: Ipv4Prefix,
    /// The origin authorized for it.
    pub asn: Asn,
    /// Free-form operator note, carried through serialization.
    pub comment: Option<String>,
}

/// A parsed exception file: filters plus assertions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExceptionSet {
    /// `validationOutputFilters.prefixFilters`, in file order.
    pub filters: Vec<PrefixFilter>,
    /// `locallyAddedAssertions.prefixAssertions`, in file order.
    pub assertions: Vec<PrefixAssertion>,
}

impl ExceptionSet {
    /// The empty set: no overrides, validation uses derived data only.
    #[must_use]
    pub fn empty() -> Self {
        ExceptionSet::default()
    }

    /// Total number of override rules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.filters.len() + self.assertions.len()
    }

    /// `true` when the file carried no rules.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty() && self.assertions.is_empty()
    }

    /// `true` when some filter removes the derived entry
    /// `(entry_prefix, origin)`.
    #[must_use]
    pub fn filters_out(&self, entry_prefix: Ipv4Prefix, origin: Asn) -> bool {
        self.filters.iter().any(|f| f.matches(entry_prefix, origin))
    }

    /// The assertions whose prefix covers or equals `query`, in file order.
    #[must_use]
    pub fn assertions_covering(&self, query: Ipv4Prefix) -> Vec<&PrefixAssertion> {
        self.assertions
            .iter()
            .filter(|a| a.prefix.contains(query))
            .collect()
    }

    /// Parses a SLURM-shaped exception file.
    ///
    /// Both sections are optional; unknown keys are ignored (so real SLURM
    /// files with `bgpsecFilters`/`bgpsecAssertions` load cleanly, dropping
    /// the parts this daemon does not model).
    ///
    /// # Errors
    ///
    /// Returns an [`ExceptionError`] for malformed JSON, a filter naming
    /// neither `prefix` nor `asn`, an assertion missing either field, or an
    /// unparsable prefix/ASN.
    pub fn from_json(text: &str) -> Result<Self, ExceptionError> {
        let doc = Json::parse(text)?;
        let mut set = ExceptionSet::empty();
        if let Some(section) = doc.get("validationOutputFilters") {
            if let Some(Json::Arr(items)) = section.get("prefixFilters") {
                for item in items {
                    set.filters.push(parse_filter(item)?);
                }
            }
        }
        if let Some(section) = doc.get("locallyAddedAssertions") {
            if let Some(Json::Arr(items)) = section.get("prefixAssertions") {
                for item in items {
                    set.assertions.push(parse_assertion(item)?);
                }
            }
        }
        Ok(set)
    }

    /// Serializes back to the [`from_json`](Self::from_json) shape.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let filters: Vec<Json> = self
            .filters
            .iter()
            .map(|f| {
                let mut fields = Vec::new();
                if let Some(p) = f.prefix {
                    fields.push(("prefix".to_string(), Json::Str(p.to_string())));
                }
                if let Some(a) = f.asn {
                    fields.push(("asn".to_string(), Json::Num(f64::from(a.0))));
                }
                if let Some(c) = &f.comment {
                    fields.push(("comment".to_string(), Json::Str(c.clone())));
                }
                Json::Obj(fields)
            })
            .collect();
        let assertions: Vec<Json> = self
            .assertions
            .iter()
            .map(|a| {
                let mut fields = vec![
                    ("prefix".to_string(), Json::Str(a.prefix.to_string())),
                    ("asn".to_string(), Json::Num(f64::from(a.asn.0))),
                ];
                if let Some(c) = &a.comment {
                    fields.push(("comment".to_string(), Json::Str(c.clone())));
                }
                Json::Obj(fields)
            })
            .collect();
        Json::Obj(vec![
            ("slurmVersion".to_string(), Json::Num(1.0)),
            (
                "validationOutputFilters".to_string(),
                Json::Obj(vec![("prefixFilters".to_string(), Json::Arr(filters))]),
            ),
            (
                "locallyAddedAssertions".to_string(),
                Json::Obj(vec![(
                    "prefixAssertions".to_string(),
                    Json::Arr(assertions),
                )]),
            ),
        ])
        .pretty()
    }
}

fn parse_prefix(item: &Json, required: bool) -> Result<Option<Ipv4Prefix>, ExceptionError> {
    match item.get("prefix") {
        Some(Json::Str(s)) => s
            .parse()
            .map(Some)
            .map_err(|e| schema_err(format!("bad prefix '{s}': {e}"))),
        Some(_) => Err(schema_err("'prefix' must be a string")),
        None if required => Err(schema_err("assertion missing 'prefix'")),
        None => Ok(None),
    }
}

fn parse_asn(item: &Json, required: bool) -> Result<Option<Asn>, ExceptionError> {
    match item.get("asn") {
        Some(Json::Num(n)) if *n >= 0.0 && *n <= f64::from(u32::MAX) && n.fract() == 0.0 => {
            Ok(Some(Asn(*n as u32)))
        }
        Some(_) => Err(schema_err("'asn' must be a 32-bit AS number")),
        None if required => Err(schema_err("assertion missing 'asn'")),
        None => Ok(None),
    }
}

fn parse_comment(item: &Json) -> Option<String> {
    match item.get("comment") {
        Some(Json::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

fn parse_filter(item: &Json) -> Result<PrefixFilter, ExceptionError> {
    let prefix = parse_prefix(item, false)?;
    let asn = parse_asn(item, false)?;
    if prefix.is_none() && asn.is_none() {
        return Err(schema_err("filter must name a 'prefix' or an 'asn'"));
    }
    Ok(PrefixFilter {
        prefix,
        asn,
        comment: parse_comment(item),
    })
}

fn parse_assertion(item: &Json) -> Result<PrefixAssertion, ExceptionError> {
    let prefix = parse_prefix(item, true)?.ok_or_else(|| schema_err("unreachable"))?;
    let asn = parse_asn(item, true)?.ok_or_else(|| schema_err("unreachable"))?;
    Ok(PrefixAssertion {
        prefix,
        asn,
        comment: parse_comment(item),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    const SAMPLE: &str = r#"{
        "slurmVersion": 1,
        "validationOutputFilters": {
            "prefixFilters": [
                { "prefix": "10.0.0.0/8", "comment": "drop derived 10/8" },
                { "asn": 64666 }
            ]
        },
        "locallyAddedAssertions": {
            "prefixAssertions": [
                { "prefix": "10.1.0.0/16", "asn": 64512, "comment": "customer" }
            ]
        }
    }"#;

    #[test]
    fn parses_both_sections() {
        let set = ExceptionSet::from_json(SAMPLE).unwrap();
        assert_eq!(set.filters.len(), 2);
        assert_eq!(set.assertions.len(), 1);
        assert_eq!(set.len(), 3);
        assert_eq!(set.filters[0].prefix, Some(p("10.0.0.0/8")));
        assert_eq!(set.filters[0].asn, None);
        assert_eq!(set.filters[1].asn, Some(Asn(64666)));
        assert_eq!(set.assertions[0].asn, Asn(64512));
    }

    #[test]
    fn empty_and_unknown_sections_are_fine() {
        assert!(ExceptionSet::from_json("{}").unwrap().is_empty());
        let set = ExceptionSet::from_json(r#"{"slurmVersion": 1, "bgpsecFilters": []}"#).unwrap();
        assert!(set.is_empty());
    }

    #[test]
    fn filter_matching_covers_more_specifics() {
        let set = ExceptionSet::from_json(SAMPLE).unwrap();
        // Prefix-only filter hits any origin under 10/8, including 10/8 itself.
        assert!(set.filters_out(p("10.0.0.0/8"), Asn(1)));
        assert!(set.filters_out(p("10.9.0.0/16"), Asn(2)));
        assert!(!set.filters_out(p("11.0.0.0/8"), Asn(1)));
        // ASN-only filter hits that origin anywhere.
        assert!(set.filters_out(p("192.0.2.0/24"), Asn(64666)));
        assert!(!set.filters_out(p("192.0.2.0/24"), Asn(64667)));
    }

    #[test]
    fn assertions_covering_respects_prefix_containment() {
        let set = ExceptionSet::from_json(SAMPLE).unwrap();
        assert_eq!(set.assertions_covering(p("10.1.0.0/16")).len(), 1);
        assert_eq!(set.assertions_covering(p("10.1.2.0/24")).len(), 1);
        assert!(set.assertions_covering(p("10.0.0.0/8")).is_empty());
        assert!(set.assertions_covering(p("10.2.0.0/16")).is_empty());
    }

    #[test]
    fn rejects_rule_without_selector() {
        let bad = r#"{"validationOutputFilters": {"prefixFilters": [ {"comment": "x"} ]}}"#;
        assert!(ExceptionSet::from_json(bad).is_err());
        let bad = r#"{"locallyAddedAssertions": {"prefixAssertions": [ {"asn": 5} ]}}"#;
        assert!(ExceptionSet::from_json(bad).is_err());
        let bad =
            r#"{"locallyAddedAssertions": {"prefixAssertions": [ {"prefix": "10.0.0.0/8"} ]}}"#;
        assert!(ExceptionSet::from_json(bad).is_err());
    }

    #[test]
    fn json_round_trip_preserves_rules() {
        let set = ExceptionSet::from_json(SAMPLE).unwrap();
        let back = ExceptionSet::from_json(&set.to_json_string()).unwrap();
        assert_eq!(back, set);
    }
}
