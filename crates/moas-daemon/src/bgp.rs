//! BGP ingest: converting live UPDATE messages into [`OriginTable`]
//! updates.
//!
//! The daemon's third listener speaks real BGP (via
//! [`bgp_session::BgpListener`]); each decoded [`UpdateMessage`] passes
//! through [`table_updates`] and the result is applied exactly like a
//! `POST /ingest` batch — same serial bump, same delta ring entry, same
//! feed notify.
//!
//! The conversion is deliberately origin-centric, matching the paper's
//! model: the table records *which ASes originate a prefix*, not full
//! paths. An announcement contributes `(prefix, origin AS)` for every NLRI
//! prefix; a withdrawal removes **every** origin currently stored for the
//! prefix, because a BGP withdrawal is per-prefix-per-session and the
//! daemon keeps one table, not per-peer Adj-RIBs.

use bgp_wire::bgp::UpdateMessage;

use crate::table::{OriginTable, TableUpdate};

/// Converts one UPDATE into table updates against the current `table`.
///
/// * Each announced prefix becomes `TableUpdate::announce(prefix, origin)`
///   where `origin` is the right-most AS of the `AS_PATH`. UPDATEs whose
///   path carries no origin (empty path, i.e. an iBGP-originated route)
///   are skipped — the table has no AS to attribute them to.
/// * Each withdrawn prefix becomes one `TableUpdate::withdraw` per origin
///   the table currently holds for that exact prefix. Prefixes the table
///   does not know are ignored.
/// * IPv6 reachability carried in `MP_REACH_NLRI`/`MP_UNREACH_NLRI`
///   attributes is ignored: the origin table is IPv4.
#[must_use]
pub fn table_updates(table: &OriginTable, update: &UpdateMessage) -> Vec<TableUpdate> {
    let mut out = Vec::with_capacity(update.withdrawn.len() + update.nlri.len());
    for &prefix in &update.withdrawn {
        if let Some(origins) = table.origins(prefix) {
            out.extend(origins.iter().map(|asn| TableUpdate::withdraw(prefix, asn)));
        }
    }
    if let Some(attrs) = &update.attrs {
        if let Some(origin) = attrs.as_path.origin() {
            out.extend(
                update
                    .nlri
                    .iter()
                    .map(|&prefix| TableUpdate::announce(prefix, origin)),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::{AsPath, Asn, Ipv4Prefix, MoasList};
    use bgp_wire::bgp::PathAttributes;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn attrs(path: &[u32]) -> PathAttributes {
        let as_path = AsPath::from_sequence(path.iter().map(|&a| Asn(a)));
        PathAttributes {
            next_hop: PathAttributes::synthetic_next_hop(as_path.first()),
            as_path,
            origin: bgp_types::RouteOrigin::Igp,
            local_pref: None,
            communities: Vec::new(),
            mp_reach: None,
            mp_unreach: None,
        }
    }

    fn table() -> OriginTable {
        let mut table = OriginTable::new(1);
        table.insert(
            p("10.0.0.0/8"),
            [Asn(64512), Asn(64513)].into_iter().collect::<MoasList>(),
        );
        table
    }

    #[test]
    fn announces_use_the_path_origin() {
        let update = UpdateMessage {
            withdrawn: Vec::new(),
            attrs: Some(attrs(&[64512, 70_000])),
            nlri: vec![p("192.0.2.0/24"), p("198.51.100.0/24")],
        };
        let updates = table_updates(&table(), &update);
        assert_eq!(
            updates,
            vec![
                TableUpdate::announce(p("192.0.2.0/24"), Asn(70_000)),
                TableUpdate::announce(p("198.51.100.0/24"), Asn(70_000)),
            ]
        );
    }

    #[test]
    fn withdrawal_removes_every_current_origin() {
        let update = UpdateMessage {
            withdrawn: vec![p("10.0.0.0/8"), p("203.0.113.0/24")],
            attrs: None,
            nlri: Vec::new(),
        };
        // The unknown prefix contributes nothing; the known one withdraws
        // both stored origins.
        let updates = table_updates(&table(), &update);
        assert_eq!(
            updates,
            vec![
                TableUpdate::withdraw(p("10.0.0.0/8"), Asn(64512)),
                TableUpdate::withdraw(p("10.0.0.0/8"), Asn(64513)),
            ]
        );
    }

    #[test]
    fn mixed_update_orders_withdrawals_first() {
        let update = UpdateMessage {
            withdrawn: vec![p("10.0.0.0/8")],
            attrs: Some(attrs(&[65_001])),
            nlri: vec![p("10.0.0.0/8")],
        };
        let updates = table_updates(&table(), &update);
        assert_eq!(updates.len(), 3);
        assert!(!updates[0].announce && !updates[1].announce);
        assert_eq!(
            updates[2],
            TableUpdate::announce(p("10.0.0.0/8"), Asn(65_001))
        );
    }

    #[test]
    fn empty_paths_and_pure_withdrawal_of_unknown_prefixes_are_noops() {
        let no_origin = UpdateMessage {
            withdrawn: Vec::new(),
            attrs: Some(attrs(&[])),
            nlri: vec![p("192.0.2.0/24")],
        };
        assert!(table_updates(&table(), &no_origin).is_empty());
        let unknown = UpdateMessage {
            withdrawn: vec![p("203.0.113.0/24")],
            attrs: None,
            nlri: Vec::new(),
        };
        assert!(table_updates(&table(), &unknown).is_empty());
    }
}
