//! A minimal hand-rolled HTTP/1.1 layer: just enough server-side parsing
//! for the daemon's query/control endpoints and just enough formatting for
//! its JSON and text responses. Persistent connections are supported;
//! chunked transfer encoding and everything else is not.

use std::error::Error;
use std::fmt;

/// A request the parser cannot accept (also covers limits, so a hostile
/// peer cannot buffer unbounded data).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// The status the server should answer before closing: 400 for
    /// malformed requests, 431 when a size limit is exceeded, 408 when a
    /// read deadline expires.
    pub status: u16,
    /// Human-readable reason, used in the error response body.
    pub message: String,
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad request ({}): {}", self.status, self.message)
    }
}

impl Error for HttpError {}

fn bad(message: impl Into<String>) -> HttpError {
    HttpError {
        status: 400,
        message: message.into(),
    }
}

fn too_large(message: impl Into<String>) -> HttpError {
    HttpError {
        status: 431,
        message: message.into(),
    }
}

/// The error a server answers when a client feeds a request too slowly
/// (per-connection read deadline expired mid-request).
#[must_use]
pub fn timeout_error() -> HttpError {
    HttpError {
        status: 408,
        message: "request not completed within the read deadline".to_string(),
    }
}

/// Largest accepted head (request line + headers) in bytes.
const MAX_HEAD: usize = 8 * 1024;
/// Largest accepted body in bytes (ingest batches stay well under this).
const MAX_BODY: usize = 4 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// The path portion of the target, percent-decoded.
    pub path: String,
    /// Decoded `(name, value)` query parameters, in order.
    pub query: Vec<(String, String)>,
    /// `(lower-cased name, value)` headers, in order.
    pub headers: Vec<(String, String)>,
    /// The body (empty without a `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default, overridden by `Connection: close`).
    pub keep_alive: bool,
}

impl Request {
    /// Parses one request from the front of `buf`.
    ///
    /// Returns `Ok(None)` when `buf` does not yet hold the complete head
    /// and body (read more and retry), or `Ok(Some((request, consumed)))`.
    ///
    /// # Errors
    ///
    /// Returns an [`HttpError`] for malformed or oversized requests; the
    /// caller should answer 400 and close.
    pub fn parse(buf: &[u8]) -> Result<Option<(Request, usize)>, HttpError> {
        let Some(head_end) = find_head_end(buf) else {
            if buf.len() > MAX_HEAD {
                return Err(too_large("request head too large"));
            }
            return Ok(None);
        };
        if head_end > MAX_HEAD {
            return Err(too_large("request head too large"));
        }
        let head =
            std::str::from_utf8(&buf[..head_end]).map_err(|_| bad("request head is not UTF-8"))?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().ok_or_else(|| bad("empty request"))?;
        let mut parts = request_line.split(' ');
        let method = parts
            .next()
            .filter(|m| !m.is_empty())
            .ok_or_else(|| bad("missing method"))?
            .to_ascii_uppercase();
        let target = parts.next().ok_or_else(|| bad("missing request target"))?;
        let version = parts.next().ok_or_else(|| bad("missing HTTP version"))?;
        if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
            return Err(bad(format!("unsupported version '{version}'")));
        }

        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| bad(format!("malformed header line '{line}'")))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }

        let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
            Some((_, v)) => v
                .parse::<usize>()
                .map_err(|_| bad("unparsable Content-Length"))?,
            None => 0,
        };
        if content_length > MAX_BODY {
            return Err(too_large("body too large"));
        }
        let total = head_end + 4 + content_length;
        if buf.len() < total {
            return Ok(None);
        }
        let body = buf[head_end + 4..total].to_vec();

        let (raw_path, raw_query) = match target.split_once('?') {
            Some((p, q)) => (p, Some(q)),
            None => (target, None),
        };
        let path = percent_decode(raw_path)?;
        let mut query = Vec::new();
        if let Some(raw_query) = raw_query {
            for pair in raw_query.split('&').filter(|p| !p.is_empty()) {
                let (name, value) = pair.split_once('=').unwrap_or((pair, ""));
                query.push((percent_decode(name)?, percent_decode(value)?));
            }
        }

        let keep_alive = match headers.iter().find(|(n, _)| n == "connection") {
            Some((_, v)) => !v.eq_ignore_ascii_case("close"),
            None => version == "HTTP/1.1",
        };

        Ok(Some((
            Request {
                method,
                path,
                query,
                headers,
                body,
                keep_alive,
            },
            total,
        )))
    }

    /// The first query parameter named `name`.
    #[must_use]
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Decodes `%xx` escapes and `+`-as-space.
fn percent_decode(input: &str) -> Result<String, HttpError> {
    let bytes = input.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .ok_or_else(|| bad("truncated percent escape"))?;
                let hex = std::str::from_utf8(hex).map_err(|_| bad("bad percent escape"))?;
                let value = u8::from_str_radix(hex, 16).map_err(|_| bad("bad percent escape"))?;
                out.push(value);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| bad("percent-decoded text is not UTF-8"))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Formats a complete response with `Content-Length` and (when the
/// connection is about to close) `Connection: close`.
#[must_use]
pub fn response(status: u16, content_type: &str, body: &str, keep_alive: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 128);
    out.extend_from_slice(format!("HTTP/1.1 {status} {}\r\n", reason(status)).as_bytes());
    out.extend_from_slice(format!("Content-Type: {content_type}\r\n").as_bytes());
    out.extend_from_slice(format!("Content-Length: {}\r\n", body.len()).as_bytes());
    if !keep_alive {
        out.extend_from_slice(b"Connection: close\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body.as_bytes());
    out
}

/// An `application/json` response.
#[must_use]
pub fn json_response(status: u16, body: &str, keep_alive: bool) -> Vec<u8> {
    response(status, "application/json", body, keep_alive)
}

/// A `text/plain` response (used by `/metrics` and parse errors).
#[must_use]
pub fn text_response(status: u16, body: &str, keep_alive: bool) -> Vec<u8> {
    response(status, "text/plain; charset=utf-8", body, keep_alive)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_get_with_query() {
        let raw = b"GET /validity?prefix=10.1.0.0%2F16&asn=64512 HTTP/1.1\r\nHost: x\r\n\r\n";
        let (req, used) = Request::parse(raw).unwrap().unwrap();
        assert_eq!(used, raw.len());
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/validity");
        assert_eq!(req.query_param("prefix"), Some("10.1.0.0/16"));
        assert_eq!(req.query_param("asn"), Some("64512"));
        assert!(req.keep_alive);
        assert!(req.body.is_empty());
    }

    #[test]
    fn unencoded_slash_in_query_also_works() {
        let raw = b"GET /validity?prefix=10.1.0.0/16&asn=7 HTTP/1.1\r\n\r\n";
        let (req, _) = Request::parse(raw).unwrap().unwrap();
        assert_eq!(req.query_param("prefix"), Some("10.1.0.0/16"));
    }

    #[test]
    fn waits_for_the_full_body() {
        let raw = b"POST /ingest HTTP/1.1\r\nContent-Length: 5\r\n\r\nabc";
        assert_eq!(Request::parse(raw).unwrap(), None);
        let raw = b"POST /ingest HTTP/1.1\r\nContent-Length: 5\r\n\r\nabcde";
        let (req, used) = Request::parse(raw).unwrap().unwrap();
        assert_eq!(used, raw.len());
        assert_eq!(req.body, b"abcde");
    }

    #[test]
    fn pipelined_requests_consume_exactly_one() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let (req, used) = Request::parse(raw).unwrap().unwrap();
        assert_eq!(req.path, "/a");
        let (req2, used2) = Request::parse(&raw[used..]).unwrap().unwrap();
        assert_eq!(req2.path, "/b");
        assert_eq!(used + used2, raw.len());
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let raw = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        assert!(!Request::parse(raw).unwrap().unwrap().0.keep_alive);
        let raw = b"GET / HTTP/1.0\r\n\r\n";
        assert!(!Request::parse(raw).unwrap().unwrap().0.keep_alive);
        let raw = b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
        assert!(Request::parse(raw).unwrap().unwrap().0.keep_alive);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(Request::parse(b"NOT-HTTP\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(
            Request::parse(b"GET / HTTP/2.0\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        assert!(Request::parse(b"GET / HTTP/1.1\r\nbroken header\r\n\r\n").is_err());
        assert!(Request::parse(b"GET / HTTP/1.1\r\nContent-Length: x\r\n\r\n").is_err());
    }

    #[test]
    fn size_limits_answer_431() {
        // An over-long head errors rather than buffering forever…
        let long = vec![b'a'; MAX_HEAD + 1];
        assert_eq!(Request::parse(&long).unwrap_err().status, 431);
        // …including a completed head past the limit…
        let mut huge = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
        huge.extend(std::iter::repeat_n(b'a', MAX_HEAD));
        huge.extend_from_slice(b"\r\n\r\n");
        assert_eq!(Request::parse(&huge).unwrap_err().status, 431);
        // …and a declared body beyond the cap.
        let raw = format!(
            "POST /ingest HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert_eq!(Request::parse(raw.as_bytes()).unwrap_err().status, 431);
    }

    #[test]
    fn timeout_error_is_a_408() {
        let err = timeout_error();
        assert_eq!(err.status, 408);
        let rendered = String::from_utf8(text_response(err.status, &err.message, false)).unwrap();
        assert!(rendered.starts_with("HTTP/1.1 408 Request Timeout\r\n"));
    }

    #[test]
    fn response_formatting_includes_length_and_close() {
        let bytes = json_response(200, "{}", true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(!text.contains("Connection: close"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let bytes = text_response(404, "nope", false);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("Connection: close\r\n"));
    }
}
