//! The binary push-feed protocol: RFC 8210's PDU shapes carrying MOAS
//! table entries instead of ROA payloads.
//!
//! Every PDU starts with an 8-byte header:
//!
//! ```text
//! 0          8          16         24        31
//! +----------+----------+---------------------+
//! | version  | pdu type |   session id        |
//! +----------+----------+---------------------+
//! |          length (incl. header)            |
//! +-------------------------------------------+
//! ```
//!
//! All integers are big-endian. `version` is always [`VERSION`]. The
//! session-id field doubles as the error code in [`Pdu::Error`] (as in
//! RFC 8210) and is zero where a PDU carries no session.
//!
//! The sync conversation is the RTR one:
//!
//! * client sends [`Pdu::ResetQuery`] → server replies
//!   [`Pdu::CacheResponse`], a [`Pdu::Prefix`] per table entry, then
//!   [`Pdu::EndOfData`] naming the serial the transfer represents;
//! * client sends [`Pdu::SerialQuery`] with its session + serial → server
//!   replies with the delta (same framing), or [`Pdu::CacheReset`] when the
//!   serial is unknown, from a different session, or aged out of the delta
//!   ring — the client must fall back to a reset query;
//! * server pushes [`Pdu::SerialNotify`] whenever its serial advances;
//!   clients then serial-query at their own pace.

use std::error::Error;
use std::fmt;

use bgp_types::{Asn, Ipv4Prefix};

/// The protocol version encoded in every header.
pub const VERSION: u8 = 0;

/// Largest PDU the decoder will accept; anything bigger is a framing error.
/// Only [`Pdu::Error`] is variable-length, and its message is short.
const MAX_PDU_LEN: u32 = 4096;

const HEADER_LEN: usize = 8;

const TYPE_SERIAL_NOTIFY: u8 = 0;
const TYPE_SERIAL_QUERY: u8 = 1;
const TYPE_RESET_QUERY: u8 = 2;
const TYPE_CACHE_RESPONSE: u8 = 3;
const TYPE_PREFIX: u8 = 4;
const TYPE_END_OF_DATA: u8 = 7;
const TYPE_CACHE_RESET: u8 = 8;
const TYPE_ERROR: u8 = 10;

/// A malformed feed byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeedError {
    /// The header named a protocol version other than [`VERSION`].
    BadVersion(u8),
    /// The header named an unknown PDU type.
    BadType(u8),
    /// The header's length field is impossible for its PDU type.
    BadLength {
        /// The PDU type from the header.
        pdu_type: u8,
        /// The offending length field.
        length: u32,
    },
    /// A prefix PDU carried a mask length over 32.
    BadPrefix(u8),
    /// An error PDU's message was not UTF-8.
    BadText,
}

impl fmt::Display for FeedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeedError::BadVersion(v) => write!(f, "unsupported feed version {v}"),
            FeedError::BadType(t) => write!(f, "unknown PDU type {t}"),
            FeedError::BadLength { pdu_type, length } => {
                write!(f, "impossible length {length} for PDU type {pdu_type}")
            }
            FeedError::BadPrefix(len) => write!(f, "prefix length {len} exceeds 32"),
            FeedError::BadText => write!(f, "error PDU message is not UTF-8"),
        }
    }
}

impl Error for FeedError {}

/// One `(announce?, prefix, origin)` table entry on the wire (PDU type 4,
/// fixed 20 bytes: header, flags, prefix length, 2 reserved bytes, network
/// address, origin ASN).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixEntry {
    /// `true` = announce (flags bit 0 set), `false` = withdraw.
    pub announce: bool,
    /// The prefix.
    pub prefix: Ipv4Prefix,
    /// The origin AS.
    pub asn: Asn,
}

/// A feed protocol data unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pdu {
    /// Server → client: the table moved to `serial`; ask me for the diff.
    SerialNotify {
        /// The server's session id.
        session: u16,
        /// The new serial.
        serial: u32,
    },
    /// Client → server: I hold `serial` of `session`; send what changed.
    SerialQuery {
        /// The session the client's state belongs to.
        session: u16,
        /// The serial the client holds.
        serial: u32,
    },
    /// Client → server: I hold nothing; send the full table.
    ResetQuery,
    /// Server → client: transfer follows.
    CacheResponse {
        /// The server's session id.
        session: u16,
    },
    /// One table entry of the transfer.
    Prefix(PrefixEntry),
    /// Server → client: transfer complete; you now hold `serial`.
    EndOfData {
        /// The server's session id.
        session: u16,
        /// The serial the client now holds.
        serial: u32,
    },
    /// Server → client: I cannot diff from your serial; reset-query instead.
    CacheReset,
    /// Either direction: protocol error. The session field carries `code`.
    Error {
        /// Numeric error code (0 = corrupt data, 1 = internal error,
        /// 2 = unsupported version, 3 = unsupported PDU type).
        code: u16,
        /// Human-readable diagnostic.
        message: String,
    },
}

fn header(out: &mut Vec<u8>, pdu_type: u8, session: u16, length: u32) {
    out.push(VERSION);
    out.push(pdu_type);
    out.extend_from_slice(&session.to_be_bytes());
    out.extend_from_slice(&length.to_be_bytes());
}

impl Pdu {
    /// Appends the wire encoding to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Pdu::SerialNotify { session, serial } => {
                header(out, TYPE_SERIAL_NOTIFY, *session, 12);
                out.extend_from_slice(&serial.to_be_bytes());
            }
            Pdu::SerialQuery { session, serial } => {
                header(out, TYPE_SERIAL_QUERY, *session, 12);
                out.extend_from_slice(&serial.to_be_bytes());
            }
            Pdu::ResetQuery => header(out, TYPE_RESET_QUERY, 0, 8),
            Pdu::CacheResponse { session } => header(out, TYPE_CACHE_RESPONSE, *session, 8),
            Pdu::Prefix(entry) => {
                header(out, TYPE_PREFIX, 0, 20);
                out.push(u8::from(entry.announce));
                out.push(entry.prefix.len());
                out.extend_from_slice(&[0, 0]);
                out.extend_from_slice(&entry.prefix.network().to_be_bytes());
                out.extend_from_slice(&entry.asn.0.to_be_bytes());
            }
            Pdu::EndOfData { session, serial } => {
                header(out, TYPE_END_OF_DATA, *session, 12);
                out.extend_from_slice(&serial.to_be_bytes());
            }
            Pdu::CacheReset => header(out, TYPE_CACHE_RESET, 0, 8),
            Pdu::Error { code, message } => {
                let msg = message.as_bytes();
                let length = (HEADER_LEN + 4 + msg.len()) as u32;
                header(out, TYPE_ERROR, *code, length);
                out.extend_from_slice(&(msg.len() as u32).to_be_bytes());
                out.extend_from_slice(msg);
            }
        }
    }

    /// The wire encoding as a fresh buffer.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20);
        self.encode(&mut out);
        out
    }

    /// Decodes one PDU from the front of `buf`.
    ///
    /// Returns `Ok(None)` when `buf` holds only part of a PDU (read more
    /// bytes and retry), or `Ok(Some((pdu, consumed)))` on success.
    ///
    /// # Errors
    ///
    /// Returns a [`FeedError`] when the bytes cannot be a valid PDU; the
    /// stream is unrecoverable at that point and should be closed.
    pub fn decode(buf: &[u8]) -> Result<Option<(Pdu, usize)>, FeedError> {
        if buf.len() < HEADER_LEN {
            return Ok(None);
        }
        if buf[0] != VERSION {
            return Err(FeedError::BadVersion(buf[0]));
        }
        let pdu_type = buf[1];
        let session = u16::from_be_bytes([buf[2], buf[3]]);
        let length = u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]);
        if length < HEADER_LEN as u32 || length > MAX_PDU_LEN {
            return Err(FeedError::BadLength { pdu_type, length });
        }
        let expected = match pdu_type {
            TYPE_SERIAL_NOTIFY | TYPE_SERIAL_QUERY | TYPE_END_OF_DATA => Some(12),
            TYPE_RESET_QUERY | TYPE_CACHE_RESPONSE | TYPE_CACHE_RESET => Some(8),
            TYPE_PREFIX => Some(20),
            TYPE_ERROR => None,
            other => return Err(FeedError::BadType(other)),
        };
        if let Some(expected) = expected {
            if length != expected {
                return Err(FeedError::BadLength { pdu_type, length });
            }
        }
        let length = length as usize;
        if buf.len() < length {
            return Ok(None);
        }
        let body = &buf[HEADER_LEN..length];
        let read_u32 =
            |at: usize| u32::from_be_bytes([body[at], body[at + 1], body[at + 2], body[at + 3]]);
        let pdu = match pdu_type {
            TYPE_SERIAL_NOTIFY => Pdu::SerialNotify {
                session,
                serial: read_u32(0),
            },
            TYPE_SERIAL_QUERY => Pdu::SerialQuery {
                session,
                serial: read_u32(0),
            },
            TYPE_RESET_QUERY => Pdu::ResetQuery,
            TYPE_CACHE_RESPONSE => Pdu::CacheResponse { session },
            TYPE_PREFIX => {
                let prefix_len = body[1];
                let prefix = Ipv4Prefix::try_new(read_u32(4), prefix_len)
                    .map_err(|_| FeedError::BadPrefix(prefix_len))?;
                Pdu::Prefix(PrefixEntry {
                    announce: body[0] & 1 == 1,
                    prefix,
                    asn: Asn(read_u32(8)),
                })
            }
            TYPE_END_OF_DATA => Pdu::EndOfData {
                session,
                serial: read_u32(0),
            },
            TYPE_CACHE_RESET => Pdu::CacheReset,
            TYPE_ERROR => {
                if body.len() < 4 {
                    return Err(FeedError::BadLength {
                        pdu_type,
                        length: length as u32,
                    });
                }
                let msg_len = read_u32(0) as usize;
                if body.len() != 4 + msg_len {
                    return Err(FeedError::BadLength {
                        pdu_type,
                        length: length as u32,
                    });
                }
                let message = std::str::from_utf8(&body[4..])
                    .map_err(|_| FeedError::BadText)?
                    .to_string();
                Pdu::Error {
                    code: session,
                    message,
                }
            }
            _ => unreachable!("type validated above"),
        };
        Ok(Some((pdu, length)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(pdu: Pdu) {
        let bytes = pdu.to_bytes();
        let (back, consumed) = Pdu::decode(&bytes).unwrap().unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(back, pdu);
    }

    #[test]
    fn every_pdu_round_trips() {
        round_trip(Pdu::SerialNotify {
            session: 7,
            serial: 42,
        });
        round_trip(Pdu::SerialQuery {
            session: 65535,
            serial: u32::MAX,
        });
        round_trip(Pdu::ResetQuery);
        round_trip(Pdu::CacheResponse { session: 9 });
        round_trip(Pdu::Prefix(PrefixEntry {
            announce: true,
            prefix: "10.1.0.0/16".parse().unwrap(),
            asn: Asn(64512),
        }));
        round_trip(Pdu::Prefix(PrefixEntry {
            announce: false,
            prefix: "0.0.0.0/0".parse().unwrap(),
            asn: Asn(0),
        }));
        round_trip(Pdu::EndOfData {
            session: 7,
            serial: 3,
        });
        round_trip(Pdu::CacheReset);
        round_trip(Pdu::Error {
            code: 2,
            message: "nope".to_string(),
        });
    }

    #[test]
    fn partial_input_asks_for_more() {
        let bytes = Pdu::SerialNotify {
            session: 1,
            serial: 2,
        }
        .to_bytes();
        for cut in 0..bytes.len() {
            assert_eq!(Pdu::decode(&bytes[..cut]).unwrap(), None, "cut at {cut}");
        }
    }

    #[test]
    fn pipelined_pdus_decode_in_sequence() {
        let mut buf = Vec::new();
        Pdu::CacheResponse { session: 3 }.encode(&mut buf);
        Pdu::Prefix(PrefixEntry {
            announce: true,
            prefix: "192.0.2.0/24".parse().unwrap(),
            asn: Asn(64496),
        })
        .encode(&mut buf);
        Pdu::EndOfData {
            session: 3,
            serial: 1,
        }
        .encode(&mut buf);

        let mut offset = 0;
        let mut pdus = Vec::new();
        while let Some((pdu, used)) = Pdu::decode(&buf[offset..]).unwrap() {
            pdus.push(pdu);
            offset += used;
        }
        assert_eq!(offset, buf.len());
        assert_eq!(pdus.len(), 3);
        assert!(matches!(pdus[0], Pdu::CacheResponse { session: 3 }));
        assert!(matches!(pdus[2], Pdu::EndOfData { serial: 1, .. }));
    }

    #[test]
    fn malformed_headers_are_rejected() {
        // Wrong version.
        let mut bytes = Pdu::ResetQuery.to_bytes();
        bytes[0] = 9;
        assert_eq!(Pdu::decode(&bytes), Err(FeedError::BadVersion(9)));
        // Unknown type.
        let mut bytes = Pdu::ResetQuery.to_bytes();
        bytes[1] = 99;
        assert_eq!(Pdu::decode(&bytes), Err(FeedError::BadType(99)));
        // Length too small for the type.
        let mut bytes = Pdu::SerialQuery {
            session: 1,
            serial: 1,
        }
        .to_bytes();
        bytes[7] = 8;
        assert!(matches!(
            Pdu::decode(&bytes),
            Err(FeedError::BadLength { pdu_type: 1, .. })
        ));
        // Absurd length field.
        let mut bytes = Pdu::ResetQuery.to_bytes();
        bytes[4] = 0xff;
        assert!(matches!(
            Pdu::decode(&bytes),
            Err(FeedError::BadLength { .. })
        ));
        // Prefix mask over 32.
        let mut bytes = Pdu::Prefix(PrefixEntry {
            announce: true,
            prefix: "10.0.0.0/8".parse().unwrap(),
            asn: Asn(1),
        })
        .to_bytes();
        bytes[9] = 33;
        assert_eq!(Pdu::decode(&bytes), Err(FeedError::BadPrefix(33)));
    }
}
