//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in abstract ticks.
///
/// The BGP experiments interpret one tick as one millisecond of simulated
/// wall-clock time, but nothing in the engine depends on that choice.
///
/// # Example
///
/// ```
/// use sim_engine::SimTime;
///
/// let t = SimTime::from_ticks(5) + 10;
/// assert_eq!(t.ticks(), 15);
/// assert!(t > SimTime::ZERO);
/// assert_eq!(t - SimTime::from_ticks(5), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// The greatest representable time; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from a raw tick count.
    #[must_use]
    pub fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// The raw tick count.
    #[must_use]
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating addition of a tick delta.
    #[must_use]
    pub fn saturating_add(self, delta: u64) -> Self {
        SimTime(self.0.saturating_add(delta))
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;

    /// # Panics
    ///
    /// Panics on overflow in debug builds, like integer addition.
    fn add(self, delta: u64) -> SimTime {
        SimTime(self.0 + delta)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, delta: u64) {
        self.0 += delta;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;

    /// The tick delta between two times.
    ///
    /// # Panics
    ///
    /// Panics if `other` is later than `self` (debug builds).
    fn sub(self, other: SimTime) -> u64 {
        self.0 - other.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl From<u64> for SimTime {
    fn from(ticks: u64) -> Self {
        SimTime(ticks)
    }
}

impl From<SimTime> for u64 {
    fn from(time: SimTime) -> Self {
        time.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let mut t = SimTime::from_ticks(3);
        t += 4;
        assert_eq!(t, SimTime::from_ticks(7));
        assert_eq!(t + 1, SimTime::from_ticks(8));
        assert_eq!(t - SimTime::from_ticks(2), 5);
    }

    #[test]
    fn saturating_add_caps_at_max() {
        assert_eq!(SimTime::MAX.saturating_add(10), SimTime::MAX);
    }

    #[test]
    fn ordering_follows_ticks() {
        assert!(SimTime::from_ticks(1) < SimTime::from_ticks(2));
        assert!(SimTime::MAX > SimTime::ZERO);
    }

    #[test]
    fn display_and_conversions() {
        assert_eq!(SimTime::from_ticks(42).to_string(), "t=42");
        assert_eq!(u64::from(SimTime::from(9u64)), 9);
    }
}
