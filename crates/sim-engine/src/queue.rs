//! The deterministic event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A discrete-event priority queue with deterministic tie-breaking.
///
/// Events scheduled for the same [`SimTime`] are delivered in the order they
/// were scheduled (FIFO), which makes simulation runs bit-for-bit
/// reproducible regardless of heap internals.
///
/// The queue tracks the current simulated time: [`EventQueue::now`] is the
/// timestamp of the most recently popped event. Scheduling an event in the
/// past is rejected as a logic error.
///
/// # Example
///
/// ```
/// use sim_engine::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule_after(3, 'b');
/// q.schedule_after(3, 'c'); // same time: FIFO order
/// q.schedule_after(1, 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    processed: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

// Max-heap on reversed (time, seq): earliest time first, then lowest seq.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// The timestamp of the most recently popped event (time zero initially).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    #[must_use]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than [`EventQueue::now`]: delivering into
    /// the past would make the simulation non-causal.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "event scheduled at {time} which is before current time {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Schedules `event` `delay` ticks after the current time.
    pub fn schedule_after(&mut self, delay: u64, event: E) {
        self.schedule(self.now.saturating_add(delay), event);
    }

    /// The timestamp of the next pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the next event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        self.processed += 1;
        Some((entry.time, entry.event))
    }

    /// Discards all pending events without advancing the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(5), 5);
        q.schedule(SimTime::from_ticks(1), 1);
        q.schedule(SimTime::from_ticks(3), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_ticks(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_ticks(9));
        assert_eq!(q.processed(), 1);
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(5), ());
        q.pop();
        q.schedule(SimTime::from_ticks(4), ());
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(10), "first");
        q.pop();
        q.schedule_after(5, "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_ticks(15));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ticks(2)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(1), ());
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_deterministic() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(1), "a");
        q.schedule(SimTime::from_ticks(2), "b");
        let (_, first) = q.pop().unwrap();
        assert_eq!(first, "a");
        // Schedule at the same time as a pending event: pending one is older.
        q.schedule(SimTime::from_ticks(2), "c");
        let (_, second) = q.pop().unwrap();
        let (_, third) = q.pop().unwrap();
        assert_eq!((second, third), ("b", "c"));
    }
}
