//! The deterministic event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use minimetrics::MetricsSink;

use crate::SimTime;

/// A discrete-event priority queue with deterministic tie-breaking.
///
/// Events scheduled for the same [`SimTime`] are delivered in the order they
/// were scheduled (FIFO), which makes simulation runs bit-for-bit
/// reproducible regardless of heap internals.
///
/// The queue tracks the current simulated time: [`EventQueue::now`] is the
/// timestamp of the most recently popped event. Scheduling an event in the
/// past is rejected as a logic error.
///
/// # Example
///
/// ```
/// use sim_engine::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule_after(3, 'b');
/// q.schedule_after(3, 'c'); // same time: FIFO order
/// q.schedule_after(1, 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    processed: u64,
    cancelled: u64,
    depth_high_water: u64,
}

/// Lifetime counters of an [`EventQueue`], for observability.
///
/// Every quantity is cumulative over the queue's lifetime and derived purely
/// from the deterministic event stream, so two runs with the same seed report
/// identical stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events ever scheduled (including ones later cancelled).
    pub scheduled: u64,
    /// Events popped and delivered to the simulation.
    pub fired: u64,
    /// Events discarded by [`EventQueue::clear`] without firing.
    pub cancelled: u64,
    /// Largest number of events that were ever pending at once.
    pub depth_high_water: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

// Max-heap on reversed (time, seq): earliest time first, then lowest seq.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            processed: 0,
            cancelled: 0,
            depth_high_water: 0,
        }
    }

    /// The timestamp of the most recently popped event (time zero initially).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    #[must_use]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Lifetime scheduling counters (scheduled / fired / cancelled /
    /// depth high-water mark).
    #[must_use]
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            scheduled: self.next_seq,
            fired: self.processed,
            cancelled: self.cancelled,
            depth_high_water: self.depth_high_water,
        }
    }

    /// Emits the queue's counters into `sink` under the `sim.` key prefix:
    /// `sim.events.{scheduled,fired,cancelled}`,
    /// `sim.queue.depth_high_water`, and the final virtual clock as
    /// `sim.time.final_ticks`.
    pub fn export_metrics<S: MetricsSink>(&self, sink: &mut S) {
        if !S::ENABLED {
            return;
        }
        let stats = self.stats();
        sink.counter_add("sim.events.scheduled", stats.scheduled);
        sink.counter_add("sim.events.fired", stats.fired);
        sink.counter_add("sim.events.cancelled", stats.cancelled);
        sink.gauge_set("sim.queue.depth_high_water", stats.depth_high_water);
        sink.gauge_set("sim.time.final_ticks", self.now.ticks());
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than [`EventQueue::now`]: delivering into
    /// the past would make the simulation non-causal.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "event scheduled at {time} which is before current time {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
        self.depth_high_water = self.depth_high_water.max(self.heap.len() as u64);
    }

    /// Schedules `event` `delay` ticks after the current time.
    pub fn schedule_after(&mut self, delay: u64, event: E) {
        self.schedule(self.now.saturating_add(delay), event);
    }

    /// The timestamp of the next pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the next event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        self.processed += 1;
        Some((entry.time, entry.event))
    }

    /// Discards all pending events without advancing the clock. The
    /// discarded events count as cancelled in [`EventQueue::stats`].
    pub fn clear(&mut self) {
        self.cancelled += self.heap.len() as u64;
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(5), 5);
        q.schedule(SimTime::from_ticks(1), 1);
        q.schedule(SimTime::from_ticks(3), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_ticks(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_ticks(9));
        assert_eq!(q.processed(), 1);
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(5), ());
        q.pop();
        q.schedule(SimTime::from_ticks(4), ());
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(10), "first");
        q.pop();
        q.schedule_after(5, "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_ticks(15));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ticks(2)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(1), ());
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn stats_track_scheduled_fired_cancelled_and_high_water() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(1), ());
        q.schedule(SimTime::from_ticks(2), ());
        q.schedule(SimTime::from_ticks(3), ());
        q.pop();
        q.clear(); // discards the remaining two
        q.schedule_after(1, ());
        let stats = q.stats();
        assert_eq!(stats.scheduled, 4);
        assert_eq!(stats.fired, 1);
        assert_eq!(stats.cancelled, 2);
        assert_eq!(stats.depth_high_water, 3);
    }

    #[test]
    fn export_metrics_emits_sim_keys() {
        use minimetrics::RecordingSink;

        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(5), ());
        q.pop();
        let mut sink = RecordingSink::new();
        q.export_metrics(&mut sink);
        let snap = sink.into_snapshot();
        assert_eq!(snap.counters["sim.events.scheduled"], 1);
        assert_eq!(snap.counters["sim.events.fired"], 1);
        assert_eq!(snap.counters["sim.events.cancelled"], 0);
        assert_eq!(snap.gauges["sim.queue.depth_high_water"], 1);
        assert_eq!(snap.gauges["sim.time.final_ticks"], 5);

        // The no-op path is a pure early-return (NoopSink::ENABLED is false).
        let mut noop = minimetrics::NoopSink;
        q.export_metrics(&mut noop);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_deterministic() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(1), "a");
        q.schedule(SimTime::from_ticks(2), "b");
        let (_, first) = q.pop().unwrap();
        assert_eq!(first, "a");
        // Schedule at the same time as a pending event: pending one is older.
        q.schedule(SimTime::from_ticks(2), "c");
        let (_, second) = q.pop().unwrap();
        let (_, third) = q.pop().unwrap();
        assert_eq!((second, third), ("b", "c"));
    }
}
