//! Seeded random-number helpers.
//!
//! Every stochastic choice in the reproduction (topology generation, origin
//! selection, attacker selection, deployment sampling) flows through these
//! helpers so that a single `u64` master seed fully determines an experiment.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from a seed.
///
/// # Example
///
/// ```
/// use rand::Rng;
///
/// let mut a = sim_engine::rng::from_seed(7);
/// let mut b = sim_engine::rng::from_seed(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
#[must_use]
pub fn from_seed(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Derives an independent stream seed from a base seed and a stream index
/// using the SplitMix64 finalizer.
///
/// Used to give each simulation run (origin-set index, attacker-set index)
/// its own well-separated RNG without correlated streams.
#[must_use]
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Samples `k` distinct elements from `items`, in selection order.
///
/// Returns all of `items` (shuffled) when `k >= items.len()`.
///
/// # Example
///
/// ```
/// let mut rng = sim_engine::rng::from_seed(1);
/// let picked = sim_engine::rng::sample_distinct(&mut rng, &[1, 2, 3, 4, 5], 2);
/// assert_eq!(picked.len(), 2);
/// assert_ne!(picked[0], picked[1]);
/// ```
#[must_use]
pub fn sample_distinct<T: Clone, R: Rng>(rng: &mut R, items: &[T], k: usize) -> Vec<T> {
    let mut indices: Vec<usize> = (0..items.len()).collect();
    indices.shuffle(rng);
    indices
        .into_iter()
        .take(k)
        .map(|i| items[i].clone())
        .collect()
}

/// Returns `true` with probability `p` (clamped to `[0, 1]`).
#[must_use]
pub fn coin<R: Rng>(rng: &mut R, p: f64) -> bool {
    rng.gen::<f64>() < p.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn same_seed_same_stream() {
        let mut a = from_seed(42);
        let mut b = from_seed(42);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = from_seed(1);
        let mut b = from_seed(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn derive_seed_is_deterministic_and_spread() {
        assert_eq!(derive_seed(5, 0), derive_seed(5, 0));
        let seeds: HashSet<u64> = (0..100).map(|i| derive_seed(5, i)).collect();
        assert_eq!(seeds.len(), 100);
    }

    #[test]
    fn sample_distinct_has_no_duplicates() {
        let mut rng = from_seed(3);
        let items: Vec<u32> = (0..50).collect();
        let picked = sample_distinct(&mut rng, &items, 20);
        assert_eq!(picked.len(), 20);
        let set: HashSet<u32> = picked.iter().copied().collect();
        assert_eq!(set.len(), 20);
    }

    #[test]
    fn sample_distinct_caps_at_population() {
        let mut rng = from_seed(3);
        let picked = sample_distinct(&mut rng, &[1, 2, 3], 10);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3]);
    }

    #[test]
    fn sample_distinct_zero_is_empty() {
        let mut rng = from_seed(3);
        assert!(sample_distinct(&mut rng, &[1, 2, 3], 0).is_empty());
    }

    #[test]
    fn coin_extremes() {
        let mut rng = from_seed(9);
        assert!(!coin(&mut rng, 0.0));
        assert!(coin(&mut rng, 1.0));
        assert!(coin(&mut rng, 2.0)); // clamped
        assert!(!coin(&mut rng, -1.0)); // clamped
    }

    #[test]
    fn coin_is_roughly_fair() {
        let mut rng = from_seed(11);
        let heads = (0..10_000).filter(|_| coin(&mut rng, 0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
