//! Deterministic fault injection: per-link message perturbation and a
//! scripted timeline of timed events.
//!
//! The paper's simulations (and SSFnet, which they extend) run over clean
//! links; real BGP churn comes from lossy sessions, flapping prefixes, and
//! session resets. This module provides the *substrate* for injecting those
//! faults reproducibly: a [`LinkFaultModel`] describes how one link mangles
//! messages (drop / duplicate / extra delay / corrupt, each with its own
//! probability), and a [`FaultPlan`] bundles per-link models with a
//! [`Timeline`](TimelineEntry) of scheduled events, all driven from one
//! `u64` seed so that every run is bit-for-bit reproducible.
//!
//! The plan is generic over the link key `K` and the scheduled event type
//! `E`; the BGP engine instantiates it with `(Asn, Asn)` links and its own
//! event enum. Nothing here knows about BGP: the same machinery could drive
//! any discrete-event simulation built on [`EventQueue`](crate::EventQueue).
//!
//! # Example
//!
//! ```
//! use sim_engine::fault::{FaultAction, FaultPlan, LinkFaultModel};
//!
//! let mut plan: FaultPlan<u32, &str> = FaultPlan::new(7);
//! plan.set_link_model(3, LinkFaultModel::lossy(0.5));
//! plan.at(10, "fail");
//! plan.every(20, 5, Some(3), "flap");
//!
//! let mut rng = sim_engine::rng::from_seed(plan.seed());
//! let model = plan.link_model(&3).unwrap();
//! // Decisions are drawn from the seeded RNG: reproducible across runs.
//! let first = model.decide(&mut rng);
//! assert!(matches!(first, FaultAction::Deliver | FaultAction::Drop));
//! ```

use std::collections::BTreeMap;

use rand::Rng;

use crate::rng::coin;

/// What a faulty link decided to do with one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver the message normally.
    Deliver,
    /// Silently discard the message.
    Drop,
    /// Deliver the message twice.
    Duplicate,
    /// Deliver after this many extra ticks of delay (models reordering:
    /// a later message on the same link can overtake this one).
    Delay(u64),
    /// Deliver a corrupted copy. The receiver is expected to detect the
    /// damage, discard the message, and count it.
    Corrupt,
}

/// Per-link message perturbation probabilities.
///
/// [`decide`](LinkFaultModel::decide) draws coins in a **fixed priority
/// order** — drop, corrupt, duplicate, extra delay — so a model's RNG
/// consumption per message is deterministic and independent of which faults
/// are enabled elsewhere.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaultModel {
    /// Probability a message is silently lost.
    pub drop: f64,
    /// Probability a message arrives corrupted (receiver drops and counts).
    pub corrupt: f64,
    /// Probability a message is delivered twice.
    pub duplicate: f64,
    /// Probability a message is held back by extra delay.
    pub reorder: f64,
    /// Extra delay drawn uniformly from `1..=max_extra_delay` when the
    /// reorder coin comes up. Values below 1 are treated as 1.
    pub max_extra_delay: u64,
}

impl Default for LinkFaultModel {
    /// A fault model that never perturbs anything.
    fn default() -> Self {
        LinkFaultModel {
            drop: 0.0,
            corrupt: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            max_extra_delay: 1,
        }
    }
}

impl LinkFaultModel {
    /// A purely lossy link: drops each message with probability `p`.
    #[must_use]
    pub fn lossy(p: f64) -> Self {
        LinkFaultModel {
            drop: p,
            ..LinkFaultModel::default()
        }
    }

    /// Returns `true` if this model can ever perturb a message.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.drop > 0.0 || self.corrupt > 0.0 || self.duplicate > 0.0 || self.reorder > 0.0
    }

    /// Decides the fate of one message, consuming randomness from `rng`.
    ///
    /// Exactly one coin is drawn per enabled fault class until one fires
    /// (drop → corrupt → duplicate → reorder); disabled classes (probability
    /// zero) draw nothing, so RNG streams stay aligned with the model's
    /// configuration and nothing else.
    pub fn decide<R: Rng>(&self, rng: &mut R) -> FaultAction {
        if self.drop > 0.0 && coin(rng, self.drop) {
            return FaultAction::Drop;
        }
        if self.corrupt > 0.0 && coin(rng, self.corrupt) {
            return FaultAction::Corrupt;
        }
        if self.duplicate > 0.0 && coin(rng, self.duplicate) {
            return FaultAction::Duplicate;
        }
        if self.reorder > 0.0 && coin(rng, self.reorder) {
            let extra = rng.gen_range(1..=self.max_extra_delay.max(1));
            return FaultAction::Delay(extra);
        }
        FaultAction::Deliver
    }
}

/// Counters of what a faulty link actually did to traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages passed through untouched.
    pub delivered: u64,
    /// Messages silently dropped by the link model.
    pub dropped: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages held back by extra delay.
    pub reordered: u64,
    /// Messages delivered corrupted (and discarded by the receiver).
    pub corrupted: u64,
    /// Messages lost because the link (or its session) was down or had been
    /// reset while they were in flight.
    pub dropped_link_down: u64,
}

impl FaultStats {
    /// Total messages the model touched in any way.
    #[must_use]
    pub fn perturbed(&self) -> u64 {
        self.dropped + self.duplicated + self.reordered + self.corrupted
    }

    /// Accumulates another stats block into this one.
    pub fn merge(&mut self, other: &FaultStats) {
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.reordered += other.reordered;
        self.corrupted += other.corrupted;
        self.dropped_link_down += other.dropped_link_down;
    }
}

/// One scheduled event on a fault timeline: fires at tick `at`, and — when
/// `period` is set — again every `period` ticks thereafter, `count` times in
/// total (`None` = forever).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEntry<E> {
    /// Absolute simulation tick of the first firing.
    pub at: u64,
    /// Ticks between repeat firings; `None` for a one-shot event.
    pub period: Option<u64>,
    /// Total number of firings for a periodic event; `None` = unbounded.
    /// Ignored for one-shot events.
    pub count: Option<u64>,
    /// The event to fire.
    pub event: E,
}

impl<E> TimelineEntry<E> {
    /// Returns `true` if the entry fires more than once.
    #[must_use]
    pub fn is_periodic(&self) -> bool {
        self.period.is_some() && self.count != Some(1)
    }
}

/// A complete, seeded fault scenario: per-link perturbation models plus a
/// timeline of scheduled events.
///
/// The plan itself is pure data — the simulation engine that consumes it
/// derives its fault RNG from [`seed`](FaultPlan::seed) and walks the
/// timeline, so two runs of the same plan over the same inputs behave
/// identically.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan<K, E> {
    seed: u64,
    link_models: BTreeMap<K, LinkFaultModel>,
    timeline: Vec<TimelineEntry<E>>,
}

impl<K: Ord, E> FaultPlan<K, E> {
    /// Creates an empty plan whose consumers seed their fault RNG from
    /// `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            link_models: BTreeMap::new(),
            timeline: Vec::new(),
        }
    }

    /// The seed for the consuming engine's fault RNG.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Attaches (or replaces) the fault model for one link.
    pub fn set_link_model(&mut self, link: K, model: LinkFaultModel) -> &mut Self {
        self.link_models.insert(link, model);
        self
    }

    /// Shorthand for a purely lossy link.
    pub fn lossy_link(&mut self, link: K, p: f64) -> &mut Self {
        self.set_link_model(link, LinkFaultModel::lossy(p))
    }

    /// The fault model for a link, if one is attached.
    #[must_use]
    pub fn link_model(&self, link: &K) -> Option<&LinkFaultModel> {
        self.link_models.get(link)
    }

    /// All per-link models, ordered by link key.
    pub fn link_models(&self) -> impl Iterator<Item = (&K, &LinkFaultModel)> {
        self.link_models.iter()
    }

    /// Schedules a one-shot event at tick `at`.
    pub fn at(&mut self, at: u64, event: E) -> &mut Self {
        self.timeline.push(TimelineEntry {
            at,
            period: None,
            count: None,
            event,
        });
        self
    }

    /// Schedules a periodic event: first at tick `at`, then every `period`
    /// ticks, firing `count` times in total (`None` = forever — the consumer
    /// is expected to bound the run with a watchdog or event budget).
    pub fn every(&mut self, at: u64, period: u64, count: Option<u64>, event: E) -> &mut Self {
        self.timeline.push(TimelineEntry {
            at,
            period: Some(period.max(1)),
            count,
            event,
        });
        self
    }

    /// The scheduled events, in insertion order.
    #[must_use]
    pub fn timeline(&self) -> &[TimelineEntry<E>] {
        &self.timeline
    }

    /// Returns `true` if the plan perturbs nothing and schedules nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.timeline.is_empty() && !self.link_models.values().any(LinkFaultModel::is_active)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::from_seed;

    #[test]
    fn default_model_always_delivers() {
        let model = LinkFaultModel::default();
        let mut rng = from_seed(1);
        assert!(!model.is_active());
        for _ in 0..64 {
            assert_eq!(model.decide(&mut rng), FaultAction::Deliver);
        }
    }

    #[test]
    fn decisions_are_reproducible_from_the_seed() {
        let model = LinkFaultModel {
            drop: 0.2,
            corrupt: 0.1,
            duplicate: 0.1,
            reorder: 0.3,
            max_extra_delay: 5,
        };
        let run = |seed| {
            let mut rng = from_seed(seed);
            (0..256).map(|_| model.decide(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn certain_drop_always_drops() {
        let model = LinkFaultModel::lossy(1.0);
        let mut rng = from_seed(9);
        for _ in 0..16 {
            assert_eq!(model.decide(&mut rng), FaultAction::Drop);
        }
    }

    #[test]
    fn all_fault_classes_are_reachable() {
        let model = LinkFaultModel {
            drop: 0.25,
            corrupt: 0.25,
            duplicate: 0.25,
            reorder: 0.5,
            max_extra_delay: 3,
        };
        let mut rng = from_seed(5);
        let mut seen_drop = false;
        let mut seen_corrupt = false;
        let mut seen_dup = false;
        let mut seen_delay = false;
        let mut seen_deliver = false;
        for _ in 0..1024 {
            match model.decide(&mut rng) {
                FaultAction::Drop => seen_drop = true,
                FaultAction::Corrupt => seen_corrupt = true,
                FaultAction::Duplicate => seen_dup = true,
                FaultAction::Delay(d) => {
                    assert!((1..=3).contains(&d));
                    seen_delay = true;
                }
                FaultAction::Deliver => seen_deliver = true,
            }
        }
        assert!(seen_drop && seen_corrupt && seen_dup && seen_delay && seen_deliver);
    }

    #[test]
    fn loss_rate_tracks_probability() {
        let model = LinkFaultModel::lossy(0.3);
        let mut rng = from_seed(11);
        let dropped = (0..10_000)
            .filter(|_| model.decide(&mut rng) == FaultAction::Drop)
            .count();
        assert!((2_500..3_500).contains(&dropped), "dropped = {dropped}");
    }

    #[test]
    fn stats_merge_and_perturbed() {
        let mut a = FaultStats {
            delivered: 10,
            dropped: 1,
            duplicated: 2,
            reordered: 3,
            corrupted: 4,
            dropped_link_down: 5,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.delivered, 20);
        assert_eq!(a.perturbed(), 20);
        assert_eq!(a.dropped_link_down, 10);
    }

    #[test]
    fn plan_builders_accumulate() {
        let mut plan: FaultPlan<(u32, u32), &str> = FaultPlan::new(3);
        plan.lossy_link((1, 2), 0.5)
            .set_link_model((2, 3), LinkFaultModel::default())
            .at(10, "fail")
            .every(20, 5, Some(4), "flap");
        assert_eq!(plan.seed(), 3);
        assert_eq!(plan.link_models().count(), 2);
        assert_eq!(plan.timeline().len(), 2);
        assert!(plan.link_model(&(1, 2)).unwrap().is_active());
        assert!(!plan.timeline()[0].is_periodic());
        assert!(plan.timeline()[1].is_periodic());
        assert!(!plan.is_empty());
    }

    #[test]
    fn inactive_models_leave_the_plan_empty() {
        let mut plan: FaultPlan<u32, &str> = FaultPlan::new(0);
        assert!(plan.is_empty());
        plan.set_link_model(1, LinkFaultModel::default());
        assert!(plan.is_empty(), "a never-perturbing model is not a fault");
        plan.at(5, "x");
        assert!(!plan.is_empty());
    }

    #[test]
    fn period_of_zero_is_clamped_to_one() {
        let mut plan: FaultPlan<u32, u8> = FaultPlan::new(0);
        plan.every(0, 0, None, 1);
        assert_eq!(plan.timeline()[0].period, Some(1));
    }
}
